"""Skyline scouting over NBA-like player statistics.

Uses the paper's Table 16 workload (the synthetic NBA equivalent): 8-D
per-season player statistics.  Shows two analyses a scout would run:

1. the full-space skyline — players no one strictly outperforms;
2. subspace skylines via the skycube — "best pure scorers" vs "best
   defensive profiles", querying any stat subset without recomputation.

Run:  python examples/nba_scouting.py
"""

from __future__ import annotations

import repro
from repro.data import nba
from repro.extensions import Skycube

STATS = (
    "points", "rebounds", "assists", "steals", "blocks",
    "threes", "fg_pct", "minutes",
)


def main() -> None:
    # The dataset arrives already flipped into min-is-better form.
    players = nba(6000, seed=3)
    print(f"scouting pool: {players.describe()}\n")

    result = repro.skyline(players, algorithm="sdi-subset", sigma=2)
    print(f"full skyline (all 8 stats): {result.size} undominated players")
    print(f"  computed with {result.mean_dominance_tests:.2f} mean dominance tests "
          f"in {result.elapsed_seconds * 1000:.1f} ms")

    baseline = repro.skyline(players, algorithm="sdi")
    print(f"  plain SDI needed {baseline.mean_dominance_tests:.2f} mean tests\n")

    # Skycube over the first five stats: every stat-subset skyline at once.
    scoring_dims = list(range(5))
    cube = Skycube(players.subset(range(2000)).values[:, scoring_dims])
    print("skycube over (points, rebounds, assists, steals, blocks):")
    for dims, label in (
        ([0], "pure scorers"),
        ([0, 2], "scorer-playmakers"),
        ([3, 4], "defensive profiles"),
        ([0, 1, 2, 3, 4], "all-round"),
    ):
        names = ", ".join(STATS[d] for d in dims)
        print(f"  best by ({names}): {cube.size(dims)} players")


if __name__ == "__main__":
    main()
