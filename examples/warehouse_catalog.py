"""Mixed-domain, disk-resident catalogue: partial orders + external memory.

A warehouse catalogue where one attribute is *partially ordered* (packaging
quality grades form a DAG, not a line) and the table is too large for the
buffer pool, so the skyline must run in external-memory discipline:

1. `partial_order_skyline` handles the mixed numeric/DAG dominance —
   the ZINC setting the reproduced paper scopes out and this library adds;
2. `ExternalBNL` computes a numeric skyline under a tight page budget and
   reports the page I/O the classic external analyses count.

Run:  python examples/warehouse_catalog.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.extensions import PartialOrder, partial_order_skyline
from repro.stats.counters import DominanceCounter

# Packaging grades: "sealed" beats both "boxed" and "shrinkwrap", which are
# mutually incomparable; "loose" is worse than either.
GRADES = PartialOrder(
    [("sealed", "boxed"), ("sealed", "shrinkwrap"), ("boxed", "loose"),
     ("shrinkwrap", "loose")]
)


def make_catalogue(n: int = 3000, seed: int = 21):
    rng = np.random.default_rng(seed)
    price = rng.gamma(4.0, 12.0, n)
    lead_days = rng.integers(1, 30, n).astype(float)
    grades = np.array(GRADES.domain)[rng.integers(0, 4, n)]
    return [
        (float(price[i]), float(lead_days[i]), str(grades[i])) for i in range(n)
    ]


def main() -> None:
    rows = make_catalogue()
    print(f"catalogue: {len(rows)} items (price, lead time, packaging grade)\n")

    counter = DominanceCounter()
    sky = partial_order_skyline(rows, orders={2: GRADES}, counter=counter)
    print(f"mixed-domain skyline: {len(sky)} items "
          f"({counter.tests} dominance tests)")
    for item in sky[:6]:
        price, lead, grade = rows[item]
        print(f"  item-{item:04d}: {price:6.2f} EUR, {lead:4.0f} days, {grade}")

    # Numeric-only view under a tight buffer pool: 2 pages of 64 rows.
    numeric = np.array([row[:2] for row in rows])
    counter = DominanceCounter()
    result = repro.skyline(
        numeric, algorithm="external-bnl", counter=counter,
        page_size=64, memory_pages=2,
    )
    print(
        f"\nexternal BNL (numeric dims, 2-page buffer pool): "
        f"{result.size} items in the skyline"
    )
    print(
        f"  page I/O: {counter.extras['page_reads']:.0f} reads, "
        f"{counter.extras['page_writes']:.0f} writes, "
        f"{counter.tests} dominance tests"
    )


if __name__ == "__main__":
    main()
