"""The paper's Figure 1 scenario: skyline over hotels.

Each hotel has a price, a distance to the beach, a noise level and a guest
rating (higher is better).  The skyline is the set of hotels no other hotel
beats on every criterion: exactly what a booking site's "only show me
sensible options" filter should return.

Run:  python examples/hotel_search.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.dataset import Dataset


def make_hotels(n: int = 4000, seed: int = 7) -> Dataset:
    rng = np.random.default_rng(seed)
    distance_km = rng.gamma(2.0, 1.5, n)                # distance to the beach
    base_price = 90 + 60 * np.exp(-distance_km) + rng.normal(0, 25, n)
    price = np.clip(base_price, 35, None)               # closer -> pricier
    noise_db = np.clip(55 - 3 * distance_km + rng.normal(0, 6, n), 25, 80)
    rating = np.clip(rng.normal(7.8, 1.1, n), 1, 10)
    values = np.column_stack([price, distance_km, noise_db, rating])
    return Dataset(values, name="hotels", kind="custom")


def main() -> None:
    hotels = make_hotels()
    # Ratings are max-is-better: flip into the library's min convention.
    preferences = hotels.minimizing([3])
    print(f"searching {len(hotels)} hotels "
          "(price, beach distance, noise, rating)\n")

    plain = repro.skyline(preferences, algorithm="sfs")
    boosted = repro.skyline(preferences, algorithm="sfs-subset")
    assert list(plain.indices) == list(boosted.indices)

    print(f"skyline: {plain.size} hotels survive")
    print(f"  SFS        : {plain.mean_dominance_tests:8.2f} mean dominance tests")
    print(f"  SFS-Subset : {boosted.mean_dominance_tests:8.2f} mean dominance tests")
    gain = plain.dominance_tests / max(boosted.dominance_tests, 1)
    print(f"  boost      : x {gain:.2f}\n")

    print("a few pareto-optimal picks:")
    for hotel_id in boosted.indices[:8]:
        price, dist, noise, rating = hotels.values[hotel_id]
        print(
            f"  hotel-{hotel_id:04d}: {price:6.0f} EUR, {dist:4.1f} km, "
            f"{noise:4.1f} dB, rating {rating:4.2f}"
        )


if __name__ == "__main__":
    main()
