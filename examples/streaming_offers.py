"""Live skyline over a stream of server offers (the §7 streaming extension).

A load balancer watches offers arriving from edge servers, each with a
price, a latency and a load factor.  It keeps only the *current* pareto
frontier under a sliding window: expired offers are deleted, new ones
inserted, and the skyline updates incrementally — no batch recomputation.

Run:  python examples/streaming_offers.py
"""

from __future__ import annotations

import numpy as np

from repro.extensions import StreamingSkyline

WINDOW = 400


def offer_stream(n: int, seed: int = 11):
    rng = np.random.default_rng(seed)
    for _ in range(n):
        price = rng.gamma(3.0, 2.0)
        latency = rng.gamma(2.0, 8.0)
        load = rng.random()
        yield [price, latency, load]


def main() -> None:
    sky = StreamingSkyline(d=3, anchors=8)
    window: list[int] = []

    print(f"sliding window of {WINDOW} offers (price, latency, load)\n")
    for step, offer in enumerate(offer_stream(3000)):
        if len(window) == WINDOW:
            sky.delete(window.pop(0))
        window.append(sky.insert(offer))
        if (step + 1) % 500 == 0:
            frontier = sky.skyline_points()
            cheapest = frontier[:, 0].min()
            fastest = frontier[:, 1].min()
            print(
                f"after {step + 1:5d} offers: frontier={len(frontier):3d} "
                f"| cheapest={cheapest:5.2f} | fastest={fastest:5.1f} ms "
                f"| lifetime dominance tests={sky.counter.tests}"
            )

    print("\nfinal pareto frontier (first 5 offers):")
    for row in sky.skyline_points()[:5]:
        print(f"  price={row[0]:5.2f}  latency={row[1]:5.1f} ms  load={row[2]:.2f}")


if __name__ == "__main__":
    main()
