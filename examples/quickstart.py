"""Quickstart: compute a skyline and see what the subset approach buys you.

Generates an 8-D uniform-independent workload (the regime where the paper's
method shines), runs the plain and subset-boosted algorithms, and prints
the paper's two metrics side by side.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import repro


def main() -> None:
    data = repro.generate("UI", n=20_000, d=8, seed=42)
    print(f"workload: {data.describe()}\n")

    print(f"{'algorithm':16s} {'skyline':>8s} {'mean DT':>10s} {'time (ms)':>10s}")
    for name in ("sfs", "sfs-subset", "salsa", "salsa-subset", "sdi", "sdi-subset",
                 "bskytree-s", "bskytree-p"):
        result = repro.skyline(data, algorithm=name)
        print(
            f"{name:16s} {result.size:8d} "
            f"{result.mean_dominance_tests:10.2f} "
            f"{result.elapsed_seconds * 1000:10.1f}"
        )

    # The contribution is also usable standalone: a container that stores
    # skyline points by subspace and retrieves only comparable candidates.
    index = repro.SkylineIndex(d=4)
    index.put(point_id=0, subspace=0b0011)   # this point beats pivots in dims {0,1}
    index.put(point_id=1, subspace=0b0111)   # ... in dims {0,1,2}
    index.put(point_id=2, subspace=0b1000)   # ... in dim {3}
    candidates = index.query(0b0011)          # who could dominate a {0,1} point?
    print(f"\nsubset index: candidates for subspace {{0,1}} -> {sorted(candidates)}")
    print("(point 2 is provably incomparable and is never tested)")


if __name__ == "__main__":
    main()
