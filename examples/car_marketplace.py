"""A used-car marketplace: declarative queries, skybands and top-k picks.

Shows the library's higher-level operators on one realistic catalogue:

- `SkylineQuery` — named columns, mixed min/max directions and range
  constraints ("under 15k EUR, newer than 2015");
- `skyband` — the "almost-pareto" listings worth showing on page two;
- `top_k_dominating` — the k listings that beat the most other listings,
  a ranking with no hand-tuned scoring function.

Run:  python examples/car_marketplace.py
"""

from __future__ import annotations

import numpy as np

from repro import SkylineQuery
from repro.dataset import Dataset
from repro.extensions import skyband, top_k_dominating

COLUMNS = ("price", "mileage", "year", "power")


def make_catalogue(n: int = 5000, seed: int = 13) -> Dataset:
    rng = np.random.default_rng(seed)
    year = rng.integers(2005, 2025, n).astype(float)
    age = 2025 - year
    mileage = np.clip(age * rng.normal(14_000, 4_000, n), 0, None)
    power = np.clip(rng.normal(120, 40, n), 45, 400)
    price = np.clip(
        28_000 * np.exp(-0.11 * age) + 30 * power + rng.normal(0, 1800, n), 500, None
    )
    values = np.column_stack([price, mileage, year, power])
    return Dataset(values, name="used-cars", columns=COLUMNS)


def main() -> None:
    cars = make_catalogue()
    print(f"catalogue: {cars.describe()}\n")

    query = (
        SkylineQuery()
        .minimize("price", "mileage")
        .maximize("year", "power")
        .where("price", max_value=15_000)
        .where("year", min_value=2015)
    )
    result = query.execute(cars, algorithm="sdi-subset")
    print(f"constrained skyline (<=15k EUR, >=2015): {result.size} cars")
    for car_id in result.indices[:6]:
        price, mileage, year, power = cars.values[car_id]
        print(
            f"  car-{car_id:04d}: {price:7.0f} EUR, {mileage:7.0f} km, "
            f"{year:.0f}, {power:3.0f} hp"
        )

    # Page two: listings dominated by at most one other car.  The skyband
    # works in the minimisation convention, so flip max-is-better columns.
    prefs = cars.minimizing([2, 3])
    band = skyband(prefs, k=2)
    only_sky = [pid for pid, count in band.items() if count == 0]
    near_sky = [pid for pid, count in band.items() if count == 1]
    print(f"\n2-skyband: {len(only_sky)} pareto cars + {len(near_sky)} near-misses")

    print("\ntop 5 most-dominating listings (best overall value):")
    for car_id, score in top_k_dominating(prefs, k=5):
        price, mileage, year, power = cars.values[car_id]
        print(
            f"  car-{car_id:04d} dominates {score:4d} others: "
            f"{price:7.0f} EUR, {mileage:7.0f} km, {year:.0f}, {power:3.0f} hp"
        )


if __name__ == "__main__":
    main()
