"""Choosing the stability threshold σ (the §6.1 knob, autotuned per §7).

σ controls how many pivot points the Merge phase spends before the scan:
too few and the subset index can't separate points; too many and the merge
itself dominates the cost.  The paper recommends σ = round(d/3); this
example sweeps σ on three data regimes and compares the heuristic with the
library's sample-based autotuner.

Run:  python examples/tuning_sigma.py
"""

from __future__ import annotations

import time

import repro
from repro.algorithms.sdi import SDI
from repro.core.stability import default_threshold


def main() -> None:
    d = 8
    for kind in ("AC", "CO", "UI"):
        data = repro.generate(kind, n=8000, d=d, seed=1)
        print(f"{data.describe()}")
        best_sigma, best_time = None, float("inf")
        for sigma in range(2, d + 1):
            started = time.perf_counter()
            result = repro.skyline(data, algorithm="sdi-subset", sigma=sigma)
            elapsed = time.perf_counter() - started
            marker = ""
            if elapsed < best_time:
                best_sigma, best_time = sigma, elapsed
            if sigma == default_threshold(d):
                marker = "  <- paper heuristic d/3"
            print(
                f"  sigma={sigma}: DT={result.mean_dominance_tests:8.2f} "
                f"RT={elapsed * 1000:7.1f} ms{marker}"
            )
        tuned = repro.tune_sigma(data, SDI(), sample_size=1000, seed=0)
        print(f"  fastest measured sigma={best_sigma}; autotuner picked "
              f"sigma={tuned.sigma} from a 1000-point sample\n")


if __name__ == "__main__":
    main()
