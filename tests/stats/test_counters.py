"""Unit tests for the dominance counter."""

import pytest

from repro.stats.counters import DominanceCounter


class TestDominanceCounter:
    def test_starts_at_zero(self):
        counter = DominanceCounter()
        assert counter.tests == 0
        assert counter.index_queries == 0
        assert counter.index_nodes_visited == 0

    def test_add_default_and_bulk(self):
        counter = DominanceCounter()
        counter.add()
        counter.add(10)
        assert counter.tests == 11

    def test_add_query(self):
        counter = DominanceCounter()
        counter.add_query(5)
        counter.add_query(3)
        assert counter.index_queries == 2
        assert counter.index_nodes_visited == 8

    def test_mean_tests(self):
        counter = DominanceCounter(tests=500)
        assert counter.mean_tests(100) == 5.0

    def test_mean_tests_rejects_bad_cardinality(self):
        with pytest.raises(ValueError):
            DominanceCounter().mean_tests(0)

    def test_reset(self):
        counter = DominanceCounter(tests=3)
        counter.add_query(2)
        counter.extras["x"] = 1.0
        counter.reset()
        assert counter.tests == 0
        assert counter.index_queries == 0
        assert counter.index_nodes_visited == 0
        assert counter.extras == {}


class TestAsDict:
    def test_scalar_fields_in_declaration_order(self):
        counter = DominanceCounter(tests=5, prepared_cache_hits=2)
        tallies = counter.as_dict()
        assert list(tallies) == [
            "tests",
            "index_queries",
            "index_nodes_visited",
            "index_cache_hits",
            "index_cache_misses",
            "index_cache_invalidations",
            "prepared_cache_hits",
            "prepared_cache_misses",
        ]
        assert tallies["tests"] == 5.0
        assert tallies["prepared_cache_hits"] == 2.0

    def test_values_are_floats(self):
        tallies = DominanceCounter(tests=3).as_dict()
        assert all(type(value) is float for value in tallies.values())

    def test_extras_sorted_under_prefix_after_scalars(self):
        counter = DominanceCounter()
        counter.extras["zeta"] = 1.0
        counter.extras["alpha"] = 2.0
        keys = list(counter.as_dict())
        assert keys[-2:] == ["extras.alpha", "extras.zeta"]

    def test_two_snapshots_diff_key_by_key(self):
        counter = DominanceCounter()
        before = counter.as_dict()
        counter.add(9)
        counter.add_cache_hit()
        delta = {
            key: value - before[key]
            for key, value in counter.as_dict().items()
            if value != before[key]
        }
        assert delta == {"tests": 9.0, "index_cache_hits": 1.0}


class TestSnapshot:
    def test_snapshot_copies_every_tally(self):
        counter = DominanceCounter(tests=4, index_queries=2)
        counter.extras["x"] = 1.5
        copy = counter.snapshot()
        assert copy == counter

    def test_snapshot_is_independent(self):
        counter = DominanceCounter(tests=1)
        counter.extras["x"] = 1.0
        copy = counter.snapshot()
        counter.add(10)
        counter.extras["x"] = 99.0
        assert copy.tests == 1
        assert copy.extras == {"x": 1.0}
