"""Unit tests for the dominance counter."""

import pytest

from repro.stats.counters import DominanceCounter


class TestDominanceCounter:
    def test_starts_at_zero(self):
        counter = DominanceCounter()
        assert counter.tests == 0
        assert counter.index_queries == 0
        assert counter.index_nodes_visited == 0

    def test_add_default_and_bulk(self):
        counter = DominanceCounter()
        counter.add()
        counter.add(10)
        assert counter.tests == 11

    def test_add_query(self):
        counter = DominanceCounter()
        counter.add_query(5)
        counter.add_query(3)
        assert counter.index_queries == 2
        assert counter.index_nodes_visited == 8

    def test_mean_tests(self):
        counter = DominanceCounter(tests=500)
        assert counter.mean_tests(100) == 5.0

    def test_mean_tests_rejects_bad_cardinality(self):
        with pytest.raises(ValueError):
            DominanceCounter().mean_tests(0)

    def test_reset(self):
        counter = DominanceCounter(tests=3)
        counter.add_query(2)
        counter.extras["x"] = 1.0
        counter.reset()
        assert counter.tests == 0
        assert counter.index_queries == 0
        assert counter.index_nodes_visited == 0
        assert counter.extras == {}
