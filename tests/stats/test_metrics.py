"""Unit tests for the evaluation metrics."""

import pytest

from repro.stats.metrics import (
    MetricRow,
    format_gain,
    mean_dominance_tests,
    performance_gain,
    summarize,
)


class TestMeanDominanceTests:
    def test_ratio(self):
        assert mean_dominance_tests(1000, 200) == 5.0

    def test_rejects_zero_cardinality(self):
        with pytest.raises(ValueError):
            mean_dominance_tests(10, 0)


class TestPerformanceGain:
    def test_gain_above_one(self):
        assert performance_gain(10.0, 2.0) == 5.0

    def test_no_gain_is_none(self):
        assert performance_gain(2.0, 10.0) is None
        assert performance_gain(2.0, 2.0) is None

    def test_zero_boosted(self):
        assert performance_gain(5.0, 0.0) == float("inf")
        assert performance_gain(0.0, 0.0) is None

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            performance_gain(-1.0, 2.0)

    def test_formatting(self):
        assert format_gain(None) == "-"
        assert format_gain(4.843) == "x 4.84"
        assert format_gain(float("inf")) == "x inf"


class TestMetricRow:
    def test_derived_metrics(self):
        row = MetricRow(
            algorithm="sfs",
            dominance_tests=5000,
            cardinality=1000,
            elapsed_seconds=0.25,
            skyline_size=42,
        )
        assert row.mean_dt == 5.0
        assert row.elapsed_ms == 250.0

    def test_summarize_indexes_by_algorithm(self):
        rows = [
            MetricRow("sfs", 100, 10, 0.1, 3),
            MetricRow("sdi", 50, 10, 0.05, 3),
        ]
        summary = summarize(rows)
        assert summary["sfs"]["dt"] == 10.0
        assert summary["sdi"]["rt_ms"] == 50.0
        assert summary["sdi"]["skyline"] == 3.0
