"""Unit tests for the UI skyline-size estimator."""

import pytest

import repro
from repro.errors import InvalidParameterError
from repro.stats.estimate import (
    expected_skyline_size,
    expected_skyline_size_asymptotic,
)


class TestHarmonicRecurrence:
    def test_d1_is_one(self):
        assert expected_skyline_size(1000, 1) == 1.0

    def test_n1_is_one(self):
        assert expected_skyline_size(1, 7) == 1.0

    def test_d2_is_harmonic_number(self):
        # H_5 = 1 + 1/2 + 1/3 + 1/4 + 1/5
        assert expected_skyline_size(5, 2) == pytest.approx(137 / 60)

    def test_d3_small_case(self):
        # H_{2,3} = sum_{i<=3} H_{1,i}/i = 1/1 + (3/2)/2 + (11/6)/3
        assert expected_skyline_size(3, 3) == pytest.approx(1 + 0.75 + 11 / 18)

    def test_monotone_in_n_and_d(self):
        assert expected_skyline_size(2000, 4) > expected_skyline_size(1000, 4)
        assert expected_skyline_size(1000, 5) > expected_skyline_size(1000, 4)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            expected_skyline_size(0, 3)
        with pytest.raises(InvalidParameterError):
            expected_skyline_size(5, 0)

    def test_asymptotic_tracks_exact_at_large_n(self):
        exact = expected_skyline_size(100_000, 4)
        approx = expected_skyline_size_asymptotic(100_000, 4)
        assert 0.5 < approx / exact < 1.5

    def test_predicts_measured_ui_skylines(self):
        """The estimator lands within ~35% of measured UI skyline sizes."""
        for d in (3, 4, 5):
            sizes = []
            for seed in range(3):
                data = repro.generate("UI", n=3000, d=d, seed=seed)
                sizes.append(repro.skyline(data, algorithm="sdi").size)
            measured = sum(sizes) / len(sizes)
            predicted = expected_skyline_size(3000, d)
            assert 0.65 < predicted / measured < 1.35
