"""Unit tests for dataset persistence."""

import numpy as np
import pytest

from repro.data.io import load_csv, load_npy, save_csv, save_npy
from repro.dataset import Dataset
from repro.errors import InvalidDatasetError


@pytest.fixture
def dataset():
    rng = np.random.default_rng(0)
    return Dataset(rng.random((20, 3)), name="demo", kind="UI")


class TestCsv:
    def test_round_trip(self, dataset, tmp_path):
        path = tmp_path / "data.csv"
        save_csv(dataset, path)
        loaded = load_csv(path)
        assert np.allclose(loaded.values, dataset.values)
        assert loaded.name == "data"

    def test_header_is_written(self, dataset, tmp_path):
        path = tmp_path / "data.csv"
        save_csv(dataset, path)
        first = path.read_text().splitlines()[0]
        assert first == "dim_0,dim_1,dim_2"

    def test_headerless_csv_loads(self, tmp_path):
        path = tmp_path / "raw.csv"
        path.write_text("1.0,2.0\n3.0,4.0\n")
        loaded = load_csv(path)
        assert loaded.values.shape == (2, 2)

    def test_non_numeric_body_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1.0,2.0\n1.0,oops\n")
        with pytest.raises(InvalidDatasetError) as err:
            load_csv(path)
        assert "bad.csv:3" in str(err.value)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(InvalidDatasetError):
            load_csv(path)

    def test_kind_and_name_overrides(self, dataset, tmp_path):
        path = tmp_path / "data.csv"
        save_csv(dataset, path)
        loaded = load_csv(path, name="renamed", kind="AC")
        assert loaded.name == "renamed"
        assert loaded.kind == "AC"


class TestNpy:
    def test_round_trip(self, dataset, tmp_path):
        path = tmp_path / "data.npy"
        save_npy(dataset, path)
        loaded = load_npy(path)
        assert np.array_equal(loaded.values, dataset.values)

    def test_name_defaults_to_stem(self, dataset, tmp_path):
        path = tmp_path / "mystem.npy"
        save_npy(dataset, path)
        assert load_npy(path).name == "mystem"
