"""Unit tests for the AC/CO/UI workload generators."""

import numpy as np
import pytest

import repro
from repro.data.generators import KINDS, generate
from repro.errors import InvalidParameterError


class TestContracts:
    @pytest.mark.parametrize("kind", KINDS)
    def test_shape_and_range(self, kind):
        ds = generate(kind, n=500, d=6, seed=0)
        assert ds.values.shape == (500, 6)
        assert ds.values.min() >= 0.0
        assert ds.values.max() <= 1.0
        assert ds.kind == kind

    @pytest.mark.parametrize("kind", KINDS)
    def test_deterministic_given_seed(self, kind):
        a = generate(kind, n=200, d=4, seed=7)
        b = generate(kind, n=200, d=4, seed=7)
        assert np.array_equal(a.values, b.values)

    @pytest.mark.parametrize("kind", KINDS)
    def test_different_seeds_differ(self, kind):
        a = generate(kind, n=200, d=4, seed=1)
        b = generate(kind, n=200, d=4, seed=2)
        assert not np.array_equal(a.values, b.values)

    def test_case_insensitive_kind(self):
        assert generate("ui", 10, 2, seed=0).kind == "UI"

    def test_rejects_unknown_kind(self):
        with pytest.raises(InvalidParameterError):
            generate("XX", 10, 2)

    def test_rejects_bad_sizes(self):
        with pytest.raises(InvalidParameterError):
            generate("UI", 0, 2)
        with pytest.raises(InvalidParameterError):
            generate("UI", 10, 0)

    def test_name_encodes_parameters(self):
        assert generate("AC", 50, 3, seed=0).name == "AC-3D-50"

    def test_d1_supported(self):
        ds = generate("AC", 100, 1, seed=0)
        assert ds.dimensionality == 1


class TestCorrelationStructure:
    def test_co_columns_positively_correlated(self):
        ds = generate("CO", n=3000, d=4, seed=5)
        corr = np.corrcoef(ds.values.T)
        off_diag = corr[~np.eye(4, dtype=bool)]
        assert off_diag.min() > 0.5

    def test_ac_columns_negatively_correlated(self):
        ds = generate("AC", n=3000, d=4, seed=5)
        corr = np.corrcoef(ds.values.T)
        off_diag = corr[~np.eye(4, dtype=bool)]
        assert off_diag.max() < 0.0

    def test_ui_columns_uncorrelated(self):
        ds = generate("UI", n=5000, d=4, seed=5)
        corr = np.corrcoef(ds.values.T)
        off_diag = corr[~np.eye(4, dtype=bool)]
        assert np.abs(off_diag).max() < 0.1

    def test_ac_sums_concentrate(self):
        """AC points hug a constant-sum plane (the defining property)."""
        ds = generate("AC", n=3000, d=6, seed=5)
        sums = ds.values.sum(axis=1)
        assert sums.std() < 0.5


class TestSkylineSizeOrdering:
    def test_table1_shape_ac_gg_ui_gg_co(self):
        """The Table 1 ordering: AC >> UI >> CO skyline sizes."""
        sizes = {}
        for kind in KINDS:
            ds = generate(kind, n=1500, d=6, seed=9)
            sizes[kind] = repro.skyline(ds, algorithm="sdi").size
        assert sizes["AC"] > 3 * sizes["UI"] > sizes["CO"]

    def test_skyline_grows_with_dimensionality(self):
        previous = 0
        for d in (2, 4, 6, 8):
            ds = generate("UI", n=1500, d=d, seed=10)
            size = repro.skyline(ds, algorithm="sdi").size
            assert size > previous
            previous = size
