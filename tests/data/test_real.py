"""Unit tests for the synthetic HOUSE/NBA/WEATHER equivalents."""

import numpy as np
import pytest

from repro.data.real import (
    HOUSE_CARDINALITY,
    NBA_CARDINALITY,
    WEATHER_CARDINALITY,
    house,
    nba,
    weather,
)
from repro.errors import InvalidParameterError


class TestShapes:
    def test_house_dimensionality(self):
        ds = house(500, seed=0)
        assert ds.values.shape == (500, 6)
        assert ds.kind == "REAL"

    def test_nba_dimensionality(self):
        ds = nba(500, seed=0)
        assert ds.values.shape == (500, 8)

    def test_weather_dimensionality(self):
        ds = weather(500, seed=0)
        assert ds.values.shape == (500, 15)

    def test_paper_cardinalities_recorded(self):
        assert HOUSE_CARDINALITY == 127_931
        assert NBA_CARDINALITY == 17_264
        assert WEATHER_CARDINALITY == 566_268

    @pytest.mark.parametrize("factory", [house, nba, weather])
    def test_rejects_nonpositive_cardinality(self, factory):
        with pytest.raises(InvalidParameterError):
            factory(0)

    @pytest.mark.parametrize("factory", [house, nba, weather])
    def test_deterministic(self, factory):
        a = factory(300, seed=5)
        b = factory(300, seed=5)
        assert np.array_equal(a.values, b.values)


class TestCharacteristics:
    def test_house_is_anti_correlated(self):
        """Budget shares trade off against each other (the AC property)."""
        ds = house(4000, seed=1)
        shares = ds.values / ds.values.sum(axis=1, keepdims=True)
        corr = np.corrcoef(shares.T)
        off_diag = corr[~np.eye(6, dtype=bool)]
        assert off_diag.mean() < 0.0

    def test_house_non_negative(self):
        assert house(500, seed=2).values.min() >= 0.0

    def test_nba_is_correlated(self):
        """Latent skill makes the flipped stats positively correlated."""
        ds = nba(4000, seed=1)
        corr = np.corrcoef(ds.values.T)
        off_diag = corr[~np.eye(8, dtype=bool)]
        assert off_diag.mean() > 0.3

    def test_nba_small_skyline(self):
        import repro

        ds = nba(3000, seed=3)
        size = repro.skyline(ds, algorithm="sdi").size
        assert size < 0.05 * len(ds)  # correlated data -> tiny skyline

    def test_weather_has_heavy_duplicates(self):
        """Section 6.3: WEATHER has many duplicate values per dimension."""
        ds = weather(5000, seed=1)
        for dim in range(5):  # the most heavily quantised dimensions
            distinct = np.unique(ds.values[:, dim]).shape[0]
            assert distinct <= 32

    def test_weather_values_in_unit_range(self):
        ds = weather(500, seed=2)
        assert ds.values.min() >= 0.0
        assert ds.values.max() <= 1.0
