"""Unit tests for the Dataset wrapper."""

import numpy as np
import pytest

from repro.dataset import Dataset, as_dataset
from repro.errors import InvalidDatasetError


class TestConstruction:
    def test_basic_properties(self):
        ds = Dataset(np.ones((5, 3)), name="x", kind="UI")
        assert ds.cardinality == 5
        assert ds.dimensionality == 3
        assert len(ds) == 5
        assert ds.kind == "UI"

    def test_values_are_copied_and_read_only(self):
        raw = np.ones((2, 2))
        ds = Dataset(raw)
        raw[0, 0] = 99.0
        assert ds.values[0, 0] == 1.0
        with pytest.raises(ValueError):
            ds.values[0, 0] = 5.0

    def test_rejects_1d(self):
        with pytest.raises(InvalidDatasetError):
            Dataset(np.ones(4))

    def test_rejects_empty(self):
        with pytest.raises(InvalidDatasetError):
            Dataset(np.empty((0, 3)))
        with pytest.raises(InvalidDatasetError):
            Dataset(np.empty((3, 0)))

    def test_rejects_nan_and_inf(self):
        bad = np.ones((2, 2))
        bad[0, 0] = np.nan
        with pytest.raises(InvalidDatasetError):
            Dataset(bad)
        bad[0, 0] = np.inf
        with pytest.raises(InvalidDatasetError):
            Dataset(bad)

    def test_coerces_lists(self):
        ds = Dataset([[1, 2], [3, 4]])
        assert ds.values.dtype == np.float64


class TestAccessors:
    def test_point(self):
        ds = Dataset([[1.0, 2.0], [3.0, 4.0]])
        assert list(ds.point(1)) == [3.0, 4.0]

    def test_subset_rebases_ids(self):
        ds = Dataset(np.arange(12, dtype=float).reshape(6, 2), name="base")
        sub = ds.subset([5, 0])
        assert sub.cardinality == 2
        assert list(sub.point(0)) == [10.0, 11.0]
        assert "base" in sub.name

    def test_minimizing_flips_columns_monotonically(self):
        ds = Dataset([[1.0, 10.0], [2.0, 30.0]])
        flipped = ds.minimizing([1])
        # column 1 flipped: larger original value -> smaller flipped value
        assert flipped.values[1, 1] < flipped.values[0, 1]
        # column 0 untouched
        assert list(flipped.values[:, 0]) == [1.0, 2.0]

    def test_minimizing_preserves_skyline(self):
        from tests.conftest import brute_skyline_ids

        rng = np.random.default_rng(3)
        values = rng.random((50, 3))
        ds = Dataset(values)
        flipped = ds.minimizing([2])
        manual = values.copy()
        manual[:, 2] = manual[:, 2].max() - manual[:, 2]
        assert brute_skyline_ids(flipped.values) == brute_skyline_ids(manual)

    def test_euclidean_scores(self):
        ds = Dataset([[3.0, 4.0], [0.0, 0.0]])
        assert list(ds.euclidean_scores()) == [5.0, 0.0]

    def test_describe_mentions_shape(self):
        ds = Dataset(np.ones((7, 2)), name="demo", kind="CO")
        text = ds.describe()
        assert "N=7" in text and "d=2" in text and "CO" in text


class TestFromColumns:
    def test_builds_named_dataset(self):
        ds = Dataset.from_columns({"a": [1.0, 2.0], "b": [3.0, 4.0]})
        assert ds.columns == ("a", "b")
        assert ds.values.shape == (2, 2)
        assert list(ds.values[:, 1]) == [3.0, 4.0]

    def test_column_order_preserved(self):
        ds = Dataset.from_columns({"z": [1.0], "a": [2.0]})
        assert ds.columns == ("z", "a")

    def test_rejects_empty(self):
        with pytest.raises(InvalidDatasetError):
            Dataset.from_columns({})

    def test_rejects_ragged_columns(self):
        with pytest.raises(InvalidDatasetError):
            Dataset.from_columns({"a": [1.0, 2.0], "b": [3.0]})

    def test_rejects_2d_columns(self):
        with pytest.raises(InvalidDatasetError):
            Dataset.from_columns({"a": np.ones((2, 2))})

    def test_accepts_numpy_columns(self):
        ds = Dataset.from_columns({"a": np.arange(3.0), "b": np.ones(3)})
        assert ds.cardinality == 3


class TestAsDataset:
    def test_passthrough(self):
        ds = Dataset(np.ones((2, 2)))
        assert as_dataset(ds) is ds

    def test_coercion(self):
        ds = as_dataset([[1.0, 2.0]])
        assert isinstance(ds, Dataset)
        assert ds.cardinality == 1
