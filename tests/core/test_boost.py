"""Unit tests for SubsetBoost: the merge + subset-index wrapper."""

import numpy as np
import pytest

import repro
from repro.algorithms.bnl import BNL
from repro.algorithms.salsa import SaLSa
from repro.algorithms.sdi import SDI
from repro.algorithms.sfs import SFS
from repro.core.boost import SubsetBoost
from repro.data import generate
from repro.dataset import Dataset
from repro.stats.counters import DominanceCounter
from tests.conftest import brute_skyline_ids


class TestConstruction:
    def test_name_suffix(self):
        assert SubsetBoost(SFS()).name == "sfs-subset"
        assert SubsetBoost(SDI()).name == "sdi-subset"

    def test_rejects_non_boostable_host(self):
        with pytest.raises(TypeError):
            SubsetBoost(BNL())

    def test_rejects_unknown_container(self):
        with pytest.raises(ValueError):
            SubsetBoost(SFS(), container="tree")


class TestCorrectness:
    @pytest.mark.parametrize("host_cls", [SFS, SaLSa, SDI])
    @pytest.mark.parametrize("kind", ["AC", "CO", "UI"])
    def test_boosted_equals_oracle(self, host_cls, kind):
        dataset = generate(kind, n=250, d=5, seed=17)
        result = SubsetBoost(host_cls()).compute(dataset)
        assert list(result.indices) == brute_skyline_ids(dataset.values)

    @pytest.mark.parametrize("sigma", [2, 3, 4])
    def test_every_sigma_is_correct(self, sigma, ui_small):
        result = SubsetBoost(SFS(), sigma=sigma).compute(ui_small)
        assert list(result.indices) == brute_skyline_ids(ui_small.values)

    def test_sigma_out_of_range_rejected(self, ui_small):
        from repro.errors import InvalidParameterError

        with pytest.raises(InvalidParameterError):
            SubsetBoost(SFS(), sigma=99).compute(ui_small)

    def test_d1_falls_back_to_plain_host(self):
        values = np.array([[3.0], [1.0], [2.0], [1.0]])
        result = SubsetBoost(SFS()).compute(Dataset(values))
        assert list(result.indices) == [1, 3]

    def test_exhausted_merge_short_circuits(self):
        # Totally ordered data: merge prunes everything with one pivot.
        values = np.array([[float(i)] * 3 for i in range(30)])
        counter = DominanceCounter()
        result = SubsetBoost(SFS(), sigma=2).compute(Dataset(values), counter=counter)
        assert list(result.indices) == [0]

    def test_duplicates_preserved(self, duplicate_heavy):
        result = SubsetBoost(SDI()).compute(duplicate_heavy)
        assert list(result.indices) == brute_skyline_ids(duplicate_heavy.values)

    def test_list_container_ablation_same_skyline(self, ui_small):
        subset = SubsetBoost(SDI(), container="subset").compute(ui_small)
        plain = SubsetBoost(SDI(), container="list").compute(ui_small)
        assert np.array_equal(subset.indices, plain.indices)

    def test_subset_container_never_needs_more_tests(self, ui_medium):
        c_subset = DominanceCounter()
        c_list = DominanceCounter()
        SubsetBoost(SFS(), sigma=3, container="subset").compute(
            ui_medium, counter=c_subset
        )
        SubsetBoost(SFS(), sigma=3, container="list").compute(ui_medium, counter=c_list)
        assert c_subset.tests <= c_list.tests

    @pytest.mark.parametrize("strategy", ["euclidean", "sum", "maxmin"])
    def test_pivot_strategies_all_correct(self, strategy, ui_small):
        result = SubsetBoost(SDI(), pivot_strategy=strategy).compute(ui_small)
        assert list(result.indices) == brute_skyline_ids(ui_small.values)


class TestEffectiveness:
    def test_boost_reduces_tests_on_ui(self, ui_medium):
        plain = DominanceCounter()
        boosted = DominanceCounter()
        SFS().compute(ui_medium, counter=plain)
        SubsetBoost(SFS()).compute(ui_medium, counter=boosted)
        assert boosted.tests < plain.tests

    def test_index_queries_recorded(self, ui_small):
        counter = DominanceCounter()
        SubsetBoost(SFS()).compute(ui_small, counter=counter)
        assert counter.index_queries > 0
        # Memoized queries are answered from the cache without touching the
        # tree, so only cache misses traverse nodes (at least the root each).
        assert counter.index_cache_hits + counter.index_cache_misses == (
            counter.index_queries
        )
        assert counter.index_nodes_visited >= counter.index_cache_misses > 0

    def test_unmemoized_queries_visit_nodes(self, ui_small):
        counter = DominanceCounter()
        SubsetBoost(SFS(), memoize=False).compute(ui_small, counter=counter)
        assert counter.index_queries > 0
        assert counter.index_cache_hits == counter.index_cache_misses == 0
        assert counter.index_nodes_visited >= counter.index_queries
