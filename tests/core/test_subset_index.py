"""Unit and property tests for the subset-query skyline index (Algs. 2-4)."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.subset_index import SkylineIndex
from repro.errors import DimensionMismatchError, InvalidParameterError
from repro.stats.counters import DominanceCounter
from repro.structures import bitset


def brute_query(stored: dict[int, int], subspace: int) -> set[int]:
    """Reference: ids whose stored subspace is a superset of ``subspace``."""
    return {pid for pid, mask in stored.items() if subspace & ~mask == 0}


class TestPutQuery:
    def test_paper_example(self):
        """The Figure 3 subspace family, with the paper's query {1,3,5}.

        The figure stores *reversed* subspaces; here we store points whose
        reversed subspaces are the figure's sets in an 8-dimensional space
        (paper dims 1-8 -> 0-based 0-7).
        """
        d = 8
        figure_reversed = [
            {1, 2},
            {1, 3, 5, 7},
            {1, 5},
            {1, 7},
            {3, 5},
            {3, 7},
            {5, 7},
        ]
        idx = SkylineIndex(d)
        stored = {}
        for pid, reversed_dims in enumerate(figure_reversed):
            mask = bitset.complement(bitset.from_dims(reversed_dims), d)
            idx.put(pid, mask)
            stored[pid] = mask
        query_reversed = {1, 3, 5}
        query_mask = bitset.complement(bitset.from_dims(query_reversed), d)
        got = set(idx.query(query_mask))
        # Stored reversed sets that are subsets of {1,3,5}: {1,5} and {3,5}.
        assert got == {2, 4}
        assert got == brute_query(stored, query_mask)

    def test_root_storage_for_full_subspace(self):
        idx = SkylineIndex(3)
        idx.put(7, 0b111)  # reversed = empty -> root
        assert idx.query(0b001) == [7]
        assert idx.query(0b111) == [7]

    def test_query_excludes_non_supersets(self):
        idx = SkylineIndex(4)
        idx.put(1, 0b0011)
        assert idx.query(0b0100) == []

    def test_multiple_points_same_subspace(self):
        idx = SkylineIndex(4)
        idx.put(1, 0b0011)
        idx.put(2, 0b0011)
        assert sorted(idx.query(0b0011)) == [1, 2]
        assert len(idx) == 2

    def test_len_tracks_puts(self):
        idx = SkylineIndex(5)
        for pid in range(10):
            idx.put(pid, 0b00001 << (pid % 4))
        assert len(idx) == 10

    def test_counter_records_node_visits(self):
        counter = DominanceCounter()
        idx = SkylineIndex(4)
        idx.put(0, 0b0001)
        idx.query(0b0001, counter)
        assert counter.index_queries == 1
        assert counter.index_nodes_visited >= 1

    def test_dimensionality_validation(self):
        with pytest.raises(InvalidParameterError):
            SkylineIndex(0)

    def test_mask_outside_space_rejected(self):
        idx = SkylineIndex(3)
        with pytest.raises(DimensionMismatchError):
            idx.put(0, 0b1000)
        with pytest.raises(DimensionMismatchError):
            idx.query(0b1000)

    def test_subspaces_diagnostic(self):
        idx = SkylineIndex(3)
        idx.put(0, 0b011)
        idx.put(1, 0b011)
        idx.put(2, 0b101)
        mapping = idx.subspaces()
        assert sorted(mapping[0b011]) == [0, 1]
        assert mapping[0b101] == [2]

    def test_clear(self):
        idx = SkylineIndex(3)
        idx.put(0, 0b001)
        idx.clear()
        assert len(idx) == 0
        assert idx.query(0b001) == []

    def test_node_count_counts_paths(self):
        idx = SkylineIndex(4)
        assert idx.node_count() == 1  # root only
        idx.put(0, 0b0111)  # reversed {3}: one node
        assert idx.node_count() == 2
        idx.put(1, 0b0011)  # reversed {2, 3}: adds a chain of two
        assert idx.node_count() == 4


class TestEdgeCases:
    def test_query_on_empty_index(self):
        idx = SkylineIndex(4)
        assert idx.query(0b0000) == []
        assert idx.query(0b1010) == []
        assert idx.query(0b1111) == []

    def test_empty_subspace_mask(self):
        """Mask 0 (no dominating dimensions) sits at the deepest path and
        is returned only for the empty query (every mask ⊇ ∅)."""
        idx = SkylineIndex(3)
        idx.put(0, 0b000)
        idx.put(1, 0b101)
        assert sorted(idx.query(0b000)) == [0, 1]
        assert idx.query(0b101) == [1]
        assert idx.query(0b111) == []

    def test_full_dimension_mask_matches_every_query(self):
        """Mask 2^d - 1 reverses to ∅, lives at the root, supersets all."""
        d = 4
        full = (1 << d) - 1
        idx = SkylineIndex(d)
        idx.put(0, full)
        for query in range(1 << d):
            assert idx.query(query) == [0]

    def test_duplicate_put_same_reversed_subspace_reuses_path(self):
        """A second put on an existing reversed-subspace chain adds no
        nodes; both entries are stored and queryable."""
        idx = SkylineIndex(4)
        idx.put(1, 0b0011)
        nodes_before = idx.node_count()
        idx.put(2, 0b0011)
        assert idx.node_count() == nodes_before
        assert len(idx) == 2
        assert sorted(idx.query(0b0011)) == [1, 2]


class TestOccupancy:
    def test_empty_index(self):
        stats = SkylineIndex(4).occupancy()
        assert stats == {"nodes": 0.0, "occupied": 0.0, "max": 0.0, "mean": 0.0}

    def test_clumped_points(self):
        idx = SkylineIndex(4)
        for pid in range(10):
            idx.put(pid, 0b0011)
        stats = idx.occupancy()
        assert stats["occupied"] == 1.0
        assert stats["max"] == 10.0
        assert stats["mean"] == 10.0

    def test_spread_points(self):
        idx = SkylineIndex(4)
        for pid, mask in enumerate((0b0001, 0b0010, 0b0100, 0b1000)):
            idx.put(pid, mask)
        stats = idx.occupancy()
        assert stats["occupied"] == 4.0
        assert stats["max"] == 1.0

    def test_duplicate_heavy_data_clumps_the_index(self, duplicate_heavy):
        """The §6.3 WEATHER effect: duplicates concentrate node occupancy."""
        import repro
        from repro.core.container import SubsetContainer
        from repro.core.merge import merge as run_merge

        merged = run_merge(duplicate_heavy, sigma=2)
        container = SubsetContainer(duplicate_heavy.values, 4)
        for point_id, mask in zip(merged.remaining_ids, merged.masks):
            container.add(int(point_id), int(mask))
        stats = container.index.occupancy()
        assert stats["max"] > 1.0  # many points share one subspace node


class TestRemove:
    def test_remove_round_trip(self):
        idx = SkylineIndex(4)
        idx.put(5, 0b0011)
        idx.remove(5, 0b0011)
        assert len(idx) == 0
        assert idx.query(0b0011) == []

    def test_remove_missing_point(self):
        idx = SkylineIndex(4)
        idx.put(5, 0b0011)
        with pytest.raises(KeyError):
            idx.remove(6, 0b0011)

    def test_remove_missing_path(self):
        idx = SkylineIndex(4)
        with pytest.raises(KeyError):
            idx.remove(5, 0b0011)

    def test_remove_keeps_siblings(self):
        idx = SkylineIndex(4)
        idx.put(1, 0b0011)
        idx.put(2, 0b0011)
        idx.remove(1, 0b0011)
        assert idx.query(0b0011) == [2]


class TestExhaustiveSmallSpace:
    def test_all_subspace_pairs_d4(self):
        """Exhaustive check of the superset semantics over all of 2^4."""
        d = 4
        idx = SkylineIndex(d)
        stored = {}
        for pid, mask in enumerate(range(1, 1 << d)):
            idx.put(pid, mask)
            stored[pid] = mask
        for query in range(1, 1 << d):
            assert set(idx.query(query)) == brute_query(stored, query)


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.integers(0, (1 << 6) - 1), max_size=40),
    st.integers(0, (1 << 6) - 1),
)
def test_query_matches_brute_force(masks, query):
    idx = SkylineIndex(6)
    stored = {}
    for pid, mask in enumerate(masks):
        idx.put(pid, mask)
        stored[pid] = mask
    assert set(idx.query(query)) == brute_query(stored, query)


_point = st.lists(st.integers(0, 4), min_size=3, max_size=3).map(tuple)


@settings(max_examples=80, deadline=None)
@given(
    pivots=st.lists(_point, min_size=1, max_size=5),
    q1=_point,
    q2=_point,
)
def test_lemma_4_2_incomparable_masks_imply_no_dominance(pivots, q1, q2):
    """Lemma 4.2: non-nesting maximum dominating subspaces ⇒ incomparable."""
    import numpy as np

    from repro.core.subspace import implies_incomparable, maximum_dominating_subspace
    from repro.dominance import dominates

    pivot_rows = [np.array(p, dtype=float) for p in pivots]
    a, b = np.array(q1, dtype=float), np.array(q2, dtype=float)
    mask_a = maximum_dominating_subspace(a, pivot_rows)
    mask_b = maximum_dominating_subspace(b, pivot_rows)
    if implies_incomparable(mask_a, mask_b):
        assert not dominates(a, b)
        assert not dominates(b, a)


@settings(max_examples=80, deadline=None)
@given(
    pivots=st.lists(_point, min_size=1, max_size=5),
    q1=_point,
    q2=_point,
)
def test_lemma_4_3_dominance_implies_may_dominate(pivots, q1, q2):
    """Lemma 4.3: p < q forces D_{p<S} ⊇ D_{q<S}, i.e. may_dominate."""
    import numpy as np

    from repro.core.subspace import maximum_dominating_subspace, may_dominate
    from repro.dominance import dominates

    pivot_rows = [np.array(p, dtype=float) for p in pivots]
    a, b = np.array(q1, dtype=float), np.array(q2, dtype=float)
    if dominates(a, b):
        mask_a = maximum_dominating_subspace(a, pivot_rows)
        mask_b = maximum_dominating_subspace(b, pivot_rows)
        assert may_dominate(mask_a, mask_b)


@settings(max_examples=60, deadline=None)
@given(
    masks=st.lists(st.integers(0, (1 << 5) - 1), max_size=20),
    query=st.integers(0, (1 << 5) - 1),
)
def test_query_equals_may_dominate_filter(masks, query):
    """Lemma 5.1 bridge: the index returns exactly the stored points whose
    subspace passes :func:`may_dominate` against the testing point's."""
    from repro.core.subspace import may_dominate

    idx = SkylineIndex(5)
    stored = {}
    for pid, mask in enumerate(masks):
        idx.put(pid, mask)
        stored[pid] = mask
    expected = {pid for pid, mask in stored.items() if may_dominate(mask, query)}
    assert set(idx.query(query)) == expected


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 127), st.booleans()), max_size=30))
def test_interleaved_put_remove(ops):
    """put/remove interleavings keep query results exact."""
    idx = SkylineIndex(7)
    live: dict[int, int] = {}
    for pid, (mask, is_remove) in enumerate(ops):
        if is_remove and live:
            victim = next(iter(live))
            idx.remove(victim, live.pop(victim))
        else:
            idx.put(pid, mask)
            live[pid] = mask
    for query in (0, 0b1, 0b1010101, 0b1111111):
        assert set(idx.query(query)) == brute_query(live, query)
