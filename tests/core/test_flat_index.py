"""FlatSubsetIndex: units, compaction edges, and the flat-vs-map bridge."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.boost import run_boosted_scan
from repro.core.container import SubsetContainer
from repro.core.flat_index import _COMPACT_MIN, FlatSubsetIndex
from repro.core.subset_index import SkylineIndex
from repro.data import generate
from repro.errors import DimensionMismatchError, InvalidParameterError
from repro.algorithms.salsa import SaLSa
from repro.algorithms.sdi import SDI
from repro.algorithms.sfs import SFS
from repro.stats.counters import DominanceCounter
from repro.structures import bitset


def brute_query(stored: list[tuple[int, int]], subspace: int) -> list[int]:
    """Reference: ids whose mask ⊇ ``subspace``, in insertion order."""
    return [pid for pid, mask in stored if subspace & ~mask == 0]


class TestPutQuery:
    def test_paper_example(self):
        """Figure 3's subspace family answered by the flat filter."""
        d = 8
        figure_reversed = [
            {1, 2},
            {1, 3, 5, 7},
            {1, 5},
            {1, 7},
            {3, 5},
            {3, 7},
            {5, 7},
        ]
        idx = FlatSubsetIndex(d)
        for pid, reversed_dims in enumerate(figure_reversed):
            idx.put(pid, bitset.complement(bitset.from_dims(reversed_dims), d))
        query_mask = bitset.complement(bitset.from_dims({1, 3, 5}), d)
        assert set(idx.query(query_mask)) == {2, 4}

    def test_results_in_insertion_order(self):
        idx = FlatSubsetIndex(d=4)
        for pid, mask in [(9, 0b1111), (2, 0b0011), (7, 0b1011), (1, 0b0011)]:
            idx.put(pid, mask)
        assert idx.query(0b0011) == [9, 2, 7, 1]
        assert idx.query(0b1011) == [9, 7]

    def test_empty_index_queries_clean(self):
        idx = FlatSubsetIndex(d=3)
        counter = DominanceCounter()
        assert idx.query(0b101, counter) == []
        assert idx.query_array(0b101).tolist() == []
        assert len(idx) == 0
        assert idx.node_count() == 0

    def test_single_mask_group(self):
        idx = FlatSubsetIndex(d=3)
        for pid in range(5):
            idx.put(pid, 0b110)
        assert idx.query(0b010) == list(range(5))
        assert idx.query(0b001) == []
        assert idx.group_count() == 1

    def test_duplicate_masks_keep_all_points(self):
        idx = FlatSubsetIndex(d=4)
        stored = [(pid, 0b0110 if pid % 2 else 0b1111) for pid in range(12)]
        for pid, mask in stored:
            idx.put(pid, mask)
        for q in (0b0110, 0b0010, 0b1111, 0b0001):
            assert idx.query(q) == brute_query(stored, q)
        assert idx.group_count() == 2

    def test_invalid_dimensionality_rejected(self):
        with pytest.raises(InvalidParameterError):
            FlatSubsetIndex(d=0)

    def test_out_of_range_mask_rejected(self):
        idx = FlatSubsetIndex(d=3)
        with pytest.raises(DimensionMismatchError):
            idx.put(0, 0b1000)
        with pytest.raises(DimensionMismatchError):
            idx.query(0b1000)

    def test_candidates_requires_values(self):
        with pytest.raises(InvalidParameterError):
            FlatSubsetIndex(d=3).candidates(0b001)

    def test_candidates_returns_gathered_rows(self):
        values = np.arange(12.0).reshape(4, 3)
        idx = FlatSubsetIndex(d=3, values=values)
        idx.put(2, 0b111)
        idx.put(0, 0b011)
        ids, rows = idx.candidates(0b011)
        assert ids.tolist() == [2, 0]
        assert np.array_equal(rows, values[[2, 0]])
        # Repeated probe serves the same entry, repaired in place.
        idx.put(3, 0b111)
        ids, rows = idx.candidates(0b011)
        assert ids.tolist() == [2, 0, 3]
        assert np.array_equal(rows, values[[2, 0, 3]])


class TestCompaction:
    def test_tail_folds_after_threshold(self):
        idx = FlatSubsetIndex(d=6)
        stored = [(pid, (pid % 7) + 1) for pid in range(_COMPACT_MIN * 3)]
        for pid, mask in stored:
            idx.put(pid, mask)
        # At least one compaction must have happened for this volume.
        assert idx._tail_n < len(stored)
        for q in (0b000001, 0b000011, 0b000111):
            assert idx.query(q) == brute_query(stored, q)

    def test_query_consistent_across_compaction_boundary(self):
        idx = FlatSubsetIndex(d=4)
        stored = []
        for pid in range(2 * _COMPACT_MIN + 5):
            mask = 0b1111 if pid % 3 else 0b0101
            idx.put(pid, mask)
            stored.append((pid, mask))
            assert idx.query(0b0101) == brute_query(stored, 0b0101)

    def test_remove_and_clear(self):
        idx = FlatSubsetIndex(d=3)
        idx.put(1, 0b011)
        idx.put(2, 0b011)
        epoch = idx.epoch
        idx.remove(1, 0b011)
        assert idx.query(0b001) == [2]
        assert idx.epoch == epoch + 1
        with pytest.raises(KeyError):
            idx.remove(1, 0b011)
        with pytest.raises(KeyError):
            idx.remove(2, 0b111)
        idx.clear()
        assert len(idx) == 0
        assert idx.query(0b001) == []

    def test_subspaces_and_occupancy_views(self):
        idx = FlatSubsetIndex(d=3)
        idx.put(0, 0b011)
        idx.put(1, 0b011)
        idx.put(2, 0b111)
        assert idx.subspaces() == {0b011: [0, 1], 0b111: [2]}
        occ = idx.occupancy()
        assert occ["nodes"] == 2.0 and occ["max"] == 2.0


@st.composite
def put_query_sequences(draw):
    d = draw(st.integers(min_value=2, max_value=8))
    full = (1 << d) - 1
    puts = draw(
        st.lists(st.integers(min_value=0, max_value=full), min_size=0, max_size=60)
    )
    queries = draw(
        st.lists(st.integers(min_value=0, max_value=full), min_size=1, max_size=20)
    )
    return d, puts, queries


class TestFlatVsMapBridge:
    @given(put_query_sequences())
    @settings(max_examples=60, deadline=None)
    def test_interleaved_puts_and_queries_match(self, seq):
        """Same put/query stream → same ids and same cache accounting."""
        d, puts, queries = seq
        flat, tree = FlatSubsetIndex(d), SkylineIndex(d)
        flat_counter, tree_counter = DominanceCounter(), DominanceCounter()
        for pid, mask in enumerate(puts):
            flat.put(pid, mask)
            tree.put(pid, mask)
        for mask in queries:
            assert flat.query(mask, flat_counter) == tree.query(mask, tree_counter)
        flat_stats, tree_stats = flat.cache_stats(), tree.cache_stats()
        assert flat_stats["hits"] == tree_stats["hits"]
        assert flat_stats["misses"] == tree_stats["misses"]
        assert flat_counter.index_cache_hits == tree_counter.index_cache_hits
        assert flat_counter.index_cache_misses == tree_counter.index_cache_misses

    @pytest.mark.parametrize("host_factory", [SFS, SaLSa, SDI])
    @pytest.mark.parametrize("kind", ["UI", "CO", "AC"])
    def test_boosted_scan_bit_identical(self, host_factory, kind):
        """Full boosted scans charge identical tests on either backend."""
        dataset = generate(kind, n=600, d=5, seed=11)
        results = {}
        for backend in ("map", "flat"):
            counter = DominanceCounter()
            skyline = run_boosted_scan(
                dataset, host_factory(), counter, index_backend=backend
            )
            results[backend] = (skyline, counter)
        map_sky, map_counter = results["map"]
        flat_sky, flat_counter = results["flat"]
        assert map_sky == flat_sky
        assert map_counter.tests == flat_counter.tests
        assert map_counter.index_cache_hits == flat_counter.index_cache_hits
        assert map_counter.index_cache_misses == flat_counter.index_cache_misses

    @given(
        st.integers(min_value=0, max_value=2**32 - 1),
        st.integers(min_value=2, max_value=6),
        st.sampled_from(["UI", "CO", "AC"]),
    )
    @settings(max_examples=15, deadline=None)
    def test_random_datasets_and_sigmas_match(self, seed, sigma_d, kind):
        d = 6
        sigma = min(sigma_d, d)
        dataset = generate(kind, n=200, d=d, seed=seed % 1000)
        per_backend = {}
        for backend in ("map", "flat"):
            counter = DominanceCounter()
            skyline = run_boosted_scan(
                dataset, SFS(), counter, sigma=sigma, index_backend=backend
            )
            per_backend[backend] = (skyline, counter.tests)
        assert per_backend["map"] == per_backend["flat"]


class TestContainerBackendSelection:
    def test_invalid_backend_rejected(self):
        values = np.zeros((2, 3))
        with pytest.raises(InvalidParameterError):
            SubsetContainer(values, 3, backend="btree")

    def test_backend_property_reports_choice(self):
        values = np.zeros((2, 3))
        assert SubsetContainer(values, 3).backend == "map"
        flat = SubsetContainer(values, 3, backend="flat")
        assert flat.backend == "flat"
        assert isinstance(flat.index, FlatSubsetIndex)
