"""Unit tests for the stability measure and threshold validation."""

import numpy as np
import pytest

from repro.core.stability import (
    StabilityTracker,
    default_threshold,
    subspace_size_histogram,
    validate_threshold,
)
from repro.errors import InvalidParameterError


class TestHistogram:
    def test_counts_by_size(self):
        hist = subspace_size_histogram(np.array([1, 1, 2, 4]), d=4)
        assert list(hist) == [0, 2, 1, 0, 1]

    def test_zero_bucket(self):
        hist = subspace_size_histogram(np.array([0, 0]), d=3)
        assert hist[0] == 2

    def test_empty_sizes(self):
        hist = subspace_size_histogram(np.array([], dtype=int), d=2)
        assert list(hist) == [0, 0, 0]

    def test_rejects_bad_dimensionality(self):
        with pytest.raises(InvalidParameterError):
            subspace_size_histogram(np.array([1]), d=0)


class TestStabilityTracker:
    def test_first_update_is_zero(self):
        tracker = StabilityTracker(d=4)
        assert tracker.update(np.array([1, 2, 3])) == 0

    def test_identical_histograms_are_fully_stable(self):
        tracker = StabilityTracker(d=4)
        tracker.update(np.array([1, 2, 2]))
        assert tracker.update(np.array([2, 2, 1])) == 4

    def test_partial_stability(self):
        tracker = StabilityTracker(d=3)
        tracker.update(np.array([1, 1, 2]))  # hist(1..3) = [2, 1, 0]
        # now sizes [1, 2, 2]: hist = [1, 2, 0]; only bucket 3 unchanged
        assert tracker.update(np.array([1, 2, 2])) == 1

    def test_zero_bucket_excluded(self):
        tracker = StabilityTracker(d=2)
        tracker.update(np.array([0, 1]))
        # bucket 0 changes (2 zeros now) but is not counted either way
        assert tracker.update(np.array([0, 0, 1])) == 2

    def test_histogram_property(self):
        tracker = StabilityTracker(d=2)
        assert tracker.histogram is None
        tracker.update(np.array([1]))
        assert list(tracker.histogram) == [0, 1, 0]

    def test_rejects_bad_dimensionality(self):
        with pytest.raises(InvalidParameterError):
            StabilityTracker(0)


class TestThresholds:
    def test_validate_accepts_paper_range(self):
        for sigma in range(2, 9):
            assert validate_threshold(sigma, d=8) == sigma

    def test_validate_rejects_one_and_above_d(self):
        with pytest.raises(InvalidParameterError):
            validate_threshold(1, d=8)
        with pytest.raises(InvalidParameterError):
            validate_threshold(9, d=8)
        with pytest.raises(InvalidParameterError):
            validate_threshold("3", d=8)  # type: ignore[arg-type]

    def test_default_is_rounded_d_over_3(self):
        assert default_threshold(8) == 3  # the paper's 8-D setting
        assert default_threshold(12) == 4
        assert default_threshold(24) == 8

    def test_default_clamped_to_valid_range(self):
        assert default_threshold(2) == 2
        assert default_threshold(3) == 2
        with pytest.raises(InvalidParameterError):
            default_threshold(1)
