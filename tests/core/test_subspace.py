"""The paper's lemmas (3.5, 3.6, 4.2, 4.3) as executable properties."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.subspace import (
    implies_incomparable,
    maximum_dominating_subspace,
    may_dominate,
)
from repro.dominance import dominates, dominating_subspace
from repro.stats.counters import DominanceCounter

unit_points = hnp.arrays(
    np.float64, (5,), elements=st.floats(0, 1, allow_nan=False, width=16)
)


class TestMaximumDominatingSubspace:
    def test_union_over_pivots(self):
        q = np.array([0.1, 0.9, 0.5])
        p1 = np.array([0.5, 0.5, 0.5])  # q beats p1 in dim 0
        p2 = np.array([0.1, 0.9, 0.9])  # q beats p2 in dim 2
        assert maximum_dominating_subspace(q, [p1, p2]) == 0b101

    def test_empty_pivot_set(self):
        assert maximum_dominating_subspace(np.array([1.0]), []) == 0

    def test_counter_charged_per_pivot(self):
        counter = DominanceCounter()
        q = np.zeros(3)
        maximum_dominating_subspace(q, [np.ones(3)] * 4, counter)
        assert counter.tests == 4


class TestMaskPredicates:
    def test_implies_incomparable_needs_non_nesting(self):
        assert implies_incomparable(0b011, 0b101)
        assert not implies_incomparable(0b001, 0b011)
        assert not implies_incomparable(0b011, 0b011)

    def test_may_dominate_is_superset_check(self):
        assert may_dominate(0b111, 0b101)
        assert may_dominate(0b101, 0b101)
        assert not may_dominate(0b001, 0b101)


@settings(max_examples=200, deadline=None)
@given(unit_points, unit_points, unit_points)
def test_lemma_3_5_and_3_6(q1, q2, p):
    """Non-nested dominating subspaces (w.r.t. any pivot) ⇒ incomparable."""
    m1 = dominating_subspace(q1, p)
    m2 = dominating_subspace(q2, p)
    if implies_incomparable(m1, m2):
        assert not dominates(q1, q2)
        assert not dominates(q2, q1)
    # Lemma 3.6 contrapositive: dominance implies mask superset.
    if dominates(q1, q2):
        assert may_dominate(m1, m2)


@settings(max_examples=200, deadline=None)
@given(
    unit_points,
    unit_points,
    st.lists(unit_points, min_size=1, max_size=4),
)
def test_lemma_4_2_and_4_3(q1, q2, pivots):
    """The multi-pivot generalisations over maximum dominating subspaces."""
    m1 = maximum_dominating_subspace(q1, pivots)
    m2 = maximum_dominating_subspace(q2, pivots)
    if implies_incomparable(m1, m2):
        assert not dominates(q1, q2)
        assert not dominates(q2, q1)
    if dominates(q1, q2):
        assert may_dominate(m1, m2)
