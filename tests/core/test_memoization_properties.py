"""Property tests: the memoized index is observationally identical to the
unmemoized one under arbitrary interleavings of put / query / remove.

This is the correctness contract of the result cache (generation/epoch
invalidation plus put-log repair): callers must not be able to tell the two
modes apart except through ``index_nodes_visited`` and the cache counters.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.subset_index import SkylineIndex
from repro.stats.counters import DominanceCounter

D = 4
FULL = (1 << D) - 1

# Interleaved op sequences.  Puts carry a non-empty subspace (as in a real
# boosted scan); removes carry an index into the currently stored points;
# repeated query masks exercise cache hits and log repair.
ops = st.lists(
    st.one_of(
        st.tuples(st.just("put"), st.integers(1, FULL)),
        st.tuples(st.just("query"), st.integers(0, FULL)),
        st.tuples(st.just("remove"), st.integers(0, 10**6)),
    ),
    min_size=1,
    max_size=80,
)


def _run_interleaved(op_list, check):
    """Drive a memoized and an unmemoized index through ``op_list``.

    ``check(memo, plain, memo_counter, plain_counter, mask)`` is invoked at
    every query op.
    """
    memo = SkylineIndex(D, memoize=True)
    plain = SkylineIndex(D, memoize=False)
    memo_counter = DominanceCounter()
    plain_counter = DominanceCounter()
    stored: list[tuple[int, int]] = []
    next_id = 0
    for kind, arg in op_list:
        if kind == "put":
            memo.put(next_id, arg)
            plain.put(next_id, arg)
            stored.append((next_id, arg))
            next_id += 1
        elif kind == "query":
            check(memo, plain, memo_counter, plain_counter, arg)
        elif stored:  # remove
            point_id, subspace = stored.pop(arg % len(stored))
            memo.remove(point_id, subspace)
            plain.remove(point_id, subspace)
    return memo, plain, memo_counter, plain_counter


@settings(max_examples=120, deadline=None)
@given(ops)
def test_memoized_query_results_identical(op_list):
    def check(memo, plain, memo_counter, plain_counter, mask):
        assert memo.query(mask, memo_counter) == plain.query(
            mask, plain_counter
        )

    memo, plain, memo_counter, plain_counter = _run_interleaved(op_list, check)
    assert len(memo) == len(plain)
    # Index traversal charges node visits, never dominance tests, and both
    # modes see the same query stream.
    assert memo_counter.tests == plain_counter.tests == 0
    assert memo_counter.index_queries == plain_counter.index_queries
    stats = memo.cache_stats()
    assert stats["hits"] + stats["misses"] == memo_counter.index_queries
    assert plain.cache_stats() == {
        "hits": 0,
        "misses": 0,
        "invalidations": 0,
        "entries": 0,
    }


@settings(max_examples=120, deadline=None)
@given(ops)
def test_query_array_matches_query(op_list):
    def check(memo, plain, memo_counter, plain_counter, mask):
        arr = memo.query_array(mask)
        assert arr.dtype == np.intp
        assert not arr.flags.writeable
        assert arr.tolist() == plain.query(mask)
        # The cached array and the list view stay coherent.
        assert arr.tolist() == memo.query(mask)

    _run_interleaved(op_list, check)


@settings(max_examples=60, deadline=None)
@given(ops)
def test_results_ordered_by_insertion_sequence(op_list):
    insertion_rank: dict[int, int] = {}

    def check(memo, plain, memo_counter, plain_counter, mask):
        for result in (memo.query(mask), plain.query(mask)):
            ranks = [insertion_rank[point_id] for point_id in result]
            assert ranks == sorted(ranks)

    memo = SkylineIndex(D, memoize=True)
    plain = SkylineIndex(D, memoize=False)
    stored: list[tuple[int, int]] = []
    next_id = 0
    for kind, arg in op_list:
        if kind == "put":
            memo.put(next_id, arg)
            plain.put(next_id, arg)
            stored.append((next_id, arg))
            insertion_rank[next_id] = next_id
            next_id += 1
        elif kind == "query":
            check(memo, plain, None, None, arg)
        elif stored:
            point_id, subspace = stored.pop(arg % len(stored))
            memo.remove(point_id, subspace)
            plain.remove(point_id, subspace)
