"""Unit tests for Algorithm 1 (Merge)."""

import numpy as np
import pytest

from repro.core.merge import PIVOT_STRATEGIES, merge
from repro.data import generate
from repro.dataset import Dataset
from repro.dominance import dominates, dominating_subspace
from repro.errors import InvalidParameterError
from repro.stats.counters import DominanceCounter
from tests.conftest import brute_skyline_ids


class TestMergeInvariants:
    @pytest.fixture(scope="class")
    def merged(self, request):
        dataset = generate("UI", n=400, d=5, seed=3)
        return dataset, merge(dataset, sigma=3)

    def test_pivots_are_skyline_points(self, merged):
        dataset, result = merged
        skyline = set(brute_skyline_ids(dataset.values))
        assert set(result.pivot_ids) <= skyline

    def test_duplicate_skyline_points_equal_some_pivot(self, merged):
        dataset, result = merged
        for dup in result.duplicate_skyline_ids:
            assert any(
                np.array_equal(dataset.values[dup], dataset.values[p])
                for p in result.pivot_ids
            )

    def test_remaining_points_not_dominated_by_pivots(self, merged):
        dataset, result = merged
        for pivot in result.pivot_ids:
            for q in result.remaining_ids:
                assert not dominates(dataset.values[pivot], dataset.values[q])

    def test_pruned_points_are_dominated_by_a_pivot(self, merged):
        dataset, result = merged
        kept = set(result.initial_skyline_ids) | set(int(i) for i in result.remaining_ids)
        pruned = set(range(dataset.cardinality)) - kept
        for q in pruned:
            assert any(
                dominates(dataset.values[p], dataset.values[q])
                for p in result.pivot_ids
            )

    def test_masks_are_exact_unions(self, merged):
        dataset, result = merged
        for q, mask in zip(result.remaining_ids, result.masks):
            expected = 0
            for pivot in result.pivot_ids:
                expected |= dominating_subspace(
                    dataset.values[q], dataset.values[pivot]
                )
            assert int(mask) == expected

    def test_masks_nonzero(self, merged):
        _, result = merged
        assert (result.masks != 0).all()

    def test_iterations_equal_pivot_count(self, merged):
        _, result = merged
        assert result.iterations == len(result.pivot_ids)


class TestMergeBehaviour:
    def test_sigma_validation(self):
        dataset = generate("UI", n=50, d=4, seed=0)
        with pytest.raises(InvalidParameterError):
            merge(dataset, sigma=1)
        with pytest.raises(InvalidParameterError):
            merge(dataset, sigma=5)

    def test_unknown_pivot_strategy(self):
        dataset = generate("UI", n=50, d=4, seed=0)
        with pytest.raises(InvalidParameterError):
            merge(dataset, sigma=2, pivot_strategy="nope")

    def test_counter_charges_one_test_per_survivor_per_pivot(self):
        dataset = generate("UI", n=100, d=4, seed=1)
        counter = DominanceCounter()
        result = merge(dataset, sigma=2, counter=counter)
        # At least one test per point per iteration is an upper bound only;
        # the exact value is the sum of survivors at each iteration.
        assert 0 < counter.tests <= result.iterations * dataset.cardinality

    def test_exhaustion_on_tiny_chain(self):
        # A totally ordered dataset: one pivot prunes everything.
        values = np.array([[float(i), float(i)] for i in range(10)])
        result = merge(Dataset(values), sigma=2)
        assert result.exhausted
        assert result.pivot_ids == [0]
        assert result.remaining_ids.size == 0

    def test_duplicates_of_pivot_enter_skyline(self):
        values = np.array([[0.0, 0.0], [0.0, 0.0], [1.0, 1.0], [0.5, 2.0]])
        result = merge(Dataset(values), sigma=2)
        assert 0 in result.pivot_ids
        assert 1 in result.duplicate_skyline_ids

    def test_mask_of_lookup(self):
        dataset = generate("UI", n=120, d=4, seed=2)
        result = merge(dataset, sigma=2)
        if result.remaining_ids.size:
            q = int(result.remaining_ids[0])
            assert result.mask_of(q) == int(result.masks[0])
        with pytest.raises(KeyError):
            result.mask_of(result.pivot_ids[0])

    def test_negative_data_pivot_is_still_skyline(self):
        rng = np.random.default_rng(4)
        values = rng.normal(0, 2, size=(200, 4))
        result = merge(Dataset(values), sigma=2)
        skyline = set(brute_skyline_ids(values))
        assert set(result.pivot_ids) <= skyline

    @pytest.mark.parametrize("strategy", PIVOT_STRATEGIES)
    def test_all_pivot_strategies_yield_skyline_pivots(self, strategy):
        dataset = generate("AC", n=250, d=4, seed=5)
        result = merge(dataset, sigma=2, pivot_strategy=strategy)
        skyline = set(brute_skyline_ids(dataset.values))
        assert set(result.pivot_ids) <= skyline

    def test_higher_sigma_never_fewer_pivots(self):
        dataset = generate("UI", n=400, d=6, seed=6)
        pivots = [
            len(merge(dataset, sigma=s).pivot_ids) for s in (2, 4, 6)
        ]
        assert pivots == sorted(pivots)

    def test_metadata_records_parameters(self):
        dataset = generate("UI", n=60, d=3, seed=7)
        result = merge(dataset, sigma=2, pivot_strategy="sum")
        assert result.metadata["sigma"] == 2
        assert result.metadata["pivot_strategy"] == "sum"
