"""Unit tests for the sample-based stability-threshold cost model."""

import pytest

from repro.algorithms.sdi import SDI
from repro.algorithms.sfs import SFS
from repro.core.autotune import tune_sigma
from repro.data import generate
from repro.errors import InvalidParameterError


class TestTuneSigma:
    def test_returns_valid_sigma(self):
        dataset = generate("UI", n=600, d=6, seed=0)
        choice = tune_sigma(dataset, SDI(), sample_size=300, seed=0)
        assert 2 <= choice.sigma <= 6
        assert set(choice.costs) == set(range(2, 7))

    def test_sample_smaller_than_dataset(self):
        dataset = generate("UI", n=600, d=4, seed=1)
        choice = tune_sigma(dataset, SFS(), sample_size=100, seed=1)
        assert choice.sample_size == 100

    def test_small_dataset_used_whole(self):
        dataset = generate("UI", n=50, d=4, seed=2)
        choice = tune_sigma(dataset, SFS(), sample_size=500, seed=2)
        assert choice.sample_size == 50

    def test_candidate_restriction(self):
        dataset = generate("UI", n=200, d=6, seed=3)
        choice = tune_sigma(dataset, SFS(), sample_size=100, candidates=[2, 4])
        assert set(choice.costs) == {2, 4}
        assert choice.sigma in (2, 4)

    def test_ranked_is_sorted_by_cost(self):
        dataset = generate("UI", n=200, d=5, seed=4)
        choice = tune_sigma(dataset, SFS(), sample_size=100)
        costs = [cost for _, cost in choice.ranked()]
        assert costs == sorted(costs)
        assert choice.ranked()[0][0] == choice.sigma

    def test_deterministic_given_seed(self):
        dataset = generate("UI", n=400, d=5, seed=5)
        a = tune_sigma(dataset, SFS(), sample_size=150, seed=9)
        b = tune_sigma(dataset, SFS(), sample_size=150, seed=9)
        assert a.sigma == b.sigma
        assert a.costs == b.costs

    def test_rejects_bad_parameters(self):
        dataset = generate("UI", n=100, d=4, seed=6)
        with pytest.raises(InvalidParameterError):
            tune_sigma(dataset, SFS(), sample_size=1)
        with pytest.raises(InvalidParameterError):
            tune_sigma(dataset, SFS(), candidates=[1])
        with pytest.raises(InvalidParameterError):
            tune_sigma(dataset, SFS(), candidates=[5])

    def test_rejects_d1(self):
        import numpy as np

        from repro.dataset import Dataset

        with pytest.raises(InvalidParameterError):
            tune_sigma(Dataset(np.ones((10, 1))), SFS())
