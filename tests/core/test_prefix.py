"""Unit tests for the shared-survivor prefix kernels."""

import numpy as np
import pytest

from repro.core.prefix import (
    block_bounds,
    monotone_order,
    prefix_filter,
    select_prefix,
)
from repro.data import generate
from repro.errors import InvalidParameterError
from repro.stats.counters import DominanceCounter
from tests.conftest import brute_skyline_ids


def dominates(p, q):
    """Strict dominance under minimisation (Definition 3.1)."""
    return bool(np.all(p <= q) and np.any(p < q))


@pytest.fixture(scope="module")
def values():
    return generate("UI", n=120, d=3, seed=7).values


class TestMonotoneOrder:
    def test_is_a_permutation(self, values):
        order = monotone_order(values)
        assert order.dtype == np.intp
        assert sorted(order.tolist()) == list(range(len(values)))

    def test_no_later_point_dominates_an_earlier_one(self, values):
        order = monotone_order(values)
        rows = values[order]
        for i in range(len(rows)):
            for j in range(i + 1, len(rows)):
                assert not dominates(rows[j], rows[i])

    def test_deterministic(self, values):
        assert np.array_equal(monotone_order(values), monotone_order(values))


class TestSelectPrefix:
    def test_points_are_global_skyline_members(self, values):
        order = monotone_order(values)
        prefix = select_prefix(values, order, 8, DominanceCounter())
        skyline = set(brute_skyline_ids(values))
        assert 0 < prefix.size <= 8
        assert set(prefix.tolist()) <= skyline

    def test_mutually_non_dominated(self, values):
        order = monotone_order(values)
        prefix = select_prefix(values, order, 12, DominanceCounter())
        rows = values[prefix]
        for i in range(len(rows)):
            for j in range(len(rows)):
                if i != j:
                    assert not dominates(rows[i], rows[j])

    def test_zero_size_is_empty_and_free(self, values):
        counter = DominanceCounter()
        prefix = select_prefix(values, monotone_order(values), 0, counter)
        assert prefix.size == 0
        assert counter.tests == 0

    def test_selection_charges_tests(self, values):
        counter = DominanceCounter()
        select_prefix(values, monotone_order(values), 8, counter)
        assert counter.tests > 0


class TestPrefixFilter:
    def test_matches_brute_force_dominance(self, values):
        order = monotone_order(values)
        prefix_ids = select_prefix(values, order, 8, DominanceCounter())
        prefix = values[prefix_ids]
        keep = prefix_filter(values, prefix, DominanceCounter())
        for i, row in enumerate(values):
            expected = not any(dominates(p, row) for p in prefix)
            assert keep[i] == expected

    def test_never_removes_a_skyline_point(self, values):
        order = monotone_order(values)
        prefix = values[select_prefix(values, order, 16, DominanceCounter())]
        keep = prefix_filter(values, prefix, DominanceCounter())
        assert all(keep[i] for i in brute_skyline_ids(values))

    def test_rows_equal_to_a_prefix_point_survive(self):
        prefix = np.array([[0.2, 0.3]])
        block = np.array([[0.2, 0.3], [0.2, 0.4], [0.5, 0.1]])
        keep = prefix_filter(block, prefix, DominanceCounter())
        assert keep.tolist() == [True, False, True]

    def test_charges_exact_early_exit_tests(self, values):
        order = monotone_order(values)
        prefix = values[select_prefix(values, order, 8, DominanceCounter())]
        counter = DominanceCounter()
        prefix_filter(values, prefix, counter)
        expected = 0
        for row in values:
            for position, p in enumerate(prefix):
                if dominates(p, row):
                    expected += position + 1
                    break
            else:
                expected += len(prefix)
        assert counter.tests == expected

    def test_empty_inputs(self, values):
        counter = DominanceCounter()
        assert prefix_filter(values, np.empty((0, 3)), counter).all()
        empty = prefix_filter(np.empty((0, 3)), values[:4], counter)
        assert empty.shape == (0,)
        assert counter.tests == 0


class TestBlockBounds:
    @pytest.mark.parametrize("n", [1, 7, 100, 1001])
    @pytest.mark.parametrize("workers", [1, 2, 5])
    @pytest.mark.parametrize("growth", [1.0, 1.5, 3.0])
    def test_covers_range_without_gaps(self, n, workers, growth):
        bounds = block_bounds(n, workers, growth)
        assert bounds[0][0] == 0
        assert bounds[-1][1] == n
        for (_, hi), (lo, _) in zip(bounds[:-1], bounds[1:]):
            assert hi == lo
        assert all(hi > lo for lo, hi in bounds)

    def test_even_split_matches_linspace(self):
        bounds = block_bounds(100, 4, 1.0)
        assert bounds == [(0, 25), (25, 50), (50, 75), (75, 100)]

    def test_growth_makes_later_blocks_larger(self):
        sizes = [hi - lo for lo, hi in block_bounds(10_000, 4, 1.5)]
        assert sizes == sorted(sizes)
        assert sizes[-1] > sizes[0]

    def test_empty_and_single(self):
        assert block_bounds(0, 4) == []
        assert block_bounds(50, 1) == [(0, 50)]

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            block_bounds(10, 0)
        with pytest.raises(InvalidParameterError):
            block_bounds(10, 2, growth=0.0)
