"""Unit tests for the skyline container abstraction."""

import numpy as np
import pytest

from repro.core.container import ListContainer, SubsetContainer
from repro.stats.counters import DominanceCounter


@pytest.fixture
def values():
    rng = np.random.default_rng(0)
    return rng.random((50, 4))


class TestListContainer:
    def test_empty(self, values):
        c = ListContainer(values)
        ids, block = c.candidates(0)
        assert len(c) == 0
        assert ids.shape == (0,)
        assert block.shape[0] == 0

    def test_candidates_ignore_mask(self, values):
        c = ListContainer(values)
        c.add(3, 0b0001)
        c.add(7, 0b1000)
        for mask in (0, 0b0001, 0b1111):
            ids, block = c.candidates(mask)
            assert list(ids) == [3, 7]
            assert np.array_equal(block, values[[3, 7]])

    def test_insertion_order_preserved(self, values):
        c = ListContainer(values)
        for pid in (9, 2, 5):
            c.add(pid, 0)
        ids, _ = c.candidates(0)
        assert list(ids) == [9, 2, 5]
        assert c.ids() == [9, 2, 5]

    def test_growth_beyond_initial_capacity(self, values):
        big = np.tile(values, (3, 1))
        c = ListContainer(big)
        for pid in range(130):
            c.add(pid, 0)
        ids, block = c.candidates(0)
        assert len(ids) == 130
        assert np.array_equal(block, big[:130])


class TestSubsetContainer:
    def test_candidates_filtered_by_superset(self, values):
        c = SubsetContainer(values, d=4)
        c.add(1, 0b0011)
        c.add(2, 0b1111)
        c.add(3, 0b0100)
        ids, block = c.candidates(0b0011)
        assert sorted(ids) == [1, 2]
        assert block.shape == (2, 4)

    def test_block_rows_match_ids(self, values):
        c = SubsetContainer(values, d=4)
        c.add(5, 0b0101)
        ids, block = c.candidates(0b0101)
        assert np.array_equal(block[0], values[5])

    def test_counter_wired_to_queries(self, values):
        counter = DominanceCounter()
        c = SubsetContainer(values, d=4, counter=counter)
        c.add(0, 0b0001)
        c.candidates(0b0001)
        assert counter.index_queries == 1

    def test_ids_and_len(self, values):
        c = SubsetContainer(values, d=4)
        c.add(1, 0b0001)
        c.add(2, 0b0010)
        assert len(c) == 2
        assert sorted(c.ids()) == [1, 2]

    def test_index_exposed(self, values):
        c = SubsetContainer(values, d=4)
        c.add(1, 0b0001)
        assert len(c.index) == 1
