"""Library-wide property tests: every algorithm on hypothesis-built data.

The per-algorithm files test crafted scenarios; this suite lets hypothesis
search the input space for disagreements between the whole algorithm
portfolio and the independent oracle, plus the structural invariants that
must hold for *any* dataset.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

import repro
from repro.core.merge import merge
from repro.core.stability import default_threshold
from repro.dataset import Dataset
from tests.conftest import brute_skyline_ids

# Small shapes keep the O(N^2) oracle and 18 algorithms affordable per case.
datasets = hnp.arrays(
    np.float64,
    st.tuples(st.integers(1, 50), st.integers(1, 5)),
    elements=st.floats(0, 1, allow_nan=False, width=16),
)

# Duplicate-prone grids: few distinct values per dimension.
grid_datasets = hnp.arrays(
    np.float64,
    st.tuples(st.integers(1, 40), st.integers(1, 4)),
    elements=st.sampled_from([0.0, 0.25, 0.5, 0.75, 1.0]),
)

FAST_ALGORITHMS = [
    "bnl",
    "sfs",
    "less",
    "salsa",
    "sdi",
    "zorder",
    "zsearch",
    "dnc",
    "index",
    "bbs",
    "bskytree-s",
    "bskytree-p",
    "sfs-subset",
    "salsa-subset",
    "sdi-subset",
]


@settings(max_examples=25, deadline=None)
@given(datasets)
def test_all_algorithms_agree_on_random_data(values):
    expected = brute_skyline_ids(values)
    for name in FAST_ALGORITHMS:
        got = repro.skyline(values, algorithm=name)
        assert list(got.indices) == expected, f"{name} disagrees with the oracle"


@settings(max_examples=25, deadline=None)
@given(grid_datasets)
def test_all_algorithms_agree_on_duplicate_grids(values):
    expected = brute_skyline_ids(values)
    for name in FAST_ALGORITHMS:
        got = repro.skyline(values, algorithm=name)
        assert list(got.indices) == expected, f"{name} disagrees with the oracle"


@settings(max_examples=40, deadline=None)
@given(datasets)
def test_skyline_members_are_mutually_incomparable(values):
    result = repro.skyline(values, algorithm="sfs")
    sky = values[result.indices]
    for i in range(sky.shape[0]):
        dominated = np.all(sky <= sky[i], axis=1) & np.any(sky < sky[i], axis=1)
        assert not dominated.any()


@settings(max_examples=40, deadline=None)
@given(datasets)
def test_every_non_skyline_point_has_a_skyline_dominator(values):
    result = repro.skyline(values, algorithm="sfs")
    sky = values[result.indices]
    members = set(int(i) for i in result.indices)
    for i in range(values.shape[0]):
        if i in members:
            continue
        dominated = np.all(sky <= values[i], axis=1) & np.any(sky < values[i], axis=1)
        assert dominated.any()


@settings(max_examples=30, deadline=None)
@given(
    hnp.arrays(
        np.float64,
        st.tuples(st.integers(2, 50), st.integers(2, 5)),
        elements=st.floats(0, 1, allow_nan=False, width=16),
    ),
    st.integers(2, 5),
)
def test_merge_partitions_the_dataset(values, sigma):
    d = values.shape[1]
    sigma = min(sigma, d)
    if sigma < 2:
        return
    result = merge(Dataset(values), sigma=sigma)
    skyline = set(result.initial_skyline_ids)
    remaining = set(int(i) for i in result.remaining_ids)
    pruned = set(range(values.shape[0])) - skyline - remaining
    # The three groups partition the dataset.
    assert not (skyline & remaining)
    assert len(skyline) + len(remaining) + len(pruned) == values.shape[0]
    # True skyline ⊆ merge skyline ∪ remaining (no skyline point is pruned).
    for true_id in brute_skyline_ids(values):
        assert true_id in skyline or true_id in remaining


@settings(max_examples=30, deadline=None)
@given(datasets)
def test_boost_is_exact_for_the_default_sigma(values):
    if values.shape[1] < 2:
        return
    got = repro.skyline(values, algorithm="sdi-subset")
    assert list(got.indices) == brute_skyline_ids(values)
    sigma = default_threshold(values.shape[1])
    assert 1 < sigma <= values.shape[1]


@settings(max_examples=30, deadline=None)
@given(datasets, st.floats(-5, 5), st.floats(0.1, 10))
def test_skyline_invariant_under_positive_affine_maps(values, shift, scale):
    """Shifting and positively scaling coordinates preserves the skyline."""
    base = repro.skyline(values, algorithm="sfs")
    transformed = repro.skyline(values * scale + shift, algorithm="sfs")
    assert np.array_equal(base.indices, transformed.indices)


@settings(max_examples=10, deadline=None)
@given(datasets)
def test_parallel_bridge_matches_serial(values):
    """Prune-aware block-parallel == serial, across backends and mergers.

    Covers both partitioning modes (sort-order with the prefix exchange
    and seeded merge, plus the legacy even split), both subset-index
    backends, and both boosted merge algorithms — every combination must
    reproduce the oracle skyline bit for bit.
    """
    from repro.extensions.parallel import get_pool, parallel_skyline

    expected = brute_skyline_ids(values)
    pool = get_pool(3)
    for partition in ("sorted", "even"):
        for backend, merge_algorithm in (
            ("map", "sfs-subset"),
            ("flat", "sdi-subset"),
        ):
            got = parallel_skyline(
                values,
                workers=3,
                algorithm="sdi-subset",
                merge_algorithm=merge_algorithm,
                index_backend=backend,
                partition=partition,
                pool=pool,
            )
            assert list(got) == expected, (
                f"parallel({partition}, {backend}, {merge_algorithm}) "
                "disagrees with serial"
            )
