"""Unit tests for the dominance kernels and their exact test accounting."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.dominance import (
    dominance_mask,
    dominates,
    dominating_subspace,
    dominating_subspaces,
    first_dominator,
    incomparable,
    weakly_dominates,
)
from repro.stats.counters import DominanceCounter

P = np.array([1.0, 2.0, 3.0])
Q = np.array([2.0, 2.0, 4.0])


class TestDominates:
    def test_strict_dominance(self):
        assert dominates(P, Q)

    def test_not_dominated_backwards(self):
        assert not dominates(Q, P)

    def test_equal_points_do_not_dominate(self):
        assert not dominates(P, P.copy())

    def test_weak_inequality_with_one_strict_dimension(self):
        assert dominates(np.array([1.0, 2.0]), np.array([1.0, 3.0]))

    def test_incomparable_points(self):
        a = np.array([1.0, 5.0])
        b = np.array([5.0, 1.0])
        assert not dominates(a, b)
        assert not dominates(b, a)
        assert incomparable(a, b)

    def test_counter_charged_once(self):
        counter = DominanceCounter()
        dominates(P, Q, counter)
        assert counter.tests == 1

    def test_weakly_dominates_accepts_equality(self):
        assert weakly_dominates(P, P.copy())
        assert weakly_dominates(P, Q)
        assert not weakly_dominates(Q, P)


class TestDominatingSubspace:
    def test_strict_win_dimensions_only(self):
        # q beats p in dim 0; ties and losses are excluded (Definition 3.4).
        q = np.array([0.0, 2.0, 9.0])
        assert dominating_subspace(q, P) == 0b001

    def test_empty_when_weakly_dominated(self):
        # Q is nowhere strictly better than P, so D_{Q<P} is empty.
        assert dominating_subspace(Q, P) == 0
        assert dominating_subspace(P, P.copy()) == 0

    def test_full_mask_means_domination_of_pivot(self):
        q = np.array([0.0, 0.0, 0.0])
        assert dominating_subspace(q, P) == 0b111

    def test_counter_charged(self):
        counter = DominanceCounter()
        dominating_subspace(P, Q, counter)
        assert counter.tests == 1

    def test_vectorised_matches_scalar(self):
        rng = np.random.default_rng(5)
        block = rng.random((40, 6))
        pivot = rng.random(6)
        vector = dominating_subspaces(block, pivot)
        for row, mask in zip(block, vector):
            assert dominating_subspace(row, pivot) == int(mask)

    def test_vectorised_counter_charged_per_row(self):
        counter = DominanceCounter()
        dominating_subspaces(np.zeros((7, 3)), np.ones(3), counter)
        assert counter.tests == 7


class TestFirstDominator:
    def test_empty_block(self):
        counter = DominanceCounter()
        assert first_dominator(np.empty((0, 3)), P, counter) == -1
        assert counter.tests == 0

    def test_no_dominator_charges_full_block(self):
        counter = DominanceCounter()
        block = np.array([[9.0, 9.0, 9.0], [8.0, 8.0, 8.0]])
        assert first_dominator(block, P, counter) == -1
        assert counter.tests == 2

    def test_first_dominator_index_and_early_exit_count(self):
        counter = DominanceCounter()
        block = np.array(
            [[9.0, 9.0, 9.0], [0.0, 0.0, 0.0], [0.0, 0.0, 1.0]]
        )
        assert first_dominator(block, P, counter) == 1
        assert counter.tests == 2  # sequential loop would stop at index 1

    def test_equal_row_is_not_a_dominator(self):
        block = np.array([P])
        assert first_dominator(block, P) == -1

    def test_matches_sequential_scan(self):
        rng = np.random.default_rng(9)
        block = rng.random((60, 4))
        for _ in range(25):
            q = rng.random(4)
            expected = -1
            for idx, row in enumerate(block):
                if np.all(row <= q) and np.any(row < q):
                    expected = idx
                    break
            assert first_dominator(block, q) == expected


class TestDominanceMask:
    def test_mask_matches_pairwise(self):
        rng = np.random.default_rng(2)
        block = rng.random((30, 3))
        q = rng.random(3)
        mask = dominance_mask(block, q)
        for row, flag in zip(block, mask):
            assert flag == dominates(row, q)


@given(
    hnp.arrays(np.float64, (2, 4), elements=st.floats(0, 1, allow_nan=False))
)
def test_dominance_is_antisymmetric(pair):
    p, q = pair
    assert not (dominates(p, q) and dominates(q, p))


@given(
    hnp.arrays(np.float64, (3, 3), elements=st.floats(0, 1, allow_nan=False))
)
def test_dominance_is_transitive(triple):
    a, b, c = triple
    if dominates(a, b) and dominates(b, c):
        assert dominates(a, c)


@given(
    hnp.arrays(np.float64, (2, 5), elements=st.floats(0, 1, allow_nan=False))
)
def test_superset_mask_property(pair):
    """q1 <= q2 componentwise implies D_{q1<p} ⊇ D_{q2<p} for any pivot p."""
    q2, pivot = pair
    q1 = q2 - 0.25  # q1 dominates or equals q2 componentwise
    m1 = dominating_subspace(q1, pivot)
    m2 = dominating_subspace(q2, pivot)
    assert m2 & ~m1 == 0


def test_dominating_subspace_asymmetry_example():
    # Worked example from Definition 3.4.
    p = np.array([0.3, 0.7])
    q = np.array([0.5, 0.2])
    assert dominating_subspace(q, p) == 0b10
    assert dominating_subspace(p, q) == 0b01


@pytest.mark.parametrize("d", [1, 2, 5, 24])
def test_dominating_subspaces_supports_dimensionality(d):
    block = np.zeros((3, d))
    pivot = np.ones(d)
    masks = dominating_subspaces(block, pivot)
    assert list(masks) == [(1 << d) - 1] * 3
