"""Unit tests for the declarative SkylineQuery API."""

import numpy as np
import pytest

from repro.dataset import Dataset
from repro.errors import InvalidDatasetError, InvalidParameterError
from repro.query import SkylineQuery
from tests.conftest import brute_skyline_ids


@pytest.fixture
def hotels():
    rng = np.random.default_rng(0)
    values = np.column_stack(
        [
            rng.uniform(50, 300, 200),   # price (min)
            rng.uniform(0, 10, 200),     # distance (min)
            rng.uniform(1, 10, 200),     # rating (max)
        ]
    )
    return Dataset(values, name="hotels", columns=("price", "distance", "rating"))


class TestColumnNames:
    def test_names_resolved(self, hotels):
        assert hotels.column_index("rating") == 2
        assert hotels.column_index(1) == 1

    def test_unknown_name(self, hotels):
        with pytest.raises(InvalidDatasetError):
            hotels.column_index("stars")

    def test_index_bounds(self, hotels):
        with pytest.raises(InvalidDatasetError):
            hotels.column_index(3)

    def test_unnamed_dataset_rejects_names(self):
        ds = Dataset(np.ones((2, 2)))
        with pytest.raises(InvalidDatasetError):
            ds.column_index("x")

    def test_duplicate_names_rejected(self):
        with pytest.raises(InvalidDatasetError):
            Dataset(np.ones((2, 2)), columns=("a", "a"))

    def test_wrong_name_count_rejected(self):
        with pytest.raises(InvalidDatasetError):
            Dataset(np.ones((2, 2)), columns=("a",))


class TestSkylineQuery:
    def test_minimize_all_matches_plain_skyline(self, hotels):
        result = SkylineQuery().minimize("price", "distance", "rating").execute(hotels)
        assert list(result.indices) == brute_skyline_ids(hotels.values)

    def test_maximize_flips_direction(self, hotels):
        result = (
            SkylineQuery().minimize("price", "distance").maximize("rating").execute(hotels)
        )
        flipped = hotels.values.copy()
        flipped[:, 2] = flipped[:, 2].max() - flipped[:, 2]
        assert list(result.indices) == brute_skyline_ids(flipped)

    def test_projection_to_subset(self, hotels):
        result = SkylineQuery().minimize("price").maximize("rating").execute(hotels)
        projected = hotels.values[:, [0, 2]].copy()
        projected[:, 1] = projected[:, 1].max() - projected[:, 1]
        assert list(result.indices) == brute_skyline_ids(projected)

    def test_where_constrains_before_skyline(self, hotels):
        result = (
            SkylineQuery()
            .minimize("price", "distance")
            .where("price", max_value=150)
            .execute(hotels)
        )
        keep = np.nonzero(hotels.values[:, 0] <= 150)[0]
        expected = [int(keep[i]) for i in brute_skyline_ids(hotels.values[keep][:, :2])]
        assert list(result.indices) == expected
        assert all(hotels.values[i, 0] <= 150 for i in result.indices)

    def test_where_min_and_max(self, hotels):
        result = (
            SkylineQuery()
            .minimize("distance")
            .where("price", min_value=100, max_value=200)
            .execute(hotels)
        )
        for i in result.indices:
            assert 100 <= hotels.values[i, 0] <= 200

    def test_empty_filter_returns_empty(self, hotels):
        result = (
            SkylineQuery().minimize("price").where("price", max_value=-1).execute(hotels)
        )
        assert result.size == 0

    def test_where_requires_a_bound(self):
        with pytest.raises(InvalidParameterError):
            SkylineQuery().where("price")

    def test_needs_at_least_one_direction(self, hotels):
        with pytest.raises(InvalidParameterError):
            SkylineQuery().execute(hotels)

    def test_conflicting_directions_rejected(self, hotels):
        with pytest.raises(InvalidParameterError):
            SkylineQuery().minimize("price").maximize("price").execute(hotels)

    def test_duplicate_column_rejected(self, hotels):
        with pytest.raises(InvalidParameterError):
            SkylineQuery().minimize("price", "price").execute(hotels)

    def test_algorithm_and_sigma_forwarded(self, hotels):
        result = (
            SkylineQuery()
            .minimize("price", "distance", "rating")
            .execute(hotels, algorithm="sdi-subset", sigma=2)
        )
        assert result.algorithm == "sdi-subset"
        assert list(result.indices) == brute_skyline_ids(hotels.values)

    def test_integer_columns_work_without_names(self):
        rng = np.random.default_rng(1)
        values = rng.random((100, 3))
        result = SkylineQuery().minimize(0, 1, 2).execute(values)
        assert list(result.indices) == brute_skyline_ids(values)

    def test_cardinality_reports_original_size(self, hotels):
        result = (
            SkylineQuery().minimize("price").where("price", max_value=150).execute(hotels)
        )
        assert result.cardinality == hotels.cardinality
