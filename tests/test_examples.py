"""Smoke tests: every example script runs end-to-end and prints sane output."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))

EXPECTED_SNIPPETS = {
    "quickstart.py": "subset index",
    "hotel_search.py": "pareto-optimal picks",
    "nba_scouting.py": "skycube",
    "car_marketplace.py": "top 5 most-dominating",
    "streaming_offers.py": "final pareto frontier",
    "tuning_sigma.py": "autotuner picked",
    "warehouse_catalog.py": "external BNL",
}


def test_every_example_has_an_expectation():
    assert {p.name for p in EXAMPLES} == set(EXPECTED_SNIPPETS)


@pytest.mark.slow
@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert EXPECTED_SNIPPETS[script.name] in completed.stdout
