"""Extensions sharing one engine: identical answers, observable cache reuse."""

import numpy as np

from repro.engine import SkylineEngine
from repro.extensions.skyband import skyband, skyband_ids
from repro.extensions.skycube import Skycube, subspace_skyline
from repro.extensions.streaming import StreamingSkyline
from repro.extensions.topk import top_k_dominating
from repro.stats.counters import DominanceCounter
from tests.conftest import brute_skyline_ids


class TestSkybandReuse:
    def test_engine_path_matches_direct_path(self, ui_small):
        direct = skyband(ui_small, 3)
        via_engine = skyband(ui_small, 3, engine=SkylineEngine())
        assert via_engine == direct

    def test_repeat_calls_hit_the_anchor_mask_cache(self, ui_small):
        engine = SkylineEngine()
        cold_counter = DominanceCounter()
        skyband(ui_small, 2, cold_counter, engine=engine)
        assert cold_counter.prepared_cache_misses == 1
        warm_counter = DominanceCounter()
        warm = skyband(ui_small, 4, warm_counter, engine=engine)
        assert warm_counter.prepared_cache_hits == 1
        assert warm == skyband(ui_small, 4)

    def test_topk_shares_the_skyband_preprocessing(self, ui_small):
        engine = SkylineEngine()
        counter = DominanceCounter()
        skyband_ids(ui_small, 3, counter, engine=engine)
        warm_counter = DominanceCounter()
        ranked = top_k_dominating(ui_small, 3, warm_counter, engine=engine)
        assert warm_counter.prepared_cache_hits == 1
        assert ranked == top_k_dominating(ui_small, 3)


class TestSkycubeReuse:
    def test_repeated_subspace_queries_are_warm(self, ui_small):
        engine = SkylineEngine()
        cold = subspace_skyline(ui_small, [0, 2], counter=DominanceCounter(), engine=engine)
        warm_counter = DominanceCounter()
        warm = subspace_skyline(ui_small, [0, 2], counter=warm_counter, engine=engine)
        assert np.array_equal(warm, cold)
        assert warm_counter.prepared_cache_hits > 0
        assert list(cold) == brute_skyline_ids(ui_small.values[:, [0, 2]])

    def test_cube_accepts_a_shared_engine(self, ui_small):
        engine = SkylineEngine()
        cube = Skycube(ui_small, engine=engine)
        assert len(cube) == 2**ui_small.dimensionality - 1
        # Querying a cuboid's subspace again reuses the cube's prepared view.
        counter = DominanceCounter()
        repeat = subspace_skyline(ui_small, [0, 1], counter=counter, engine=engine)
        assert np.array_equal(repeat, cube.skyline([0, 1]))
        assert counter.prepared_cache_hits > 0


class TestStreamingBulkLoad:
    def test_from_dataset_matches_sequential_inserts(self, ui_small):
        values = ui_small.values[:120]
        sequential = StreamingSkyline(d=values.shape[1], anchors=6)
        for row in values:
            sequential.insert(row)
        bulk = StreamingSkyline.from_dataset(values, anchors=6)
        assert bulk.skyline_ids() == sequential.skyline_ids()
        assert len(bulk) == len(sequential)
        n = values.shape[0]
        assert np.array_equal(bulk._mask_arr[:n], sequential._mask_arr[:n])

    def test_bulk_loaded_stream_keeps_maintaining_correctly(self, ui_small):
        values = ui_small.values[:80]
        stream = StreamingSkyline.from_dataset(values, anchors=4)
        stream.insert(values.min(axis=0) - 0.1)  # dominates everything
        assert stream.skyline_ids() == [values.shape[0]]
        stream.delete(values.shape[0])
        assert stream.skyline_ids() == brute_skyline_ids(values)

    def test_from_dataset_accepts_a_shared_engine(self, ui_small):
        engine = SkylineEngine()
        engine.execute(ui_small, "sdi-subset")
        counter = DominanceCounter()
        stream = StreamingSkyline.from_dataset(
            ui_small, counter=counter, engine=engine, algorithm="sdi-subset"
        )
        assert counter.prepared_cache_hits > 0
        assert stream.skyline_ids() == brute_skyline_ids(ui_small.values)
