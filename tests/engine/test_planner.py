"""Planner: determinism, pinned parity, adaptive regime selection."""

import numpy as np
import pytest

from repro.core.stability import default_threshold
from repro.data import generate
from repro.engine import Plan, Planner, PreparedDataset
from repro.errors import InvalidParameterError, UnknownAlgorithmError


def plan_for(dataset, algorithm=None, sigma=None, **options):
    """A plan from a fresh planner over a freshly prepared dataset."""
    return Planner().plan(PreparedDataset(dataset), algorithm, sigma, **options)


class TestPinned:
    def test_boosted_name_resolves_host_and_sigma(self, ui_medium):
        plan = plan_for(ui_medium, "sdi-subset")
        assert plan.algorithm == "sdi"
        assert plan.boosted
        assert plan.sigma == default_threshold(ui_medium.dimensionality)
        assert not plan.adaptive
        assert plan.label == "sdi-subset"

    def test_plain_name_carries_no_sigma(self, ui_medium):
        plan = plan_for(ui_medium, "sfs")
        assert plan.algorithm == "sfs"
        assert not plan.boosted
        assert plan.sigma is None
        assert plan.label == "sfs"

    def test_explicit_sigma_honoured(self, ui_medium):
        assert plan_for(ui_medium, "sfs-subset", sigma=3).sigma == 3

    def test_unknown_algorithm_rejected(self, ui_medium):
        with pytest.raises(UnknownAlgorithmError):
            plan_for(ui_medium, "nope")

    def test_sigma_on_plain_algorithm_rejected(self, ui_medium):
        with pytest.raises(InvalidParameterError):
            plan_for(ui_medium, "sfs", sigma=2)

    def test_invalid_container_and_workers_rejected(self, ui_medium):
        with pytest.raises(InvalidParameterError):
            plan_for(ui_medium, "sfs", container="hashmap")
        with pytest.raises(InvalidParameterError):
            plan_for(ui_medium, "sfs", workers=0)

    def test_invalid_index_backend_rejected(self, ui_medium):
        with pytest.raises(InvalidParameterError):
            plan_for(ui_medium, "sfs-subset", index_backend="btree")

    def test_pinned_defaults_stay_direct_call_compatible(self, ui_medium):
        plan = plan_for(ui_medium, "sfs-subset")
        assert plan.index_backend == "map"
        assert plan.workers == 1

    def test_pinned_backend_and_workers_honoured(self, ui_medium):
        plan = plan_for(
            ui_medium, "sfs-subset", index_backend="flat", workers=3
        )
        assert plan.index_backend == "flat"
        assert plan.workers == 3


class TestDeterminism:
    def test_adaptive_plans_identical_across_instances(self, ui_medium):
        assert plan_for(ui_medium) == plan_for(ui_medium)

    def test_pinned_plans_identical_across_instances(self, ui_medium):
        assert plan_for(ui_medium, "sfs-subset") == plan_for(ui_medium, "sfs-subset")

    def test_plans_are_comparable_values(self, ui_medium):
        plan = plan_for(ui_medium, "sfs")
        assert plan == Plan(
            algorithm="sfs",
            reasons=("algorithm pinned by caller: sfs",),
        )


class TestAdaptiveRegimes:
    def test_correlated_data_selects_plain_salsa(self):
        rng = np.random.default_rng(5)
        base = rng.random(2000)
        values = np.column_stack([base, 2.0 * base + 1.0, base + 0.5])
        plan = plan_for(values)
        assert (plan.algorithm, plan.boosted) == ("salsa", False)

    def test_small_input_selects_plain_sfs(self):
        plan = plan_for(generate("UI", n=200, d=3, seed=3))
        assert (plan.algorithm, plan.boosted) == ("sfs", False)

    def test_high_dimensional_data_selects_boosted_sdi(self):
        plan = plan_for(generate("UI", n=2000, d=6, seed=4))
        assert (plan.algorithm, plan.boosted) == ("sdi", True)
        assert plan.sigma == default_threshold(6)

    def test_anti_correlated_data_selects_boosted_sdi(self):
        rng = np.random.default_rng(6)
        base = rng.random(2000)
        values = np.column_stack([base, 1.0 - base, rng.random(2000)])
        plan = plan_for(values)
        assert (plan.algorithm, plan.boosted) == ("sdi", True)

    def test_moderate_regime_selects_boosted_sfs(self):
        plan = plan_for(generate("UI", n=2000, d=3, seed=7))
        assert (plan.algorithm, plan.boosted) == ("sfs", True)

    def test_one_dimension_disables_the_boost(self):
        plan = plan_for(np.random.default_rng(8).random((50, 1)))
        assert (plan.algorithm, plan.boosted) == ("sfs", False)

    def test_signals_and_reasons_populated(self, ui_medium):
        plan = plan_for(ui_medium)
        assert plan.adaptive
        assert dict(plan.signals)["n"] == float(ui_medium.cardinality)
        assert plan.reasons

    def test_autotuned_sigma_is_deterministic(self, ui_medium):
        first = Planner(autotune=True, seed=9).plan(PreparedDataset(ui_medium))
        second = Planner(autotune=True, seed=9).plan(PreparedDataset(ui_medium))
        assert first == second
        if first.boosted:
            assert 2 <= first.sigma <= ui_medium.dimensionality


class TestAdaptiveBackendAndWorkers:
    def test_small_low_d_keeps_map_index(self):
        plan = plan_for(generate("UI", n=2000, d=3, seed=7))
        assert plan.boosted
        assert plan.index_backend == "map"

    def test_high_d_selects_flat_index(self):
        plan = plan_for(generate("UI", n=2000, d=6, seed=4))
        assert plan.boosted
        assert plan.index_backend == "flat"
        assert any("flat" in reason for reason in plan.reasons)

    def test_large_n_selects_flat_index(self):
        plan = plan_for(generate("UI", n=25_000, d=4, seed=5))
        if plan.boosted:
            assert plan.index_backend == "flat"

    def test_pinned_backend_overrides_adaptive_choice(self):
        plan = plan_for(generate("UI", n=2000, d=6, seed=4), index_backend="map")
        assert plan.index_backend == "map"
        assert any("pinned" in reason for reason in plan.reasons)

    def test_unboosted_plans_keep_inert_map_field(self):
        plan = plan_for(generate("UI", n=200, d=3, seed=3))
        assert not plan.boosted
        assert plan.index_backend == "map"

    def test_large_n_turns_on_block_parallel(self, monkeypatch):
        import repro.extensions.parallel as parallel

        monkeypatch.setattr(parallel, "default_workers", lambda: 4)
        plan = plan_for(generate("UI", n=2000, d=6, seed=4))
        assert plan.workers == 1  # below the threshold: sequential
        stats = plan_for(generate("UI", n=2000, d=6, seed=4))
        assert stats.workers == 1
        big = PreparedDataset(generate("UI", n=2000, d=6, seed=4))
        # Force the thresholds without generating 200k rows: the adaptive
        # choice is bounded both by the CPU count and the minimum rows a
        # block must keep (n // _MIN_BLOCK_ROWS).
        from repro.engine import planner as planner_module

        monkeypatch.setattr(planner_module, "_PARALLEL_N", 1000)
        monkeypatch.setattr(planner_module, "_MIN_BLOCK_ROWS", 500)
        plan = Planner().plan(big)
        assert plan.workers == 4
        assert plan.parallel_strategy == "prefix"
        assert plan.prefix_size > 0
        assert any("block-parallel" in reason for reason in plan.reasons)

    def test_explicit_workers_suppress_adaptive_choice(self, monkeypatch):
        from repro.engine import planner as planner_module

        monkeypatch.setattr(planner_module, "_PARALLEL_N", 1000)
        plan = plan_for(generate("UI", n=2000, d=6, seed=4), workers=1)
        assert plan.workers == 1


class TestPlanRendering:
    def test_explain_shows_mode_and_boost(self, ui_medium):
        text = plan_for(ui_medium, "sdi-subset").explain()
        assert "Plan: sdi-subset" in text
        assert "[pinned]" in text
        assert "merge(σ=" in text

    def test_explain_shows_signals_for_adaptive_plans(self, ui_medium):
        text = plan_for(ui_medium).explain()
        assert "[adaptive]" in text
        assert "signals:" in text

    def test_sort_cache_key_separates_configurations(self, ui_medium):
        boosted = plan_for(ui_medium, "sfs-subset")
        plain = plan_for(ui_medium, "sfs")
        other_sigma = plan_for(ui_medium, "sfs-subset", sigma=3)
        keys = {boosted.sort_cache_key, plain.sort_cache_key, other_sigma.sort_cache_key}
        assert len(keys) == 3

    def test_sort_cache_key_ignores_container_and_memoize(self, ui_medium):
        subset = plan_for(ui_medium, "sfs-subset", container="subset")
        listy = plan_for(ui_medium, "sfs-subset", container="list", memoize=False)
        assert subset.sort_cache_key == listy.sort_cache_key

    def test_explain_reports_index_backend(self, ui_medium):
        text = plan_for(ui_medium, "sfs-subset", index_backend="flat").explain()
        assert "index=flat" in text

    def test_sort_cache_key_ignores_index_backend(self, ui_medium):
        map_plan = plan_for(ui_medium, "sfs-subset", index_backend="map")
        flat_plan = plan_for(ui_medium, "sfs-subset", index_backend="flat")
        assert map_plan.sort_cache_key == flat_plan.sort_cache_key
