"""Planner: determinism, pinned parity, adaptive regime selection."""

import numpy as np
import pytest

from repro.core.stability import default_threshold
from repro.data import generate
from repro.engine import Plan, Planner, PreparedDataset
from repro.errors import InvalidParameterError, UnknownAlgorithmError


def plan_for(dataset, algorithm=None, sigma=None, **options):
    """A plan from a fresh planner over a freshly prepared dataset."""
    return Planner().plan(PreparedDataset(dataset), algorithm, sigma, **options)


class TestPinned:
    def test_boosted_name_resolves_host_and_sigma(self, ui_medium):
        plan = plan_for(ui_medium, "sdi-subset")
        assert plan.algorithm == "sdi"
        assert plan.boosted
        assert plan.sigma == default_threshold(ui_medium.dimensionality)
        assert not plan.adaptive
        assert plan.label == "sdi-subset"

    def test_plain_name_carries_no_sigma(self, ui_medium):
        plan = plan_for(ui_medium, "sfs")
        assert plan.algorithm == "sfs"
        assert not plan.boosted
        assert plan.sigma is None
        assert plan.label == "sfs"

    def test_explicit_sigma_honoured(self, ui_medium):
        assert plan_for(ui_medium, "sfs-subset", sigma=3).sigma == 3

    def test_unknown_algorithm_rejected(self, ui_medium):
        with pytest.raises(UnknownAlgorithmError):
            plan_for(ui_medium, "nope")

    def test_sigma_on_plain_algorithm_rejected(self, ui_medium):
        with pytest.raises(InvalidParameterError):
            plan_for(ui_medium, "sfs", sigma=2)

    def test_invalid_container_and_workers_rejected(self, ui_medium):
        with pytest.raises(InvalidParameterError):
            plan_for(ui_medium, "sfs", container="hashmap")
        with pytest.raises(InvalidParameterError):
            plan_for(ui_medium, "sfs", workers=0)


class TestDeterminism:
    def test_adaptive_plans_identical_across_instances(self, ui_medium):
        assert plan_for(ui_medium) == plan_for(ui_medium)

    def test_pinned_plans_identical_across_instances(self, ui_medium):
        assert plan_for(ui_medium, "sfs-subset") == plan_for(ui_medium, "sfs-subset")

    def test_plans_are_comparable_values(self, ui_medium):
        plan = plan_for(ui_medium, "sfs")
        assert plan == Plan(
            algorithm="sfs",
            reasons=("algorithm pinned by caller: sfs",),
        )


class TestAdaptiveRegimes:
    def test_correlated_data_selects_plain_salsa(self):
        rng = np.random.default_rng(5)
        base = rng.random(2000)
        values = np.column_stack([base, 2.0 * base + 1.0, base + 0.5])
        plan = plan_for(values)
        assert (plan.algorithm, plan.boosted) == ("salsa", False)

    def test_small_input_selects_plain_sfs(self):
        plan = plan_for(generate("UI", n=200, d=3, seed=3))
        assert (plan.algorithm, plan.boosted) == ("sfs", False)

    def test_high_dimensional_data_selects_boosted_sdi(self):
        plan = plan_for(generate("UI", n=2000, d=6, seed=4))
        assert (plan.algorithm, plan.boosted) == ("sdi", True)
        assert plan.sigma == default_threshold(6)

    def test_anti_correlated_data_selects_boosted_sdi(self):
        rng = np.random.default_rng(6)
        base = rng.random(2000)
        values = np.column_stack([base, 1.0 - base, rng.random(2000)])
        plan = plan_for(values)
        assert (plan.algorithm, plan.boosted) == ("sdi", True)

    def test_moderate_regime_selects_boosted_sfs(self):
        plan = plan_for(generate("UI", n=2000, d=3, seed=7))
        assert (plan.algorithm, plan.boosted) == ("sfs", True)

    def test_one_dimension_disables_the_boost(self):
        plan = plan_for(np.random.default_rng(8).random((50, 1)))
        assert (plan.algorithm, plan.boosted) == ("sfs", False)

    def test_signals_and_reasons_populated(self, ui_medium):
        plan = plan_for(ui_medium)
        assert plan.adaptive
        assert dict(plan.signals)["n"] == float(ui_medium.cardinality)
        assert plan.reasons

    def test_autotuned_sigma_is_deterministic(self, ui_medium):
        first = Planner(autotune=True, seed=9).plan(PreparedDataset(ui_medium))
        second = Planner(autotune=True, seed=9).plan(PreparedDataset(ui_medium))
        assert first == second
        if first.boosted:
            assert 2 <= first.sigma <= ui_medium.dimensionality


class TestPlanRendering:
    def test_explain_shows_mode_and_boost(self, ui_medium):
        text = plan_for(ui_medium, "sdi-subset").explain()
        assert "Plan: sdi-subset" in text
        assert "[pinned]" in text
        assert "merge(σ=" in text

    def test_explain_shows_signals_for_adaptive_plans(self, ui_medium):
        text = plan_for(ui_medium).explain()
        assert "[adaptive]" in text
        assert "signals:" in text

    def test_sort_cache_key_separates_configurations(self, ui_medium):
        boosted = plan_for(ui_medium, "sfs-subset")
        plain = plan_for(ui_medium, "sfs")
        other_sigma = plan_for(ui_medium, "sfs-subset", sigma=3)
        keys = {boosted.sort_cache_key, plain.sort_cache_key, other_sigma.sort_cache_key}
        assert len(keys) == 3

    def test_sort_cache_key_ignores_container_and_memoize(self, ui_medium):
        subset = plan_for(ui_medium, "sfs-subset", container="subset")
        listy = plan_for(ui_medium, "sfs-subset", container="list", memoize=False)
        assert subset.sort_cache_key == listy.sort_cache_key
