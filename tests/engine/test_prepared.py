"""PreparedDataset: cache accounting, views, eviction and invalidation."""

import numpy as np
import pytest

from repro.core.merge import merge
from repro.engine import PreparedDataset
from repro.errors import InvalidParameterError
from repro.stats.counters import DominanceCounter


@pytest.fixture
def prepared(ui_small):
    return PreparedDataset(ui_small)


class TestStatistics:
    def test_computed_once_and_counted(self, prepared):
        counter = DominanceCounter()
        first = prepared.statistics(counter)
        assert counter.prepared_cache_misses == 1
        assert counter.prepared_cache_hits == 0
        second = prepared.statistics(counter)
        assert second is first
        assert counter.prepared_cache_hits == 1

    def test_matches_dataset_shape(self, prepared, ui_small):
        stats = prepared.statistics()
        assert stats.cardinality == ui_small.cardinality
        assert stats.dimensionality == ui_small.dimensionality
        assert 0.0 < stats.expected_skyline <= ui_small.cardinality
        assert 0.0 < stats.skyline_fraction <= 1.0
        assert -1.0 <= stats.correlation <= 1.0


class TestMerged:
    def test_cold_call_matches_direct_merge(self, prepared, ui_small):
        direct_counter = DominanceCounter()
        direct = merge(ui_small, 2, direct_counter)
        cold_counter = DominanceCounter()
        cached = prepared.merged(2, counter=cold_counter)
        assert np.array_equal(cached.remaining_ids, direct.remaining_ids)
        assert np.array_equal(cached.masks, direct.masks)
        assert list(cached.pivot_ids) == list(direct.pivot_ids)
        assert cold_counter.tests == direct_counter.tests

    def test_warm_call_charges_no_tests(self, prepared):
        cold = DominanceCounter()
        first = prepared.merged(2, counter=cold)
        warm = DominanceCounter()
        second = prepared.merged(2, counter=warm)
        assert second is first
        assert warm.tests == 0
        assert warm.prepared_cache_hits == 1

    def test_keyed_by_sigma_and_pivot_strategy(self, prepared):
        counter = DominanceCounter()
        prepared.merged(2, counter=counter)
        prepared.merged(3, counter=counter)
        prepared.merged(2, "sum", counter=counter)
        assert counter.prepared_cache_misses == 3
        assert prepared.cache_info()["merge"] == 3

    def test_invalid_sigma_rejected(self, prepared):
        with pytest.raises(InvalidParameterError):
            prepared.merged(99)


class TestSortCache:
    def test_same_key_same_mapping(self, prepared):
        cache = prepared.sort_cache("sfs()|plain")
        cache["order"] = [1, 2, 3]
        assert prepared.sort_cache("sfs()|plain") is cache

    def test_distinct_keys_distinct_mappings(self, prepared):
        assert prepared.sort_cache("a") is not prepared.sort_cache("b")

    def test_fifo_eviction_bounds_entries(self, prepared):
        for i in range(40):
            prepared.sort_cache(f"key-{i}")
        assert prepared.cache_info()["sort"] == 32


class TestView:
    def test_projects_and_flips(self):
        values = np.array([[1.0, 10.0, 5.0], [2.0, 20.0, 7.0], [3.0, 30.0, 6.0]])
        prepared = PreparedDataset(values)
        view = prepared.view([0, 2], maximize=[2])
        assert view.dimensionality == 2
        expected = np.column_stack([values[:, 0], values[:, 2].max() - values[:, 2]])
        assert np.array_equal(view.values, expected)

    def test_cached_per_dims_and_directions(self, prepared):
        counter = DominanceCounter()
        first = prepared.view([0, 1], counter=counter)
        assert prepared.view([0, 1], counter=counter) is first
        assert counter.prepared_cache_hits == 1
        flipped = prepared.view([0, 1], maximize=[1], counter=counter)
        assert flipped is not first
        assert counter.prepared_cache_misses == 2

    def test_view_is_itself_prepared(self, prepared):
        view = prepared.view([0, 1])
        assert isinstance(view, PreparedDataset)
        view.merged(2)
        assert view.cache_info()["merge"] == 1

    def test_maximize_must_be_subset_of_dims(self, prepared):
        with pytest.raises(ValueError):
            prepared.view([0, 1], maximize=[3])


class TestLifecycle:
    def test_column_major_is_readonly_fortran(self, prepared, ui_small):
        column_major = prepared.column_major
        assert column_major.flags.f_contiguous
        assert not column_major.flags.writeable
        assert np.array_equal(column_major, ui_small.values)
        assert prepared.column_major is column_major

    def test_invalidate_drops_caches_and_bumps_version(self, prepared):
        prepared.statistics()
        prepared.merged(2)
        prepared.sort_cache("x")["order"] = [0]
        view = prepared.view([0, 1])
        view.merged(2)
        prepared.artefact("blob", lambda: 42)
        prepared.invalidate()
        info = prepared.cache_info()
        assert info == {
            "merge": 0,
            "sort": 0,
            "views": 0,
            "artefacts": 0,
            "statistics": 0,
            "version": 1,
        }
        # Cached views derive from the same values: invalidated recursively.
        assert view.cache_info()["merge"] == 0
        assert view.version == 1

    def test_artefact_computed_once(self, prepared):
        calls = []
        counter = DominanceCounter()

        def compute():
            calls.append(1)
            return "payload"

        assert prepared.artefact("k", compute, counter) == "payload"
        assert prepared.artefact("k", compute, counter) == "payload"
        assert len(calls) == 1
        assert counter.prepared_cache_hits == 1
        assert counter.prepared_cache_misses == 1
