"""EXPLAIN ANALYZE: estimate-vs-actual rows, ratios, accuracy metrics."""

import numpy as np
import pytest

from repro.data import generate
from repro.engine import SkylineEngine
from repro.engine.analyze import AnalyzedRow, analyze
from repro.engine.context import ExecutionContext
from repro.errors import InvalidParameterError
from repro.obs import Tracer
from repro.obs.metrics import MetricsRegistry


@pytest.fixture(scope="module")
def dataset():
    return generate("UI", n=900, d=4, seed=5)


@pytest.fixture(scope="module")
def adaptive_result(dataset):
    engine = SkylineEngine(ExecutionContext(tracer=Tracer()))
    return engine.execute(dataset)


@pytest.fixture(scope="module")
def repair_result(dataset):
    engine = SkylineEngine(ExecutionContext(tracer=Tracer()))
    engine.execute(dataset, index_backend="flat", workers=1)
    rng = np.random.default_rng(5)
    engine.apply_delta(dataset, inserts=rng.random((5, 4)))
    result = engine.execute(dataset, workers=1)
    assert result.plan.incremental
    return result


class TestAnalyzedRow:
    def test_ratio_is_actual_over_estimated(self):
        assert AnalyzedRow("m", estimated=100.0, actual=150.0).ratio == 1.5

    def test_ratio_none_when_either_side_missing_or_zero(self):
        assert AnalyzedRow("m", estimated=None, actual=1.0).ratio is None
        assert AnalyzedRow("m", estimated=1.0, actual=None).ratio is None
        assert AnalyzedRow("m", estimated=0.0, actual=1.0).ratio is None


class TestAdaptiveAnalysis:
    def test_skyline_size_row_uses_estimator_prediction(self, adaptive_result):
        analysis = analyze(adaptive_result)
        row = next(r for r in analysis.rows if r.metric == "skyline_size")
        signals = dict(adaptive_result.plan.signals)
        assert row.estimated == pytest.approx(signals["expected_skyline"])
        assert row.actual == float(adaptive_result.size)
        assert row.ratio is not None and row.ratio > 0

    def test_dominance_tests_row_uses_nd_scan_model(self, adaptive_result):
        analysis = analyze(adaptive_result)
        row = next(r for r in analysis.rows if r.metric == "dominance_tests")
        signals = dict(adaptive_result.plan.signals)
        assert row.estimated == pytest.approx(signals["n"] * signals["d"])
        assert row.actual == float(adaptive_result.dominance_tests)

    def test_wall_time_is_actual_only(self, adaptive_result):
        analysis = analyze(adaptive_result)
        row = next(r for r in analysis.rows if r.metric == "wall_time")
        assert row.estimated is None
        assert row.actual == adaptive_result.elapsed_seconds
        assert row.ratio is None

    def test_phases_present_when_traced(self, adaptive_result):
        analysis = analyze(adaptive_result)
        names = {phase.name for phase in analysis.phases}
        assert {"prepare", "plan", "execute"} <= names

    def test_render_contains_rows_and_cost_model_inputs(self, adaptive_result):
        text = analyze(adaptive_result).render()
        assert text.startswith("EXPLAIN ANALYZE:")
        assert "[adaptive]" in text
        assert "skyline_size" in text and "dominance_tests" in text
        assert "cost-model inputs:" in text
        assert "small_n_threshold=600" in text
        assert "phases (actual):" in text

    def test_accuracy_metrics_are_ratios(self, adaptive_result):
        metrics = analyze(adaptive_result).accuracy_metrics()
        assert set(metrics) == {
            "planner.skyline_size_ratio",
            "planner.dominance_tests_ratio",
        }
        assert all(value > 0 for value in metrics.values())

    def test_registry_record_analysis(self, adaptive_result):
        registry = MetricsRegistry()
        registry.record_analysis(analyze(adaptive_result))
        assert "planner.skyline_size_ratio" in registry.as_dict()


class TestIncrementalAnalysis:
    def test_repair_cost_row_compares_estimate_to_traced_delta(self, repair_result):
        analysis = analyze(repair_result)
        row = next(r for r in analysis.rows if r.metric == "repair_cost")
        assert row.estimated == repair_result.plan.repair_cost
        assert row.actual is not None and row.actual >= 0
        repair_phase = next(
            p for p in analysis.phases if p.name == "engine.repair"
        )
        assert row.actual == repair_phase.dominance_tests

    def test_dominance_tests_estimate_is_repair_cost(self, repair_result):
        analysis = analyze(repair_result)
        row = next(r for r in analysis.rows if r.metric == "dominance_tests")
        assert row.estimated == repair_result.plan.repair_cost


class TestPinnedAnalysis:
    def test_pinned_plans_are_actual_only(self, dataset):
        engine = SkylineEngine()
        result = engine.execute(dataset, "sfs-subset")
        analysis = analyze(result)
        assert result.plan.estimates == ()  # pinned purity contract
        assert all(row.estimated is None for row in analysis.rows)
        assert "[pinned]" in analysis.render()
        assert analysis.accuracy_metrics() == {}

    def test_untraced_result_has_no_phases(self, dataset):
        result = SkylineEngine().execute(dataset, "sfs-subset")
        analysis = analyze(result)
        assert analysis.phases == ()
        assert "phases (actual):" not in analysis.render()


class TestPlanAnalyzeEntrypoint:
    def test_plan_analyze_matches_module_function(self, adaptive_result):
        via_plan = adaptive_result.plan.analyze(adaptive_result)
        via_module = analyze(adaptive_result)
        assert via_plan.rows == via_module.rows

    def test_plan_less_result_rejected(self, dataset):
        from dataclasses import replace

        result = SkylineEngine().execute(dataset, "sfs-subset")
        plan_less = replace(result, plan=None)
        with pytest.raises(InvalidParameterError, match="no plan"):
            analyze(plan_less)

    def test_mismatched_plan_rejected(self, dataset, adaptive_result):
        other = SkylineEngine().execute(dataset, "salsa-subset")
        with pytest.raises(InvalidParameterError, match="different plan"):
            other.plan.analyze(adaptive_result)
