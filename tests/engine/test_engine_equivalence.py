"""SkylineEngine vs direct algorithm calls: the refactor's core contract.

A pinned plan on a cold engine must be observationally identical to the
direct ``get_algorithm(name).compute`` call — same skyline ids in the same
order, same charged dominance-test count.  Warm runs may skip work, but
only work the prepared caches legitimately absorb: the skyline never
changes, and the saving is visible as ``prepared_cache_hits``.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.algorithms.registry import get_algorithm
from repro.dataset import Dataset
from repro.engine import SkylineEngine
from repro.stats.counters import DominanceCounter
from tests.conftest import brute_skyline_ids

# The full cross-section of execution paths: plain sort-scans, boosted
# scans (each phase-capable host), and a non-phase algorithm (BNL) that the
# engine runs through the host's private body.
ALGORITHMS = [
    "bnl",
    "sfs",
    "less",
    "salsa",
    "sdi",
    "sfs-subset",
    "salsa-subset",
    "sdi-subset",
]

WORKLOADS = ["ui_small", "ac_small", "co_small", "duplicate_heavy"]


@pytest.mark.parametrize("name", ALGORITHMS)
@pytest.mark.parametrize("workload", WORKLOADS)
def test_cold_run_matches_direct_call(name, workload, request):
    dataset = request.getfixturevalue(workload)
    direct_counter = DominanceCounter()
    direct = get_algorithm(name).compute(dataset, counter=direct_counter)
    cold_counter = DominanceCounter()
    result = SkylineEngine().execute(dataset, name, counter=cold_counter)
    assert np.array_equal(result.indices, direct.indices)
    assert cold_counter.tests == direct_counter.tests
    assert result.algorithm == name


@pytest.mark.parametrize("name", ["sfs-subset", "salsa-subset", "sdi-subset"])
def test_warm_boosted_run_reuses_the_merge_result(name, ui_small):
    engine = SkylineEngine()
    cold_counter = DominanceCounter()
    cold = engine.execute(ui_small, name, counter=cold_counter)
    warm_counter = DominanceCounter()
    warm = engine.execute(ui_small, name, counter=warm_counter)
    assert np.array_equal(warm.indices, cold.indices)
    assert warm_counter.prepared_cache_hits > 0
    assert warm_counter.tests <= cold_counter.tests


def test_warm_plain_scan_reuses_the_sort_order(ui_small):
    engine = SkylineEngine()
    cold = engine.execute(ui_small, "sfs", counter=DominanceCounter())
    prepared = engine.prepare(ui_small)
    assert prepared.cache_info()["sort"] >= 1
    warm_counter = DominanceCounter()
    warm = engine.execute(ui_small, "sfs", counter=warm_counter)
    assert np.array_equal(warm.indices, cold.indices)


def test_adaptive_execution_matches_the_oracle(ui_medium):
    result = SkylineEngine().execute(ui_medium, algorithm=None)
    assert list(result.indices) == brute_skyline_ids(ui_medium.values)
    assert result.plan is not None
    assert result.plan.adaptive


def test_session_counter_accumulates_across_runs(ui_small):
    engine = SkylineEngine()
    engine.execute(ui_small, "sfs")
    engine.execute(ui_small, "sdi-subset")
    assert engine.context.runs_recorded == 2
    assert engine.context.counter.tests > 0


def test_pinned_plan_can_be_executed_directly(ui_small):
    engine = SkylineEngine()
    plan = engine.plan(ui_small, "sdi-subset")
    via_plan = engine.execute(ui_small, plan=plan)
    direct = engine.execute(ui_small, "sdi-subset")
    assert np.array_equal(via_plan.indices, direct.indices)
    assert via_plan.plan == plan


# -- hypothesis bridge -------------------------------------------------------
# Mirrors tests/core/test_memoization_properties.py: let hypothesis search
# the input space for datasets where the engine path and the direct path
# disagree, including degenerate shapes (n=1, d=1) and duplicate-heavy grids.

random_datasets = hnp.arrays(
    np.float64,
    st.tuples(st.integers(1, 40), st.integers(1, 4)),
    elements=st.floats(0, 1, allow_nan=False, width=16),
)

grid_datasets = hnp.arrays(
    np.float64,
    st.tuples(st.integers(1, 30), st.integers(1, 3)),
    elements=st.sampled_from([0.0, 0.5, 1.0]),
)

bridge_algorithms = st.sampled_from(["sfs", "less", "salsa-subset", "sdi-subset"])


@settings(max_examples=40, deadline=None)
@given(random_datasets, bridge_algorithms)
def test_engine_agrees_with_oracle_and_direct_dt(values, name):
    direct_counter = DominanceCounter()
    direct = get_algorithm(name).compute(Dataset(values), counter=direct_counter)
    cold_counter = DominanceCounter()
    result = SkylineEngine().execute(values, name, counter=cold_counter)
    assert list(result.indices) == brute_skyline_ids(values)
    assert np.array_equal(result.indices, direct.indices)
    assert cold_counter.tests == direct_counter.tests


@settings(max_examples=25, deadline=None)
@given(grid_datasets, bridge_algorithms)
def test_warm_runs_stay_exact_on_duplicate_grids(values, name):
    dataset = Dataset(values)
    engine = SkylineEngine()
    cold = engine.execute(dataset, name)
    warm = engine.execute(dataset, name)
    assert list(warm.indices) == brute_skyline_ids(values)
    assert np.array_equal(warm.indices, cold.indices)
