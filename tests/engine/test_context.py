"""ExecutionContext: prepared registry, session counters, lifecycle."""

import numpy as np
import pytest

from repro.engine import ExecutionContext, PreparedDataset
from repro.errors import InvalidParameterError
from repro.stats.counters import DominanceCounter


class TestPreparedRegistry:
    def test_same_dataset_returns_same_prepared(self, ui_small):
        context = ExecutionContext()
        assert context.prepare(ui_small) is context.prepare(ui_small)
        assert context.prepared_count == 1

    def test_prepared_objects_pass_through(self, ui_small):
        context = ExecutionContext()
        prepared = PreparedDataset(ui_small)
        assert context.prepare(prepared) is prepared
        # Pass-through does not occupy a registry slot.
        assert context.prepared_count == 0

    def test_fifo_eviction(self):
        rng = np.random.default_rng(0)
        context = ExecutionContext(max_prepared=2)
        datasets = [rng.random((20, 3)) for _ in range(3)]
        prepared = [context.prepare(values) for values in datasets]
        assert context.prepared_count == 2
        # The first entry was evicted: re-preparing builds a fresh object.
        assert context.prepare(datasets[0]) is not prepared[0]

    def test_max_prepared_validated(self):
        with pytest.raises(InvalidParameterError):
            ExecutionContext(max_prepared=0)


class TestCounters:
    def test_run_counter_prefers_the_callers(self):
        context = ExecutionContext()
        mine = DominanceCounter()
        assert context.run_counter(mine) is mine
        fresh = context.run_counter()
        assert fresh is not mine
        assert fresh.tests == 0

    def test_record_absorbs_into_the_session_aggregate(self):
        context = ExecutionContext()
        run = DominanceCounter()
        run.add(7)
        run.add_prepared_hit()
        context.record(run)
        assert context.counter.tests == 7
        assert context.counter.prepared_cache_hits == 1
        assert context.runs_recorded == 1


class TestLifecycle:
    def test_close_clears_the_registry(self, ui_small):
        context = ExecutionContext()
        context.prepare(ui_small)
        context.close()
        assert context.prepared_count == 0

    def test_context_manager_closes(self, ui_small):
        with ExecutionContext() as context:
            context.prepare(ui_small)
        assert context.prepared_count == 0
