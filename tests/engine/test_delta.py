"""Delta-repair tests: ``apply_delta``, planner cost model, engine path."""

import numpy as np
import pytest

from repro.dataset import Dataset
from repro.engine import ExecutionContext, SkylineEngine
from repro.engine.delta import remap_ids
from repro.engine.prepared import PreparedDataset
from repro.errors import InvalidParameterError
from tests.conftest import brute_skyline_ids


def _mutated_values(values, inserts, deletes):
    kept = np.delete(values, deletes, axis=0) if len(deletes) else values
    return np.vstack([kept, inserts]) if len(inserts) else kept


@pytest.fixture()
def seeded_delta(ui_small):
    rng = np.random.default_rng(5)
    deletes = np.sort(rng.choice(ui_small.cardinality, size=6, replace=False))
    inserts = rng.random((6, ui_small.dimensionality))
    return inserts, deletes


class TestApplyDelta:
    def test_noop_and_validation(self, ui_small):
        prepared = PreparedDataset(ui_small)
        version = prepared.version
        report = prepared.apply_delta(None, None)
        assert report.mode == "noop"
        assert prepared.version == version  # RPR008: no change, no bump
        with pytest.raises(InvalidParameterError):
            prepared.apply_delta(None, None, mode="sideways")
        with pytest.raises(InvalidParameterError):
            prepared.apply_delta(None, [ui_small.cardinality + 7])
        with pytest.raises(InvalidParameterError):
            prepared.apply_delta(None, np.arange(ui_small.cardinality))

    def test_repair_splices_values_and_bumps_version_once(
        self, ui_small, seeded_delta
    ):
        inserts, deletes = seeded_delta
        prepared = PreparedDataset(ui_small)
        version = prepared.version
        report = prepared.apply_delta(inserts, deletes)
        assert report.mode == "repair"
        assert report.inserted == 6 and report.deleted == 6
        assert prepared.version == version + 1  # RPR008: exactly one bump
        expected = _mutated_values(ui_small.values, inserts, deletes)
        np.testing.assert_array_equal(prepared.dataset.values, expected)

    def test_large_delta_falls_back_to_recompute(self, ui_small):
        rng = np.random.default_rng(6)
        prepared = PreparedDataset(ui_small)
        big = rng.random((ui_small.cardinality // 2, ui_small.dimensionality))
        report = prepared.apply_delta(big, None)
        assert report.mode == "recompute"

    def test_forced_modes_override_the_threshold(self, ui_small, seeded_delta):
        inserts, deletes = seeded_delta
        forced = PreparedDataset(ui_small)
        assert forced.apply_delta(inserts, deletes, mode="recompute").mode == (
            "recompute"
        )
        rng = np.random.default_rng(7)
        big = rng.random((ui_small.cardinality, ui_small.dimensionality))
        repaired = PreparedDataset(ui_small)
        assert repaired.apply_delta(big, None, mode="repair").mode == "repair"

    def test_remap_ids_closes_ranks(self):
        survivors = np.asarray([0, 2, 3, 5])
        new_ids = remap_ids(survivors, np.asarray([1, 4]))
        # Rows 1 and 4 die; survivors close ranks in order.
        assert new_ids.tolist() == [0, 1, 2, 3]

    def test_merge_and_sort_caches_survive_a_small_delta(
        self, ui_small, seeded_delta
    ):
        inserts, deletes = seeded_delta
        engine = SkylineEngine()
        engine.execute(ui_small, "sfs-subset")  # warm merge + sort caches
        prepared = engine.prepare(ui_small)
        report = prepared.apply_delta(inserts, deletes)
        assert report.merge_repaired + report.merge_dropped >= 1
        assert report.sort_tagged + report.sort_dropped >= 1
        # The repaired caches must still produce the exact skyline.
        result = engine.execute(prepared, "sfs-subset")
        expected = brute_skyline_ids(prepared.dataset.values)
        assert sorted(result.indices.tolist()) == expected


class TestRepairSkyline:
    def test_requires_a_noted_base(self, ui_small):
        prepared = PreparedDataset(ui_small)
        prepared.apply_delta(np.ones((1, ui_small.dimensionality)), None)
        with pytest.raises(InvalidParameterError):
            prepared.repair_skyline()

    def test_repair_matches_brute_force_and_stays_warm(
        self, ui_small, seeded_delta
    ):
        inserts, deletes = seeded_delta
        engine = SkylineEngine()
        engine.execute(ui_small)
        prepared = engine.prepare(ui_small)
        prepared.apply_delta(inserts, deletes)
        assert sorted(prepared.repair_skyline()) == brute_skyline_ids(
            prepared.dataset.values
        )
        # Second mutation reuses the bootstrapped stream.
        rng = np.random.default_rng(8)
        more = rng.random((4, ui_small.dimensionality))
        prepared.apply_delta(more, [0, 2])
        assert prepared.delta_state().stream_ready
        assert sorted(prepared.repair_skyline()) == brute_skyline_ids(
            prepared.dataset.values
        )


class TestPlannerIncremental:
    def _prepared_with_delta(self, engine, dataset, inserts, deletes):
        engine.execute(dataset)
        prepared = engine.prepare(dataset)
        prepared.apply_delta(inserts, deletes)
        return prepared

    def test_cost_model_selects_incremental(self, ui_small, seeded_delta):
        inserts, deletes = seeded_delta
        engine = SkylineEngine()
        prepared = self._prepared_with_delta(engine, ui_small, inserts, deletes)
        plan = engine.planner.plan(prepared, None, None)
        assert plan.incremental
        assert plan.algorithm == "incremental-repair"
        assert plan.pending_mutations == 12
        assert plan.repair_cost < plan.recompute_cost
        text = plan.explain()
        assert "incremental delta-repair" in text
        assert "12 pending ops" in text
        assert "repair-vs-recompute" in text and "delta repair" in text

    def test_incremental_false_forces_full_plan(self, ui_small, seeded_delta):
        inserts, deletes = seeded_delta
        engine = SkylineEngine()
        prepared = self._prepared_with_delta(engine, ui_small, inserts, deletes)
        plan = engine.planner.plan(prepared, None, None, incremental=False)
        assert not plan.incremental
        assert plan.pending_mutations == 12
        assert "full recompute" in plan.explain()

    def test_incremental_conflicts_with_pinned_algorithm(self, ui_small):
        engine = SkylineEngine()
        prepared = engine.prepare(ui_small)
        with pytest.raises(InvalidParameterError):
            engine.planner.plan(prepared, "sdi-subset", None, incremental=True)

    def test_incremental_without_delta_state_rejected(self, ui_small):
        engine = SkylineEngine()
        prepared = engine.prepare(ui_small)
        with pytest.raises(InvalidParameterError):
            engine.planner.plan(prepared, None, None, incremental=True)


class TestEnginePath:
    def test_incremental_execution_matches_recompute(
        self, ui_small, seeded_delta
    ):
        inserts, deletes = seeded_delta
        engine = SkylineEngine()
        engine.execute(ui_small)
        engine.apply_delta(ui_small, inserts=inserts, deletes=deletes)
        assert engine.context.deltas_recorded == 1
        result = engine.execute(ui_small)  # original handle, via rebind alias
        assert result.plan.incremental
        mutated = _mutated_values(ui_small.values, inserts, deletes)
        assert sorted(result.indices.tolist()) == brute_skyline_ids(mutated)

    def test_repair_span_is_traced(self, ui_small, seeded_delta):
        from repro.obs import Tracer

        inserts, deletes = seeded_delta
        engine = SkylineEngine(ExecutionContext(tracer=Tracer()))
        engine.execute(ui_small)
        engine.apply_delta(ui_small, inserts=inserts, deletes=deletes)
        result = engine.execute(ui_small)
        spans = result.trace.find("engine.repair")
        assert len(spans) == 1
        assert spans[0].attrs["pending"] == 12

    def test_rebind_keeps_old_handle_addressing_the_mutated_data(
        self, ui_small, seeded_delta
    ):
        inserts, deletes = seeded_delta
        engine = SkylineEngine()
        engine.execute(ui_small)
        prepared = engine.prepare(ui_small)
        engine.apply_delta(ui_small, inserts=inserts, deletes=deletes)
        # Both the stale Dataset handle and the mutated array resolve to
        # the SAME prepared object — no silent re-prepare of old values.
        assert engine.prepare(ui_small) is prepared
        assert engine.prepare(prepared.dataset) is prepared

    def test_forced_recompute_through_the_engine(self, ui_small, seeded_delta):
        inserts, deletes = seeded_delta
        engine = SkylineEngine()
        engine.execute(ui_small)
        report = engine.apply_delta(
            ui_small, inserts=inserts, deletes=deletes, mode="recompute"
        )
        assert report.mode == "recompute"
        result = engine.execute(ui_small)
        assert not result.plan.incremental
        mutated = _mutated_values(ui_small.values, inserts, deletes)
        assert sorted(result.indices.tolist()) == brute_skyline_ids(mutated)
