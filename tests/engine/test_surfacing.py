"""Plans and counters surfaced on results across the refactored entry points."""

import numpy as np

import repro
from repro.engine import Plan, SkylineEngine
from repro.query import SkylineQuery
from repro.stats.counters import DominanceCounter
from tests.conftest import brute_skyline_ids


class TestSkylineFacade:
    def test_result_carries_plan_and_counter(self, ui_small):
        result = repro.skyline(ui_small)
        assert isinstance(result.plan, Plan)
        assert result.plan.label == "sdi-subset"
        assert result.counter is not None
        assert result.counter.tests == result.dominance_tests > 0

    def test_adaptive_mode_selects_and_explains(self, ui_medium):
        result = repro.skyline(ui_medium, algorithm=None)
        assert result.plan.adaptive
        assert "[adaptive]" in result.plan.explain()
        assert list(result.indices) == brute_skyline_ids(ui_medium.values)

    def test_shared_engine_serves_repeats_warm(self, ui_small):
        engine = SkylineEngine()
        repro.skyline(ui_small, engine=engine)
        warm_counter = DominanceCounter()
        repro.skyline(ui_small, counter=warm_counter, engine=engine)
        assert warm_counter.prepared_cache_hits > 0


class TestQueryThroughEngine:
    def test_result_carries_plan_and_counter(self, ui_small):
        query = SkylineQuery().minimize(0, 1).maximize(2)
        result = query.execute(ui_small, "sfs-subset")
        assert isinstance(result.plan, Plan)
        assert result.plan.boosted
        assert result.counter.tests > 0

    def test_repeated_queries_share_the_prepared_view(self, ui_small):
        engine = SkylineEngine()
        query = SkylineQuery().minimize(0, 1).maximize(2)
        first = query.execute(ui_small, "sfs-subset", engine=engine)
        warm_counter = DominanceCounter()
        second = query.execute(
            ui_small, "sfs-subset", counter=warm_counter, engine=engine
        )
        assert np.array_equal(first.indices, second.indices)
        # Both the cached subspace view and its Merge result are hits.
        assert warm_counter.prepared_cache_hits >= 2

    def test_unfiltered_view_matches_ephemeral_projection(self, ui_small):
        query = SkylineQuery().minimize(0).maximize(3)
        through_view = query.execute(ui_small, "sfs")
        values = ui_small.values[:, [0, 3]].copy()
        values[:, 1] = values[:, 1].max() - values[:, 1]
        assert list(through_view.indices) == brute_skyline_ids(values)
