"""Unit and property tests for the k-skyband operator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

import repro
from repro.errors import InvalidParameterError
from repro.extensions.skyband import skyband, skyband_ids
from repro.stats.counters import DominanceCounter


def brute_skyband(values: np.ndarray, k: int) -> dict[int, int]:
    """Reference: exact dominator counts via the O(N^2) definition."""
    n = values.shape[0]
    result = {}
    for i in range(n):
        count = 0
        for j in range(n):
            if j != i and np.all(values[j] <= values[i]) and np.any(values[j] < values[i]):
                count += 1
        if count < k:
            result[i] = count
    return result


class TestSkyband:
    def test_k_validation(self):
        with pytest.raises(InvalidParameterError):
            skyband(np.ones((2, 2)), k=0)

    def test_k1_equals_skyline(self, ui_small):
        band = skyband_ids(ui_small, k=1)
        sky = repro.skyline(ui_small, algorithm="bruteforce")
        assert band == list(sky.indices)

    @pytest.mark.parametrize("k", [1, 2, 3, 5])
    def test_matches_bruteforce_counts(self, k):
        rng = np.random.default_rng(k)
        values = rng.random((150, 3))
        assert skyband(values, k=k) == brute_skyband(values, k)

    def test_duplicates(self, duplicate_heavy):
        got = skyband(duplicate_heavy.values, k=2)
        assert got == brute_skyband(duplicate_heavy.values, 2)

    def test_band_grows_with_k(self, ui_small):
        sizes = [len(skyband(ui_small, k=k)) for k in (1, 2, 4)]
        assert sizes == sorted(sizes)
        assert sizes[0] < sizes[2]

    def test_skyband_nests(self, ui_small):
        band2 = set(skyband_ids(ui_small, k=2))
        band4 = set(skyband_ids(ui_small, k=4))
        assert band2 <= band4

    def test_counts_below_k(self, ui_small):
        for point_id, count in skyband(ui_small, k=3).items():
            assert 0 <= count < 3

    def test_counter_charged(self, ui_small):
        counter = DominanceCounter()
        skyband(ui_small, k=2, counter=counter)
        assert counter.tests > 0

    def test_mask_filter_cheaper_than_full_scan(self):
        rng = np.random.default_rng(9)
        values = rng.random((800, 6))
        filtered = DominanceCounter()
        skyband(values, k=2, counter=filtered)
        # A full-scan skyband would test every pair of band members; the
        # mask filter must do strictly better on 6-D uniform data.
        band = brute_skyband(values, 2)
        assert filtered.tests < len(values) * len(band)


@settings(max_examples=40, deadline=None)
@given(
    hnp.arrays(
        np.float64,
        st.tuples(st.integers(1, 40), st.integers(1, 4)),
        elements=st.floats(0, 1, allow_nan=False, width=16),
    ),
    st.integers(1, 4),
)
def test_skyband_property(values, k):
    assert skyband(values, k=k) == brute_skyband(values, k)
