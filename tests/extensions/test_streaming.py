"""Unit and property tests for the streaming skyline extension."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DimensionMismatchError, InvalidParameterError
from repro.extensions.streaming import StreamingSkyline
from tests.conftest import brute_skyline_ids


class TestBasics:
    def test_construction_validation(self):
        with pytest.raises(InvalidParameterError):
            StreamingSkyline(d=0)
        with pytest.raises(InvalidParameterError):
            StreamingSkyline(d=3, anchors=0)

    def test_insert_returns_increasing_ids(self):
        sky = StreamingSkyline(d=2)
        assert sky.insert([1.0, 2.0]) == 0
        assert sky.insert([2.0, 1.0]) == 1
        assert len(sky) == 2

    def test_dimension_mismatch(self):
        sky = StreamingSkyline(d=3)
        with pytest.raises(DimensionMismatchError):
            sky.insert([1.0, 2.0])

    def test_nan_rejected(self):
        sky = StreamingSkyline(d=2)
        with pytest.raises(InvalidParameterError):
            sky.insert([np.nan, 1.0])

    def test_delete_unknown_id(self):
        sky = StreamingSkyline(d=2)
        with pytest.raises(KeyError):
            sky.delete(5)

    def test_delete_is_permanent(self):
        sky = StreamingSkyline(d=2)
        pid = sky.insert([1.0, 1.0])
        sky.delete(pid)
        with pytest.raises(KeyError):
            sky.delete(pid)
        assert len(sky) == 0

    def test_dominated_insert_is_buffered(self):
        sky = StreamingSkyline(d=2)
        sky.insert([1.0, 1.0])
        dominated = sky.insert([2.0, 2.0])
        assert dominated not in set(sky.skyline_ids())
        assert len(sky) == 2

    def test_insert_demotes_dominated_skyline(self):
        sky = StreamingSkyline(d=2)
        old = sky.insert([2.0, 2.0])
        new = sky.insert([1.0, 1.0])
        assert sky.skyline_ids() == [new]
        sky.delete(new)
        assert sky.skyline_ids() == [old]  # demoted point resurfaces

    def test_duplicates_are_both_skyline(self):
        sky = StreamingSkyline(d=2)
        a = sky.insert([1.0, 1.0])
        b = sky.insert([1.0, 1.0])
        assert sky.skyline_ids() == [a, b]

    def test_skyline_points_matrix(self):
        sky = StreamingSkyline(d=2)
        sky.insert([1.0, 4.0])
        sky.insert([4.0, 1.0])
        pts = sky.skyline_points()
        assert pts.shape == (2, 2)
        assert list(pts[0]) == [1.0, 4.0]

    def test_empty_skyline_points(self):
        pts = StreamingSkyline(d=3).skyline_points()
        assert pts.shape == (0, 3)
        assert pts.dtype == np.float64  # pinned: callers vstack onto this

    def test_counter_accumulates(self):
        sky = StreamingSkyline(d=2)
        sky.insert([1.0, 2.0])
        sky.insert([2.0, 1.0])
        assert sky.counter.tests > 0


class TestEquivalenceWithBatch:
    def test_insert_only_stream(self):
        rng = np.random.default_rng(0)
        pts = rng.random((200, 3))
        sky = StreamingSkyline(d=3, anchors=5)
        for p in pts:
            sky.insert(p)
        assert sky.skyline_ids() == brute_skyline_ids(pts)

    def test_sliding_window_stream(self):
        """Insert a window of 80 points, then slide: delete oldest, insert."""
        rng = np.random.default_rng(1)
        pts = rng.random((200, 3))
        sky = StreamingSkyline(d=3, anchors=4)
        ids = []
        for i in range(80):
            ids.append(sky.insert(pts[i]))
        for i in range(80, 200):
            sky.delete(ids[i - 80])
            ids.append(sky.insert(pts[i]))
        window = pts[120:200]
        expected = [ids[120 + k] for k in brute_skyline_ids(window)]
        assert sky.skyline_ids() == sorted(expected)

    def test_delete_everything(self):
        rng = np.random.default_rng(2)
        sky = StreamingSkyline(d=2)
        ids = [sky.insert(p) for p in rng.random((40, 2))]
        for pid in ids:
            sky.delete(pid)
        assert len(sky) == 0
        assert sky.skyline_ids() == []


class TestBatchedMutations:
    def test_insert_many_matches_sequential(self):
        rng = np.random.default_rng(3)
        prefix, batch = rng.random((120, 3)), rng.random((50, 3))
        batched = StreamingSkyline(d=3, anchors=4)
        sequential = StreamingSkyline(d=3, anchors=4)
        for p in prefix:
            batched.insert(p)
            sequential.insert(p)
        ids = batched.insert_many(batch)
        assert ids == [sequential.insert(p) for p in batch]
        assert batched.skyline_ids() == sequential.skyline_ids()

    def test_delete_many_matches_sequential(self):
        rng = np.random.default_rng(4)
        pts = rng.random((150, 3))
        batched = StreamingSkyline(d=3, anchors=4)
        sequential = StreamingSkyline(d=3, anchors=4)
        batched.insert_many(pts)
        for p in pts:
            sequential.insert(p)
        victims = rng.choice(150, size=40, replace=False)
        batched.delete_many(victims)
        for v in victims:
            sequential.delete(int(v))
        assert batched.skyline_ids() == sequential.skyline_ids()
        assert len(batched) == len(sequential)

    def test_insert_many_with_window_falls_back_correctly(self):
        rng = np.random.default_rng(5)
        pts = rng.random((60, 2))
        sky = StreamingSkyline(d=2, window=25)
        sky.insert_many(pts)
        assert len(sky) == 25
        window_pts = pts[-25:]
        expected = [35 + k for k in brute_skyline_ids(window_pts)]
        assert sky.skyline_ids() == expected

    def test_delete_many_rejects_dead_ids_atomically(self):
        sky = StreamingSkyline(d=2)
        a = sky.insert([1.0, 2.0])
        b = sky.insert([2.0, 1.0])
        sky.delete(a)
        with pytest.raises(KeyError):
            sky.delete_many([a, b])
        assert sky.skyline_ids() == [b]  # b untouched by the failed batch

    def test_witness_invariant_after_mixed_mutations(self):
        """Every buffered point records a live dominator as its witness."""
        rng = np.random.default_rng(6)
        sky = StreamingSkyline(d=3, anchors=4)
        ids = sky.insert_many(rng.random((200, 3)))
        sky.delete_many(rng.choice(ids, size=60, replace=False))
        sky.insert_many(rng.random((40, 3)))
        in_sky = set(sky.skyline_ids())
        for pid in sky.live_ids():
            if pid in in_sky:
                continue
            witness = int(sky._witness[pid])
            assert witness in set(sky.live_ids())
            w, v = sky._rows[witness], sky._rows[pid]
            assert np.all(w <= v) and np.any(w < v)


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.lists(st.floats(0, 1, allow_nan=False, width=16), min_size=3, max_size=3),
            st.booleans(),
        ),
        min_size=1,
        max_size=60,
    )
)
def test_random_interleavings_match_batch(ops):
    """Any insert/delete interleaving ends at the batch skyline."""
    sky = StreamingSkyline(d=3, anchors=3)
    live: dict[int, list[float]] = {}
    for coords, is_delete in ops:
        if is_delete and live:
            victim = next(iter(live))
            del live[victim]
            sky.delete(victim)
        else:
            pid = sky.insert(coords)
            live[pid] = coords
    if live:
        order = sorted(live)
        expected = [order[k] for k in brute_skyline_ids(np.array([live[i] for i in order]))]
        assert sky.skyline_ids() == expected
    else:
        assert sky.skyline_ids() == []


@pytest.mark.parametrize("backend", ["map", "flat"])
@pytest.mark.parametrize("window", [None, 12])
@settings(max_examples=15, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.lists(  # a batch of points, duplicates/ties likely
                st.lists(st.integers(0, 4), min_size=2, max_size=2),
                min_size=1,
                max_size=5,
            ),
            st.sampled_from(["insert", "insert_many", "delete", "delete_many"]),
            st.integers(0, 3),  # victim count for delete ops
        ),
        min_size=1,
        max_size=20,
    )
)
def test_mutation_bridge_matches_oracle(backend, window, ops):
    """Randomized mutation sequences track the brute-force oracle exactly.

    Drives every public mutation entry point (scalar and batched, with
    and without a sliding window) on both subset-index backends; after
    each step the live skyline must equal the oracle's and the charged
    dominance-test counter must be monotone non-decreasing.
    """
    sky = StreamingSkyline(d=2, anchors=2, backend=backend, window=window)
    live: dict[int, list[float]] = {}
    last_tests = 0
    for batch, op, victims in ops:
        if op in ("delete", "delete_many") and live:
            targets = sorted(live)[: max(1, victims)]
            if op == "delete":
                sky.delete(targets[0])
                del live[targets[0]]
            else:
                sky.delete_many(targets)
                for t in targets:
                    del live[t]
        else:
            rows = [[float(c) for c in coords] for coords in batch]
            if op == "insert_many" or len(rows) > 1:
                ids = sky.insert_many(rows)
            else:
                ids = [sky.insert(rows[0])]
            for pid, row in zip(ids, rows):
                live[pid] = row
            if window is not None:
                while len(live) > window:
                    del live[min(live)]  # mirror oldest-first eviction
        assert sky.counter.tests >= last_tests  # charged DT is monotone
        last_tests = sky.counter.tests
        if live:
            order = sorted(live)
            values = np.array([live[i] for i in order])
            expected = [order[k] for k in brute_skyline_ids(values)]
            assert sky.skyline_ids() == expected
        else:
            assert sky.skyline_ids() == []
        assert len(sky) == len(live)
