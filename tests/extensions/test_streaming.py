"""Unit and property tests for the streaming skyline extension."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DimensionMismatchError, InvalidParameterError
from repro.extensions.streaming import StreamingSkyline
from tests.conftest import brute_skyline_ids


class TestBasics:
    def test_construction_validation(self):
        with pytest.raises(InvalidParameterError):
            StreamingSkyline(d=0)
        with pytest.raises(InvalidParameterError):
            StreamingSkyline(d=3, anchors=0)

    def test_insert_returns_increasing_ids(self):
        sky = StreamingSkyline(d=2)
        assert sky.insert([1.0, 2.0]) == 0
        assert sky.insert([2.0, 1.0]) == 1
        assert len(sky) == 2

    def test_dimension_mismatch(self):
        sky = StreamingSkyline(d=3)
        with pytest.raises(DimensionMismatchError):
            sky.insert([1.0, 2.0])

    def test_nan_rejected(self):
        sky = StreamingSkyline(d=2)
        with pytest.raises(InvalidParameterError):
            sky.insert([np.nan, 1.0])

    def test_delete_unknown_id(self):
        sky = StreamingSkyline(d=2)
        with pytest.raises(KeyError):
            sky.delete(5)

    def test_delete_is_permanent(self):
        sky = StreamingSkyline(d=2)
        pid = sky.insert([1.0, 1.0])
        sky.delete(pid)
        with pytest.raises(KeyError):
            sky.delete(pid)
        assert len(sky) == 0

    def test_dominated_insert_is_buffered(self):
        sky = StreamingSkyline(d=2)
        sky.insert([1.0, 1.0])
        dominated = sky.insert([2.0, 2.0])
        assert dominated not in set(sky.skyline_ids())
        assert len(sky) == 2

    def test_insert_demotes_dominated_skyline(self):
        sky = StreamingSkyline(d=2)
        old = sky.insert([2.0, 2.0])
        new = sky.insert([1.0, 1.0])
        assert sky.skyline_ids() == [new]
        sky.delete(new)
        assert sky.skyline_ids() == [old]  # demoted point resurfaces

    def test_duplicates_are_both_skyline(self):
        sky = StreamingSkyline(d=2)
        a = sky.insert([1.0, 1.0])
        b = sky.insert([1.0, 1.0])
        assert sky.skyline_ids() == [a, b]

    def test_skyline_points_matrix(self):
        sky = StreamingSkyline(d=2)
        sky.insert([1.0, 4.0])
        sky.insert([4.0, 1.0])
        pts = sky.skyline_points()
        assert pts.shape == (2, 2)
        assert list(pts[0]) == [1.0, 4.0]

    def test_empty_skyline_points(self):
        assert StreamingSkyline(d=3).skyline_points().shape == (0, 3)

    def test_counter_accumulates(self):
        sky = StreamingSkyline(d=2)
        sky.insert([1.0, 2.0])
        sky.insert([2.0, 1.0])
        assert sky.counter.tests > 0


class TestEquivalenceWithBatch:
    def test_insert_only_stream(self):
        rng = np.random.default_rng(0)
        pts = rng.random((200, 3))
        sky = StreamingSkyline(d=3, anchors=5)
        for p in pts:
            sky.insert(p)
        assert sky.skyline_ids() == brute_skyline_ids(pts)

    def test_sliding_window_stream(self):
        """Insert a window of 80 points, then slide: delete oldest, insert."""
        rng = np.random.default_rng(1)
        pts = rng.random((200, 3))
        sky = StreamingSkyline(d=3, anchors=4)
        ids = []
        for i in range(80):
            ids.append(sky.insert(pts[i]))
        for i in range(80, 200):
            sky.delete(ids[i - 80])
            ids.append(sky.insert(pts[i]))
        window = pts[120:200]
        expected = [ids[120 + k] for k in brute_skyline_ids(window)]
        assert sky.skyline_ids() == sorted(expected)

    def test_delete_everything(self):
        rng = np.random.default_rng(2)
        sky = StreamingSkyline(d=2)
        ids = [sky.insert(p) for p in rng.random((40, 2))]
        for pid in ids:
            sky.delete(pid)
        assert len(sky) == 0
        assert sky.skyline_ids() == []


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.lists(st.floats(0, 1, allow_nan=False, width=16), min_size=3, max_size=3),
            st.booleans(),
        ),
        min_size=1,
        max_size=60,
    )
)
def test_random_interleavings_match_batch(ops):
    """Any insert/delete interleaving ends at the batch skyline."""
    sky = StreamingSkyline(d=3, anchors=3)
    live: dict[int, list[float]] = {}
    for coords, is_delete in ops:
        if is_delete and live:
            victim = next(iter(live))
            del live[victim]
            sky.delete(victim)
        else:
            pid = sky.insert(coords)
            live[pid] = coords
    if live:
        order = sorted(live)
        expected = [order[k] for k in brute_skyline_ids(np.array([live[i] for i in order]))]
        assert sky.skyline_ids() == expected
    else:
        assert sky.skyline_ids() == []
