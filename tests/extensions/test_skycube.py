"""Unit tests for subspace skylines and the skycube."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.extensions.skycube import Skycube, subspace_skyline
from tests.conftest import brute_skyline_ids


@pytest.fixture(scope="module")
def points():
    rng = np.random.default_rng(0)
    return rng.random((120, 4))


class TestSubspaceSkyline:
    def test_matches_projected_oracle(self, points):
        for dims in ([0], [1, 3], [0, 1, 2], [0, 1, 2, 3]):
            got = list(subspace_skyline(points, dims))
            assert got == brute_skyline_ids(points[:, dims])

    def test_dims_deduplicated_and_sorted(self, points):
        a = subspace_skyline(points, [2, 0, 2])
        b = subspace_skyline(points, [0, 2])
        assert np.array_equal(a, b)

    def test_rejects_empty_and_out_of_range(self, points):
        with pytest.raises(InvalidParameterError):
            subspace_skyline(points, [])
        with pytest.raises(InvalidParameterError):
            subspace_skyline(points, [7])
        with pytest.raises(InvalidParameterError):
            subspace_skyline(points, [-1])

    def test_single_dimension_keeps_all_minima(self):
        values = np.array([[1.0, 9.0], [1.0, 5.0], [2.0, 0.0]])
        got = list(subspace_skyline(values, [0]))
        assert got == [0, 1]  # both share the minimum in dim 0

    def test_counter_threading(self, points):
        from repro.stats.counters import DominanceCounter

        counter = DominanceCounter()
        subspace_skyline(points, [0, 1], counter=counter)
        assert counter.tests > 0


class TestSkycube:
    def test_cuboid_count(self, points):
        cube = Skycube(points)
        assert len(cube) == 2**4 - 1

    def test_every_cuboid_matches_oracle(self, points):
        cube = Skycube(points)
        for dims, size in cube.sizes().items():
            expected = brute_skyline_ids(points[:, list(dims)])
            assert list(cube.skyline(list(dims))) == expected
            assert size == len(expected)

    def test_unknown_subspace_rejected(self, points):
        cube = Skycube(points)
        with pytest.raises(InvalidParameterError):
            cube.skyline([9])

    def test_dimensionality_guard(self):
        with pytest.raises(InvalidParameterError):
            Skycube(np.ones((2, 17)))

    def test_counter_accumulates_across_cuboids(self, points):
        cube = Skycube(points)
        assert cube.counter.tests > 0
        assert cube.dimensionality == 4
