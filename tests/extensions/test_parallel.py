"""Unit tests for the multiprocessing parallel skyline."""

import os

import numpy as np
import pytest

from repro.data import generate
from repro.errors import InvalidParameterError
from repro.extensions.parallel import (
    SkylineWorkerPool,
    assemble_candidates,
    default_workers,
    parallel_skyline,
)
from repro.stats.counters import DominanceCounter
from tests.conftest import brute_skyline_ids


@pytest.fixture(scope="module")
def dataset():
    return generate("UI", n=600, d=4, seed=5)


class TestParallelSkyline:
    def test_workers_validation(self, dataset):
        with pytest.raises(InvalidParameterError):
            parallel_skyline(dataset, workers=0)

    def test_single_worker_is_sequential(self, dataset):
        got = parallel_skyline(dataset, workers=1)
        assert list(got) == brute_skyline_ids(dataset.values)

    @pytest.mark.parametrize("workers", [2, 3, 4])
    def test_matches_oracle(self, workers, dataset):
        got = parallel_skyline(dataset, workers=workers)
        assert list(got) == brute_skyline_ids(dataset.values)

    def test_more_workers_than_points(self):
        values = np.array([[1.0, 2.0], [2.0, 1.0], [3.0, 3.0]])
        got = parallel_skyline(values, workers=16)
        assert list(got) == [0, 1]

    def test_counter_includes_worker_tests(self, dataset):
        counter = DominanceCounter()
        parallel_skyline(dataset, workers=2, counter=counter)
        sequential = DominanceCounter()
        parallel_skyline(dataset, workers=1, counter=sequential)
        assert counter.tests > 0
        # Workers test within blocks plus a merge pass: roughly comparable
        # magnitude to the sequential run, never orders of magnitude off.
        assert counter.tests < 10 * sequential.tests + dataset.cardinality

    def test_algorithm_choices(self, dataset):
        got = parallel_skyline(
            dataset, workers=2, algorithm="salsa", merge_algorithm="sdi"
        )
        assert list(got) == brute_skyline_ids(dataset.values)

    def test_boosted_blocks_with_flat_merge(self, dataset):
        """Local boosted scans + merge through a flat-backend subset index."""
        got = parallel_skyline(
            dataset,
            workers=2,
            algorithm="sfs-subset",
            merge_algorithm="sfs-subset",
            index_backend="flat",
        )
        assert list(got) == brute_skyline_ids(dataset.values)

    def test_index_backend_matches_map_results(self, dataset):
        flat = parallel_skyline(
            dataset,
            workers=3,
            algorithm="sdi-subset",
            merge_algorithm="sdi-subset",
            index_backend="flat",
        )
        mapped = parallel_skyline(
            dataset,
            workers=3,
            algorithm="sdi-subset",
            merge_algorithm="sdi-subset",
            index_backend="map",
        )
        assert list(flat) == list(mapped)

    def test_duplicate_heavy(self, duplicate_heavy):
        got = parallel_skyline(duplicate_heavy, workers=3)
        assert list(got) == brute_skyline_ids(duplicate_heavy.values)

    def test_default_workers_is_cpu_count(self):
        # The former hard cap of 8 is gone: the default follows the host,
        # and the planner (not this function) bounds the effective count.
        assert default_workers() == max(1, os.cpu_count() or 1)

    def test_workers_defaults_when_omitted(self, dataset):
        got = parallel_skyline(dataset)
        assert list(got) == brute_skyline_ids(dataset.values)

    @pytest.mark.parametrize("partition", ["sorted", "even"])
    @pytest.mark.parametrize("prefix_size", [0, 4, None])
    def test_partition_and_prefix_matrix(self, dataset, partition, prefix_size):
        got = parallel_skyline(
            dataset,
            workers=3,
            algorithm="sfs-subset",
            merge_algorithm="sfs-subset",
            partition=partition,
            prefix_size=prefix_size,
        )
        assert list(got) == brute_skyline_ids(dataset.values)

    def test_block_growth_preserves_results(self, dataset):
        got = parallel_skyline(dataset, workers=3, block_growth=2.0)
        assert list(got) == brute_skyline_ids(dataset.values)

    def test_invalid_partition_rejected(self, dataset):
        with pytest.raises(InvalidParameterError):
            parallel_skyline(dataset, workers=2, partition="striped")

    def test_negative_prefix_size_rejected(self, dataset):
        with pytest.raises(InvalidParameterError):
            parallel_skyline(dataset, workers=2, prefix_size=-1)

    def test_head_subdivision_preserves_results(self, dataset, monkeypatch):
        # Force the large-n head split onto a small dataset: the head
        # region shatters into per-worker sub-blocks and the seeded merge
        # must still reproduce the serial skyline exactly.
        import repro.extensions.parallel as parallel_module

        monkeypatch.setattr(parallel_module, "_HEAD_SPLIT_MIN_N", 0)
        monkeypatch.setattr(parallel_module, "_MIN_HEAD_SUB_ROWS", 25)
        with SkylineWorkerPool(workers=3) as pool:
            got = parallel_skyline(dataset, workers=3, pool=pool)
            assert list(got) == brute_skyline_ids(dataset.values)
            # 3 head sub-blocks + 2 tail blocks were dispatched, on a
            # pool still capped at 3 processes.
            assert pool.stats["tasks_dispatched"] == 5
            assert pool.processes == 3


class TestAssembleCandidates:
    def test_sorted_intp_union(self):
        parts = [
            np.array([7, 3], dtype=np.intp),
            np.array([], dtype=np.intp),
            np.array([5, 1], dtype=np.int64),
        ]
        union = assemble_candidates(parts)
        assert union.dtype == np.intp
        assert union.tolist() == [1, 3, 5, 7]

    def test_empty_parts(self):
        union = assemble_candidates([])
        assert union.dtype == np.intp
        assert union.size == 0


class TestWorkerPoolReuse:
    def test_repeated_calls_reuse_pool_and_segment(self, dataset):
        with SkylineWorkerPool(workers=2) as pool:
            first = parallel_skyline(dataset, workers=2, pool=pool)
            second = parallel_skyline(dataset, workers=2, pool=pool)
            assert list(first) == list(second)
            assert list(first) == brute_skyline_ids(dataset.values)
            # One pool of processes, one shared-memory copy of the dataset:
            # the second call dispatched block bounds only, no array pickle.
            assert pool.stats["pool_starts"] == 1
            assert pool.stats["segments_created"] == 1
            assert pool.stats["segments_reused"] == 1
            assert pool.stats["tasks_dispatched"] == 4

    def test_distinct_datasets_get_distinct_segments(self, dataset):
        other = generate("CO", n=200, d=3, seed=11)
        with SkylineWorkerPool(workers=2) as pool:
            parallel_skyline(dataset, workers=2, pool=pool)
            parallel_skyline(other, workers=2, pool=pool)
            assert pool.stats["segments_created"] == 2
            assert pool.stats["pool_starts"] == 1

    def test_segment_cache_evicts_oldest(self, dataset):
        with SkylineWorkerPool(workers=2, max_segments=1) as pool:
            other = generate("CO", n=200, d=3, seed=11)
            parallel_skyline(dataset, workers=2, pool=pool)
            parallel_skyline(other, workers=2, pool=pool)
            parallel_skyline(dataset, workers=2, pool=pool)
            # The first segment was evicted to admit the second, so the
            # third call had to recreate it.
            assert pool.stats["segments_created"] == 3
            assert pool.stats["segments_reused"] == 0

    def test_pool_grows_for_larger_calls(self, dataset):
        with SkylineWorkerPool(workers=2) as pool:
            parallel_skyline(dataset, workers=2, pool=pool)
            parallel_skyline(dataset, workers=4, pool=pool)
            assert pool.processes >= 4
            assert pool.stats["pool_starts"] == 2

    def test_invalid_pool_size(self):
        with pytest.raises(InvalidParameterError):
            SkylineWorkerPool(workers=0)

    def test_order_segment_created_once(self, dataset):
        with SkylineWorkerPool(workers=2) as pool:
            parallel_skyline(dataset, workers=2, pool=pool, partition="sorted")
            parallel_skyline(dataset, workers=2, pool=pool, partition="sorted")
            assert pool.stats["order_segments_created"] == 1
            assert pool.stats["segments_created"] == 1

    def test_even_partition_needs_no_order_segment(self, dataset):
        with SkylineWorkerPool(workers=2) as pool:
            parallel_skyline(
                dataset, workers=2, pool=pool, partition="even", prefix_size=0
            )
            assert pool.stats["order_segments_created"] == 0


class TestTracedSpans:
    def test_prefix_span_visible_in_phase_aggregation(self, dataset):
        from repro.engine import SkylineEngine
        from repro.engine.context import ExecutionContext
        from repro.obs import Tracer, aggregate_phases

        engine = SkylineEngine(ExecutionContext(tracer=Tracer()))
        result = engine.execute(
            dataset, "sfs-subset", workers=2, parallel_strategy="prefix"
        )
        engine.close()
        phases = {phase.name for phase in aggregate_phases(result.trace)}
        assert {"parallel.prefix", "parallel.map", "parallel.merge"} <= phases


class TestDominanceBudget:
    def test_parallel_dt_within_budget_on_ui_50k(self):
        """Regression: parallel charged DT stays <= 1.2x serial (UI 50k).

        The PR 5 scheme recorded ~1.6x; the prefix exchange + sort-order
        partitioning + seeded merge must keep the redundancy within the
        bench's enforced budget on the bench's own configuration.
        """
        from repro.engine import SkylineEngine

        dataset = generate("UI", n=50_000, d=6, seed=0)
        serial = DominanceCounter()
        engine = SkylineEngine()
        serial_result = engine.execute(
            dataset, "sdi-subset", counter=serial, index_backend="flat", workers=1
        )
        engine.close()
        parallel = DominanceCounter()
        engine = SkylineEngine()
        parallel_result = engine.execute(
            dataset, "sdi-subset", counter=parallel, index_backend="flat", workers=2
        )
        engine.close()
        assert list(serial_result.indices) == list(parallel_result.indices)
        assert parallel.tests <= 1.2 * serial.tests
