"""Unit tests for the multiprocessing parallel skyline."""

import numpy as np
import pytest

from repro.data import generate
from repro.errors import InvalidParameterError
from repro.extensions.parallel import parallel_skyline
from repro.stats.counters import DominanceCounter
from tests.conftest import brute_skyline_ids


@pytest.fixture(scope="module")
def dataset():
    return generate("UI", n=600, d=4, seed=5)


class TestParallelSkyline:
    def test_workers_validation(self, dataset):
        with pytest.raises(InvalidParameterError):
            parallel_skyline(dataset, workers=0)

    def test_single_worker_is_sequential(self, dataset):
        got = parallel_skyline(dataset, workers=1)
        assert list(got) == brute_skyline_ids(dataset.values)

    @pytest.mark.parametrize("workers", [2, 3, 4])
    def test_matches_oracle(self, workers, dataset):
        got = parallel_skyline(dataset, workers=workers)
        assert list(got) == brute_skyline_ids(dataset.values)

    def test_more_workers_than_points(self):
        values = np.array([[1.0, 2.0], [2.0, 1.0], [3.0, 3.0]])
        got = parallel_skyline(values, workers=16)
        assert list(got) == [0, 1]

    def test_counter_includes_worker_tests(self, dataset):
        counter = DominanceCounter()
        parallel_skyline(dataset, workers=2, counter=counter)
        sequential = DominanceCounter()
        parallel_skyline(dataset, workers=1, counter=sequential)
        assert counter.tests > 0
        # Workers test within blocks plus a merge pass: roughly comparable
        # magnitude to the sequential run, never orders of magnitude off.
        assert counter.tests < 10 * sequential.tests + dataset.cardinality

    def test_algorithm_choices(self, dataset):
        got = parallel_skyline(
            dataset, workers=2, algorithm="salsa", merge_algorithm="sdi"
        )
        assert list(got) == brute_skyline_ids(dataset.values)

    def test_duplicate_heavy(self, duplicate_heavy):
        got = parallel_skyline(duplicate_heavy, workers=3)
        assert list(got) == brute_skyline_ids(duplicate_heavy.values)
