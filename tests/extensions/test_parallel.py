"""Unit tests for the multiprocessing parallel skyline."""

import numpy as np
import pytest

from repro.data import generate
from repro.errors import InvalidParameterError
from repro.extensions.parallel import (
    SkylineWorkerPool,
    default_workers,
    parallel_skyline,
)
from repro.stats.counters import DominanceCounter
from tests.conftest import brute_skyline_ids


@pytest.fixture(scope="module")
def dataset():
    return generate("UI", n=600, d=4, seed=5)


class TestParallelSkyline:
    def test_workers_validation(self, dataset):
        with pytest.raises(InvalidParameterError):
            parallel_skyline(dataset, workers=0)

    def test_single_worker_is_sequential(self, dataset):
        got = parallel_skyline(dataset, workers=1)
        assert list(got) == brute_skyline_ids(dataset.values)

    @pytest.mark.parametrize("workers", [2, 3, 4])
    def test_matches_oracle(self, workers, dataset):
        got = parallel_skyline(dataset, workers=workers)
        assert list(got) == brute_skyline_ids(dataset.values)

    def test_more_workers_than_points(self):
        values = np.array([[1.0, 2.0], [2.0, 1.0], [3.0, 3.0]])
        got = parallel_skyline(values, workers=16)
        assert list(got) == [0, 1]

    def test_counter_includes_worker_tests(self, dataset):
        counter = DominanceCounter()
        parallel_skyline(dataset, workers=2, counter=counter)
        sequential = DominanceCounter()
        parallel_skyline(dataset, workers=1, counter=sequential)
        assert counter.tests > 0
        # Workers test within blocks plus a merge pass: roughly comparable
        # magnitude to the sequential run, never orders of magnitude off.
        assert counter.tests < 10 * sequential.tests + dataset.cardinality

    def test_algorithm_choices(self, dataset):
        got = parallel_skyline(
            dataset, workers=2, algorithm="salsa", merge_algorithm="sdi"
        )
        assert list(got) == brute_skyline_ids(dataset.values)

    def test_boosted_blocks_with_flat_merge(self, dataset):
        """Local boosted scans + merge through a flat-backend subset index."""
        got = parallel_skyline(
            dataset,
            workers=2,
            algorithm="sfs-subset",
            merge_algorithm="sfs-subset",
            index_backend="flat",
        )
        assert list(got) == brute_skyline_ids(dataset.values)

    def test_index_backend_matches_map_results(self, dataset):
        flat = parallel_skyline(
            dataset,
            workers=3,
            algorithm="sdi-subset",
            merge_algorithm="sdi-subset",
            index_backend="flat",
        )
        mapped = parallel_skyline(
            dataset,
            workers=3,
            algorithm="sdi-subset",
            merge_algorithm="sdi-subset",
            index_backend="map",
        )
        assert list(flat) == list(mapped)

    def test_duplicate_heavy(self, duplicate_heavy):
        got = parallel_skyline(duplicate_heavy, workers=3)
        assert list(got) == brute_skyline_ids(duplicate_heavy.values)

    def test_default_workers_bounds(self):
        assert 1 <= default_workers() <= 8

    def test_workers_defaults_when_omitted(self, dataset):
        got = parallel_skyline(dataset)
        assert list(got) == brute_skyline_ids(dataset.values)


class TestWorkerPoolReuse:
    def test_repeated_calls_reuse_pool_and_segment(self, dataset):
        with SkylineWorkerPool(workers=2) as pool:
            first = parallel_skyline(dataset, workers=2, pool=pool)
            second = parallel_skyline(dataset, workers=2, pool=pool)
            assert list(first) == list(second)
            assert list(first) == brute_skyline_ids(dataset.values)
            # One pool of processes, one shared-memory copy of the dataset:
            # the second call dispatched block bounds only, no array pickle.
            assert pool.stats["pool_starts"] == 1
            assert pool.stats["segments_created"] == 1
            assert pool.stats["segments_reused"] == 1
            assert pool.stats["tasks_dispatched"] == 4

    def test_distinct_datasets_get_distinct_segments(self, dataset):
        other = generate("CO", n=200, d=3, seed=11)
        with SkylineWorkerPool(workers=2) as pool:
            parallel_skyline(dataset, workers=2, pool=pool)
            parallel_skyline(other, workers=2, pool=pool)
            assert pool.stats["segments_created"] == 2
            assert pool.stats["pool_starts"] == 1

    def test_segment_cache_evicts_oldest(self, dataset):
        with SkylineWorkerPool(workers=2, max_segments=1) as pool:
            other = generate("CO", n=200, d=3, seed=11)
            parallel_skyline(dataset, workers=2, pool=pool)
            parallel_skyline(other, workers=2, pool=pool)
            parallel_skyline(dataset, workers=2, pool=pool)
            # The first segment was evicted to admit the second, so the
            # third call had to recreate it.
            assert pool.stats["segments_created"] == 3
            assert pool.stats["segments_reused"] == 0

    def test_pool_grows_for_larger_calls(self, dataset):
        with SkylineWorkerPool(workers=2) as pool:
            parallel_skyline(dataset, workers=2, pool=pool)
            parallel_skyline(dataset, workers=4, pool=pool)
            assert pool.processes >= 4
            assert pool.stats["pool_starts"] == 2

    def test_invalid_pool_size(self):
        with pytest.raises(InvalidParameterError):
            SkylineWorkerPool(workers=0)
