"""Unit and property tests for partially ordered attribute domains."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidParameterError
from repro.extensions.partialorder import (
    PartialOrder,
    _dominates_mixed,
    partial_order_skyline,
)
from repro.stats.counters import DominanceCounter
from tests.conftest import brute_skyline_ids


@pytest.fixture(scope="module")
def sizes():
    return PartialOrder([("S", "M"), ("M", "L")])


@pytest.fixture(scope="module")
def colours():
    # red > pink, red > orange; pink/orange incomparable; blue isolated.
    return PartialOrder([("red", "pink"), ("red", "orange")], values=["blue"])


class TestPartialOrder:
    def test_transitive_closure(self, sizes):
        assert sizes.prefers("S", "L")

    def test_no_self_preference(self, sizes):
        assert not sizes.prefers("M", "M")
        assert sizes.at_least_as_good("M", "M")

    def test_incomparable_values(self, colours):
        assert not colours.prefers("pink", "orange")
        assert not colours.prefers("orange", "pink")
        assert not colours.comparable("pink", "orange")
        assert not colours.comparable("blue", "red")

    def test_domain_membership(self, colours):
        assert "blue" in colours
        assert "green" not in colours
        assert set(colours.domain) == {"red", "pink", "orange", "blue"}

    def test_unknown_value_rejected(self, sizes):
        with pytest.raises(InvalidParameterError):
            sizes.prefers("XL", "S")

    def test_cycle_rejected(self):
        with pytest.raises(InvalidParameterError):
            PartialOrder([("a", "b"), ("b", "a")])

    def test_empty_rejected(self):
        with pytest.raises(InvalidParameterError):
            PartialOrder([])

    def test_rank_matrix(self, sizes):
        ranks = sizes.rank_matrix(["S", "L", "S"])
        assert ranks[0] == ranks[2]
        assert ranks[0] != ranks[1]


class TestMixedDominance:
    def test_numeric_plus_partial(self, sizes):
        assert _dominates_mixed((1.0, "S"), (2.0, "L"), {1: sizes})
        assert not _dominates_mixed((2.0, "S"), (1.0, "L"), {1: sizes})

    def test_incomparable_partial_blocks_dominance(self, colours):
        assert not _dominates_mixed((1.0, "pink"), (2.0, "orange"), {1: colours})

    def test_equal_partial_values_pass_through(self, sizes):
        assert _dominates_mixed((1.0, "M"), (2.0, "M"), {1: sizes})
        assert not _dominates_mixed((1.0, "M"), (1.0, "M"), {1: sizes})


class TestPartialOrderSkyline:
    def test_doc_example(self, sizes):
        rows = [(10.0, "S"), (5.0, "L"), (5.0, "M"), (4.0, "L")]
        assert partial_order_skyline(rows, {1: sizes}) == [0, 2, 3]

    def test_empty_input(self, sizes):
        assert partial_order_skyline([], {1: sizes}) == []

    def test_pure_numeric_matches_oracle(self):
        rng = np.random.default_rng(0)
        values = rng.random((120, 3))
        got = partial_order_skyline([tuple(r) for r in values], orders={})
        assert got == brute_skyline_ids(values)

    def test_all_incomparable_domain_keeps_everything(self, colours):
        rows = [(1.0, "pink"), (1.0, "orange"), (1.0, "blue")]
        assert partial_order_skyline(rows, {1: colours}) == [0, 1, 2]

    def test_dimension_validation(self, sizes):
        with pytest.raises(InvalidParameterError):
            partial_order_skyline([(1.0,)], {5: sizes})

    def test_ragged_rows_rejected(self, sizes):
        with pytest.raises(InvalidParameterError):
            partial_order_skyline([(1.0, "S"), (1.0,)], {1: sizes})

    def test_counter_charged(self, sizes):
        counter = DominanceCounter()
        partial_order_skyline(
            [(1.0, "S"), (2.0, "M"), (3.0, "L")], {1: sizes}, counter=counter
        )
        assert counter.tests > 0

    def test_members_mutually_undominated(self, sizes, colours):
        rng = np.random.default_rng(1)
        size_values = ["S", "M", "L"]
        colour_values = ["red", "pink", "orange", "blue"]
        rows = [
            (
                float(rng.integers(0, 4)),
                size_values[rng.integers(0, 3)],
                colour_values[rng.integers(0, 4)],
            )
            for _ in range(120)
        ]
        orders = {1: sizes, 2: colours}
        sky = partial_order_skyline(rows, orders)
        members = set(sky)
        for i in sky:
            for j in range(len(rows)):
                if i != j:
                    assert not _dominates_mixed(rows[j], rows[i], orders)
        for i in range(len(rows)):
            if i not in members:
                assert any(
                    _dominates_mixed(rows[j], rows[i], orders) for j in members
                )


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 3), st.sampled_from(["S", "M", "L"])),
        max_size=40,
    )
)
def test_partial_skyline_equals_total_order_on_a_chain(rows):
    """A chain partial order is a total order: results must match numeric."""
    sizes = PartialOrder([("S", "M"), ("M", "L")])
    rank = {"S": 0.0, "M": 1.0, "L": 2.0}
    got = partial_order_skyline(rows, {1: sizes})
    numeric = [(float(a), rank[b]) for a, b in rows]
    expected = brute_skyline_ids(np.asarray(numeric).reshape(len(rows), 2)) if rows else []
    assert got == expected
