"""Unit tests for top-k dominating queries."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.extensions.topk import dominance_score, top_k_dominating
from repro.stats.counters import DominanceCounter


def brute_scores(values: np.ndarray) -> list[int]:
    n = values.shape[0]
    scores = []
    for i in range(n):
        count = 0
        for j in range(n):
            if j != i and np.all(values[i] <= values[j]) and np.any(values[i] < values[j]):
                count += 1
        scores.append(count)
    return scores


class TestDominanceScore:
    def test_matches_bruteforce(self):
        rng = np.random.default_rng(0)
        values = rng.random((80, 3))
        expected = brute_scores(values)
        for i in range(80):
            assert dominance_score(values, i) == expected[i]

    def test_id_validation(self):
        with pytest.raises(InvalidParameterError):
            dominance_score(np.ones((3, 2)), 3)

    def test_counter_charged(self):
        counter = DominanceCounter()
        dominance_score(np.ones((10, 2)), 0, counter)
        assert counter.tests == 9

    def test_duplicates_not_self_dominating(self):
        values = np.ones((5, 2))
        assert dominance_score(values, 0) == 0


class TestTopKDominating:
    def test_k_validation(self):
        with pytest.raises(InvalidParameterError):
            top_k_dominating(np.ones((2, 2)), k=0)

    @pytest.mark.parametrize("k", [1, 2, 5, 10])
    def test_matches_bruteforce_ranking(self, k):
        rng = np.random.default_rng(k)
        values = rng.random((120, 3))
        scores = brute_scores(values)
        expected = sorted(
            ((i, s) for i, s in enumerate(scores)), key=lambda p: (-p[1], p[0])
        )[:k]
        assert top_k_dominating(values, k=k) == expected

    def test_chain_example(self):
        values = np.array([[float(i)] * 2 for i in range(6)])
        assert top_k_dominating(values, k=3) == [(0, 5), (1, 4), (2, 3)]

    def test_k_larger_than_dataset(self):
        values = np.array([[1.0, 2.0], [2.0, 1.0]])
        assert top_k_dominating(values, k=10) == [(0, 0), (1, 0)]

    def test_top1_is_a_skyline_point(self, ui_small):
        import repro

        (top, _), = top_k_dominating(ui_small, k=1)
        assert top in repro.skyline(ui_small, algorithm="bruteforce")

    def test_scores_descending(self, ui_small):
        result = top_k_dominating(ui_small, k=8)
        scores = [s for _, s in result]
        assert scores == sorted(scores, reverse=True)
