"""Schema-v2 report handling of ``benchmarks/bench_throughput.py``.

The script is not a package module, so it is loaded from its file path;
these tests exercise the pure report-file helpers (load/upsert/key) that
implement the dedup-on-rerun contract — no benchmark workloads run here.
"""

import importlib.util
import json
from pathlib import Path

import pytest

_SCRIPT = (
    Path(__file__).resolve().parents[2] / "benchmarks" / "bench_throughput.py"
)


@pytest.fixture(scope="module")
def bench():
    spec = importlib.util.spec_from_file_location("bench_throughput", _SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestReportSchema:
    def test_missing_file_yields_fresh_report(self, bench, tmp_path):
        report = bench.load_report(tmp_path / "nope.json")
        assert report == {
            "schema_version": bench.SCHEMA_VERSION,
            "scenarios": {},
        }

    def test_legacy_report_discarded(self, bench, tmp_path):
        target = tmp_path / "BENCH.json"
        target.write_text(json.dumps({"config": {}, "hosts": {}}))
        report = bench.load_report(target)
        assert report["schema_version"] == bench.SCHEMA_VERSION
        assert report["scenarios"] == {}

    def test_corrupt_file_discarded(self, bench, tmp_path):
        target = tmp_path / "BENCH.json"
        target.write_text("{not json")
        assert bench.load_report(target)["scenarios"] == {}

    def test_upsert_replaces_not_appends(self, bench, tmp_path):
        target = tmp_path / "BENCH.json"
        report = bench.load_report(target)
        key = bench.scenario_key("flat_vs_map", "UI", 100, 4, 0)
        bench.upsert(report, key, {"speedup": 1.0})
        bench.upsert(report, key, {"speedup": 2.0})
        assert len(report["scenarios"]) == 1
        assert report["scenarios"][key]["speedup"] == 2.0

    def test_distinct_configs_coexist(self, bench):
        report = {"schema_version": bench.SCHEMA_VERSION, "scenarios": {}}
        bench.upsert(
            report, bench.scenario_key("flat_vs_map", "UI", 100, 4, 0), {}
        )
        bench.upsert(
            report, bench.scenario_key("flat_vs_map", "UI", 4000, 6, 0), {}
        )
        bench.upsert(
            report, bench.scenario_key("block_parallel", "UI", 100, 4, 0), {}
        )
        assert len(report["scenarios"]) == 3

    def test_roundtrip_preserves_other_scenarios(self, bench, tmp_path):
        target = tmp_path / "BENCH.json"
        first = bench.load_report(target)
        bench.upsert(
            first, bench.scenario_key("phases", "UI", 100, 4, 0), {"a": 1}
        )
        target.write_text(json.dumps(first))
        second = bench.load_report(target)
        bench.upsert(
            second, bench.scenario_key("phases", "CO", 100, 4, 0), {"b": 2}
        )
        assert len(second["scenarios"]) == 2

    def test_entries_are_timestamped(self, bench):
        report = {"schema_version": bench.SCHEMA_VERSION, "scenarios": {}}
        key = bench.scenario_key("phases", "UI", 1, 1, 0)
        bench.upsert(report, key, {})
        assert isinstance(report["scenarios"][key]["recorded_unix"], int)


class TestTrajectoryHistory:
    def test_upsert_accumulates_history_samples(self, bench):
        report = {"schema_version": bench.SCHEMA_VERSION, "scenarios": {}}
        key = bench.scenario_key("repeated_queries", "UI", 100, 4, 0)
        bench.upsert(report, key, {"cold_s": 1.0})
        bench.upsert(report, key, {"cold_s": 2.0})
        history = report["scenarios"][key]["history"]
        assert len(history) == 2
        assert history[0]["metrics"]["cold_s"] == 1.0
        assert history[1]["metrics"]["cold_s"] == 2.0

    def test_history_never_nests_inside_samples(self, bench):
        # trajectory_sample collects metrics, not the history subtree —
        # otherwise the report would grow quadratically run over run.
        report = {"schema_version": bench.SCHEMA_VERSION, "scenarios": {}}
        key = bench.scenario_key("repeated_queries", "UI", 100, 4, 0)
        bench.upsert(report, key, {"cold_s": 1.0})
        bench.upsert(report, key, {"cold_s": 2.0})
        for sample in report["scenarios"][key]["history"]:
            assert set(sample) == {"recorded_unix", "plan", "metrics"}
            assert "history" not in sample["metrics"]

    def test_history_capped_at_max(self, bench):
        report = {"schema_version": bench.SCHEMA_VERSION, "scenarios": {}}
        key = bench.scenario_key("phases", "UI", 1, 1, 0)
        for i in range(bench.MAX_HISTORY + 5):
            bench.upsert(report, key, {"cold_s": float(i)})
        history = report["scenarios"][key]["history"]
        assert len(history) == bench.MAX_HISTORY
        # Oldest samples rotated out; the newest survives.
        assert history[-1]["metrics"]["cold_s"] == float(bench.MAX_HISTORY + 4)

    def test_plan_carried_into_samples(self, bench):
        report = {"schema_version": bench.SCHEMA_VERSION, "scenarios": {}}
        key = bench.scenario_key("repeated_queries", "UI", 100, 4, 0)
        plan = {"algorithm": "sfs-subset", "index_backend": "map"}
        bench.upsert(report, key, {"cold_s": 1.0, "plan": plan})
        assert report["scenarios"][key]["history"][0]["plan"] == plan

    def test_plan_fields_extracts_executed_plan(self, bench):
        class Plan:
            label = "sdi-subset"
            index_backend = "flat"
            incremental = None
            parallel_strategy = "blocks"
            workers = 4

        fields = bench.plan_fields(Plan())
        assert fields == {
            "algorithm": "sdi-subset",
            "index_backend": "flat",
            "incremental": False,
            "parallel_strategy": "blocks",
            "workers": 4,
        }


class TestGateStatus:
    def test_block_parallel_skip_records_explicit_reason(self, bench):
        # The schema contract: a skipped wall gate is never a silent null —
        # run_block_parallel writes gate_pass=None together with a
        # skip_reason string (asserted end-to-end by the CI smoke run);
        # describe_gates must surface that reason.
        entry = {
            "gate_pass": None,
            "skip_reason": "cpu_count=1 < workers=4: no cores",
            "dt_gate_pass": True,
            "identical": True,
        }
        status = bench.describe_gates(entry)
        assert "wall-gate=SKIPPED (cpu_count=1 < workers=4: no cores)" in status
        assert "dt-gate=PASS" in status
        assert "identical=yes" in status

    def test_describe_gates_handles_legacy_gate_skipped(self, bench):
        entry = {"gate_pass": None, "gate_skipped": "old reason"}
        assert "wall-gate=SKIPPED (old reason)" in bench.describe_gates(entry)

    def test_describe_gates_pass_fail_and_bare_entries(self, bench):
        assert "wall-gate=PASS" in bench.describe_gates({"gate_pass": True})
        assert "wall-gate=FAIL" in bench.describe_gates({"gate_pass": False})
        assert "dt-gate=FAIL" in bench.describe_gates({"dt_gate_pass": False})
        assert "warm-2x=PASS" in bench.describe_gates({"meets_2x": True})
        assert "identical=NO" in bench.describe_gates({"identical": False})
        assert bench.describe_gates({}) == "no gates"

    def test_list_scenarios_prints_every_recorded_key(
        self, bench, tmp_path, capsys
    ):
        target = tmp_path / "BENCH.json"
        report = bench.load_report(target)
        key = bench.scenario_key("block_parallel", "UI", 1000, 6, 0)
        bench.upsert(
            report,
            key,
            {"gate_pass": True, "dt_gate_pass": True, "identical": True},
        )
        target.write_text(json.dumps(report))
        assert bench.main(["--list-scenarios", "--out", str(target)]) == 0
        out = capsys.readouterr().out
        assert key in out
        assert "wall-gate=PASS" in out

    def test_list_scenarios_empty_report(self, bench, tmp_path, capsys):
        assert (
            bench.main(["--list-scenarios", "--out", str(tmp_path / "x.json")])
            == 0
        )
        assert "no recorded scenarios" in capsys.readouterr().out
