"""Unit tests for the ``python -m repro.bench`` command line."""

import pytest

from repro.bench.__main__ import main


class TestBenchCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table10_11" in out
        assert "ablation_sigma" in out

    def test_single_experiment(self, capsys):
        assert main(["fig2", "--scale", "0.002"]) == 0
        out = capsys.readouterr().out
        assert "Figure 2" in out
        assert "completed in" in out

    def test_alias(self, capsys):
        assert main(["table16", "--scale", "0.002"]) == 0
        assert "NBA" in capsys.readouterr().out

    def test_out_file_appended(self, tmp_path, capsys):
        target = tmp_path / "results.txt"
        assert main(["fig2", "--scale", "0.002", "--out", str(target)]) == 0
        assert main(["fig6", "--scale", "0.002", "--out", str(target)]) == 0
        content = target.read_text()
        assert "Figure 2" in content and "Figure 6" in content

    def test_unknown_experiment_raises(self):
        with pytest.raises(Exception):
            main(["table99"])

    def test_json_output(self, tmp_path, capsys):
        import json

        target = tmp_path / "raw.json"
        assert main(["fig2", "--scale", "0.002", "--json", str(target)]) == 0
        capsys.readouterr()
        payload = json.loads(target.read_text())
        assert "fig2" in payload
        assert payload["fig2"]["data"]["series"]["AC"]

    def test_seed_changes_workload(self, capsys):
        assert main(["fig2", "--scale", "0.002", "--seed", "1"]) == 0
        first = capsys.readouterr().out
        assert main(["fig2", "--scale", "0.002", "--seed", "2"]) == 0
        second = capsys.readouterr().out
        assert first != second
