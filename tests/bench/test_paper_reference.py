"""Sanity tests over the transcribed paper numbers."""

import pytest

from repro.bench import paper_reference as paper
from repro.bench.runner import DEFAULT_ALGORITHMS


class TestTranscription:
    def test_all_tables_present(self):
        assert set(paper.TABLES) == set(range(2, 18))

    @pytest.mark.parametrize("table", sorted(paper.TABLES))
    def test_every_table_has_the_full_lineup(self, table):
        assert set(paper.TABLES[table]) == set(DEFAULT_ALGORITHMS)

    @pytest.mark.parametrize("table", [2, 3, 6, 7, 10, 11])
    def test_dim_sweeps_have_nine_columns(self, table):
        for row in paper.TABLES[table].values():
            assert len(row) == 9
            assert "2-D" in row and "24-D" in row

    @pytest.mark.parametrize("table", [4, 5, 8, 9, 12, 13])
    def test_card_sweeps_have_ten_columns(self, table):
        for row in paper.TABLES[table].values():
            assert len(row) == 10
            assert "100K" in row and "1M" in row

    def test_values_non_negative(self):
        for table in paper.TABLES.values():
            for row in table.values():
                assert all(v >= 0 for v in row.values())

    def test_table1_sizes(self):
        assert paper.TABLE1_DIMS["AC"]["8-D"] == 95898
        assert paper.TABLE1_CARDS["CO"]["1M"] == 208


class TestPaperGain:
    def test_matches_published_gain_cells(self):
        # Table 2, SFS at 8-D: the paper prints "x 4.84".
        assert paper.paper_gain(2, "sfs", "8-D") == pytest.approx(4.84, abs=0.01)
        # Table 10, SDI at 8-D: the paper prints "x 7.30".
        assert paper.paper_gain(10, "sdi", "8-D") == pytest.approx(7.30, abs=0.01)

    def test_no_gain_cells_are_none(self):
        # Table 2, SFS at 2-D: identical values, printed "-".
        assert paper.paper_gain(2, "sfs", "2-D") is None
        # Table 8, SaLSa everywhere: boosted DT is higher, printed "-".
        assert paper.paper_gain(8, "salsa", "100K") is None

    def test_headline_crossover_is_in_the_numbers(self):
        """Table 11: SDI-Subset beats BSkyTree-P on UI from 8-D onward."""
        for column in ("8-D", "10-D", "12-D"):
            assert (
                paper.TABLE11["sdi-subset"][column]
                < paper.TABLE11["bskytree-p"][column]
            )

    def test_bskytree_p_wins_ac_runtime_at_moderate_d(self):
        """Table 3: BSkyTree-P wins AC at moderate dimensionality ..."""
        for column in ("4-D", "8-D", "12-D"):
            fastest = min(row[column] for row in paper.TABLE3.values())
            assert paper.TABLE3["bskytree-p"][column] == fastest

    def test_sdi_subset_overtakes_bskytree_p_on_high_d_ac(self):
        """... while SDI-Subset overtakes it in high dimensionality.

        (Section 6.2 says "16-D and 24-D"; in the published Table 3 the
        crossover cells are actually 20-D and 24-D.)
        """
        for column in ("20-D", "24-D"):
            assert (
                paper.TABLE3["sdi-subset"][column]
                < paper.TABLE3["bskytree-p"][column]
            )
