"""Unit tests for the measurement runner."""

import pytest

from repro.bench.runner import DEFAULT_ALGORITHMS, run_algorithms, run_one
from repro.data import generate


@pytest.fixture(scope="module")
def dataset():
    return generate("UI", n=200, d=4, seed=0)


class TestRunOne:
    def test_metric_row_contents(self, dataset):
        row = run_one(dataset, "sfs")
        assert row.algorithm == "sfs"
        assert row.cardinality == 200
        assert row.dominance_tests > 0
        assert row.skyline_size > 0
        assert row.elapsed_seconds > 0

    def test_repeats_validation(self, dataset):
        with pytest.raises(ValueError):
            run_one(dataset, "sfs", repeats=0)

    def test_repeats_average_timing(self, dataset):
        row = run_one(dataset, "sfs", repeats=3)
        assert row.elapsed_seconds > 0

    def test_sigma_forwarded_to_boosted(self, dataset):
        row = run_one(dataset, "sfs-subset", sigma=2)
        assert row.algorithm == "sfs-subset"

    def test_kwargs_forwarded(self, dataset):
        row = run_one(dataset, "bnl", window_size=16)
        assert row.dominance_tests > 0


class TestRunAlgorithms:
    def test_default_lineup(self, dataset):
        rows = run_algorithms(dataset)
        assert [r.algorithm for r in rows] == list(DEFAULT_ALGORITHMS)

    def test_all_rows_same_skyline_size(self, dataset):
        rows = run_algorithms(dataset)
        sizes = {r.skyline_size for r in rows}
        assert len(sizes) == 1

    def test_sigma_only_applied_to_boosted(self, dataset):
        rows = run_algorithms(dataset, ["sfs", "sfs-subset"], sigma=2)
        assert len(rows) == 2
