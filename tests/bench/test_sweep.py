"""Unit tests for sweep configuration."""

import pytest

from repro.bench.sweep import PAPER_CARDS, PAPER_DIMS, SweepConfig
from repro.errors import InvalidParameterError


class TestSweepConfig:
    def test_defaults(self):
        cfg = SweepConfig()
        assert cfg.dims == PAPER_DIMS
        assert cfg.card(200_000) == 4000
        assert len(cfg.cardinalities) == 10

    def test_full_uses_paper_grid(self):
        cfg = SweepConfig(full=True)
        assert cfg.dims == PAPER_DIMS
        assert cfg.card(200_000) == 200_000
        assert cfg.cardinalities == PAPER_CARDS

    def test_minimum_cardinality_floor(self):
        cfg = SweepConfig(scale=0.0001)
        assert cfg.card(200_000) == 200

    def test_scale_validation(self):
        with pytest.raises(InvalidParameterError):
            SweepConfig(scale=0)
        with pytest.raises(InvalidParameterError):
            SweepConfig(scale=1.5)

    def test_repeats_validation(self):
        with pytest.raises(InvalidParameterError):
            SweepConfig(repeats=0)

    def test_frozen(self):
        cfg = SweepConfig()
        with pytest.raises(Exception):
            cfg.scale = 0.5  # type: ignore[misc]
