"""Smoke tests: every experiment runs end-to-end at tiny scale.

These are the integration tests of the reproduction harness itself: each
table/figure entry point must produce a non-empty paper-style report at
scale 0.002 (200-400 points), with the structural properties the paper's
artefact has (correct row/column sets, gain rows, histogram buckets).
"""

import pytest

from repro.bench.experiments import EXPERIMENTS, run_experiment
from repro.bench.runner import DEFAULT_ALGORITHMS
from repro.bench.sweep import SweepConfig
from repro.errors import InvalidParameterError

TINY = SweepConfig(scale=0.002)


@pytest.fixture(scope="module")
def tiny_cfg():
    return TINY


@pytest.mark.slow
@pytest.mark.parametrize("name", sorted(EXPERIMENTS))
def test_experiment_runs(name, tiny_cfg):
    report = run_experiment(name, tiny_cfg)
    assert report.experiment == name
    assert report.text.strip()
    assert report.data


def test_alias_resolution(tiny_cfg):
    report = run_experiment("table10", tiny_cfg)
    assert report.experiment == "table10_11"


def test_unknown_experiment():
    with pytest.raises(InvalidParameterError):
        run_experiment("table99")


@pytest.mark.slow
def test_dim_sweep_structure(tiny_cfg):
    report = run_experiment("table10_11", tiny_cfg)
    dt = report.data["dt"]
    assert set(dt) == set(DEFAULT_ALGORITHMS)
    assert report.data["columns"] == [f"{d}-D" for d in tiny_cfg.dims]
    assert "Performance Gain" in report.text

def test_fig2_histogram_structure(tiny_cfg):
    report = run_experiment("fig2", tiny_cfg)
    series = report.data["series"]
    assert set(series) == {"AC", "CO", "UI"}
    assert all(len(v) == 8 for v in series.values())
    # No pruned point carries more than d-1 subspace dimensions w.r.t. a
    # single skyline pivot (a full mask would mean the pivot is dominated).
    assert all(v[7] == 0 for v in series.values())


@pytest.mark.slow
def test_table1_orders_kinds(tiny_cfg):
    report = run_experiment("table1", tiny_cfg)
    dims = report.data["dims"]
    assert dims["AC datasets"]["8-D"] > dims["CO datasets"]["8-D"]
    assert dims["UI datasets"]["8-D"] > dims["CO datasets"]["8-D"]


@pytest.mark.slow
def test_real_dataset_tables_record_sigma(tiny_cfg):
    assert run_experiment("table15", tiny_cfg).data["sigma"] == 4
    assert run_experiment("table16", tiny_cfg).data["sigma"] == 2
    assert run_experiment("table17", tiny_cfg).data["sigma"] == 3
