"""Unit tests for paper-style table formatting."""

from repro.bench.tables import format_histogram_table, format_paper_table


class TestFormatPaperTable:
    def test_layout_with_gain_rows(self):
        data = {
            "sfs": {"2-D": 10.0, "4-D": 100.0},
            "sfs-subset": {"2-D": 10.0, "4-D": 20.0},
        }
        text = format_paper_table(
            "Table X", "Dimensionality", ["2-D", "4-D"], data, ["sfs", "sfs-subset"]
        )
        lines = text.splitlines()
        assert lines[0] == "Table X"
        assert lines[2].startswith("Dimensionality")
        assert any(line.startswith("Performance Gain") for line in lines)
        gain_line = next(l for l in lines if l.startswith("Performance Gain"))
        assert "-" in gain_line  # no gain at 2-D
        assert "x 5.00" in gain_line  # 100/20 at 4-D

    def test_no_gain_rows_without_boosted_pairs(self):
        data = {"bnl": {"a": 1.0}}
        text = format_paper_table("T", "col", ["a"], data, ["bnl"])
        assert "Performance Gain" not in text

    def test_value_formatting(self):
        data = {"sfs": {"c": 12345.678}, "sdi": {"c": 0.00123}}
        text = format_paper_table("T", "col", ["c"], data, ["sfs", "sdi"])
        assert "12345.7" in text
        assert "0.00123" in text

    def test_columns_aligned(self):
        data = {
            "sfs": {"a": 1.0, "b": 2.0},
            "bskytree-p": {"a": 3.0, "b": 4.0},
        }
        text = format_paper_table("T", "col", ["a", "b"], data, ["sfs", "bskytree-p"])
        rows = text.splitlines()[2:]
        # The second column starts at the same offset in every row.
        sfs_row = next(r for r in rows if r.startswith("sfs"))
        bsky_row = next(r for r in rows if r.startswith("bskytree-p"))
        assert sfs_row.index("1") == bsky_row.index("3")


class TestFormatHistogramTable:
    def test_buckets_rendered(self):
        text = format_histogram_table("H", {"AC": [5, 3, 1], "UI": [2, 2, 2]})
        lines = text.splitlines()
        assert lines[2].split()[-3:] == ["1", "2", "3"]
        assert "AC" in text and "UI" in text

    def test_short_series_padded(self):
        text = format_histogram_table("H", {"A": [1, 2, 3], "B": [9]})
        b_line = next(l for l in text.splitlines() if l.startswith("B"))
        assert b_line.split()[1:] == ["9", "0", "0"]
