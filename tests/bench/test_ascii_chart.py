"""Unit tests for the ASCII figure rendering."""

import pytest

from repro.bench.ascii_chart import bar_chart, line_chart
from repro.errors import InvalidParameterError


class TestLineChart:
    def test_basic_render(self):
        text = line_chart({"a": [1.0, 2.0]}, ["x", "y"], height=4)
        lines = text.splitlines()
        assert len(lines) == 4 + 3  # grid + axis + labels + legend
        assert "o=a" in lines[-1]

    def test_title_prepended(self):
        text = line_chart({"a": [1.0]}, ["x"], title="T")
        assert text.splitlines()[0] == "T"

    def test_multiple_series_get_distinct_markers(self):
        text = line_chart({"a": [1.0, 5.0], "b": [5.0, 1.0]}, ["x", "y"])
        assert "o=a" in text and "x=b" in text

    def test_collision_marker(self):
        text = line_chart({"a": [1.0, 2.0], "b": [1.0, 3.0]}, ["x", "y"], height=4)
        assert "*" in text  # overlapping first points

    def test_constant_series(self):
        text = line_chart({"a": [2.0, 2.0, 2.0]}, ["1", "2", "3"])
        assert "o" in text

    def test_log_scale_handles_zero(self):
        text = line_chart({"a": [0.0, 100.0]}, ["x", "y"], log_y=True)
        assert "o" in text

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            line_chart({}, ["x"])
        with pytest.raises(InvalidParameterError):
            line_chart({"a": [1.0]}, ["x", "y"])
        with pytest.raises(InvalidParameterError):
            line_chart({"a": [1.0]}, ["x"], height=1)

    def test_extreme_values_stay_on_grid(self):
        text = line_chart({"a": [1e-9, 1e9]}, ["x", "y"], height=5)
        grid = "\n".join(text.splitlines()[:-3])  # drop axis/labels/legend
        assert grid.count("o") == 2


class TestBarChart:
    def test_counts_rendered(self):
        text = bar_chart({"AC": [10, 5, 0]})
        lines = text.splitlines()
        assert lines[0] == "AC"
        assert lines[1].endswith("10")
        assert lines[3].endswith("0")

    def test_bar_lengths_proportional(self):
        text = bar_chart({"A": [10, 5]}, width=10)
        lines = text.splitlines()
        assert lines[1].count("#") == 10
        assert lines[2].count("#") == 5

    def test_log_scale_compresses(self):
        linear = bar_chart({"A": [1, 1000]}, width=30)
        logged = bar_chart({"A": [1, 1000]}, width=30, log_x=True)
        assert linear.splitlines()[1].count("#") < logged.splitlines()[1].count("#")

    def test_zero_only_series(self):
        text = bar_chart({"A": [0, 0]})
        assert "#" not in text

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            bar_chart({})
        with pytest.raises(InvalidParameterError):
            bar_chart({"A": [1]}, width=0)
