"""Cross-registry consistency: harness names must resolve everywhere."""

from repro.algorithms.registry import available_algorithms, get_algorithm
from repro.bench.runner import BOOSTED_PAIRS, DEFAULT_ALGORITHMS
from repro.bench import paper_reference as paper


class TestNameConsistency:
    def test_default_lineup_resolves(self):
        for name in DEFAULT_ALGORITHMS:
            assert get_algorithm(name).name == name

    def test_boosted_pairs_are_in_the_lineup(self):
        for base, boosted in BOOSTED_PAIRS:
            assert base in DEFAULT_ALGORITHMS
            assert boosted in DEFAULT_ALGORITHMS
            assert boosted == f"{base}-subset"

    def test_lineup_matches_paper_reference_rows(self):
        for table in paper.TABLES.values():
            assert set(table) == set(DEFAULT_ALGORITHMS)

    def test_lineup_is_subset_of_registry(self):
        registry = set(available_algorithms())
        assert set(DEFAULT_ALGORITHMS) <= registry

    def test_every_boostable_host_has_a_boosted_name(self):
        registry = set(available_algorithms())
        for name in registry:
            if name.endswith("-subset"):
                assert name.removesuffix("-subset") in registry
