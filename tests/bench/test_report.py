"""Tests for the EXPERIMENTS.md report generator."""

import pytest

from repro.bench.report import generate_experiments_md
from repro.bench.sweep import SweepConfig


@pytest.mark.slow
def test_report_generation_end_to_end():
    """The full report renders at micro scale with all sections present."""
    progress: list[str] = []
    document = generate_experiments_md(
        SweepConfig(scale=0.002), progress=progress.append
    )
    assert document.startswith("# EXPERIMENTS")
    assert "Headline shape checks" in document
    for section in (
        "Figure 2",
        "Figures 4/5",
        "Table 1",
        "Table 2/Table 3",
        "Table 10/Table 11",
        "Table 14",
        "Table 15: HOUSE",
        "Ablations",
    ):
        assert section in document, f"missing section {section!r}"
    assert "paper gain" in document
    assert "measured gain" in document
    # Every experiment ran exactly once.
    assert len(progress) == len(set(progress)) == 18
