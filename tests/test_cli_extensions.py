"""CLI tests for the skyband/topk subcommands."""

from repro.cli import main


class TestSkybandCommand:
    def test_generated_workload(self, capsys):
        assert main(["skyband", "-k", "2", "--kind", "UI", "-n", "150", "-d", "3"]) == 0
        out = capsys.readouterr().out
        assert "2-skyband" in out
        assert "dominated by 0" in out

    def test_on_file(self, tmp_path, capsys):
        path = tmp_path / "d.csv"
        main(["generate", "UI", str(path), "-n", "100", "-d", "3"])
        capsys.readouterr()
        assert main(["skyband", "-k", "3", "-i", str(path)]) == 0
        assert "3-skyband" in capsys.readouterr().out


class TestTopkCommand:
    def test_generated_workload(self, capsys):
        assert main(["topk", "-k", "3", "--kind", "CO", "-n", "150", "-d", "3"]) == 0
        out = capsys.readouterr().out
        assert out.count("dominates") == 3

    def test_invalid_k(self, capsys):
        assert main(["topk", "-k", "0", "-n", "50", "-d", "2"]) == 2
        assert "error" in capsys.readouterr().err
