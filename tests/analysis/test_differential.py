"""Differential harness: oracle agreement, divergence detection, minimization."""

import numpy as np

from repro.algorithms.sfs import SFS
from repro.analysis.differential import (
    minimize_counterexample,
    oracle_skyline,
    run_differential,
)
from tests.conftest import brute_skyline_ids


class TestOracle:
    def test_matches_independent_brute_force(self):
        rng = np.random.default_rng(4)
        values = rng.random((60, 3))
        assert oracle_skyline(values) == brute_skyline_ids(values)

    def test_handles_duplicates(self):
        values = np.array([[0.5, 0.5], [0.5, 0.5], [0.9, 0.9]])
        assert oracle_skyline(values) == [0, 1]


class TestHarness:
    def test_registry_is_clean_on_small_matrix(self):
        failures = run_differential(kinds=("UI",), n=60, d=4, seeds=(2,))
        assert failures == []

    def test_detects_and_minimizes_a_broken_algorithm(self, monkeypatch):
        original = SFS.run_phase

        def drops_last(self, dataset, ids, masks, container, counter):
            result = original(self, dataset, ids, masks, container, counter)
            return result[:-1] if len(result) > 1 else result

        monkeypatch.setattr(SFS, "run_phase", drops_last)
        failures = run_differential(
            algorithms=("sfs",), kinds=("UI",), n=60, d=4, seeds=(2,)
        )
        assert len(failures) == 1
        failure = failures[0]
        assert failure.algorithm == "sfs"
        assert failure.missing  # it loses skyline points
        # ddmin shrinks the witness far below the original 60 rows
        assert 1 <= len(failure.minimized_rows) <= 6
        assert "diverges" in failure.describe()

    def test_minimized_dataset_still_diverges(self, monkeypatch):
        original = SFS.run_phase

        def drops_last(self, dataset, ids, masks, container, counter):
            result = original(self, dataset, ids, masks, container, counter)
            return result[:-1] if len(result) > 1 else result

        monkeypatch.setattr(SFS, "run_phase", drops_last)
        rng = np.random.default_rng(8)
        values = rng.random((40, 3))
        small = minimize_counterexample("sfs", values)
        assert small.shape[0] <= values.shape[0]
        from repro.algorithms.registry import get_algorithm

        got = sorted(int(i) for i in get_algorithm("sfs").compute(small).indices)
        assert got != oracle_skyline(small)

    def test_crashing_algorithm_counts_as_divergent(self, monkeypatch):
        def explodes(self, dataset, ids, masks, container, counter):
            raise RuntimeError("boom")

        monkeypatch.setattr(SFS, "run_phase", explodes)
        rng = np.random.default_rng(8)
        values = rng.random((10, 3))
        # minimizer treats the crash as a persistent divergence and shrinks
        small = minimize_counterexample("sfs", values)
        assert small.shape[0] >= 1
