"""Findings model: rendering, summaries and gate exit codes."""

import json

from repro.analysis.report import (
    Finding,
    Severity,
    gate_exit_code,
    render_json,
    render_text,
    summarize,
)


def _finding(rule="RPR001", line=3, severity=Severity.ERROR):
    return Finding(
        rule=rule,
        path="src/repro/foo.py",
        line=line,
        message="something is wrong",
        severity=severity,
        snippet="x = 1",
    )


class TestRendering:
    def test_render_includes_location_and_code(self):
        text = _finding().render()
        assert "src/repro/foo.py:3" in text
        assert "RPR001" in text
        assert "x = 1" in text

    def test_line_zero_omits_lineno(self):
        text = _finding(line=0).render()
        assert text.startswith("src/repro/foo.py: ")

    def test_render_text_sorts_by_location(self):
        out = render_text([_finding(line=9), _finding(line=2)])
        assert out.index(":2") < out.index(":9")

    def test_render_json_round_trips(self):
        payload = json.loads(render_json([_finding()]))
        assert payload[0]["rule"] == "RPR001"
        assert payload[0]["severity"] == "error"
        assert payload[0]["line"] == 3


class TestSummaryAndGate:
    def test_summarize_clean(self):
        assert summarize([]) == "clean"

    def test_summarize_counts(self):
        findings = [
            _finding(),
            _finding(line=4),
            _finding(line=5, severity=Severity.WARNING),
        ]
        assert summarize(findings) == "2 errors, 1 warning"

    def test_gate_passes_on_clean(self):
        assert gate_exit_code([]) == 0
        assert gate_exit_code([], strict=True) == 0

    def test_gate_fails_on_error(self):
        assert gate_exit_code([_finding()]) == 1

    def test_warnings_fail_only_in_strict(self):
        warnings = [_finding(severity=Severity.WARNING)]
        assert gate_exit_code(warnings) == 0
        assert gate_exit_code(warnings, strict=True) == 1
