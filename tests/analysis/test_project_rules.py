"""Unit tests for the project-wide rules (RPR008–RPR012) and the
dataflow machinery underneath them (symbol table, call graph, mutation
summaries).

These complement the golden fixtures with multi-module scenarios and
the exemption edge cases: the fixtures show each rule's canonical
fire/clean pair, while these tests pin the interprocedural behaviour —
transitive kernel reachability across files, escape analysis, closure
writes, and the guarded-fill exemption.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.analysis import lint_paths
from repro.analysis.lint import parse_module
from repro.analysis.project import build_project
from repro.analysis.mutation import summarize_mutations


def _write_tree(tmp_path: Path, files: dict[str, str]) -> Path:
    for rel, source in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source))
    return tmp_path


def _lint(tmp_path: Path, files: dict[str, str], select: list[str]) -> list:
    root = _write_tree(tmp_path, files)
    return lint_paths([root], select=select, root=root)


def _project(tmp_path: Path, files: dict[str, str]):
    root = _write_tree(tmp_path, files)
    modules = []
    for rel in sorted(files):
        module = parse_module(root / rel, root=root)
        assert not hasattr(module, "rule"), f"fixture {rel} failed to parse"
        modules.append(module)
    return build_project(modules)


class TestCounterThreadingInterprocedural:
    """RPR010 must see through intermediate, cross-module calls."""

    def test_transitive_kernel_call_across_modules_fires(self, tmp_path):
        findings = _lint(
            tmp_path,
            {
                "kern.py": """
                    def dominates(p, q, counter):
                        counter.record("dominates", 1)
                        return True
                """,
                "mid.py": """
                    from kern import dominates

                    def kernel_user(p, q, counter):
                        return dominates(p, q, counter)
                """,
                "top.py": """
                    from repro.stats.counters import DominanceCounter
                    from mid import kernel_user

                    def caller(p, q):
                        scratch = DominanceCounter()
                        verdict = kernel_user(p, q, scratch)
                        return verdict
                """,
            },
            select=["RPR010"],
        )
        assert [f.rule for f in findings] == ["RPR010"]
        assert findings[0].path.endswith("top.py")

    def test_returned_counter_is_exempt(self, tmp_path):
        findings = _lint(
            tmp_path,
            {
                "mod.py": """
                    from repro.stats.counters import DominanceCounter

                    def dominates(p, q, counter):
                        counter.record("dominates", 1)

                    def run(p, q):
                        counter = DominanceCounter()
                        dominates(p, q, counter)
                        return counter
                """,
            },
            select=["RPR010"],
        )
        assert findings == []

    def test_counter_stored_on_attribute_is_exempt(self, tmp_path):
        findings = _lint(
            tmp_path,
            {
                "mod.py": """
                    from repro.stats.counters import DominanceCounter

                    def dominates(p, q, counter):
                        counter.record("dominates", 1)

                    class Session:
                        def start(self, p, q):
                            self.counter = DominanceCounter()
                            dominates(p, q, self.counter)
                """,
            },
            select=["RPR010"],
        )
        assert findings == []

    def test_absorbed_counter_is_exempt(self, tmp_path):
        findings = _lint(
            tmp_path,
            {
                "mod.py": """
                    from repro.stats.counters import DominanceCounter

                    def dominates(p, q, counter):
                        counter.record("dominates", 1)

                    def run(p, q, totals):
                        scratch = DominanceCounter()
                        dominates(p, q, scratch)
                        totals.absorb(scratch)
                """,
            },
            select=["RPR010"],
        )
        assert findings == []

    def test_function_not_reaching_kernels_is_exempt(self, tmp_path):
        findings = _lint(
            tmp_path,
            {
                "mod.py": """
                    from repro.stats.counters import DominanceCounter

                    def unrelated():
                        scratch = DominanceCounter()
                        scratch.record("dominates", 1)
                """,
            },
            select=["RPR010"],
        )
        assert findings == []


class TestCacheCoherence:
    """RPR008: memo writes in versioned classes must move the version."""

    def test_unversioned_cache_write_fires(self, tmp_path):
        findings = _lint(
            tmp_path,
            {
                "mod.py": """
                    class Store:
                        def __init__(self):
                            self._cache = {}
                            self._generation = 0

                        def invalidate(self):
                            self._generation += 1
                            self._cache.clear()

                        def poison(self, key, value):
                            self._cache[key] = value
                """,
            },
            select=["RPR008"],
        )
        assert [f.rule for f in findings] == ["RPR008"]
        assert "poison" in findings[0].message or findings[0].line > 0

    def test_write_with_version_bump_is_clean(self, tmp_path):
        findings = _lint(
            tmp_path,
            {
                "mod.py": """
                    class Store:
                        def __init__(self):
                            self._cache = {}
                            self._generation = 0

                        def invalidate(self):
                            self._generation += 1
                            self._cache.clear()

                        def put(self, key, value):
                            self._cache[key] = value
                            self._generation += 1
                """,
            },
            select=["RPR008"],
        )
        assert findings == []

    def test_guarded_memo_fill_is_clean(self, tmp_path):
        findings = _lint(
            tmp_path,
            {
                "mod.py": """
                    class Store:
                        def __init__(self):
                            self._cache = {}
                            self._generation = 0

                        def invalidate(self):
                            self._generation += 1
                            self._cache.clear()

                        def memoized(self, key):
                            hit = self._cache.get(key)
                            if hit is None:
                                hit = key * 2
                                self._cache[key] = hit
                            return hit
                """,
            },
            select=["RPR008"],
        )
        assert findings == []

    def test_unversioned_class_is_out_of_scope(self, tmp_path):
        findings = _lint(
            tmp_path,
            {
                "mod.py": """
                    class PlainBag:
                        def __init__(self):
                            self._cache = {}

                        def put(self, key, value):
                            self._cache[key] = value
                """,
            },
            select=["RPR008"],
        )
        assert findings == []


class TestWorkerSharedState:
    """RPR009: worker-reachable code must not mutate shared state."""

    def test_global_append_in_worker_fires(self, tmp_path):
        findings = _lint(
            tmp_path,
            {
                "mod.py": """
                    RESULTS = []

                    def work(task):
                        RESULTS.append(task)
                        return task

                    def run(pool, tasks):
                        return pool.map(work, tasks)
                """,
            },
            select=["RPR009"],
        )
        assert [f.rule for f in findings] == ["RPR009"]

    def test_transitive_helper_mutation_fires(self, tmp_path):
        findings = _lint(
            tmp_path,
            {
                "mod.py": """
                    STATE = {}

                    def helper(task):
                        STATE[task] = True

                    def work(task):
                        helper(task)
                        return task

                    def run(executor, tasks):
                        return executor.submit(work, tasks)
                """,
            },
            select=["RPR009"],
        )
        assert [f.rule for f in findings] == ["RPR009"]

    def test_local_accumulator_is_clean(self, tmp_path):
        findings = _lint(
            tmp_path,
            {
                "mod.py": """
                    def work(task):
                        out = []
                        out.append(task)
                        return out

                    def run(pool, tasks):
                        return pool.map(work, tasks)
                """,
            },
            select=["RPR009"],
        )
        assert findings == []

    def test_closure_write_to_enclosing_local_is_clean(self, tmp_path):
        findings = _lint(
            tmp_path,
            {
                "mod.py": """
                    def run(pool, tasks):
                        merged = []

                        def work(task):
                            merged.append(task)
                            return task

                        return pool.map(work, tasks)
                """,
            },
            select=["RPR009"],
        )
        assert findings == []


class TestSwallowedException:
    def test_bare_except_fires(self, tmp_path):
        findings = _lint(
            tmp_path,
            {
                "mod.py": """
                    def f(job):
                        try:
                            job()
                        except:
                            return None
                """,
            },
            select=["RPR012"],
        )
        assert [f.rule for f in findings] == ["RPR012"]

    def test_broad_except_with_handling_is_clean(self, tmp_path):
        findings = _lint(
            tmp_path,
            {
                "mod.py": """
                    def f(job, log):
                        try:
                            job()
                        except Exception as exc:
                            log.append(exc)
                            raise
                """,
            },
            select=["RPR012"],
        )
        assert findings == []


class TestNoqaHygiene:
    def test_stale_suppression_fires_when_rule_ran(self, tmp_path):
        findings = _lint(
            tmp_path,
            {
                "mod.py": """
                    x = 1  # noqa: RPR012 — nothing here can raise, kept for the audit test
                """,
            },
            select=["RPR011", "RPR012"],
        )
        assert [f.rule for f in findings] == ["RPR011"]
        assert "stale" in findings[0].message.lower()

    def test_live_justified_suppression_is_clean(self, tmp_path):
        findings = _lint(
            tmp_path,
            {
                "mod.py": """
                    def f(job):
                        try:
                            job()
                        except Exception:  # noqa: RPR012 — best-effort teardown, deliberately silent
                            pass
                """,
            },
            select=["RPR011", "RPR012"],
        )
        assert findings == []


class TestDataflowMachinery:
    """Direct coverage for the symbol-table / call-graph / mutation layer."""

    def test_call_graph_reaching_is_transitive(self, tmp_path):
        project = _project(
            tmp_path,
            {
                "mod.py": """
                    def dominates(p, q):
                        return True

                    def middle(p, q):
                        return dominates(p, q)

                    def outer(p, q):
                        return middle(p, q)

                    def bystander():
                        return 0
                """,
            },
        )
        reaching = project.graph.reaching({"dominates"})
        names = {q.split("::")[-1] for q in reaching}
        assert {"middle", "outer"} <= names
        assert "bystander" not in names

    def test_mutation_summary_classifies_writes(self, tmp_path):
        project = _project(
            tmp_path,
            {
                "mod.py": """
                    TOTALS = {}

                    def f(self, key):
                        local = []
                        local.append(key)
                        self._cache[key] = 1
                        TOTALS[key] = 1
                """,
            },
        )
        (qualname,) = [q for q in project.mutations if q.endswith("::f")]
        summary = project.mutations[qualname]
        roots = {(w.root, w.root_is_local) for w in summary.writes}
        assert ("local", True) in roots
        # Params count as local: writes through ``self`` mutate state the
        # function was explicitly handed, not shared module state.
        assert ("self", True) in roots
        assert ("TOTALS", False) in roots

    def test_numpy_receiver_calls_are_not_writes(self, tmp_path):
        project = _project(
            tmp_path,
            {
                "mod.py": """
                    import numpy as np

                    def f(values, extra):
                        return np.append(values, extra)
                """,
            },
        )
        (qualname,) = [q for q in project.mutations if q.endswith("::f")]
        summary = project.mutations[qualname]
        assert not [w for w in summary.writes if w.root == "np"]
