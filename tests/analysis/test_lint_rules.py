"""The RPR rules on synthetic modules, plus noqa suppression semantics."""

import textwrap

import pytest

from repro.analysis.lint import lint_paths, suppressed_codes
from repro.analysis.rules import active_rules, rule_codes


def lint_source(tmp_path, source, filename="mod.py", select=None):
    """Write ``source`` into a temp tree and lint it."""
    path = tmp_path / filename
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return lint_paths([tmp_path], select=select, root=tmp_path)


class TestRPR001UncountedDominance:
    def test_flags_missing_counter(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            from repro.dominance import dominates

            def f(p, q):
                return dominates(p, q)
            """,
        )
        assert [f.rule for f in findings] == ["RPR001"]
        assert findings[0].line == 5

    def test_accepts_positional_counter(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            from repro.dominance import first_dominator

            def f(block, q, c):
                return first_dominator(block, q, c)
            """,
        )
        assert findings == []

    def test_accepts_keyword_counter(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            from repro.dominance import dominating_subspaces

            def f(block, p, c):
                return dominating_subspaces(block, p, counter=c)
            """,
        )
        assert findings == []

    def test_flags_attribute_calls(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            from repro import dominance

            def f(p, q):
                return dominance.weakly_dominates(p, q)
            """,
        )
        assert [f.rule for f in findings] == ["RPR001"]

    def test_dominance_module_itself_is_exempt(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            def incomparable(p, q, counter=None):
                return not dominates(p, q) and not dominates(q, p)
            """,
            filename="repro/dominance.py",
        )
        assert findings == []


class TestRPR002RawBitmaskSurgery:
    def test_flags_bitor_on_mask(self, tmp_path):
        findings = lint_source(tmp_path, "mask = mask | 4\n")
        assert [f.rule for f in findings] == ["RPR002"]

    def test_flags_augassign(self, tmp_path):
        findings = lint_source(tmp_path, "subspace_mask = 0\nsubspace_mask |= 2\n")
        assert [f.rule for f in findings] == ["RPR002"]

    def test_flags_invert_on_attribute(self, tmp_path):
        findings = lint_source(tmp_path, "x = ~obj.query_mask\n")
        assert [f.rule for f in findings] == ["RPR002"]

    def test_ignores_non_mask_names(self, tmp_path):
        findings = lint_source(tmp_path, "flags = flags | 4\nsel = ~chosen\n")
        assert findings == []

    def test_bitset_module_is_exempt(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "def union(mask_a, mask_b):\n    return mask_a | mask_b\n",
            filename="repro/structures/bitset.py",
        )
        assert findings == []

    def test_one_finding_per_line(self, tmp_path):
        findings = lint_source(tmp_path, "x = full_mask & ~path_mask\n")
        assert len(findings) == 1


class TestRPR003RegistryHygiene:
    def test_missing_all_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            class Foo:
                name = "foo"
            """,
            filename="algorithms/foo.py",
        )
        assert any("__all__" in f.message for f in findings)

    def test_two_algorithms_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            __all__ = ["Foo", "Bar"]

            class Foo:
                name = "foo"

            class Bar:
                name = "bar"
            """,
            filename="algorithms/foobar.py",
        )
        assert any("2 algorithm classes" in f.message for f in findings)

    def test_algorithm_missing_from_all(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            __all__ = ["helper"]

            class Foo:
                name = "foo"
            """,
            filename="algorithms/foo.py",
        )
        assert any("missing from __all__" in f.message for f in findings)

    def test_clean_module_passes(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            __all__ = ["Foo"]

            class Foo:
                name = "foo"
            """,
            filename="algorithms/foo.py",
        )
        assert findings == []

    def test_rule_only_applies_inside_algorithms_dir(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            class Foo:
                name = "foo"
            """,
            filename="core/foo.py",
        )
        assert findings == []


class TestRPR004NumpyScalarLeak:
    def test_flags_float_subscript_in_loop(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            def f(order, coords):
                for i in order:
                    x = float(coords[i])
                return x
            """,
        )
        assert [f.rule for f in findings] == ["RPR004"]
        assert findings[0].severity.value == "warning"

    def test_ignores_float_outside_loop(self, tmp_path):
        findings = lint_source(tmp_path, "x = float(coords[0])\n")
        assert findings == []

    def test_ignores_float_of_call(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            def f(rows):
                for row in rows:
                    x = float(row.sum())
                return x
            """,
        )
        assert findings == []


class TestSuppression:
    def test_noqa_with_code_suppresses(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "mask = mask | 4  # noqa: RPR002 — synthetic mask for the suppression test\n",
        )
        assert findings == []

    def test_unjustified_noqa_suppresses_but_fails_hygiene(self, tmp_path):
        findings = lint_source(tmp_path, "mask = mask | 4  # noqa: RPR002\n")
        assert [f.rule for f in findings] == ["RPR011"]
        assert "justif" in findings[0].message.lower()

    def test_noqa_with_other_code_does_not(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "mask = mask | 4  # noqa: RPR001 — wrong code on purpose\n",
        )
        # The RPR002 finding is unsuppressed, and the RPR001 tag is stale.
        assert sorted(f.rule for f in findings) == ["RPR002", "RPR011"]

    def test_bare_noqa_is_ignored(self, tmp_path):
        findings = lint_source(tmp_path, "mask = mask | 4  # noqa\n")
        assert [f.rule for f in findings] == ["RPR002"]

    def test_comma_separated_codes(self):
        assert suppressed_codes("x  # noqa: RPR001, RPR004") == {"RPR001", "RPR004"}


class TestEngine:
    def test_syntax_error_reported_as_rpr000(self, tmp_path):
        findings = lint_source(tmp_path, "def broken(:\n")
        assert [f.rule for f in findings] == ["RPR000"]

    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            lint_paths([tmp_path / "nope"], root=tmp_path)

    def test_select_unknown_code_raises(self):
        with pytest.raises(ValueError, match="unknown rule"):
            active_rules(["RPR999"])

    def test_select_filters_rules(self, tmp_path):
        source = """
        from repro.dominance import dominates

        def f(p, q, mask):
            mask = mask | 2
            return dominates(p, q)
        """
        all_rules = lint_source(tmp_path, source)
        only_bitmask = lint_source(tmp_path, source, select=["RPR002"])
        assert {f.rule for f in all_rules} == {"RPR001", "RPR002"}
        assert {f.rule for f in only_bitmask} == {"RPR002"}

    def test_rule_codes_catalogue(self):
        assert rule_codes() == [
            "RPR001",
            "RPR002",
            "RPR003",
            "RPR004",
            "RPR005",
            "RPR006",
            "RPR007",
            "RPR008",
            "RPR009",
            "RPR010",
            "RPR011",
            "RPR012",
        ]


class TestRPR005HandWiredBoost:
    BOOST_SOURCE = """
    from repro.algorithms.sfs import SFS
    from repro.core.boost import SubsetBoost

    def f(dataset):
        return SubsetBoost(SFS(), sigma=2).compute(dataset)
    """

    def test_flags_direct_construction(self, tmp_path):
        findings = lint_source(tmp_path, self.BOOST_SOURCE, select=["RPR005"])
        assert [f.rule for f in findings] == ["RPR005"]
        assert "SkylineEngine" in findings[0].message

    def test_flags_attribute_construction(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            from repro.core import boost

            def f(host):
                return boost.SubsetBoost(host)
            """,
            select=["RPR005"],
        )
        assert [f.rule for f in findings] == ["RPR005"]

    def test_core_and_engine_own_the_wiring(self, tmp_path):
        for filename in ("repro/core/factory.py", "repro/engine/custom.py"):
            findings = lint_source(
                tmp_path, self.BOOST_SOURCE, filename=filename, select=["RPR005"]
            )
            assert findings == []

    def test_noqa_escape_hatch(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            from repro.core.boost import SubsetBoost

            def f(host):
                return SubsetBoost(host)  # noqa: RPR005
            """,
            select=["RPR005"],
        )
        assert findings == []


class TestRPR007HandBuiltIndex:
    INDEX_SOURCE = """
    from repro.core.subset_index import SkylineIndex

    def f(d):
        return SkylineIndex(d)
    """

    def test_flags_direct_construction(self, tmp_path):
        findings = lint_source(tmp_path, self.INDEX_SOURCE, select=["RPR007"])
        assert [f.rule for f in findings] == ["RPR007"]
        assert "SubsetContainer" in findings[0].message

    def test_flags_flat_backend_construction(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            from repro.core import flat_index

            def f(d):
                return flat_index.FlatSubsetIndex(d)
            """,
            select=["RPR007"],
        )
        assert [f.rule for f in findings] == ["RPR007"]

    def test_core_and_engine_own_the_wiring(self, tmp_path):
        for filename in ("repro/core/container.py", "repro/engine/custom.py"):
            findings = lint_source(
                tmp_path, self.INDEX_SOURCE, filename=filename, select=["RPR007"]
            )
            assert findings == []

    def test_noqa_escape_hatch(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            from repro.core.subset_index import SkylineIndex

            def f(d):
                return SkylineIndex(d)  # noqa: RPR007
            """,
            select=["RPR007"],
        )
        assert findings == []


class TestRPR006RawClockRead:
    CLOCK_SOURCE = """
    import time

    def f(body):
        started = time.perf_counter()
        body()
        return time.perf_counter() - started
    """

    def test_flags_raw_perf_counter(self, tmp_path):
        findings = lint_source(tmp_path, self.CLOCK_SOURCE, select=["RPR006"])
        assert [f.rule for f in findings] == ["RPR006", "RPR006"]
        assert "repro.obs.clock" in findings[0].message

    def test_flags_process_time_and_bare_name(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            from time import perf_counter, process_time

            def f():
                return perf_counter(), process_time()
            """,
            select=["RPR006"],
        )
        assert [f.rule for f in findings] == ["RPR006", "RPR006"]

    def test_obs_and_base_own_the_clocks(self, tmp_path):
        for filename in (
            "repro/obs/clock.py",
            "repro/obs/trace.py",
            "repro/algorithms/base.py",
        ):
            findings = lint_source(
                tmp_path, self.CLOCK_SOURCE, filename=filename, select=["RPR006"]
            )
            assert findings == []

    def test_noqa_escape_hatch(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            import time

            def f():
                return time.perf_counter()  # noqa: RPR006
            """,
            select=["RPR006"],
        )
        assert findings == []

    def test_monotonic_is_allowed(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            import time

            def f(deadline):
                return time.monotonic() < deadline
            """,
            select=["RPR006"],
        )
        assert findings == []
