"""``python -m repro.analysis`` exit codes and output formats."""

import json
import textwrap

import pytest

from repro.analysis.__main__ import main


CLEAN = "x = 1\n"
VIOLATING = textwrap.dedent(
    """
    from repro.dominance import dominates

    def f(p, q):
        return dominates(p, q)
    """
)
WARNING_ONLY = textwrap.dedent(
    """
    def f(order, coords):
        for i in order:
            x = float(coords[i])
        return x
    """
)


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text(CLEAN)
        assert main([str(tmp_path)]) == 0
        assert "clean" in capsys.readouterr().err

    def test_findings_exit_one(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(VIOLATING)
        assert main([str(tmp_path)]) == 1
        captured = capsys.readouterr()
        assert "RPR001" in captured.out
        assert "1 error" in captured.err

    def test_warnings_pass_unless_strict(self, tmp_path):
        (tmp_path / "warn.py").write_text(WARNING_ONLY)
        assert main([str(tmp_path)]) == 0

    def test_unknown_select_is_usage_error(self, tmp_path):
        (tmp_path / "ok.py").write_text(CLEAN)
        with pytest.raises(SystemExit) as excinfo:
            main(["--select", "RPR999", str(tmp_path)])
        assert excinfo.value.code == 2

    def test_missing_path_is_usage_error(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main([str(tmp_path / "nope")])
        assert excinfo.value.code == 2


class TestOutput:
    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("RPR001", "RPR002", "RPR003", "RPR004"):
            assert code in out

    def test_json_format_parses(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(VIOLATING)
        assert main(["--format", "json", str(tmp_path)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["rule"] == "RPR001"

    def test_select_narrows_the_gate(self, tmp_path):
        (tmp_path / "bad.py").write_text(VIOLATING)
        assert main(["--select", "RPR002", str(tmp_path)]) == 0
