"""``python -m repro.analysis`` exit codes, output formats and the baseline."""

import json
import textwrap

import pytest

from repro.analysis.__main__ import main


CLEAN = "x = 1\n"
VIOLATING = textwrap.dedent(
    """
    from repro.dominance import dominates

    def f(p, q):
        return dominates(p, q)
    """
)
WARNING_ONLY = textwrap.dedent(
    """
    def f(order, coords):
        for i in order:
            x = float(coords[i])
        return x
    """
)


@pytest.fixture(autouse=True)
def _isolate_cwd(tmp_path, monkeypatch):
    """Run every CLI test from a scratch cwd.

    The CLI discovers ``analysis-baseline.json`` in the working directory;
    tests must not pick up the repository's own baseline.
    """
    monkeypatch.chdir(tmp_path)


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text(CLEAN)
        assert main([str(tmp_path)]) == 0
        assert "clean" in capsys.readouterr().err

    def test_findings_exit_one(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(VIOLATING)
        assert main([str(tmp_path)]) == 1
        captured = capsys.readouterr()
        assert "RPR001" in captured.out
        assert "1 error" in captured.err

    def test_warnings_pass_unless_strict(self, tmp_path):
        (tmp_path / "warn.py").write_text(WARNING_ONLY)
        assert main([str(tmp_path)]) == 0

    def test_unknown_select_is_usage_error(self, tmp_path):
        (tmp_path / "ok.py").write_text(CLEAN)
        with pytest.raises(SystemExit) as excinfo:
            main(["--select", "RPR999", str(tmp_path)])
        assert excinfo.value.code == 2

    def test_missing_path_is_usage_error(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main([str(tmp_path / "nope")])
        assert excinfo.value.code == 2


class TestOutput:
    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("RPR001", "RPR004", "RPR008", "RPR012"):
            assert code in out

    def test_json_format_parses(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(VIOLATING)
        assert main(["--format", "json", str(tmp_path)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["rule"] == "RPR001"

    def test_json_always_printed_even_when_clean(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text(CLEAN)
        assert main(["--format", "json", str(tmp_path)]) == 0
        assert json.loads(capsys.readouterr().out) == []

    def test_github_format_annotations(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(VIOLATING)
        assert main(["--format", "github", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert out.startswith("::error file=")
        assert ",line=5::RPR001" in out

    def test_select_narrows_the_gate(self, tmp_path):
        (tmp_path / "bad.py").write_text(VIOLATING)
        assert main(["--select", "RPR002", str(tmp_path)]) == 0


class TestExplain:
    def test_explain_prints_rule(self, capsys):
        assert main(["--explain", "RPR010"]) == 0
        out = capsys.readouterr().out
        assert "RPR010" in out and "counter-threading" in out

    def test_explain_is_case_insensitive(self, capsys):
        assert main(["--explain", "rpr008"]) == 0
        assert "cache-coherence" in capsys.readouterr().out

    def test_explain_unknown_code_is_usage_error(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["--explain", "RPR999"])
        assert excinfo.value.code == 2


class TestBaseline:
    def test_write_then_gate_fails_until_justified(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(VIOLATING)
        assert main(["--write-baseline", str(tmp_path)]) == 0
        baseline = tmp_path / "analysis-baseline.json"
        assert baseline.exists()
        # The FIXME placeholder does not buy a pass.
        assert main([str(tmp_path)]) == 1
        assert "without justification" in capsys.readouterr().out

    def test_justified_entry_suppresses(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(VIOLATING)
        main(["--write-baseline", str(tmp_path)])
        baseline = tmp_path / "analysis-baseline.json"
        payload = json.loads(baseline.read_text())
        payload["entries"][0]["reason"] = "legacy site, tracked in ROADMAP"
        baseline.write_text(json.dumps(payload))
        assert main([str(tmp_path)]) == 0
        assert "1 baselined" in capsys.readouterr().err

    def test_reasons_survive_regeneration(self, tmp_path):
        (tmp_path / "bad.py").write_text(VIOLATING)
        main(["--write-baseline", str(tmp_path)])
        baseline = tmp_path / "analysis-baseline.json"
        payload = json.loads(baseline.read_text())
        payload["entries"][0]["reason"] = "kept across regen"
        baseline.write_text(json.dumps(payload))
        main(["--write-baseline", str(tmp_path)])
        regenerated = json.loads(baseline.read_text())
        assert regenerated["entries"][0]["reason"] == "kept across regen"

    def test_stale_entry_warns(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(VIOLATING)
        main(["--write-baseline", str(tmp_path)])
        baseline = tmp_path / "analysis-baseline.json"
        payload = json.loads(baseline.read_text())
        payload["entries"][0]["reason"] = "was justified once"
        baseline.write_text(json.dumps(payload))
        (tmp_path / "bad.py").write_text(CLEAN)  # the finding is gone
        assert main([str(tmp_path)]) == 0  # warning only in the default gate
        captured = capsys.readouterr()
        assert "stale baseline entry" in captured.out
        assert "1 warning" in captured.err

    def test_no_baseline_reports_everything(self, tmp_path):
        (tmp_path / "bad.py").write_text(VIOLATING)
        main(["--write-baseline", str(tmp_path)])
        baseline = tmp_path / "analysis-baseline.json"
        payload = json.loads(baseline.read_text())
        payload["entries"][0]["reason"] = "justified"
        baseline.write_text(json.dumps(payload))
        assert main([str(tmp_path)]) == 0
        assert main(["--no-baseline", str(tmp_path)]) == 1

    def test_no_baseline_conflicts_with_write(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["--no-baseline", "--write-baseline", str(tmp_path)])
        assert excinfo.value.code == 2

    def test_explicit_missing_baseline_is_usage_error(self, tmp_path):
        (tmp_path / "ok.py").write_text(CLEAN)
        with pytest.raises(SystemExit) as excinfo:
            main(["--baseline", str(tmp_path / "nope.json"), str(tmp_path)])
        assert excinfo.value.code == 2
