"""The repo must pass its own gate: ``repro.analysis src/repro`` is clean."""

from pathlib import Path

from repro.analysis.lint import lint_paths

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_library_lints_clean():
    findings = lint_paths([REPO_ROOT / "src" / "repro"], root=REPO_ROOT)
    errors = [f for f in findings if f.severity.value == "error"]
    warnings = [f for f in findings if f.severity.value == "warning"]
    assert errors == [], "\n".join(f.render() for f in errors)
    assert warnings == [], "\n".join(f.render() for f in warnings)
