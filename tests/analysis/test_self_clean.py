"""The repo must pass its own gate: ``repro.analysis src/repro`` is clean.

Clean means: no finding outside the checked-in baseline, every baseline
entry justified with a real reason (no FIXME placeholders), and no stale
baseline entries — exactly what ``python -m repro.analysis --strict``
enforces in CI.
"""

import time
from pathlib import Path

from repro.analysis.baseline import load_baseline
from repro.analysis.lint import lint_paths

REPO_ROOT = Path(__file__).resolve().parents[2]
BASELINE = REPO_ROOT / "analysis-baseline.json"


def _lint_library():
    return lint_paths([REPO_ROOT / "src" / "repro"], root=REPO_ROOT)


def test_library_lints_clean_after_baseline():
    findings = _lint_library()
    baseline = load_baseline(BASELINE)
    result = baseline.apply(findings)
    reported = result.reported
    assert reported == [], "\n".join(f.render() for f in reported)


def test_baseline_entries_are_all_justified():
    baseline = load_baseline(BASELINE)
    unjustified = [e for e in baseline.entries.values() if not e.justified]
    assert unjustified == [], [e.fingerprint for e in unjustified]


def test_baseline_has_no_stale_entries():
    result = load_baseline(BASELINE).apply(_lint_library())
    assert result.stale == (), [e.fingerprint for e in result.stale]


def test_analysis_wall_clock_budget():
    """The whole-tree analysis must stay fast enough to run on every PR."""
    started = time.monotonic()
    _lint_library()
    elapsed = time.monotonic() - started
    assert elapsed < 10.0, f"analysis took {elapsed:.1f}s on src/repro (budget: 10s)"
