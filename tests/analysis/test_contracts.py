"""Runtime contract checks: clean on the real code, loud on sabotage."""

import numpy as np
import pytest

from repro.analysis.contracts import (
    CheckedSubsetContainer,
    ContractViolation,
    run_contract_checks,
    verify_index_superset_filter,
    verify_merge_masks,
)
from repro.core.subset_index import SkylineIndex
from repro.data import generate


class TestCheckedContainer:
    def test_forwards_and_checks(self):
        values = np.array([[0.1, 0.9], [0.9, 0.1], [0.5, 0.5]])
        container = CheckedSubsetContainer(values, d=2)
        container.add(0, 0b01)
        container.add(1, 0b10)
        ids, block = container.candidates(0b01)
        assert list(ids) == [0]
        assert block.shape == (1, 2)
        assert container.queries_checked == 1
        assert len(container) == 2
        assert sorted(container.ids()) == [0, 1]

    def test_detects_overbroad_query(self, monkeypatch):
        # Sabotage the production query path (``query_array`` backs
        # ``candidates``): return every stored point regardless of mask.
        def everything(self, subspace, counter=None):
            out = []
            stack = [self._root]
            while stack:
                node = stack.pop()
                out.extend(node.points)
                stack.extend(node.children.values())
            return np.asarray(out, dtype=np.intp)

        monkeypatch.setattr(SkylineIndex, "query_array", everything)
        values = np.array([[0.1, 0.9], [0.9, 0.1]])
        container = CheckedSubsetContainer(values, d=2)
        container.add(0, 0b01)
        container.add(1, 0b10)
        with pytest.raises(ContractViolation, match="Lemma 5.1"):
            container.candidates(0b01)

    def test_detects_lossy_query(self, monkeypatch):
        original = SkylineIndex.query_array

        def lossy(self, subspace, counter=None):
            return original(self, subspace, counter)[:-1]

        monkeypatch.setattr(SkylineIndex, "query_array", lossy)
        values = np.array([[0.1, 0.9], [0.9, 0.1]])
        container = CheckedSubsetContainer(values, d=2)
        container.add(0, 0b01)
        with pytest.raises(ContractViolation, match="missing"):
            container.candidates(0b01)


class TestEndToEnd:
    def test_superset_filter_holds_on_seeded_data(self):
        dataset = generate("UI", n=200, d=5, seed=3)
        checked = verify_index_superset_filter(dataset)
        assert checked > 0  # the scan actually exercised the index

    def test_merge_masks_hold_on_seeded_data(self):
        for kind in ("UI", "CO", "AC"):
            verify_merge_masks(generate(kind, n=150, d=4, seed=9), sigma=2)

    def test_run_contract_checks_clean(self):
        findings = run_contract_checks(kinds=("UI",), n=80, d=4, seeds=(1,))
        assert findings == []

    def test_run_contract_checks_reports_sabotage(self, monkeypatch):
        def everything(self, subspace, counter=None):
            out = []
            stack = [self._root]
            while stack:
                node = stack.pop()
                out.extend(node.points)
                stack.extend(node.children.values())
            return np.asarray(out, dtype=np.intp)

        monkeypatch.setattr(SkylineIndex, "query_array", everything)
        findings = run_contract_checks(kinds=("UI",), n=80, d=4, seeds=(1,))
        assert findings
        assert all(f.rule == "contract" for f in findings)
