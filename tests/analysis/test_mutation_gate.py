"""Seeded mutation tests: the gate must go loud when the invariants break.

These are the acceptance-criterion mutations for the analysis subsystem:

1. breaking the superset filter behind ``SkylineIndex.query_array`` (the
   entry point the containers scan through) makes the contract layer (and
   hence ``--strict`` / ``--contracts``) exit non-zero;
2. dropping a ``counter`` argument from a kernel call is caught by the
   RPR001 linter;
3. a miscomputing algorithm makes the differential layer exit non-zero.
"""

import textwrap

import numpy as np

from repro.algorithms.sfs import SFS
from repro.analysis.__main__ import main
from repro.analysis.contracts import run_contract_checks
from repro.analysis.differential import run_differential
from repro.analysis.report import gate_exit_code
from repro.core.subset_index import SkylineIndex


def _overbroad_query(self, subspace, counter=None):
    """Mutation: ignore the superset filter, return every stored point."""
    out = []
    stack = [self._root]
    while stack:
        node = stack.pop()
        out.extend(node.points)
        stack.extend(node.children.values())
    return np.asarray(out, dtype=np.intp)


class TestBrokenSupersetFilter:
    def test_contract_layer_fails(self, monkeypatch):
        monkeypatch.setattr(SkylineIndex, "query_array", _overbroad_query)
        findings = run_contract_checks(kinds=("UI",), n=80, d=4, seeds=(1,))
        assert findings
        assert gate_exit_code(findings) == 1

    def test_cli_contract_gate_exits_nonzero(self, monkeypatch, capsys):
        monkeypatch.setattr(SkylineIndex, "query_array", _overbroad_query)
        assert main(["--no-lint", "--contracts"]) == 1
        assert "Lemma 5.1" in capsys.readouterr().out


class TestDroppedCounter:
    def test_linter_catches_the_dropped_argument(self, tmp_path):
        # the exact mutation: repro.core.merge calling a kernel bare
        (tmp_path / "merge.py").write_text(
            textwrap.dedent(
                """
                from repro.dominance import dominating_subspaces

                def merge_step(values, rest, pivot):
                    return dominating_subspaces(values[rest], values[pivot])
                """
            )
        )
        assert main([str(tmp_path)]) == 1


class TestBrokenAlgorithm:
    def test_differential_layer_fails(self, monkeypatch):
        original = SFS.run_phase

        def drops_last(self, dataset, ids, masks, container, counter):
            result = original(self, dataset, ids, masks, container, counter)
            return result[:-1] if len(result) > 1 else result

        monkeypatch.setattr(SFS, "run_phase", drops_last)
        failures = run_differential(
            algorithms=("sfs",), kinds=("UI",), n=60, d=4, seeds=(2,), minimize=False
        )
        assert failures
