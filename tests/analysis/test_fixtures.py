"""Golden fixtures: every rule has one firing and one clean example.

Each ``tests/analysis/fixtures/rprXXX_fire.py`` must trigger exactly its
rule, and the sibling ``rprXXX_ok.py`` must not — either because the code
is compliant or because the finding is suppressed with a justified
``noqa``.  A fixture may begin with a ``# lint-path: <relative path>``
directive when the rule is sensitive to where the file lives (RPR003
only polices ``algorithms/``); the harness copies it to that location
inside a scratch tree before linting.

The meta-test closes the loop: a rule is not done until it has both
fixtures and a catalogue section in ``docs/ANALYSIS.md``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import lint_paths
from repro.analysis.rules import rule_codes

FIXTURES = Path(__file__).parent / "fixtures"
DOCS = Path(__file__).parents[2] / "docs" / "ANALYSIS.md"

_DIRECTIVE = "# lint-path: "


def _lint_fixture(fixture: Path, code: str, tmp_path: Path) -> list:
    """Copy ``fixture`` into a scratch tree and lint it with one rule."""
    text = fixture.read_text()
    first_line = text.splitlines()[0] if text else ""
    if first_line.startswith(_DIRECTIVE):
        rel = first_line[len(_DIRECTIVE) :].strip()
    else:
        rel = fixture.name
    target = tmp_path / rel
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(text)
    return lint_paths([tmp_path], select=[code], root=tmp_path)


@pytest.mark.parametrize("code", rule_codes())
def test_fire_fixture_triggers_rule(code, tmp_path):
    fixture = FIXTURES / f"{code.lower()}_fire.py"
    findings = _lint_fixture(fixture, code, tmp_path)
    assert any(f.rule == code for f in findings), (
        f"{fixture.name} should trigger {code}, got {findings!r}"
    )


@pytest.mark.parametrize("code", rule_codes())
def test_ok_fixture_stays_clean(code, tmp_path):
    fixture = FIXTURES / f"{code.lower()}_ok.py"
    findings = _lint_fixture(fixture, code, tmp_path)
    assert not findings, (
        f"{fixture.name} should be clean for {code}, got {findings!r}"
    )


@pytest.mark.parametrize("code", rule_codes())
def test_every_rule_has_fixtures_and_docs(code):
    assert (FIXTURES / f"{code.lower()}_fire.py").is_file(), (
        f"missing firing fixture for {code}"
    )
    assert (FIXTURES / f"{code.lower()}_ok.py").is_file(), (
        f"missing clean fixture for {code}"
    )
    assert f"### {code} —" in DOCS.read_text(), (
        f"docs/ANALYSIS.md has no catalogue section for {code}"
    )
