"""RPR002 fires: raw bitwise surgery on a subspace mask."""


def widen(mask):
    return mask | 4
