"""RPR004 fires: per-element float() boxing inside a loop."""


def f(order, coords):
    total = 0.0
    for i in order:
        total += float(coords[i])
    return total
