"""RPR008 clean: every cache mutation is versioned or a guarded fill."""


class PreparedThing:
    def __init__(self):
        self._cache = {}
        self._version = 0

    def invalidate(self):
        self._version += 1
        self._cache.clear()

    def store(self, key, value):
        # Coherent write: the version advances with the cache.
        self._cache[key] = value
        self._version += 1

    def memoized(self, key):
        # Guarded get-then-fill: the cache is consulted before the write,
        # so this is the memo filling itself, not a coherence hazard.
        cached = self._cache.get(key)
        if cached is None:
            cached = key * 2
            self._cache[key] = cached
        return cached
