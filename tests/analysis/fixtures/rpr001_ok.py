"""RPR001 correctly suppressed: a deliberately unmetered diagnostic."""

from repro.dominance import dominates


def f(p, q):
    return dominates(p, q)  # noqa: RPR001 — diagnostic figure; tests deliberately unmetered
