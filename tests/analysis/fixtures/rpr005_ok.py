"""RPR005 correctly suppressed: deliberate low-level wiring."""

from repro.core.boost import SubsetBoost


def f(host, dataset):
    return SubsetBoost(host).compute(dataset)  # noqa: RPR005 — microbenchmark needs raw boost, no engine caches
