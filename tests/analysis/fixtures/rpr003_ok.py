# lint-path: algorithms/fixture_algo.py
"""RPR003 clean: one exported algorithm per module."""

__all__ = ["Foo"]


class Foo:
    name = "foo"
