# lint-path: algorithms/fixture_algo.py
"""RPR003 fires: an algorithm module without __all__."""


class Foo:
    name = "foo"
