"""RPR010 clean: the counter is a conditional default threaded from the
caller, so counts flow back to whoever supplied one."""

from repro.stats.counters import DominanceCounter


def dominates(p, q, counter):
    counter.record("dominates", 1)
    return all(a <= b for a, b in zip(p, q))


def kernel_user(p, q, counter=None):
    counter = counter if counter is not None else DominanceCounter()
    return dominates(p, q, counter)
