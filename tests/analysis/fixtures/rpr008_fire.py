"""RPR008 fires: a memo-backing write with no version bump.

``PreparedThing`` is a versioned class (it owns ``_version`` and an
``invalidate`` method), so every mutation of its cache must advance the
version or invalidate — ``poison`` does neither.  This is the seeded
regression for the cache-coherence rule.
"""


class PreparedThing:
    def __init__(self):
        self._cache = {}
        self._version = 0

    def invalidate(self):
        self._version += 1
        self._cache.clear()

    def lookup(self, key):
        return self._cache.get(key)

    def poison(self, key, value):
        self._cache[key] = value
