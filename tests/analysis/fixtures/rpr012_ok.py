"""RPR012 clean: narrow handling, and a justified deliberate swallow."""


def f(job, log):
    try:
        job()
    except ValueError as exc:
        log.append(exc)
        return None
    return True


def g(job):
    try:
        job()
    except Exception:  # noqa: RPR012 — best-effort cleanup; failure here must never mask the original error
        pass
