"""RPR009 fires: a worker-submitted function mutates shared state."""

RESULTS = []


def work(task):
    RESULTS.append(task)
    return task


def run(pool, tasks):
    return pool.map(work, tasks)
