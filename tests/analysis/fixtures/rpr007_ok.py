"""RPR007 correctly suppressed: deliberate bare-index wiring."""

from repro.core.subset_index import SkylineIndex


def f(d):
    return SkylineIndex(d)  # noqa: RPR007 — index internals test; the container switch is exercised elsewhere
