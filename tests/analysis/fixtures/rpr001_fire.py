"""RPR001 fires: dominance kernel called without a counter."""

from repro.dominance import dominates


def f(p, q):
    return dominates(p, q)
