"""RPR011 fires: a suppression with no justification text."""

x = 1  # noqa: RPR002
