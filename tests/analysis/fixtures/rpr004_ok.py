"""RPR004 clean: the conversion is hoisted out of the loop."""


def f(order, coords):
    listed = coords.tolist()
    total = 0.0
    for i in order:
        total += listed[i]
    return total
