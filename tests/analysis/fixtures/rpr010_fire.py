"""RPR010 fires: a locally constructed counter fed into a kernel-reaching
call without escaping.

``kernel_user`` does not call a kernel syntactically interesting by
itself, but it transitively reaches ``dominates`` through the call
graph.  ``caller`` builds a throwaway ``DominanceCounter`` and hands it
to ``kernel_user`` — the counts die with the local, so the rule fires at
the construction site.  This is the seeded transitively-uncounted
regression.
"""

from repro.stats.counters import DominanceCounter


def dominates(p, q, counter):
    counter.record("dominates", 1)
    return all(a <= b for a, b in zip(p, q))


def kernel_user(p, q, counter):
    return dominates(p, q, counter)


def caller(p, q):
    scratch = DominanceCounter()
    verdict = kernel_user(p, q, scratch)
    return verdict
