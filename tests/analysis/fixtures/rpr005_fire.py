"""RPR005 fires: hand-wired SubsetBoost outside core/ and engine/."""

from repro.core.boost import SubsetBoost


def f(host, dataset):
    return SubsetBoost(host, sigma=2).compute(dataset)
