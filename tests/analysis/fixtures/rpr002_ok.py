"""RPR002 correctly suppressed: a justified low-level mask operation."""


def widen(mask):
    return mask | 4  # noqa: RPR002 — fixture demo of a justified bit op
