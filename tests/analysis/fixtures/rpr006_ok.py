"""RPR006 correctly suppressed: a justified raw read."""

import time


def f():
    return time.perf_counter()  # noqa: RPR006 — fixture demo of a justified raw clock read
