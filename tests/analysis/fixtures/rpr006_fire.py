"""RPR006 fires: raw clock read outside obs/."""

import time


def f(body):
    started = time.perf_counter()
    body()
    return time.perf_counter() - started
