"""RPR007 fires: hand-built subset index outside core/ and engine/."""

from repro.core.subset_index import SkylineIndex


def f(d):
    return SkylineIndex(d)
