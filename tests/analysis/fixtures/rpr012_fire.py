"""RPR012 fires: a broad handler that swallows the exception."""


def f(job):
    try:
        job()
    except Exception:
        pass
