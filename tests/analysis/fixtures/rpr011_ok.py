"""RPR011 clean: the suppression carries a one-line justification."""

x = 1  # noqa: RPR002 — exercises the hygiene audit; the code is inert here
