"""RPR009 clean: workers return results; the parent merges them."""


def work(task):
    out = []
    out.append(task)
    return out


def run(pool, tasks):
    merged = []
    for part in pool.map(work, tasks):
        merged.extend(part)
    return merged
