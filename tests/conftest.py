"""Shared fixtures: small deterministic workloads and the brute-force oracle."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import generate
from repro.dataset import Dataset


def brute_skyline_ids(values: np.ndarray) -> list[int]:
    """Reference skyline via an independent O(N^2) loop (not the library's)."""
    values = np.asarray(values, dtype=float)
    n = values.shape[0]
    result = []
    for i in range(n):
        dominated = False
        for j in range(n):
            if j == i:
                continue
            if np.all(values[j] <= values[i]) and np.any(values[j] < values[i]):
                dominated = True
                break
        if not dominated:
            result.append(i)
    return result


@pytest.fixture(scope="session")
def ui_small() -> Dataset:
    return generate("UI", n=300, d=4, seed=11)


@pytest.fixture(scope="session")
def ac_small() -> Dataset:
    return generate("AC", n=300, d=4, seed=12)


@pytest.fixture(scope="session")
def co_small() -> Dataset:
    return generate("CO", n=300, d=4, seed=13)


@pytest.fixture(scope="session")
def ui_medium() -> Dataset:
    return generate("UI", n=1200, d=6, seed=21)


@pytest.fixture(scope="session")
def duplicate_heavy() -> Dataset:
    """A tiny grid dataset where duplicate coordinates abound."""
    rng = np.random.default_rng(31)
    values = rng.integers(0, 4, size=(250, 4)).astype(float)
    return Dataset(values, name="dup-grid", kind="custom")


@pytest.fixture(scope="session")
def with_negatives() -> Dataset:
    """Real-valued data including negatives (paper data is [0,1]; we go wider)."""
    rng = np.random.default_rng(41)
    return Dataset(rng.normal(0.0, 3.0, size=(250, 5)), name="gauss", kind="custom")
