"""Unit tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro.data.io import load_csv, load_npy


class TestGenerate:
    def test_csv(self, tmp_path, capsys):
        out = tmp_path / "ui.csv"
        assert main(["generate", "UI", str(out), "-n", "50", "-d", "3"]) == 0
        loaded = load_csv(out)
        assert loaded.values.shape == (50, 3)
        assert "wrote" in capsys.readouterr().out

    def test_npy(self, tmp_path):
        out = tmp_path / "ac.npy"
        assert main(["generate", "AC", str(out), "-n", "40", "-d", "2"]) == 0
        assert load_npy(out).values.shape == (40, 2)

    def test_real_kind(self, tmp_path):
        out = tmp_path / "nba.csv"
        assert main(["generate", "nba", str(out), "-n", "30"]) == 0
        assert load_csv(out).values.shape == (30, 8)

    def test_bad_kind_reports_error(self, tmp_path, capsys):
        assert main(["generate", "XX", str(tmp_path / "x.csv")]) == 2
        assert "error" in capsys.readouterr().err


class TestRun:
    def test_on_generated_workload(self, capsys):
        assert main(["run", "-a", "sfs", "--kind", "UI", "-n", "80", "-d", "3"]) == 0
        out = capsys.readouterr().out
        assert "skyline" in out
        assert "mean DT" in out

    def test_on_file(self, tmp_path, capsys):
        path = tmp_path / "d.csv"
        main(["generate", "UI", str(path), "-n", "60", "-d", "3"])
        capsys.readouterr()
        assert main(["run", "-a", "sdi-subset", "-i", str(path), "--sigma", "2"]) == 0
        assert "sdi-subset" in capsys.readouterr().out

    def test_ids_flag(self, capsys):
        assert main(["run", "-a", "sfs", "-n", "30", "-d", "2", "--ids"]) == 0
        assert "ids" in capsys.readouterr().out

    def test_unknown_algorithm(self, capsys):
        assert main(["run", "-a", "nope", "-n", "30"]) == 2
        assert "error" in capsys.readouterr().err


class TestOthers:
    def test_algorithms_listing(self, capsys):
        assert main(["algorithms"]) == 0
        out = capsys.readouterr().out
        assert "sdi-subset" in out and "bskytree-p" in out

    def test_tune(self, capsys):
        assert main(["tune", "--kind", "UI", "-n", "200", "-d", "4", "--sample", "100"]) == 0
        out = capsys.readouterr().out
        assert "best sigma" in out


class TestExplain:
    def test_explain_prints_the_pinned_plan(self, capsys):
        args = ["run", "-a", "sdi-subset", "--kind", "UI", "-n", "80", "-d", "3"]
        assert main(args + ["--explain"]) == 0
        out = capsys.readouterr().out
        assert "Plan: sdi-subset" in out
        assert "[pinned]" in out

    def test_auto_lets_the_planner_choose(self, capsys):
        args = ["run", "-a", "auto", "--kind", "UI", "-n", "80", "-d", "3"]
        assert main(args + ["--explain"]) == 0
        out = capsys.readouterr().out
        assert "[adaptive]" in out
        assert "signals:" in out
