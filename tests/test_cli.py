"""Unit tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro.data.io import load_csv, load_npy


class TestGenerate:
    def test_csv(self, tmp_path, capsys):
        out = tmp_path / "ui.csv"
        assert main(["generate", "UI", str(out), "-n", "50", "-d", "3"]) == 0
        loaded = load_csv(out)
        assert loaded.values.shape == (50, 3)
        assert "wrote" in capsys.readouterr().out

    def test_npy(self, tmp_path):
        out = tmp_path / "ac.npy"
        assert main(["generate", "AC", str(out), "-n", "40", "-d", "2"]) == 0
        assert load_npy(out).values.shape == (40, 2)

    def test_real_kind(self, tmp_path):
        out = tmp_path / "nba.csv"
        assert main(["generate", "nba", str(out), "-n", "30"]) == 0
        assert load_csv(out).values.shape == (30, 8)

    def test_bad_kind_reports_error(self, tmp_path, capsys):
        assert main(["generate", "XX", str(tmp_path / "x.csv")]) == 2
        assert "error" in capsys.readouterr().err


class TestRun:
    def test_on_generated_workload(self, capsys):
        assert main(["run", "-a", "sfs", "--kind", "UI", "-n", "80", "-d", "3"]) == 0
        out = capsys.readouterr().out
        assert "skyline" in out
        assert "mean DT" in out

    def test_on_file(self, tmp_path, capsys):
        path = tmp_path / "d.csv"
        main(["generate", "UI", str(path), "-n", "60", "-d", "3"])
        capsys.readouterr()
        assert main(["run", "-a", "sdi-subset", "-i", str(path), "--sigma", "2"]) == 0
        assert "sdi-subset" in capsys.readouterr().out

    def test_ids_flag(self, capsys):
        assert main(["run", "-a", "sfs", "-n", "30", "-d", "2", "--ids"]) == 0
        assert "ids" in capsys.readouterr().out

    def test_unknown_algorithm(self, capsys):
        assert main(["run", "-a", "nope", "-n", "30"]) == 2
        assert "error" in capsys.readouterr().err


class TestOthers:
    def test_algorithms_listing(self, capsys):
        assert main(["algorithms"]) == 0
        out = capsys.readouterr().out
        assert "sdi-subset" in out and "bskytree-p" in out

    def test_tune(self, capsys):
        assert main(["tune", "--kind", "UI", "-n", "200", "-d", "4", "--sample", "100"]) == 0
        out = capsys.readouterr().out
        assert "best sigma" in out


class TestExplain:
    def test_explain_prints_the_pinned_plan(self, capsys):
        args = ["run", "-a", "sdi-subset", "--kind", "UI", "-n", "80", "-d", "3"]
        assert main(args + ["--explain"]) == 0
        out = capsys.readouterr().out
        assert "Plan: sdi-subset" in out
        assert "[pinned]" in out

    def test_auto_lets_the_planner_choose(self, capsys):
        args = ["run", "-a", "auto", "--kind", "UI", "-n", "80", "-d", "3"]
        assert main(args + ["--explain"]) == 0
        out = capsys.readouterr().out
        assert "[adaptive]" in out
        assert "signals:" in out


class TestTelemetry:
    ARGS = ["run", "-a", "auto", "--kind", "UI", "-n", "300", "-d", "4"]

    def test_explain_analyze_prints_estimate_vs_actual(self, capsys):
        assert main(self.ARGS + ["--explain-analyze"]) == 0
        out = capsys.readouterr().out
        assert "EXPLAIN ANALYZE:" in out
        assert "skyline_size" in out
        assert "estimated" in out and "actual" in out

    def test_events_flag_writes_parseable_jsonl(self, tmp_path, capsys):
        import json

        path = tmp_path / "events.jsonl"
        assert main(self.ARGS + ["--events", str(path)]) == 0
        lines = path.read_text().splitlines()
        names = [json.loads(line)["event"] for line in lines]
        assert "query.start" in names
        assert "plan.chosen" in names
        assert "query.finish" in names
        assert "events" in capsys.readouterr().out

    def test_slow_ms_zero_marks_every_query_slow(self, tmp_path):
        import json

        path = tmp_path / "events.jsonl"
        args = self.ARGS + ["--events", str(path), "--slow-ms", "0"]
        assert main(args) == 0
        finishes = [
            json.loads(line)
            for line in path.read_text().splitlines()
            if json.loads(line)["event"] == "query.finish"
        ]
        assert finishes and all(entry["wall_s"] >= 0.0 for entry in finishes)

    def test_prom_flag_writes_exposition(self, tmp_path, capsys):
        path = tmp_path / "metrics.prom"
        assert main(self.ARGS + ["--prom", str(path)]) == 0
        content = path.read_text()
        assert "# TYPE repro_" in content
        assert "repro_counter_" in content  # counter gauges exported
        assert 'repro_query_wall_s_bucket{le="+Inf"} 1' in content  # histogram
        assert "metrics" in capsys.readouterr().out

    def test_metrics_include_planner_accuracy_ratios(self, tmp_path):
        import json

        path = tmp_path / "metrics.json"
        args = self.ARGS + ["--explain-analyze", "--metrics", str(path)]
        assert main(args) == 0
        metrics = json.loads(path.read_text())
        assert "planner.skyline_size_ratio" in metrics
        assert metrics["planner.skyline_size_ratio"] > 0
