"""Shape-regression tests: the paper's qualitative results at small scale.

These tests pin the *relationships* the paper reports — who needs fewer
dominance tests than whom, per data regime — so a future change that keeps
algorithms correct but silently destroys the subset approach's advantage
fails the suite.  All run on scaled workloads; only DT (hardware-free) is
asserted, never wall-clock.
"""

import pytest

import repro
from repro.stats.counters import DominanceCounter


def mean_dt(data, algorithm, sigma=None):
    counter = DominanceCounter()
    repro.skyline(data, algorithm=algorithm, sigma=sigma, counter=counter)
    return counter.tests / data.cardinality


@pytest.fixture(scope="module")
def ui8():
    return repro.generate("UI", n=4000, d=8, seed=0)


@pytest.fixture(scope="module")
def ac8():
    return repro.generate("AC", n=2000, d=8, seed=0)


@pytest.fixture(scope="module")
def co8():
    return repro.generate("CO", n=4000, d=8, seed=0)


@pytest.mark.slow
class TestUIShape:
    """Tables 10/12: the subset approach shines on uniform independent data."""

    def test_boost_gains_on_every_host(self, ui8):
        for host in ("sfs", "salsa", "sdi"):
            assert mean_dt(ui8, f"{host}-subset") < mean_dt(ui8, host) / 2

    def test_sdi_subset_is_the_dt_winner(self, ui8):
        best = mean_dt(ui8, "sdi-subset")
        for other in ("sfs", "sfs-subset", "salsa", "salsa-subset", "sdi",
                      "bskytree-s", "bskytree-p"):
            assert best < mean_dt(ui8, other)

    def test_sdi_beats_sfs_unboosted(self, ui8):
        assert mean_dt(ui8, "sdi") < mean_dt(ui8, "sfs")


@pytest.mark.slow
class TestCOShape:
    """Tables 6/8: stop points dominate; the merge puts a ~1.0 DT floor."""

    def test_stop_point_algorithms_below_one(self, co8):
        assert mean_dt(co8, "salsa") < 1.0
        assert mean_dt(co8, "sdi") < 1.0

    def test_boosted_pay_the_merge_floor(self, co8):
        for host in ("salsa", "sdi"):
            boosted = mean_dt(co8, f"{host}-subset")
            assert 0.9 <= boosted <= 1.5

    def test_no_boost_gain_for_stop_point_hosts(self, co8):
        # Table 8 prints "-" for SaLSa and SDI at every cardinality.
        assert mean_dt(co8, "salsa-subset") > mean_dt(co8, "salsa")
        assert mean_dt(co8, "sdi-subset") > mean_dt(co8, "sdi")


@pytest.mark.slow
class TestACShape:
    """Tables 2/4: gains persist on AC, BSkyTree-P leads the baselines."""

    def test_boost_still_reduces_tests(self, ac8):
        for host in ("sfs", "salsa", "sdi"):
            assert mean_dt(ac8, f"{host}-subset") < mean_dt(ac8, host)

    def test_pivot_masks_crush_plain_scans(self, ac8):
        # The BSkyTree incomparability masks skip most AC tests; at paper
        # scale P additionally beats S, which needs larger N to show.
        sfs = mean_dt(ac8, "sfs")
        assert mean_dt(ac8, "bskytree-s") < sfs / 4
        assert mean_dt(ac8, "bskytree-p") < sfs / 4


@pytest.mark.slow
class TestDimensionalityShape:
    """Table 10 columns: the boost's gain grows with dimensionality ..."""

    def test_gain_grows_with_d(self):
        gains = []
        for d in (4, 6, 8, 10):
            data = repro.generate("UI", n=2000, d=d, seed=1)
            gains.append(mean_dt(data, "sfs") / mean_dt(data, "sfs-subset"))
        assert gains[-1] > gains[0]
        assert gains[-1] > 3.0

    def test_2d_gain_is_negligible(self):
        """... and d=2 is explicitly called out as near-useless (§5)."""
        data = repro.generate("UI", n=2000, d=2, seed=1)
        gain = mean_dt(data, "sfs") / mean_dt(data, "sfs-subset")
        assert gain < 1.5
