"""Unit and property tests for the bitset subspace representation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.structures import bitset

subspaces = st.integers(min_value=0, max_value=(1 << 12) - 1)


class TestRoundTrips:
    def test_from_dims_to_dims(self):
        assert bitset.to_dims(bitset.from_dims([0, 2, 3])) == [0, 2, 3]

    def test_empty(self):
        assert bitset.from_dims([]) == bitset.EMPTY
        assert bitset.to_dims(0) == []

    def test_duplicates_collapse(self):
        assert bitset.from_dims([1, 1, 1]) == 0b10

    def test_negative_dim_rejected(self):
        with pytest.raises(ValueError):
            bitset.from_dims([-1])

    def test_bits_of_order(self):
        assert list(bitset.bits_of(0b101001)) == [0, 3, 5]


class TestPredicates:
    def test_popcount(self):
        assert bitset.popcount(0) == 0
        assert bitset.popcount(0b1011) == 3

    def test_subset_superset(self):
        assert bitset.is_subset(0b001, 0b011)
        assert bitset.is_subset(0b011, 0b011)
        assert not bitset.is_subset(0b100, 0b011)
        assert bitset.is_superset(0b011, 0b001)
        assert not bitset.is_superset(0b001, 0b011)

    def test_proper_subset(self):
        assert bitset.is_proper_subset(0b001, 0b011)
        assert not bitset.is_proper_subset(0b011, 0b011)

    def test_complement(self):
        assert bitset.complement(0b0101, 4) == 0b1010
        assert bitset.complement(0, 3) == 0b111

    def test_complement_rejects_out_of_range_bits(self):
        with pytest.raises(ValueError):
            bitset.complement(0b1000, 3)

    def test_universe(self):
        assert bitset.universe(0) == 0
        assert bitset.universe(4) == 0b1111
        with pytest.raises(ValueError):
            bitset.universe(-1)


@given(subspaces)
def test_complement_is_involution(mask):
    d = 12
    assert bitset.complement(bitset.complement(mask, d), d) == mask


@given(subspaces, subspaces)
def test_subset_reverses_under_complement(a, b):
    d = 12
    if bitset.is_subset(a, b):
        assert bitset.is_superset(bitset.complement(a, d), bitset.complement(b, d))


@given(subspaces)
def test_popcount_matches_to_dims(mask):
    assert bitset.popcount(mask) == len(bitset.to_dims(mask))


@given(st.lists(st.integers(min_value=0, max_value=20), max_size=10))
def test_from_dims_membership(dims):
    mask = bitset.from_dims(dims)
    for dim in range(21):
        assert ((mask >> dim) & 1 == 1) == (dim in set(dims))
