"""Unit and property tests for the STR R-tree."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.errors import InvalidParameterError
from repro.structures.rtree import Rect, RTree


class TestRect:
    def test_of_point(self):
        r = Rect.of_point([1.0, 2.0])
        assert r.low == r.high == (1.0, 2.0)

    def test_rejects_inverted(self):
        with pytest.raises(InvalidParameterError):
            Rect((1.0,), (0.0,))

    def test_rejects_dim_mismatch(self):
        with pytest.raises(InvalidParameterError):
            Rect((1.0,), (0.0, 1.0))

    def test_union(self):
        r = Rect.union([Rect.of_point([0.0, 5.0]), Rect.of_point([3.0, 1.0])])
        assert r.low == (0.0, 1.0)
        assert r.high == (3.0, 5.0)

    def test_union_empty_rejected(self):
        with pytest.raises(InvalidParameterError):
            Rect.union([])

    def test_contains(self):
        outer = Rect((0.0, 0.0), (2.0, 2.0))
        inner = Rect((0.5, 0.5), (1.0, 1.0))
        assert outer.contains(inner)
        assert not inner.contains(outer)

    def test_mindist_is_l1_of_low_corner(self):
        assert Rect((1.0, 2.0), (5.0, 5.0)).mindist() == 3.0

    def test_mindist_clamps_negative_coords(self):
        assert Rect((-1.0, 2.0), (5.0, 5.0)).mindist() == 2.0


class TestRTree:
    def test_rejects_bad_inputs(self):
        with pytest.raises(InvalidParameterError):
            RTree(np.ones((3, 2)), max_entries=1)
        with pytest.raises(InvalidParameterError):
            RTree(np.ones(3))

    def test_bulk_load_contains_all_entries(self):
        rng = np.random.default_rng(0)
        pts = rng.random((100, 3))
        tree = RTree(pts, max_entries=4)
        assert len(tree) == 100
        got = sorted(pid for pid, _ in tree.iter_entries())
        assert got == list(range(100))
        tree.check_invariants()

    def test_entries_carry_correct_coords(self):
        pts = np.array([[0.1, 0.2], [0.3, 0.4]])
        tree = RTree(pts, max_entries=4)
        entries = dict(tree.iter_entries())
        assert entries[0] == (0.1, 0.2)
        assert entries[1] == (0.3, 0.4)

    def test_single_point(self):
        tree = RTree(np.array([[1.0, 1.0]]))
        assert len(tree) == 1
        tree.check_invariants()

    def test_insert_after_bulk_load(self):
        rng = np.random.default_rng(1)
        tree = RTree(rng.random((20, 2)), max_entries=4)
        for i in range(20, 60):
            tree.insert(i, rng.random(2))
        assert len(tree) == 60
        assert sorted(pid for pid, _ in tree.iter_entries()) == list(range(60))
        tree.check_invariants()

    def test_insert_into_empty(self):
        tree = RTree(np.empty((0, 2)).reshape(0, 2), max_entries=4)
        tree.insert(0, [0.5, 0.5])
        assert len(tree) == 1
        assert list(tree.iter_entries()) == [(0, (0.5, 0.5))]

    def test_insert_rejects_dim_mismatch(self):
        tree = RTree(np.ones((2, 3)))
        with pytest.raises(InvalidParameterError):
            tree.insert(9, [1.0, 2.0])

    def test_root_mbr_covers_everything(self):
        rng = np.random.default_rng(2)
        pts = rng.random((64, 4))
        tree = RTree(pts, max_entries=5)
        root = tree.root.rect
        assert np.allclose(root.low, pts.min(axis=0))
        assert np.allclose(root.high, pts.max(axis=0))


@settings(max_examples=25, deadline=None)
@given(
    hnp.arrays(
        np.float64,
        st.tuples(st.integers(1, 120), st.integers(1, 5)),
        elements=st.floats(0, 1, allow_nan=False),
    ),
    st.integers(2, 10),
)
def test_str_bulk_load_invariants(points, max_entries):
    tree = RTree(points, max_entries=max_entries)
    tree.check_invariants()
    assert len(tree) == points.shape[0]
