"""Unit tests for the simulated paged disk."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.structures.pagedstore import IOCounter, PagedFile


class TestIOCounter:
    def test_tallies(self):
        io = IOCounter()
        io.read()
        io.read(3)
        io.write(2)
        assert io.reads == 4
        assert io.writes == 2
        assert io.total == 6


class TestPagedFile:
    def test_page_size_validation(self):
        with pytest.raises(InvalidParameterError):
            PagedFile(IOCounter(), page_size=0)

    def test_append_fills_pages(self):
        io = IOCounter()
        file = PagedFile(io, page_size=3)
        for i in range(7):
            file.append(i, np.array([float(i)]))
        file.flush()
        assert file.n_pages == 3  # 3 + 3 + 1
        assert len(file) == 7
        assert io.writes == 3

    def test_flush_empty_is_noop(self):
        io = IOCounter()
        file = PagedFile(io, page_size=4)
        file.flush()
        assert io.writes == 0
        assert file.n_pages == 0

    def test_read_charges_per_page(self):
        io = IOCounter()
        file = PagedFile.from_rows(io, 4, np.arange(10.0).reshape(10, 1))
        assert io.writes == 0  # the pre-existing input file is free
        records = [record for page in file.pages() for record in page]
        assert io.reads == 3
        assert [row_id for row_id, _ in records] == list(range(10))

    def test_from_rows_can_charge_writes(self):
        io = IOCounter()
        PagedFile.from_rows(io, 4, np.arange(10.0).reshape(10, 1), charge_writes=True)
        assert io.writes == 3

    def test_reading_unflushed_file_rejected(self):
        file = PagedFile(IOCounter(), page_size=4)
        file.append(0, np.array([1.0]))
        with pytest.raises(InvalidParameterError):
            list(file.pages())

    def test_round_trip_preserves_rows(self):
        io = IOCounter()
        rows = np.random.default_rng(0).random((9, 2))
        file = PagedFile.from_rows(io, 2, rows)
        for page in file.pages():
            for row_id, row in page:
                assert np.array_equal(row, rows[row_id])
