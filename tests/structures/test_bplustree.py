"""Unit and property tests for the in-memory B+-tree."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidParameterError
from repro.structures.bplustree import BPlusTree, bulk_load


class TestBasics:
    def test_order_validation(self):
        with pytest.raises(InvalidParameterError):
            BPlusTree(order=2)

    def test_empty_tree(self):
        tree = BPlusTree(order=4)
        assert len(tree) == 0
        assert tree.get(1) == []
        assert list(tree.items()) == []
        with pytest.raises(KeyError):
            tree.min_item()

    def test_insert_and_get(self):
        tree = BPlusTree(order=4)
        tree.insert(3, "a")
        tree.insert(1, "b")
        assert tree.get(3) == ["a"]
        assert tree.get(2) == []
        assert len(tree) == 2

    def test_duplicate_keys_accumulate(self):
        tree = BPlusTree(order=4)
        for value in "xyz":
            tree.insert(5, value)
        assert tree.get(5) == ["x", "y", "z"]
        assert len(tree) == 3

    def test_items_sorted_after_many_splits(self):
        tree = BPlusTree(order=3)
        keys = [7, 1, 9, 3, 8, 2, 6, 4, 5, 0]
        for k in keys:
            tree.insert(k, k * 10)
        assert [k for k, _ in tree.items()] == sorted(keys)
        assert [v for _, v in tree.items()] == [k * 10 for k in sorted(keys)]
        tree.check_invariants()

    def test_min_item(self):
        tree = bulk_load([(5, "x"), (2, "y"), (9, "z")], order=3)
        assert tree.min_item() == (2, "y")

    def test_range_scan(self):
        tree = bulk_load([(k, str(k)) for k in range(20)], order=4)
        got = [k for k, _ in tree.range(5, 11)]
        assert got == list(range(5, 11))

    def test_range_scan_excludes_hi(self):
        tree = bulk_load([(k, k) for k in [1, 2, 3]], order=4)
        assert [k for k, _ in tree.range(1, 3)] == [1, 2]

    def test_keys_distinct_sorted(self):
        tree = bulk_load([(k % 5, k) for k in range(25)], order=3)
        assert list(tree.keys()) == [0, 1, 2, 3, 4]

    def test_float_keys(self):
        tree = bulk_load([(0.3, "a"), (0.1, "b"), (0.2, "c")], order=3)
        assert [k for k, _ in tree.items()] == [0.1, 0.2, 0.3]


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.integers(min_value=-1000, max_value=1000), max_size=200),
    st.integers(min_value=3, max_value=16),
)
def test_tree_matches_sorted_reference(keys, order):
    tree = BPlusTree(order=order)
    for i, key in enumerate(keys):
        tree.insert(key, i)
    tree.check_invariants()
    assert len(tree) == len(keys)
    expected = sorted(
        ((key, i) for i, key in enumerate(keys)), key=lambda kv: (kv[0], kv[1])
    )
    assert list(tree.items()) == expected


@settings(max_examples=30, deadline=None)
@given(st.lists(st.floats(0, 1, allow_nan=False), min_size=1, max_size=120))
def test_range_matches_filter(keys):
    tree = BPlusTree(order=5)
    for i, key in enumerate(keys):
        tree.insert(key, i)
    lo, hi = np.percentile(keys, [25, 75])
    got = sorted(k for k, _ in tree.range(lo, hi))
    expected = sorted(k for k in keys if lo <= k < hi)
    assert got == expected
