"""Unit and property tests for Z-order addressing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidParameterError
from repro.structures.zorder import grid_coordinates, z_address, z_addresses


class TestGridCoordinates:
    def test_range_and_dtype(self):
        rng = np.random.default_rng(0)
        grid = grid_coordinates(rng.random((50, 3)), bits=8)
        assert grid.dtype == np.int64
        assert grid.min() >= 0
        assert grid.max() <= 255

    def test_monotone_per_dimension(self):
        values = np.array([[0.1, 0.9], [0.5, 0.5], [0.9, 0.1]])
        grid = grid_coordinates(values, bits=10)
        assert grid[0, 0] <= grid[1, 0] <= grid[2, 0]
        assert grid[0, 1] >= grid[1, 1] >= grid[2, 1]

    def test_constant_column_is_safe(self):
        values = np.ones((5, 2))
        grid = grid_coordinates(values, bits=4)
        assert (grid == 0).all()

    def test_bits_validation(self):
        with pytest.raises(InvalidParameterError):
            grid_coordinates(np.ones((2, 2)), bits=0)
        with pytest.raises(InvalidParameterError):
            grid_coordinates(np.ones((2, 2)), bits=22)
        with pytest.raises(InvalidParameterError):
            grid_coordinates(np.ones(3))


class TestZAddress:
    def test_interleaving_2d(self):
        # cell (x=1, y=0) -> bit 0 set; cell (x=0, y=1) -> bit 1 set.
        assert z_address(np.array([1, 0])) == 1
        assert z_address(np.array([0, 1])) == 2
        assert z_address(np.array([3, 0])) == 0b0101
        assert z_address(np.array([0, 3])) == 0b1010

    def test_zero_cell(self):
        assert z_address(np.array([0, 0, 0])) == 0

    def test_batch_matches_scalar(self):
        rng = np.random.default_rng(1)
        grid = rng.integers(0, 1 << 10, size=(40, 3))
        batch = z_addresses(grid, bits=10)
        for row, addr in zip(grid, batch):
            assert z_address(row) == addr

    def test_batch_validates_shape(self):
        with pytest.raises(InvalidParameterError):
            z_addresses(np.ones(3, dtype=np.int64))

    def test_high_dimensional_addresses_exceed_64_bits(self):
        grid = np.full((1, 24), (1 << 16) - 1, dtype=np.int64)
        (addr,) = z_addresses(grid, bits=16)
        assert addr.bit_length() == 24 * 16


@settings(max_examples=60, deadline=None)
@given(
    st.integers(1, 5).flatmap(
        lambda d: st.tuples(
            st.lists(st.integers(0, 255), min_size=d, max_size=d),
            st.lists(st.integers(0, 255), min_size=d, max_size=d),
        )
    )
)
def test_z_order_monotone_under_componentwise_le(cells):
    """If cell a <= cell b componentwise, then z(a) <= z(b)."""
    a, b = (np.array(c) for c in cells)
    lo = np.minimum(a, b)
    assert z_address(lo) <= z_address(a)
    assert z_address(lo) <= z_address(b)
