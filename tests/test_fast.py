"""Unit tests for the throughput-oriented fast_skyline kernel."""

import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

import repro
from repro.errors import InvalidParameterError
from repro.fast import fast_skyline
from tests.conftest import brute_skyline_ids


class TestFastSkyline:
    def test_chunk_size_validation(self):
        with pytest.raises(InvalidParameterError):
            fast_skyline(np.ones((2, 2)), chunk_size=0)

    @pytest.mark.parametrize("fixture", ["ui_small", "ac_small", "co_small",
                                         "duplicate_heavy", "with_negatives"])
    def test_matches_oracle_on_every_regime(self, fixture, request):
        dataset = request.getfixturevalue(fixture)
        got = fast_skyline(dataset)
        assert list(got) == brute_skyline_ids(dataset.values)

    @pytest.mark.parametrize("chunk_size", [1, 7, 100, 10_000])
    def test_any_chunk_size(self, chunk_size, ui_small):
        got = fast_skyline(ui_small, chunk_size=chunk_size)
        assert list(got) == brute_skyline_ids(ui_small.values)

    def test_single_point(self):
        assert list(fast_skyline(np.ones((1, 3)))) == [0]

    def test_identical_points(self):
        assert list(fast_skyline(np.ones((9, 2)))) == list(range(9))

    @pytest.mark.slow
    def test_much_faster_than_the_counting_oracle(self):
        data = repro.generate("UI", n=8_000, d=6, seed=0)
        started = time.perf_counter()
        fast = fast_skyline(data)
        fast_elapsed = time.perf_counter() - started
        result = repro.skyline(data, algorithm="bruteforce")
        assert list(fast) == list(result.indices)
        assert fast_elapsed * 3 < result.elapsed_seconds


@settings(max_examples=40, deadline=None)
@given(
    hnp.arrays(
        np.float64,
        st.tuples(st.integers(1, 80), st.integers(1, 5)),
        elements=st.floats(0, 1, allow_nan=False, width=16),
    ),
    st.integers(1, 64),
)
def test_fast_skyline_property(values, chunk_size):
    got = fast_skyline(values, chunk_size=chunk_size)
    assert list(got) == brute_skyline_ids(values)
