"""Unit tests for BBS over the R-tree."""

import numpy as np
import pytest

from repro.algorithms.bbs import BBS
from repro.dataset import Dataset
from repro.errors import InvalidParameterError
from repro.stats.counters import DominanceCounter
from tests.conftest import brute_skyline_ids


class TestBBS:
    def test_fanout_validation(self):
        with pytest.raises(InvalidParameterError):
            BBS(max_entries=1)

    @pytest.mark.parametrize("fanout", [2, 4, 32])
    def test_correct_for_any_fanout(self, fanout, ui_small):
        result = BBS(max_entries=fanout).compute(ui_small)
        assert list(result.indices) == brute_skyline_ids(ui_small.values)

    def test_node_pruning_reduces_tests_vs_bruteforce(self, ui_medium):
        from repro.algorithms.bruteforce import BruteForce

        bbs_counter = DominanceCounter()
        brute_counter = DominanceCounter()
        BBS().compute(ui_medium, counter=bbs_counter)
        BruteForce().compute(ui_medium, counter=brute_counter)
        assert bbs_counter.tests < brute_counter.tests

    def test_dominated_subtree_never_yields_skyline(self):
        # A cluster near the origin plus a far dominated cluster: the far
        # cluster's nodes must be pruned wholesale.
        rng = np.random.default_rng(1)
        near = rng.random((50, 3)) * 0.1
        far = rng.random((200, 3)) * 0.1 + 0.8
        values = np.vstack([near, far])
        result = BBS(max_entries=4).compute(Dataset(values))
        assert max(result.indices) < 50

    def test_duplicate_points(self, duplicate_heavy):
        result = BBS().compute(duplicate_heavy)
        assert list(result.indices) == brute_skyline_ids(duplicate_heavy.values)

    def test_negative_coordinates_shifted_safely(self, with_negatives):
        result = BBS().compute(with_negatives)
        assert list(result.indices) == brute_skyline_ids(with_negatives.values)
