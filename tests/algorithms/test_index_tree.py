"""Unit tests for the B+-tree Index skyline algorithm."""

import numpy as np
import pytest

from repro.algorithms.index_tree import IndexSkyline
from repro.algorithms.sfs import SFS
from repro.dataset import Dataset
from repro.errors import InvalidParameterError
from repro.stats.counters import DominanceCounter
from tests.conftest import brute_skyline_ids


class TestIndexSkyline:
    def test_tree_order_validation(self):
        with pytest.raises(InvalidParameterError):
            IndexSkyline(tree_order=2)

    @pytest.mark.parametrize("order", [3, 8, 64])
    def test_correct_for_any_tree_order(self, order, ui_small):
        result = IndexSkyline(tree_order=order).compute(ui_small)
        assert list(result.indices) == brute_skyline_ids(ui_small.values)

    def test_early_termination_on_correlated_data(self):
        rng = np.random.default_rng(0)
        base = rng.random(2000)
        values = np.clip(base[:, None] + rng.normal(0, 0.01, (2000, 4)), 0, 1)
        counter = DominanceCounter()
        result = IndexSkyline().compute(Dataset(values), counter=counter)
        assert list(result.indices) == brute_skyline_ids(values)
        sfs_counter = DominanceCounter()
        SFS().compute(Dataset(values), counter=sfs_counter)
        assert counter.tests < sfs_counter.tests

    def test_equal_min_value_batches(self):
        """Points sharing a minC must be tested against each other."""
        values = np.array(
            [[0.1, 0.9, 0.5], [0.1, 0.4, 0.5], [0.1, 0.4, 0.4], [0.9, 0.9, 0.9]]
        )
        result = IndexSkyline().compute(Dataset(values))
        assert list(result.indices) == brute_skyline_ids(values)

    def test_negative_data(self, with_negatives):
        result = IndexSkyline().compute(with_negatives)
        assert list(result.indices) == brute_skyline_ids(with_negatives.values)
