"""Unit tests for the algorithm base plumbing."""

import numpy as np
import pytest

from repro.algorithms.base import SkylineAlgorithm, monotone_order, run_timed
from repro.dataset import Dataset
from repro.errors import ReproError
from repro.stats.counters import DominanceCounter


class _FakeDuplicating(SkylineAlgorithm):
    name = "fake-dup"

    def _run(self, dataset, counter):
        return [0, 0, 1]


class _FakeConstant(SkylineAlgorithm):
    name = "fake-const"

    def _run(self, dataset, counter):
        counter.add(7)
        return [2, 0]


class TestRunTimed:
    def test_duplicate_ids_rejected(self):
        with pytest.raises(AssertionError):
            _FakeDuplicating().compute(np.ones((3, 2)))

    def test_result_is_sorted_and_counted(self):
        result = _FakeConstant().compute(np.ones((3, 2)))
        assert list(result.indices) == [0, 2]
        assert result.dominance_tests == 7
        assert result.cardinality == 3
        assert result.algorithm == "fake-const"

    def test_external_counter_accumulates(self):
        counter = DominanceCounter(tests=5)
        result = _FakeConstant().compute(np.ones((2, 2)), counter=counter)
        assert result.dominance_tests == 12

    def test_invalid_input_propagates_library_errors(self):
        with pytest.raises(ReproError):
            _FakeConstant().compute(np.full((2, 2), np.nan))

    def test_repr_mentions_name(self):
        assert "fake-const" in repr(_FakeConstant())


class TestMonotoneOrder:
    def test_primary_key_ascending(self):
        keys = np.array([3.0, 1.0, 2.0])
        ties = np.zeros(3)
        order = monotone_order(keys, ties, np.arange(3, dtype=np.intp))
        assert list(order) == [1, 2, 0]

    def test_tiebreak_applied_on_equal_keys(self):
        keys = np.array([1.0, 1.0, 1.0])
        ties = np.array([2.0, 0.0, 1.0])
        order = monotone_order(keys, ties, np.arange(3, dtype=np.intp))
        assert list(order) == [1, 2, 0]

    def test_subset_of_ids(self):
        keys = np.array([5.0, 4.0, 3.0, 2.0])
        ties = np.zeros(4)
        order = monotone_order(keys, ties, np.array([0, 2], dtype=np.intp))
        assert list(order) == [2, 0]


class TestSkylineResult:
    def test_mean_dt_property(self):
        result = _FakeConstant().compute(np.ones((7, 2)))
        assert result.mean_dominance_tests == pytest.approx(1.0)

    def test_size(self):
        ds = Dataset(np.ones((4, 2)))
        assert _FakeConstant().compute(ds).size == 2
