"""Unit tests for BNL's window and multi-pass behaviour."""

import numpy as np
import pytest

from repro.algorithms.bnl import BNL
from repro.dataset import Dataset
from repro.errors import InvalidParameterError
from tests.conftest import brute_skyline_ids


class TestWindow:
    def test_window_size_validation(self):
        with pytest.raises(InvalidParameterError):
            BNL(window_size=0)

    def test_unbounded_window_single_pass(self, ui_small):
        result = BNL(window_size=None).compute(ui_small)
        assert list(result.indices) == brute_skyline_ids(ui_small.values)

    @pytest.mark.parametrize("window", [1, 2, 7, 64])
    def test_tiny_windows_force_overflow_passes(self, window, ui_small):
        result = BNL(window_size=window).compute(ui_small)
        assert list(result.indices) == brute_skyline_ids(ui_small.values)

    def test_window_eviction(self):
        # Second point dominates the first: the window entry must be evicted.
        values = np.array([[5.0, 5.0], [1.0, 1.0], [4.0, 6.0]])
        result = BNL().compute(Dataset(values))
        assert list(result.indices) == [1]

    def test_multi_pass_confirmation_of_incomparable_points(self):
        # 20 mutually incomparable points with a window of 4 force five
        # overflow passes; every point must still be confirmed skyline.
        values = np.array([[float(i), float(20 - i)] for i in range(20)])
        result = BNL(window_size=4).compute(Dataset(values))
        assert list(result.indices) == list(range(20))

    def test_duplicates_with_small_window(self, duplicate_heavy):
        result = BNL(window_size=4).compute(duplicate_heavy)
        assert list(result.indices) == brute_skyline_ids(duplicate_heavy.values)
