"""Batched scan phase vs the scalar reference path: bit-identical results.

The vectorised candidate gathering (contiguous blocks in the container,
sorted views in SDI, memoized index queries) is a pure execution-strategy
change — skylines *and* charged dominance-test counts must match the
scalar path exactly on every distribution.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.algorithms.salsa import SaLSa
from repro.algorithms.sdi import SDI
from repro.algorithms.sfs import SFS
from repro.core.boost import SubsetBoost
from repro.data import generate
from repro.dominance import first_dominator, first_dominator_prefix
from repro.stats.counters import DominanceCounter

KINDS = ("UI", "CO", "AC")


def _run(boost, dataset):
    counter = DominanceCounter()
    result = boost.compute(dataset, counter=counter)
    return list(result.indices), counter.tests


class TestBatchedEqualsScalar:
    @pytest.mark.parametrize("kind", KINDS)
    @pytest.mark.parametrize("seed", [1, 7])
    def test_sdi_subset(self, kind, seed):
        dataset = generate(kind, n=400, d=5, seed=seed)
        batched = _run(SubsetBoost(SDI(batched=True), memoize=True), dataset)
        scalar = _run(SubsetBoost(SDI(batched=False), memoize=False), dataset)
        assert batched == scalar

    @pytest.mark.parametrize("kind", KINDS)
    @pytest.mark.parametrize("host", [SFS, SaLSa])
    def test_memoized_hosts(self, kind, host):
        dataset = generate(kind, n=400, d=5, seed=3)
        memoized = _run(SubsetBoost(host(), memoize=True), dataset)
        scalar = _run(SubsetBoost(host(), memoize=False), dataset)
        assert memoized == scalar

    @settings(max_examples=30, deadline=None)
    @given(
        hnp.arrays(
            np.float64,
            st.tuples(st.integers(2, 60), st.integers(2, 5)),
            elements=st.floats(0, 1, allow_nan=False, width=16),
        )
    )
    def test_sdi_subset_on_random_data(self, values):
        batched = _run(SubsetBoost(SDI(batched=True), memoize=True), values)
        scalar = _run(SubsetBoost(SDI(batched=False), memoize=False), values)
        assert batched == scalar


class TestFirstDominatorPrefix:
    @settings(max_examples=80, deadline=None)
    @given(
        hnp.arrays(
            np.float64,
            st.tuples(st.integers(0, 30), st.integers(1, 4)),
            elements=st.floats(0, 1, allow_nan=False, width=16),
        ),
        st.integers(0, 3),
        st.floats(0, 1, allow_nan=False, width=16),
    )
    def test_matches_filter_then_scan(self, block, dim, bound_q):
        dim = dim % block.shape[1]
        # The kernel's contract: rows sorted ascending by ``col``.
        order = np.argsort(block[:, dim], kind="stable")
        block = block[order]
        col = block[:, dim]
        q = np.full(block.shape[1], bound_q)

        prefix_counter = DominanceCounter()
        got = first_dominator_prefix(block, col, q[dim], q, prefix_counter)

        # Scalar reference: boolean-filter then scan.  The filtered rows
        # form a prefix of the sorted block, so indices coincide.
        scalar_counter = DominanceCounter()
        eligible = block[col <= q[dim]]
        expected = first_dominator(eligible, q, scalar_counter)

        assert got == expected
        assert prefix_counter.tests == scalar_counter.tests
