"""Unit tests for the progressive (online) skyline API."""

import numpy as np
import pytest

from repro.algorithms.salsa import SaLSa
from repro.algorithms.sfs import SFS
from repro.algorithms.zorder_scan import ZOrderScan
from repro.stats.counters import DominanceCounter
from tests.conftest import brute_skyline_ids


@pytest.mark.parametrize("algo_cls", [SFS, SaLSa, ZOrderScan])
class TestProgressive:
    def test_full_consumption_equals_skyline(self, algo_cls, ui_small):
        got = sorted(algo_cls().progressive(ui_small))
        assert got == brute_skyline_ids(ui_small.values)

    def test_yields_in_scan_order(self, algo_cls, ui_small):
        algo = algo_cls()
        order = algo.sort_ids(
            ui_small.values, np.arange(ui_small.cardinality, dtype=np.intp)
        )
        position = {int(pid): pos for pos, pid in enumerate(order)}
        yielded = list(algo.progressive(ui_small))
        positions = [position[pid] for pid in yielded]
        assert positions == sorted(positions)

    def test_first_yield_is_the_scan_minimum(self, algo_cls, ui_small):
        algo = algo_cls()
        order = algo.sort_ids(
            ui_small.values, np.arange(ui_small.cardinality, dtype=np.intp)
        )
        first = next(iter(algo.progressive(ui_small)))
        assert first == int(order[0])


def test_early_termination_pays_fewer_tests(ui_medium):
    counter = DominanceCounter()
    generator = SFS().progressive(ui_medium, counter=counter)
    for _, _ in zip(range(5), generator):
        pass
    partial = counter.tests
    full_counter = DominanceCounter()
    list(SFS().progressive(ui_medium, counter=full_counter))
    assert partial < full_counter.tests


def test_prefix_is_prefix_of_full_run(ui_small):
    full = list(SFS().progressive(ui_small))
    prefix = []
    for pid in SFS().progressive(ui_small):
        prefix.append(pid)
        if len(prefix) == 7:
            break
    assert full[:7] == prefix
