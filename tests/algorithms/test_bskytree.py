"""Unit tests for the BSkyTree baselines."""

import numpy as np
import pytest

from repro.algorithms.bskytree import BSkyTreeP, BSkyTreeS, _select_pivot
from repro.algorithms.sfs import SFS
from repro.dataset import Dataset
from repro.errors import InvalidParameterError
from repro.stats.counters import DominanceCounter
from tests.conftest import brute_skyline_ids


class TestPivotSelection:
    def test_pivot_is_from_the_id_set(self, ui_small):
        ids = np.arange(ui_small.cardinality, dtype=np.intp)
        pivot = _select_pivot(ui_small.values, ids, DominanceCounter())
        assert 0 <= pivot < ui_small.cardinality

    def test_pivot_respects_id_restriction(self, ui_small):
        ids = np.arange(10, 60, dtype=np.intp)
        pivot = _select_pivot(ui_small.values, ids, DominanceCounter())
        assert pivot in set(int(i) for i in ids)

    def test_balanced_choice_on_crafted_data(self):
        # Three sample-skyline points; the diagonal one is most balanced.
        values = np.array([[0.02, 0.98], [0.45, 0.5], [0.98, 0.02], [0.9, 0.9]])
        pivot = _select_pivot(values, np.arange(4, dtype=np.intp), DominanceCounter())
        assert pivot == 1


class TestBSkyTreeS:
    def test_mask_filter_skips_tests_vs_sfs(self, ui_medium):
        s_counter = DominanceCounter()
        sfs_counter = DominanceCounter()
        BSkyTreeS().compute(ui_medium, counter=s_counter)
        SFS(sort_function="sum").compute(ui_medium, counter=sfs_counter)
        assert s_counter.tests < sfs_counter.tests

    def test_pivot_duplicates_kept(self):
        values = np.array([[0.5, 0.5], [0.5, 0.5], [0.2, 0.9], [0.9, 0.9]])
        result = BSkyTreeS().compute(Dataset(values))
        assert list(result.indices) == brute_skyline_ids(values)


class TestBSkyTreeP:
    def test_leaf_size_validation(self):
        with pytest.raises(InvalidParameterError):
            BSkyTreeP(leaf_size=0)

    @pytest.mark.parametrize("leaf", [1, 8, 512])
    def test_correct_for_any_leaf_size(self, leaf, ui_small):
        result = BSkyTreeP(leaf_size=leaf).compute(ui_small)
        assert list(result.indices) == brute_skyline_ids(ui_small.values)

    def test_pivot_dominated_by_equality_pattern(self):
        # Point 1 dominates the (likely) pivot 0 with one tied coordinate:
        # its region mask is partial, exercising the final pivot check.
        values = np.array(
            [[0.5, 0.5, 0.5], [0.5, 0.4, 0.5], [0.9, 0.9, 0.8], [0.1, 0.9, 0.9]]
        )
        result = BSkyTreeP(leaf_size=1).compute(Dataset(values))
        assert list(result.indices) == brute_skyline_ids(values)

    def test_recursion_on_clustered_regions(self):
        rng = np.random.default_rng(2)
        clusters = [rng.random((80, 4)) * 0.3 + off for off in (0.0, 0.35, 0.7)]
        values = np.vstack(clusters)
        result = BSkyTreeP(leaf_size=8).compute(Dataset(values))
        assert list(result.indices) == brute_skyline_ids(values)
