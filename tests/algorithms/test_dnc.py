"""Unit tests for the divide-and-conquer skyline."""

import numpy as np
import pytest

from repro.algorithms.dnc import DivideAndConquer
from repro.dataset import Dataset
from repro.errors import InvalidParameterError
from tests.conftest import brute_skyline_ids


class TestDivideAndConquer:
    def test_leaf_size_validation(self):
        with pytest.raises(InvalidParameterError):
            DivideAndConquer(leaf_size=0)

    @pytest.mark.parametrize("leaf", [1, 4, 1000])
    def test_correct_for_any_leaf_size(self, leaf, ui_small):
        result = DivideAndConquer(leaf_size=leaf).compute(ui_small)
        assert list(result.indices) == brute_skyline_ids(ui_small.values)

    def test_constant_first_dimension_falls_to_next(self):
        rng = np.random.default_rng(0)
        values = np.column_stack([np.ones(200), rng.random(200), rng.random(200)])
        result = DivideAndConquer(leaf_size=8).compute(Dataset(values))
        assert list(result.indices) == brute_skyline_ids(values)

    def test_all_identical_partition(self):
        values = np.ones((50, 3))
        result = DivideAndConquer(leaf_size=4).compute(Dataset(values))
        assert list(result.indices) == list(range(50))

    def test_high_half_filtered_against_low_half(self):
        # All of the high half is dominated by the best low-half point.
        low = np.zeros((5, 2))
        high = np.ones((5, 2))
        result = DivideAndConquer(leaf_size=2).compute(Dataset(np.vstack([low, high])))
        assert list(result.indices) == [0, 1, 2, 3, 4]
