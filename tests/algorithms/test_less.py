"""Unit tests for LESS's elimination-filter phase."""

import numpy as np
import pytest

from repro.algorithms.less import LESS
from repro.dataset import Dataset
from repro.errors import InvalidParameterError
from tests.conftest import brute_skyline_ids


class TestEliminationFilter:
    def test_window_size_validation(self):
        with pytest.raises(InvalidParameterError):
            LESS(window_size=0)

    @pytest.mark.parametrize("window", [1, 4, 64])
    def test_correct_for_any_window(self, window, ui_small):
        result = LESS(window_size=window).compute(ui_small)
        assert list(result.indices) == brute_skyline_ids(ui_small.values)

    def test_ef_drops_points_before_sort(self):
        # One crushing point first: the EF pass should eliminate the rest
        # with ~1 test each, never reaching an O(N^2) phase-2 scan.
        n = 500
        values = np.vstack([np.zeros((1, 3)), np.full((n - 1, 3), 5.0)])
        from repro.stats.counters import DominanceCounter

        counter = DominanceCounter()
        result = LESS().compute(Dataset(values), counter=counter)
        assert list(result.indices) == [0]
        assert counter.tests <= 2 * n

    def test_evicted_window_members_remain_candidates(self):
        # Low-entropy points keep arriving, rotating the EF window; evicted
        # members must still appear in the final skyline.
        values = np.array(
            [
                [0.9, 0.1],
                [0.8, 0.2],
                [0.7, 0.3],
                [0.6, 0.4],
                [0.5, 0.5],
                [0.1, 0.9],
            ]
        )
        result = LESS(window_size=1).compute(Dataset(values))
        assert list(result.indices) == list(range(6))
