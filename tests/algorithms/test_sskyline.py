"""Unit tests for the in-place SSkyline baseline."""

import numpy as np

from repro.algorithms.sskyline import SSkyline
from repro.dataset import Dataset
from repro.stats.counters import DominanceCounter
from tests.conftest import brute_skyline_ids


class TestSSkyline:
    def test_head_replacement_chain(self):
        # Each point dominates the previous head: repeated head swaps.
        values = np.array([[5.0, 5.0], [4.0, 4.0], [3.0, 3.0], [1.0, 1.0]])
        result = SSkyline().compute(Dataset(values))
        assert list(result.indices) == [3]

    def test_retired_points_cannot_resurface(self):
        # Point 2 is dominated only by point 1, which itself replaces the
        # initial head — the retirement bookkeeping must not lose that.
        values = np.array([[3.0, 3.0], [1.0, 1.0], [2.0, 2.0], [0.5, 9.0]])
        result = SSkyline().compute(Dataset(values))
        assert list(result.indices) == brute_skyline_ids(values)

    def test_incomparable_points_all_confirmed(self):
        values = np.array([[float(i), float(10 - i)] for i in range(10)])
        result = SSkyline().compute(Dataset(values))
        assert list(result.indices) == list(range(10))

    def test_duplicates(self, duplicate_heavy):
        result = SSkyline().compute(duplicate_heavy)
        assert list(result.indices) == brute_skyline_ids(duplicate_heavy.values)

    def test_counts_pair_inspections(self, ui_small):
        counter = DominanceCounter()
        result = SSkyline().compute(ui_small, counter=counter)
        # Lower bound: every confirmed head scanned the surviving region.
        assert counter.tests >= result.size - 1

    def test_random_regimes(self, ui_small, ac_small, co_small, with_negatives):
        for ds in (ui_small, ac_small, co_small, with_negatives):
            result = SSkyline().compute(ds)
            assert list(result.indices) == brute_skyline_ids(ds.values)
