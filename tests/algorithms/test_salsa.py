"""Unit tests for SaLSa's stop-point mechanics."""

import numpy as np

from repro.algorithms.salsa import SaLSa
from repro.algorithms.sfs import SFS
from repro.dataset import Dataset
from repro.stats.counters import DominanceCounter
from tests.conftest import brute_skyline_ids


class TestStopPoint:
    def test_stops_before_testing_everything_on_co(self, co_small):
        counter = DominanceCounter()
        SaLSa().compute(co_small, counter=counter)
        sfs_counter = DominanceCounter()
        SFS().compute(co_small, counter=sfs_counter)
        # The stop point lets SaLSa skip most of the scan on correlated data.
        assert counter.tests < sfs_counter.tests

    def test_sub_one_mean_dt_on_strongly_correlated_data(self):
        rng = np.random.default_rng(0)
        base = rng.random(2000)
        values = np.clip(base[:, None] + rng.normal(0, 0.01, (2000, 4)), 0, 1)
        counter = DominanceCounter()
        result = SaLSa().compute(Dataset(values), counter=counter)
        assert list(result.indices) == brute_skyline_ids(values)
        assert counter.tests / 2000 < 1.0  # the paper's hallmark of SaLSa

    def test_stop_rule_is_strict_so_duplicates_survive(self):
        # Three copies of the best point plus dominated tail; a non-strict
        # stop rule would drop the duplicates.
        values = np.array(
            [[0.5, 0.5], [0.5, 0.5], [0.5, 0.5], [0.9, 0.9], [0.8, 0.95]]
        )
        result = SaLSa().compute(Dataset(values))
        assert list(result.indices) == [0, 1, 2]

    def test_minc_order_is_weakly_monotone(self, ui_small):
        from repro.algorithms.sortkeys import sort_keys

        salsa = SaLSa()
        ids = np.arange(ui_small.cardinality, dtype=np.intp)
        order = salsa.sort_ids(ui_small.values, ids)
        keys = sort_keys(ui_small.values, "minc")
        ordered = keys[order]
        assert (np.diff(ordered) >= -1e-12).all()

    def test_stop_metric_consistent_with_scan_order_on_shifted_data(self):
        # Columns with very different offsets: raw minC and shifted minC
        # order points differently, which once made the stop rule unsound.
        rng = np.random.default_rng(8)
        values = rng.random((400, 3)) + np.array([0.0, 10.0, 100.0])
        result = SaLSa().compute(Dataset(values))
        assert list(result.indices) == brute_skyline_ids(values)
