"""Integration: every algorithm returns the oracle skyline on every regime.

This is the library's central correctness net: all 16 registry entries
(plain, baseline, and boosted) are run over uniform, correlated,
anti-correlated, duplicate-heavy, and negative-valued data and must agree
exactly with an independent brute-force oracle.
"""

import numpy as np
import pytest

import repro
from repro.algorithms.registry import available_algorithms
from tests.conftest import brute_skyline_ids

ALL_ALGORITHMS = available_algorithms()


@pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
class TestAgainstOracle:
    def test_ui(self, algorithm, ui_small):
        got = repro.skyline(ui_small, algorithm=algorithm)
        assert list(got.indices) == brute_skyline_ids(ui_small.values)

    def test_ac(self, algorithm, ac_small):
        got = repro.skyline(ac_small, algorithm=algorithm)
        assert list(got.indices) == brute_skyline_ids(ac_small.values)

    def test_co(self, algorithm, co_small):
        got = repro.skyline(co_small, algorithm=algorithm)
        assert list(got.indices) == brute_skyline_ids(co_small.values)

    def test_duplicates(self, algorithm, duplicate_heavy):
        got = repro.skyline(duplicate_heavy, algorithm=algorithm)
        assert list(got.indices) == brute_skyline_ids(duplicate_heavy.values)

    def test_negative_values(self, algorithm, with_negatives):
        got = repro.skyline(with_negatives, algorithm=algorithm)
        assert list(got.indices) == brute_skyline_ids(with_negatives.values)

    def test_single_point(self, algorithm):
        got = repro.skyline(np.array([[1.0, 2.0, 3.0]]), algorithm=algorithm)
        assert list(got.indices) == [0]

    def test_all_identical_points(self, algorithm):
        values = np.ones((12, 3))
        got = repro.skyline(values, algorithm=algorithm)
        assert list(got.indices) == list(range(12))

    def test_totally_ordered_chain(self, algorithm):
        values = np.array([[float(i)] * 4 for i in range(20)])
        got = repro.skyline(values, algorithm=algorithm)
        assert list(got.indices) == [0]

    def test_2d(self, algorithm):
        rng = np.random.default_rng(77)
        values = rng.random((150, 2))
        got = repro.skyline(values, algorithm=algorithm)
        assert list(got.indices) == brute_skyline_ids(values)


@pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
def test_result_metadata(algorithm, ui_small):
    result = repro.skyline(ui_small, algorithm=algorithm)
    assert result.algorithm == algorithm
    assert result.cardinality == ui_small.cardinality
    assert result.elapsed_seconds >= 0
    assert result.dominance_tests == result.counter.tests
    assert np.all(np.diff(result.indices) > 0)  # sorted, unique


def test_skyline_is_idempotent(ui_small):
    """The skyline of a skyline is itself (a classic invariant)."""
    first = repro.skyline(ui_small, algorithm="sfs")
    reduced = ui_small.values[first.indices]
    second = repro.skyline(reduced, algorithm="sfs")
    assert list(second.indices) == list(range(first.size))


def test_skyline_in_result_contains(ui_small):
    result = repro.skyline(ui_small, algorithm="sfs")
    sky = set(int(i) for i in result.indices)
    for pid in list(sky)[:5]:
        assert pid in result
    for pid in range(ui_small.cardinality):
        if pid not in sky:
            assert pid not in result
            break
