"""Unit tests for the blocked ZSearch with region pruning."""

import numpy as np
import pytest

from repro.algorithms.zorder_scan import ZOrderScan
from repro.algorithms.zsearch import ZSearch
from repro.dataset import Dataset
from repro.errors import InvalidParameterError
from repro.stats.counters import DominanceCounter
from tests.conftest import brute_skyline_ids


class TestZSearch:
    def test_parameter_validation(self):
        with pytest.raises(InvalidParameterError):
            ZSearch(block_size=0)
        with pytest.raises(InvalidParameterError):
            ZSearch(bits=0)

    @pytest.mark.parametrize("block_size", [1, 8, 64, 1000])
    def test_correct_for_any_block_size(self, block_size, ui_small):
        result = ZSearch(block_size=block_size).compute(ui_small)
        assert list(result.indices) == brute_skyline_ids(ui_small.values)

    def test_duplicates(self, duplicate_heavy):
        result = ZSearch(block_size=16).compute(duplicate_heavy)
        assert list(result.indices) == brute_skyline_ids(duplicate_heavy.values)

    def test_region_pruning_saves_tests_on_correlated_data(self):
        rng = np.random.default_rng(0)
        base = rng.random(3000)
        values = np.clip(base[:, None] + rng.normal(0, 0.02, (3000, 4)), 0, 1)
        blocked = DominanceCounter()
        plain = DominanceCounter()
        blocked_result = ZSearch(block_size=64).compute(Dataset(values), counter=blocked)
        plain_result = ZOrderScan().compute(Dataset(values), counter=plain)
        assert list(blocked_result.indices) == list(plain_result.indices)
        assert blocked.tests < plain.tests

    def test_negative_values(self, with_negatives):
        result = ZSearch().compute(with_negatives)
        assert list(result.indices) == brute_skyline_ids(with_negatives.values)
