"""Unit tests for SFS and its sort functions."""

import numpy as np
import pytest

from repro.algorithms.sfs import SFS
from repro.algorithms.sortkeys import SORT_FUNCTIONS, sort_keys
from repro.dominance import dominates
from repro.errors import InvalidParameterError
from tests.conftest import brute_skyline_ids


class TestSortKeys:
    def test_unknown_function_rejected(self):
        with pytest.raises(InvalidParameterError):
            sort_keys(np.ones((2, 2)), "bogus")

    @pytest.mark.parametrize("function", ["entropy", "sum", "euclidean"])
    def test_strictly_monotone_under_dominance(self, function):
        rng = np.random.default_rng(0)
        values = rng.random((200, 4))
        keys = sort_keys(values, function)
        for _ in range(300):
            i, j = rng.integers(0, 200, size=2)
            if dominates(values[i], values[j]):
                assert keys[i] < keys[j]

    def test_minc_weakly_monotone(self):
        rng = np.random.default_rng(1)
        values = rng.random((200, 4))
        keys = sort_keys(values, "minc")
        for _ in range(300):
            i, j = rng.integers(0, 200, size=2)
            if dominates(values[i], values[j]):
                assert keys[i] <= keys[j]

    def test_entropy_well_defined_for_negative_data(self):
        values = np.array([[-5.0, -2.0], [-1.0, -4.0]])
        keys = sort_keys(values, "entropy")
        assert np.isfinite(keys).all()


class TestSFS:
    def test_eager_sort_function_validation(self):
        with pytest.raises(InvalidParameterError):
            SFS(sort_function="bogus")

    @pytest.mark.parametrize("function", SORT_FUNCTIONS)
    def test_correct_with_every_sort_function(self, function, ui_small):
        result = SFS(sort_function=function).compute(ui_small)
        assert list(result.indices) == brute_skyline_ids(ui_small.values)

    def test_dominators_scanned_before_dominated(self, ui_small):
        sfs = SFS()
        ids = np.arange(ui_small.cardinality, dtype=np.intp)
        order = sfs.sort_ids(ui_small.values, ids)
        position = {int(pid): pos for pos, pid in enumerate(order)}
        rng = np.random.default_rng(3)
        values = ui_small.values
        for _ in range(300):
            i, j = rng.integers(0, len(values), size=2)
            if dominates(values[i], values[j]):
                assert position[i] < position[j]

    def test_sort_ids_respects_subset(self, ui_small):
        sfs = SFS()
        subset = np.array([5, 1, 9], dtype=np.intp)
        order = sfs.sort_ids(ui_small.values, subset)
        assert sorted(order) == sorted(subset)

    def test_scan_counts_grow_with_skyline(self, ui_medium):
        from repro.stats.counters import DominanceCounter

        counter = DominanceCounter()
        result = SFS().compute(ui_medium, counter=counter)
        # Every non-first point is tested at least once in an SFS scan
        # (against a non-empty skyline), so tests >= N - skyline-free prefix.
        assert counter.tests >= ui_medium.cardinality - result.size
