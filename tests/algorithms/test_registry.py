"""Unit tests for the algorithm registry."""

import pytest

from repro.algorithms.registry import available_algorithms, get_algorithm
from repro.core.boost import SubsetBoost
from repro.errors import UnknownAlgorithmError


class TestRegistry:
    def test_catalogue_contains_papers_lineup(self):
        names = available_algorithms()
        for expected in (
            "sfs",
            "salsa",
            "sdi",
            "bskytree-s",
            "bskytree-p",
            "sfs-subset",
            "salsa-subset",
            "sdi-subset",
        ):
            assert expected in names

    def test_plain_instantiation(self):
        assert get_algorithm("sfs").name == "sfs"

    def test_case_insensitive(self):
        assert get_algorithm("SFS").name == "sfs"
        assert get_algorithm("SDI-Subset").name == "sdi-subset"

    def test_boosted_instantiation(self):
        algo = get_algorithm("sfs-subset", sigma=3)
        assert isinstance(algo, SubsetBoost)
        assert algo.sigma == 3

    def test_kwargs_forwarded(self):
        algo = get_algorithm("bnl", window_size=5)
        assert algo.window_size == 5
        boosted = get_algorithm("sfs-subset", sort_function="sum")
        assert boosted.host.sort_function == "sum"

    def test_unknown_name(self):
        with pytest.raises(UnknownAlgorithmError):
            get_algorithm("quantum-skyline")

    def test_non_boostable_subset_rejected(self):
        with pytest.raises(UnknownAlgorithmError):
            get_algorithm("bnl-subset")

    def test_sigma_on_plain_algorithm_rejected(self):
        with pytest.raises(UnknownAlgorithmError):
            get_algorithm("sfs", sigma=3)

    def test_index_backend_forwarded_to_boost(self):
        algo = get_algorithm("sfs-subset", index_backend="flat")
        assert isinstance(algo, SubsetBoost)
        assert algo.index_backend == "flat"
        assert get_algorithm("sfs-subset").index_backend == "map"

    def test_index_backend_on_plain_algorithm_rejected(self):
        with pytest.raises(UnknownAlgorithmError):
            get_algorithm("sfs", index_backend="flat")

    def test_every_name_instantiates(self):
        for name in available_algorithms():
            instance = get_algorithm(name)
            assert instance.name == name
