"""Unit tests for the external-memory BNL."""

import numpy as np
import pytest

from repro.algorithms.external import ExternalBNL
from repro.dataset import Dataset
from repro.errors import InvalidParameterError
from repro.stats.counters import DominanceCounter
from tests.conftest import brute_skyline_ids


class TestExternalBNL:
    def test_parameter_validation(self):
        with pytest.raises(InvalidParameterError):
            ExternalBNL(page_size=0)
        with pytest.raises(InvalidParameterError):
            ExternalBNL(memory_pages=1)

    @pytest.mark.parametrize("memory_pages", [2, 3, 8])
    def test_correct_under_tight_memory(self, memory_pages, ui_small):
        algo = ExternalBNL(page_size=16, memory_pages=memory_pages)
        result = algo.compute(ui_small)
        assert list(result.indices) == brute_skyline_ids(ui_small.values)

    def test_single_pass_io_profile(self, ui_small):
        """With a huge window, one read pass and zero writes."""
        counter = DominanceCounter()
        algo = ExternalBNL(page_size=32, memory_pages=1000)
        algo.compute(ui_small, counter=counter)
        expected_pages = -(-ui_small.cardinality // 32)
        assert counter.extras["page_reads"] == float(expected_pages)
        assert counter.extras["page_writes"] == 0.0

    def test_tight_memory_costs_more_io(self, ui_small):
        loose = DominanceCounter()
        tight = DominanceCounter()
        ExternalBNL(page_size=16, memory_pages=1000).compute(ui_small, counter=loose)
        ExternalBNL(page_size=16, memory_pages=2).compute(ui_small, counter=tight)
        assert (
            tight.extras["page_reads"] + tight.extras["page_writes"]
            > loose.extras["page_reads"] + loose.extras["page_writes"]
        )

    def test_duplicates(self, duplicate_heavy):
        result = ExternalBNL(page_size=16, memory_pages=3).compute(duplicate_heavy)
        assert list(result.indices) == brute_skyline_ids(duplicate_heavy.values)

    def test_incomparable_overflow_chain(self):
        """Mutually incomparable points exceeding the window stress passes."""
        values = np.array([[float(i), float(40 - i)] for i in range(40)])
        result = ExternalBNL(page_size=4, memory_pages=2).compute(Dataset(values))
        assert list(result.indices) == list(range(40))

    def test_matches_in_memory_bnl(self, ac_small):
        from repro.algorithms.bnl import BNL

        external = ExternalBNL(page_size=16, memory_pages=5).compute(ac_small)
        internal = BNL(window_size=64).compute(ac_small)
        assert np.array_equal(external.indices, internal.indices)
