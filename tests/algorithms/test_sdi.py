"""Unit tests for SDI's dimension traversal and stop point."""

import numpy as np

from repro.algorithms.sdi import SDI
from repro.algorithms.sfs import SFS
from repro.dataset import Dataset
from repro.stats.counters import DominanceCounter
from tests.conftest import brute_skyline_ids


class TestSDI:
    def test_fewer_tests_than_sfs_on_ui(self, ui_medium):
        """Distributing tests across dimension skylines is SDI's point."""
        sdi_counter = DominanceCounter()
        sfs_counter = DominanceCounter()
        SDI().compute(ui_medium, counter=sdi_counter)
        SFS().compute(ui_medium, counter=sfs_counter)
        assert sdi_counter.tests < sfs_counter.tests

    def test_stop_point_terminates_early_on_correlated_data(self):
        rng = np.random.default_rng(0)
        base = rng.random(2000)
        values = np.clip(base[:, None] + rng.normal(0, 0.01, (2000, 5)), 0, 1)
        counter = DominanceCounter()
        result = SDI().compute(Dataset(values), counter=counter)
        assert list(result.indices) == brute_skyline_ids(values)
        assert counter.tests / 2000 < 1.0

    def test_duplicate_dimension_values(self):
        """Ties in a dimension order must not confirm points prematurely."""
        values = np.array(
            [
                [1.0, 3.0],
                [1.0, 2.0],  # dominates row 0 with a tied first coordinate
                [1.0, 2.0],  # duplicate of row 1: also skyline
                [2.0, 1.0],
            ]
        )
        result = SDI().compute(Dataset(values))
        assert list(result.indices) == [1, 2, 3]

    def test_column_of_equal_values(self):
        values = np.array([[1.0, 5.0], [1.0, 4.0], [1.0, 6.0]])
        result = SDI().compute(Dataset(values))
        assert list(result.indices) == [1]

    def test_weather_like_duplicates(self, duplicate_heavy):
        result = SDI().compute(duplicate_heavy)
        assert list(result.indices) == brute_skyline_ids(duplicate_heavy.values)

    def test_run_phase_on_subset_of_ids(self, ui_small):
        """The boostable hook must respect the restricted id set."""
        from repro.core.container import ListContainer

        ids = np.arange(0, ui_small.cardinality, 2, dtype=np.intp)
        container = ListContainer(ui_small.values)
        masks = np.zeros(ui_small.cardinality, dtype=np.int64)
        got = SDI().run_phase(
            ui_small, ids, masks, container, DominanceCounter()
        )
        expected_local = brute_skyline_ids(ui_small.values[ids])
        expected = sorted(int(ids[k]) for k in expected_local)
        assert sorted(got) == expected

    def test_empty_id_set(self, ui_small):
        from repro.core.container import ListContainer

        got = SDI().run_phase(
            ui_small,
            np.empty(0, dtype=np.intp),
            np.zeros(ui_small.cardinality, dtype=np.int64),
            ListContainer(ui_small.values),
            DominanceCounter(),
        )
        assert got == []
