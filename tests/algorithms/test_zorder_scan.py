"""Unit tests for the Z-order scan algorithm."""

import numpy as np
import pytest

from repro.algorithms.zorder_scan import ZOrderScan
from repro.dominance import dominates
from repro.errors import InvalidParameterError
from tests.conftest import brute_skyline_ids


class TestZOrderScan:
    def test_bits_validation(self):
        with pytest.raises(InvalidParameterError):
            ZOrderScan(bits=0)
        with pytest.raises(InvalidParameterError):
            ZOrderScan(bits=25)

    @pytest.mark.parametrize("bits", [2, 8, 16])
    def test_correct_at_any_resolution(self, bits, ui_small):
        result = ZOrderScan(bits=bits).compute(ui_small)
        assert list(result.indices) == brute_skyline_ids(ui_small.values)

    def test_coarse_grid_with_heavy_collisions(self, duplicate_heavy):
        result = ZOrderScan(bits=2).compute(duplicate_heavy)
        assert list(result.indices) == brute_skyline_ids(duplicate_heavy.values)

    def test_scan_order_is_monotone(self, ui_small):
        scan = ZOrderScan()
        ids = np.arange(ui_small.cardinality, dtype=np.intp)
        order = scan.sort_ids(ui_small.values, ids)
        position = {int(pid): pos for pos, pid in enumerate(order)}
        rng = np.random.default_rng(5)
        values = ui_small.values
        for _ in range(300):
            i, j = rng.integers(0, len(values), size=2)
            if dominates(values[i], values[j]):
                assert position[i] < position[j]
