"""Execute the doctests embedded in the public API's docstrings."""

import doctest
import importlib

import pytest

# importlib is used instead of attribute access because several package
# __init__ files re-export a function under the submodule's own name
# (e.g. ``repro.core.merge`` the module vs ``merge`` the function).
MODULE_NAMES = [
    "repro.core.boost",
    "repro.core.merge",
    "repro.core.subset_index",
    "repro.data.generators",
    "repro.dominance",
    "repro.extensions.skyband",
    "repro.extensions.streaming",
    "repro.extensions.topk",
    "repro.query",
    "repro.stats.estimate",
    "repro.structures.bitset",
    "repro.structures.bplustree",
]


@pytest.mark.parametrize("name", MODULE_NAMES)
def test_module_doctests(name):
    module = importlib.import_module(name)
    result = doctest.testmod(module, verbose=False)
    assert result.attempted > 0, f"{name} has no doctests"
    assert result.failed == 0
