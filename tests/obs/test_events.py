"""EventLog: ring semantics, slow-query channel, JSONL, ambient pattern."""

import json

import pytest

from repro.errors import InvalidParameterError
from repro.obs.events import (
    NULL_EVENT_LOG,
    EventLog,
    NullEventLog,
    current_event_log,
)


class TestRing:
    def test_events_retained_oldest_first(self):
        log = EventLog()
        log.emit("a", x=1)
        log.emit("b", x=2)
        assert [event.name for event in log.events()] == ["a", "b"]
        assert log.emitted == 2

    def test_capacity_rotates_oldest_out(self):
        log = EventLog(capacity=3)
        for i in range(5):
            log.emit(f"e{i}")
        assert [event.name for event in log.events()] == ["e2", "e3", "e4"]
        assert log.emitted == 5  # emitted counts everything, ring holds 3

    def test_timestamps_monotone(self):
        log = EventLog()
        log.emit("first")
        log.emit("second")
        first, second = log.events()
        assert 0.0 <= first.ts_s <= second.ts_s

    def test_rejects_bad_capacity(self):
        with pytest.raises(InvalidParameterError, match="capacity"):
            EventLog(capacity=0)

    def test_rejects_negative_threshold(self):
        with pytest.raises(InvalidParameterError, match="slow_query_s"):
            EventLog(slow_query_s=-1.0)


class TestSlowQueries:
    def test_slow_finish_events_captured(self):
        log = EventLog(slow_query_s=0.1)
        log.emit("query.finish", wall_s=0.05)
        log.emit("query.finish", wall_s=0.25)
        log.emit("other", wall_s=9.0)  # name gate: only query.finish
        assert [e.fields["wall_s"] for e in log.slow_queries()] == [0.25]

    def test_threshold_is_inclusive(self):
        log = EventLog(slow_query_s=0.1)
        log.emit("query.finish", wall_s=0.1)
        assert len(log.slow_queries()) == 1

    def test_slow_ring_survives_main_ring_rotation(self):
        log = EventLog(capacity=2, slow_query_s=0.1)
        log.emit("query.finish", wall_s=0.5)
        for i in range(10):
            log.emit(f"noise{i}")
        assert len(log.events()) == 2
        assert [e.fields["wall_s"] for e in log.slow_queries()] == [0.5]

    def test_disabled_threshold_records_nothing(self):
        log = EventLog()
        log.emit("query.finish", wall_s=99.0)
        assert log.slow_queries() == []


class TestJsonl:
    def test_one_parseable_object_per_line(self):
        log = EventLog()
        log.emit("query.start", dataset="UI", n=100)
        log.emit("query.finish", wall_s=0.01)
        lines = log.to_jsonl().splitlines()
        parsed = [json.loads(line) for line in lines]
        assert parsed[0]["event"] == "query.start"
        assert parsed[0]["dataset"] == "UI"
        assert parsed[1]["wall_s"] == 0.01
        assert all("ts_s" in entry for entry in parsed)

    def test_empty_log_is_empty_string(self):
        assert EventLog().to_jsonl() == ""

    def test_non_json_field_values_stringify(self):
        log = EventLog()
        log.emit("odd", path=("a", "b"))
        json.loads(log.to_jsonl())  # must not raise

    def test_write_jsonl(self, tmp_path):
        log = EventLog()
        log.emit("x", k=1)
        path = log.write_jsonl(tmp_path / "events.jsonl")
        assert json.loads(path.read_text())["event"] == "x"


class TestAmbient:
    def test_default_is_null_log(self):
        assert current_event_log() is NULL_EVENT_LOG

    def test_activation_installs_and_restores(self):
        log = EventLog()
        with log.activate():
            assert current_event_log() is log
        assert current_event_log() is NULL_EVENT_LOG

    def test_nested_activation_restores_outer(self):
        outer, inner = EventLog(), EventLog()
        with outer.activate():
            with inner.activate():
                assert current_event_log() is inner
            assert current_event_log() is outer


class TestNullEventLog:
    def test_emit_is_noop(self):
        log = NullEventLog()
        assert log.emit("anything", x=1) is None
        assert log.events() == []
        assert log.slow_queries() == []
        assert log.to_jsonl() == ""

    def test_disabled_flag_gates_call_sites(self):
        assert NullEventLog().enabled is False
        assert EventLog().enabled is True

    def test_activate_returns_shared_noop(self):
        log = NullEventLog()
        assert log.activate() is log.activate()
        with log.activate():
            assert current_event_log() is NULL_EVENT_LOG
