"""The flat metrics registry: counters, pools, traces, export shape."""

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.stats.counters import DominanceCounter


class TestRecord:
    def test_record_coerces_to_float(self):
        registry = MetricsRegistry()
        registry.record("run.skyline_size", 42)
        assert registry.as_dict() == {"run.skyline_size": 42.0}

    def test_last_write_wins(self):
        registry = MetricsRegistry()
        registry.record("x", 1.0)
        registry.record("x", 2.0)
        assert registry.as_dict()["x"] == 2.0

    def test_record_many_applies_prefix(self):
        registry = MetricsRegistry()
        registry.record_many({"a": 1, "b": 2}, prefix="run.")
        assert registry.as_dict() == {"run.a": 1.0, "run.b": 2.0}

    def test_as_dict_sorts_keys(self):
        registry = MetricsRegistry()
        registry.record("z", 1.0)
        registry.record("a", 2.0)
        assert list(registry.as_dict()) == ["a", "z"]

    def test_len_and_repr(self):
        registry = MetricsRegistry()
        registry.record("a", 1.0)
        assert len(registry) == 1
        assert "1 metrics" in repr(registry)


class TestRecordCounter:
    def test_all_tallies_land_under_counter_prefix(self):
        registry = MetricsRegistry()
        counter = DominanceCounter(tests=7, index_queries=3)
        counter.extras["batched_rounds"] = 2.0
        registry.record_counter(counter)
        values = registry.as_dict()
        assert values["counter.tests"] == 7.0
        assert values["counter.index_queries"] == 3.0
        assert values["counter.extras.batched_rounds"] == 2.0

    def test_hit_rates_derived_when_lookups_exist(self):
        registry = MetricsRegistry()
        counter = DominanceCounter(
            index_cache_hits=3,
            index_cache_misses=1,
            prepared_cache_hits=1,
            prepared_cache_misses=3,
        )
        registry.record_counter(counter)
        values = registry.as_dict()
        assert values["counter.index_cache_hit_rate"] == 0.75
        assert values["counter.prepared_cache_hit_rate"] == 0.25

    def test_hit_rates_absent_without_lookups(self):
        registry = MetricsRegistry()
        registry.record_counter(DominanceCounter(tests=5))
        values = registry.as_dict()
        assert "counter.index_cache_hit_rate" not in values
        assert "counter.prepared_cache_hit_rate" not in values


class TestRecordPool:
    def test_pool_stats_are_prefixed(self):
        registry = MetricsRegistry()
        registry.record_pool({"dispatches": 12, "workers_reused": 10})
        values = registry.as_dict()
        assert values["pool.dispatches"] == 12.0
        assert values["pool.workers_reused"] == 10.0

    def test_empty_pool_stats_record_nothing(self):
        registry = MetricsRegistry()
        registry.record_pool({})
        assert len(registry) == 0


class TestRecordTrace:
    def make_trace(self):
        tracer = Tracer()
        counter = DominanceCounter()
        with tracer.span("execute", counter=counter):
            with tracer.span("merge", counter=counter):
                counter.add(10)
            with tracer.span("sort"):
                pass
        return tracer.drain()

    def test_phase_paths_become_dotted_keys(self):
        registry = MetricsRegistry()
        registry.record_trace(self.make_trace())
        values = registry.as_dict()
        assert "phase.execute.wall_s" in values
        assert "phase.execute.merge.cpu_s" in values
        assert values["phase.execute.merge.calls"] == 1.0

    def test_dominance_tests_only_where_charged(self):
        registry = MetricsRegistry()
        registry.record_trace(self.make_trace())
        values = registry.as_dict()
        assert values["phase.execute.merge.dominance_tests"] == 10.0
        assert "phase.execute.sort.dominance_tests" not in values
