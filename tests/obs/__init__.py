"""Tests for the repro.obs tracing, metrics and export layer."""
