"""Prometheus text-format exposition: names, gauges, histogram series."""

from repro.obs.exposition import prometheus_name, to_prometheus, write_prometheus
from repro.obs.histogram import LogHistogram


class TestPrometheusName:
    def test_dots_become_underscores_with_prefix(self):
        assert (
            prometheus_name("counter.index_cache_hit_rate")
            == "repro_counter_index_cache_hit_rate"
        )

    def test_invalid_characters_sanitised(self):
        assert prometheus_name("phase.scan/sort-1 x") == "repro_phase_scan_sort_1_x"

    def test_leading_digit_guarded(self):
        assert prometheus_name("9lives", prefix="") == "_9lives"

    def test_custom_prefix(self):
        assert prometheus_name("a.b", prefix="sky_") == "sky_a_b"


class TestGauges:
    def test_sorted_gauges_with_type_lines(self):
        text = to_prometheus({"z.metric": 2.0, "a.metric": 1.0})
        lines = text.splitlines()
        assert lines[0] == "# TYPE repro_a_metric gauge"
        assert lines[1] == "repro_a_metric 1"
        assert lines[2] == "# TYPE repro_z_metric gauge"
        assert lines[3] == "repro_z_metric 2"
        assert text.endswith("\n")

    def test_special_values(self):
        text = to_prometheus(
            {"nan": float("nan"), "inf": float("inf"), "ninf": float("-inf")}
        )
        assert "repro_inf +Inf" in text
        assert "repro_nan NaN" in text
        assert "repro_ninf -Inf" in text

    def test_empty_input_is_empty_document(self):
        assert to_prometheus({}) == ""


class TestHistogramSeries:
    def make_histogram(self):
        histogram = LogHistogram()
        histogram.add_many([0.0, 0.001, 0.002, 0.5])
        return histogram

    def test_cumulative_buckets_end_at_count(self):
        text = to_prometheus({}, {"latency": self.make_histogram()})
        lines = text.splitlines()
        assert lines[0] == "# TYPE repro_latency histogram"
        bucket_lines = [line for line in lines if "_bucket{" in line]
        assert bucket_lines[-1] == 'repro_latency_bucket{le="+Inf"} 4'
        # Cumulative counts are non-decreasing.
        counts = [int(line.rsplit(" ", 1)[1]) for line in bucket_lines]
        assert counts == sorted(counts)
        assert "repro_latency_count 4" in lines
        assert any(line.startswith("repro_latency_sum ") for line in lines)

    def test_zero_bucket_surfaces_as_le_zero(self):
        text = to_prometheus({}, {"latency": self.make_histogram()})
        assert 'repro_latency_bucket{le="0"} 1' in text

    def test_gauges_and_histograms_compose(self):
        text = to_prometheus({"run.n": 10.0}, {"lat": self.make_histogram()})
        assert "repro_run_n 10" in text
        assert "repro_lat_bucket" in text

    def test_write_prometheus(self, tmp_path):
        path = write_prometheus(
            tmp_path / "metrics.prom", {"a": 1.0}, {"h": self.make_histogram()}
        )
        content = path.read_text()
        assert "repro_a 1" in content
        assert 'repro_h_bucket{le="+Inf"} 4' in content
