"""The bench-trajectory regression gate: classification, checks, CLI."""

import json

import pytest

from repro.obs.regress import (
    DEFAULT_DT_TOLERANCE,
    DEFAULT_WALL_TOLERANCE,
    Finding,
    check_reports,
    classify_metric,
    collect_metrics,
    inject_slowdown,
    main,
    trajectory_sample,
)


def entry(wall=1.0, tests=1000, speedup=4.0, plan=None, history=None):
    """A minimal scenario entry in the bench schema."""
    result = {
        "config": {"kind": "UI", "n": 1000},
        "cold_s": wall,
        "dominance_tests": tests,
        "speedup": speedup,
        "identical": True,
        "recorded_unix": 1,
    }
    if plan is not None:
        result["plan"] = plan
    if history is not None:
        result["history"] = history
    return result


def report(**entries):
    return {"schema_version": 2, "scenarios": dict(entries)}


def history_from(*entries):
    return [trajectory_sample(e) for e in entries]


class TestClassifyMetric:
    def test_wall_suffix(self):
        assert classify_metric("cold_s") == "wall"
        assert classify_metric("incremental_s") == "wall"

    def test_dominance_tests_substring(self):
        assert classify_metric("dominance_tests") == "tests"
        assert classify_metric("serial_dominance_tests") == "tests"

    def test_ratios(self):
        assert classify_metric("speedup") == "higher_ratio"
        assert classify_metric("geomean_speedup") == "higher_ratio"
        assert classify_metric("dt_ratio") == "lower_ratio"

    def test_gate_constants_and_estimates_excluded(self):
        assert classify_metric("gate_speedup") is None
        assert classify_metric("dt_gate_ratio") is None
        assert classify_metric("repair_cost_est") is None
        assert classify_metric("recompute_cost_est") is None

    def test_unrelated_fields_excluded(self):
        assert classify_metric("skyline_size") is None
        assert classify_metric("identical") is None


class TestCollectMetrics:
    def test_walks_nested_hosts_with_dotted_paths(self):
        sample = {
            "cold_s": 1.5,
            "hosts": {"sdi": {"batched_s": 0.5, "skyline_size": 10}},
            "config": {"n_s": 99.0},  # excluded subtree
            "identical": True,  # bool excluded
        }
        metrics = collect_metrics(sample)
        assert metrics == {"cold_s": 1.5, "hosts.sdi.batched_s": 0.5}

    def test_trajectory_sample_shape(self):
        sample = trajectory_sample(entry(plan={"algorithm": "sfs-subset"}))
        assert sample["recorded_unix"] == 1
        assert sample["plan"] == {"algorithm": "sfs-subset"}
        assert "cold_s" in sample["metrics"]
        assert "identical" not in sample["metrics"]


class TestCheckReports:
    def test_identical_reports_pass(self):
        baseline = report(s=entry())
        findings, compared = check_reports(baseline, baseline)
        assert findings == []
        assert compared == 3  # cold_s, dominance_tests, speedup

    def test_wall_regression_past_tolerance_fails(self):
        findings, _ = check_reports(
            report(s=entry(wall=1.0)), report(s=entry(wall=2.0))
        )
        assert [f.metric for f in findings] == ["cold_s"]
        assert findings[0].kind == "wall"
        assert findings[0].ratio == pytest.approx(2.0)

    def test_wall_noise_within_tolerance_passes(self):
        findings, _ = check_reports(
            report(s=entry(wall=1.0)),
            report(s=entry(wall=1.0 * (DEFAULT_WALL_TOLERANCE - 0.05))),
        )
        assert findings == []

    def test_dt_regression_uses_tight_tolerance(self):
        findings, _ = check_reports(
            report(s=entry(tests=1000)), report(s=entry(tests=1100))
        )
        assert [f.metric for f in findings] == ["dominance_tests"]
        assert findings[0].tolerance == DEFAULT_DT_TOLERANCE

    def test_speedup_drop_fails(self):
        findings, _ = check_reports(
            report(s=entry(speedup=4.0)), report(s=entry(speedup=2.0))
        )
        assert [f.metric for f in findings] == ["speedup"]
        assert findings[0].kind == "higher_ratio"
        assert "fell" in findings[0].render()

    def test_sub_floor_wall_times_skipped(self):
        findings, _ = check_reports(
            report(s=entry(wall=0.001)), report(s=entry(wall=0.004))
        )
        assert [f.metric for f in findings if f.kind == "wall"] == []

    def test_median_baseline_resists_one_fast_outlier(self):
        # History: one anomalously fast run among normal ones.  A fresh
        # run at the normal pace must not be condemned.
        samples = history_from(entry(wall=1.0), entry(wall=0.2), entry(wall=1.1))
        baseline = report(s=entry(wall=1.1, history=samples))
        findings, _ = check_reports(baseline, report(s=entry(wall=1.2)))
        assert findings == []

    def test_sustained_check_needs_recent_breaches_too(self):
        # Median is slow history, but the most recent sample already runs
        # at the fresh pace — not sustained, so not a regression.
        samples = history_from(
            entry(wall=0.5), entry(wall=0.5), entry(wall=0.5), entry(wall=1.2)
        )
        baseline = report(s=entry(wall=1.2, history=samples))
        findings, _ = check_reports(baseline, report(s=entry(wall=1.3)))
        assert findings == []

    def test_sustained_regression_against_all_recent_fails(self):
        samples = history_from(entry(wall=0.5), entry(wall=0.5), entry(wall=0.6))
        baseline = report(s=entry(wall=0.6, history=samples))
        findings, _ = check_reports(baseline, report(s=entry(wall=2.0)))
        assert [f.metric for f in findings] == ["cold_s"]

    def test_plan_change_noted_on_findings(self):
        old = entry(wall=1.0, plan={"algorithm": "sfs-subset", "workers": 1})
        fresh = entry(wall=3.0, plan={"algorithm": "sdi-subset", "workers": 1})
        findings, _ = check_reports(report(s=old), report(s=fresh))
        assert findings and "plan changed" in findings[0].note
        assert "algorithm" in findings[0].note
        assert "workers" not in findings[0].note  # unchanged field not listed

    def test_non_overlapping_scenarios_skipped(self):
        findings, compared = check_reports(
            report(a=entry()), report(b=entry(wall=50.0))
        )
        assert findings == [] and compared == 0

    def test_entry_without_history_falls_back_to_itself(self):
        findings, _ = check_reports(
            report(s=entry(wall=1.0)), report(s=entry(wall=5.0))
        )
        assert len(findings) == 1


class TestInjectSlowdown:
    def test_walls_multiply_speedups_divide_tests_untouched(self):
        doctored = inject_slowdown(report(s=entry(wall=1.0, tests=1000, speedup=4.0)), 2.0)
        slowed = doctored["scenarios"]["s"]
        assert slowed["cold_s"] == 2.0
        assert slowed["speedup"] == 2.0
        assert slowed["dominance_tests"] == 1000

    def test_original_report_unchanged(self):
        original = report(s=entry(wall=1.0))
        inject_slowdown(original, 2.0)
        assert original["scenarios"]["s"]["cold_s"] == 1.0

    def test_injected_slowdown_fails_the_gate(self):
        baseline = report(s=entry())
        doctored = inject_slowdown(baseline, 2.0)
        findings, _ = check_reports(baseline, doctored)
        assert findings  # the self-test contract CI relies on


class TestMain:
    def write(self, tmp_path, name, document):
        path = tmp_path / name
        path.write_text(json.dumps(document))
        return path

    def test_pass_exit_zero(self, tmp_path, capsys):
        path = self.write(tmp_path, "bench.json", report(s=entry()))
        assert main(["--history", str(path), "--fresh", str(path)]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_regression_exit_one(self, tmp_path, capsys):
        history = self.write(tmp_path, "history.json", report(s=entry(wall=1.0)))
        fresh = self.write(tmp_path, "fresh.json", report(s=entry(wall=9.0)))
        assert main(["--history", str(history), "--fresh", str(fresh)]) == 1
        out = capsys.readouterr().out
        assert "REGRESSED" in out and "cold_s" in out

    def test_inject_slowdown_flag_fails(self, tmp_path):
        path = self.write(tmp_path, "bench.json", report(s=entry()))
        code = main(
            ["--history", str(path), "--fresh", str(path), "--inject-slowdown", "2"]
        )
        assert code == 1

    def test_custom_tolerance_respected(self, tmp_path):
        history = self.write(tmp_path, "history.json", report(s=entry(wall=1.0)))
        fresh = self.write(tmp_path, "fresh.json", report(s=entry(wall=2.0)))
        args = ["--history", str(history), "--fresh", str(fresh)]
        assert main(args) == 1
        assert main(args + ["--wall-tolerance", "3.0"]) == 0

    def test_rejects_non_v2_report(self, tmp_path):
        bad = self.write(tmp_path, "bad.json", {"schema_version": 1})
        good = self.write(tmp_path, "good.json", report(s=entry()))
        with pytest.raises(SystemExit, match="schema-v2"):
            main(["--history", str(bad), "--fresh", str(good)])

    def test_finding_render_shape(self):
        finding = Finding(
            scenario="s", metric="cold_s", kind="wall",
            baseline=1.0, fresh=2.0, ratio=2.0, tolerance=1.75,
        )
        assert "cold_s rose 1 -> 2 (2.00x, tolerance 1.75x)" in finding.render()
