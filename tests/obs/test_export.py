"""Exporters: Chrome trace-event JSON, metrics JSON, the ASCII phase table."""

import json

import pytest

from repro.errors import InvalidParameterError
from repro.obs.export import (
    phase_table,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
    write_metrics,
)
from repro.obs.trace import Trace, Tracer
from repro.stats.counters import DominanceCounter


def make_trace():
    tracer = Tracer()
    counter = DominanceCounter()
    with tracer.span("execute", counter=counter, algorithm="sdi-subset"):
        with tracer.span("merge", counter=counter, sigma=2):
            counter.add(100)
        with tracer.span("scan", counter=counter):
            counter.add(400)
    return tracer.drain()


class TestChromeTrace:
    def test_one_complete_event_per_span(self):
        document = to_chrome_trace(make_trace())
        events = document["traceEvents"]
        assert [event["name"] for event in events] == ["execute", "merge", "scan"]
        assert all(event["ph"] == "X" for event in events)
        assert document["displayTimeUnit"] == "ms"

    def test_categories_split_roots_from_phases(self):
        events = to_chrome_trace(make_trace())["traceEvents"]
        assert events[0]["cat"] == "skyline"
        assert {event["cat"] for event in events[1:]} == {"phase"}

    def test_timestamps_are_microseconds(self):
        trace = make_trace()
        (execute,) = trace.roots
        event = to_chrome_trace(trace)["traceEvents"][0]
        assert event["ts"] == round(execute.start_s * 1e6, 3)
        assert event["dur"] == round(execute.wall_s * 1e6, 3)

    def test_args_carry_attrs_and_deltas(self):
        events = to_chrome_trace(make_trace())["traceEvents"]
        merge_args = events[1]["args"]
        assert merge_args["sigma"] == 2
        assert merge_args["delta.tests"] == 100.0

    def test_roundtrip_through_file_validates(self, tmp_path):
        path = write_chrome_trace(make_trace(), tmp_path / "trace.json")
        document = json.loads(path.read_text())
        assert validate_chrome_trace(document) == 3


class TestValidateChromeTrace:
    def test_rejects_non_object(self):
        with pytest.raises(InvalidParameterError, match="JSON object"):
            validate_chrome_trace([])

    def test_rejects_missing_events_array(self):
        with pytest.raises(InvalidParameterError, match="traceEvents"):
            validate_chrome_trace({"traceEvents": "nope"})

    def test_rejects_mistyped_event_field(self):
        document = {
            "traceEvents": [{"name": "x", "ph": "X", "ts": "soon", "pid": 1, "tid": 1}]
        }
        with pytest.raises(InvalidParameterError, match="'ts'"):
            validate_chrome_trace(document)

    def test_rejects_complete_event_without_dur(self):
        document = {
            "traceEvents": [{"name": "x", "ph": "X", "ts": 0, "pid": 1, "tid": 1}]
        }
        with pytest.raises(InvalidParameterError, match="dur"):
            validate_chrome_trace(document)

    def test_accepts_empty_trace(self):
        assert validate_chrome_trace({"traceEvents": []}) == 0


class TestWriteMetrics:
    def test_writes_sorted_pretty_json(self, tmp_path):
        path = write_metrics({"z": 1.0, "a": 2.0}, tmp_path / "metrics.json")
        text = path.read_text()
        assert json.loads(text) == {"a": 2.0, "z": 1.0}
        assert text.index('"a"') < text.index('"z"')
        assert text.endswith("\n")


class TestPhaseTable:
    def test_rows_indent_by_depth_with_bars(self):
        table = phase_table(make_trace())
        lines = table.splitlines()
        assert lines[0].startswith("phase")
        assert any(line.startswith("execute") for line in lines)
        assert any(line.startswith("  merge") for line in lines)
        assert any(line.startswith("  scan") for line in lines)
        assert "#" in lines[-1] or "#" in lines[-2]

    def test_dominance_deltas_appear(self):
        table = phase_table(make_trace())
        merge_line = next(
            line for line in table.splitlines() if line.lstrip().startswith("merge")
        )
        assert "100" in merge_line

    def test_empty_trace_placeholder(self):
        assert phase_table(Trace(roots=[])) == "(empty trace)"

    def test_rejects_bad_width(self):
        with pytest.raises(InvalidParameterError, match="width"):
            phase_table(make_trace(), width=0)
