"""Exporters: Chrome trace-event JSON, metrics JSON, the ASCII phase table."""

import json

import pytest

from repro.errors import InvalidParameterError
from repro.obs.export import (
    phase_table,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
    write_metrics,
)
from repro.obs.trace import Trace, Tracer
from repro.stats.counters import DominanceCounter


def make_trace():
    tracer = Tracer()
    counter = DominanceCounter()
    with tracer.span("execute", counter=counter, algorithm="sdi-subset"):
        with tracer.span("merge", counter=counter, sigma=2):
            counter.add(100)
        with tracer.span("scan", counter=counter):
            counter.add(400)
    return tracer.drain()


class TestChromeTrace:
    def test_one_complete_event_per_span(self):
        document = to_chrome_trace(make_trace())
        events = document["traceEvents"]
        assert [event["name"] for event in events] == ["execute", "merge", "scan"]
        assert all(event["ph"] == "X" for event in events)
        assert document["displayTimeUnit"] == "ms"

    def test_categories_split_roots_from_phases(self):
        events = to_chrome_trace(make_trace())["traceEvents"]
        assert events[0]["cat"] == "skyline"
        assert {event["cat"] for event in events[1:]} == {"phase"}

    def test_timestamps_are_microseconds(self):
        trace = make_trace()
        (execute,) = trace.roots
        event = to_chrome_trace(trace)["traceEvents"][0]
        assert event["ts"] == round(execute.start_s * 1e6, 3)
        assert event["dur"] == round(execute.wall_s * 1e6, 3)

    def test_args_carry_attrs_and_deltas(self):
        events = to_chrome_trace(make_trace())["traceEvents"]
        merge_args = events[1]["args"]
        assert merge_args["sigma"] == 2
        assert merge_args["delta.tests"] == 100.0

    def test_roundtrip_through_file_validates(self, tmp_path):
        path = write_chrome_trace(make_trace(), tmp_path / "trace.json")
        document = json.loads(path.read_text())
        assert validate_chrome_trace(document) == 3


class TestValidateChromeTrace:
    def test_rejects_non_object(self):
        with pytest.raises(InvalidParameterError, match="JSON object"):
            validate_chrome_trace([])

    def test_rejects_missing_events_array(self):
        with pytest.raises(InvalidParameterError, match="traceEvents"):
            validate_chrome_trace({"traceEvents": "nope"})

    def test_rejects_mistyped_event_field(self):
        document = {
            "traceEvents": [{"name": "x", "ph": "X", "ts": "soon", "pid": 1, "tid": 1}]
        }
        with pytest.raises(InvalidParameterError, match="'ts'"):
            validate_chrome_trace(document)

    def test_rejects_complete_event_without_dur(self):
        document = {
            "traceEvents": [{"name": "x", "ph": "X", "ts": 0, "pid": 1, "tid": 1}]
        }
        with pytest.raises(InvalidParameterError, match="dur"):
            validate_chrome_trace(document)

    def test_accepts_empty_trace(self):
        assert validate_chrome_trace({"traceEvents": []}) == 0


class TestWriteMetrics:
    def test_writes_sorted_pretty_json(self, tmp_path):
        path = write_metrics({"z": 1.0, "a": 2.0}, tmp_path / "metrics.json")
        text = path.read_text()
        assert json.loads(text) == {"a": 2.0, "z": 1.0}
        assert text.index('"a"') < text.index('"z"')
        assert text.endswith("\n")


class TestPhaseTable:
    def test_rows_indent_by_depth_with_bars(self):
        table = phase_table(make_trace())
        lines = table.splitlines()
        assert lines[0].startswith("phase")
        assert any(line.startswith("execute") for line in lines)
        assert any(line.startswith("  merge") for line in lines)
        assert any(line.startswith("  scan") for line in lines)
        assert "#" in lines[-1] or "#" in lines[-2]

    def test_dominance_deltas_appear(self):
        table = phase_table(make_trace())
        merge_line = next(
            line for line in table.splitlines() if line.lstrip().startswith("merge")
        )
        assert "100" in merge_line

    def test_empty_trace_placeholder(self):
        assert phase_table(Trace(roots=[])) == "(empty trace)"

    def test_rejects_bad_width(self):
        with pytest.raises(InvalidParameterError, match="width"):
            phase_table(make_trace(), width=0)

    def test_siblings_sorted_by_wall_time_descending(self):
        tracer = Tracer()
        counter = DominanceCounter()
        with tracer.span("execute", counter=counter):
            with tracer.span("fast", counter=counter):
                pass
            with tracer.span("slow", counter=counter):
                sum(range(200_000))
        table = phase_table(tracer.drain())
        lines = table.splitlines()
        slow_at = next(i for i, line in enumerate(lines) if line.startswith("  slow"))
        fast_at = next(i for i, line in enumerate(lines) if line.startswith("  fast"))
        assert slow_at < fast_at

    def test_children_stay_under_their_parent_after_sorting(self):
        tracer = Tracer()
        counter = DominanceCounter()
        with tracer.span("execute", counter=counter):
            with tracer.span("scan", counter=counter):
                with tracer.span("sort", counter=counter):
                    sum(range(100_000))
            with tracer.span("merge", counter=counter):
                pass
        lines = phase_table(tracer.drain()).splitlines()
        scan_at = next(i for i, line in enumerate(lines) if line.startswith("  scan"))
        sort_at = next(
            i for i, line in enumerate(lines) if line.startswith("    sort")
        )
        assert sort_at == scan_at + 1

    def test_cache_hit_rate_columns(self):
        tracer = Tracer()
        counter = DominanceCounter()
        with tracer.span("execute", counter=counter):
            with tracer.span("scan", counter=counter):
                counter.index_cache_hits += 3
                counter.index_cache_misses += 1
            with tracer.span("prepare", counter=counter):
                counter.prepared_cache_hits += 1
        table = phase_table(tracer.drain())
        assert "idx%" in table.splitlines()[0]
        assert "prep%" in table.splitlines()[0]
        scan_line = next(
            line for line in table.splitlines() if line.lstrip().startswith("scan")
        )
        assert "75%" in scan_line
        prepare_line = next(
            line
            for line in table.splitlines()
            if line.lstrip().startswith("prepare")
        )
        assert "100%" in prepare_line


class TestEngineRepairSpanExport:
    """The incremental-repair span survives the Chrome export schema."""

    @pytest.fixture(scope="class")
    def repair_result(self):
        import numpy as np

        from repro.data import generate
        from repro.engine import SkylineEngine
        from repro.engine.context import ExecutionContext

        dataset = generate("UI", n=600, d=4, seed=3)
        engine = SkylineEngine(ExecutionContext(tracer=Tracer()))
        engine.execute(dataset, index_backend="flat", workers=1)
        rng = np.random.default_rng(3)
        engine.apply_delta(dataset, inserts=rng.random((4, 4)))
        result = engine.execute(dataset, workers=1)
        assert result.plan.incremental, "planner did not choose repair"
        return result

    def test_repair_span_args_survive_validation(self, repair_result, tmp_path):
        path = write_chrome_trace(repair_result.trace, tmp_path / "trace.json")
        document = json.loads(path.read_text())
        assert validate_chrome_trace(document) == len(document["traceEvents"])
        repair = next(
            event
            for event in document["traceEvents"]
            if event["name"] == "engine.repair"
        )
        assert repair["args"]["pending"] >= 1
        assert repair["args"]["backend"] in ("map", "flat")
        assert repair["ph"] == "X"

    def test_repair_span_aggregates_into_phase_table(self, repair_result):
        table = phase_table(repair_result.trace)
        repair_line = next(
            line
            for line in table.splitlines()
            if line.lstrip().startswith("engine.repair")
        )
        assert repair_line.startswith("  ")  # nested under execute
