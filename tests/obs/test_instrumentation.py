"""End-to-end trace shape of the instrumented stack.

These tests pin the span vocabulary the exporters and docs rely on: an
engine run produces ``prepare``/``plan``/``execute`` roots with
``merge``/``sort``/``scan``/``index.query`` descendants, the parallel
extension contributes ``parallel.map``/``parallel.merge``, and the bench
runner one ``repeat`` record per repeat.
"""

import pytest

from repro.bench.runner import run_one
from repro.core.merge import _MAX_ROUND_RECORDS
from repro.data import generate
from repro.engine import SkylineEngine
from repro.engine.context import ExecutionContext
from repro.extensions.parallel import parallel_skyline
from repro.obs.trace import Tracer
from repro.stats.counters import DominanceCounter


@pytest.fixture(scope="module")
def ui_traceable():
    """Large enough that the sampled index.query instrumentation fires."""
    return generate("UI", n=2000, d=6, seed=5)


@pytest.fixture(scope="module")
def traced_run(ui_traceable):
    engine = SkylineEngine(ExecutionContext(tracer=Tracer()))
    counter = DominanceCounter()
    result = engine.execute(ui_traceable, "sdi-subset", counter=counter)
    return result, counter


class TestEngineTraceShape:
    def test_roots_are_the_engine_stages(self, traced_run):
        result, _ = traced_run
        assert [span.name for span in result.trace.roots] == [
            "prepare",
            "plan",
            "execute",
        ]

    def test_execute_contains_the_paper_phases(self, traced_run):
        result, _ = traced_run
        (execute,) = [s for s in result.trace.roots if s.name == "execute"]
        names = {span.name for _, span in execute.walk()}
        assert {"merge", "scan", "sort"} <= names

    def test_sampled_index_queries_appear(self, traced_run):
        result, counter = traced_run
        queries = result.trace.find("index.query")
        assert counter.index_queries >= 64
        assert queries, "expected sampled index.query records"
        assert all(span.attrs["sampled_1_in"] == 64 for span in queries)

    def test_merge_rounds_are_recorded_and_capped(self, traced_run):
        result, _ = traced_run
        (merge,) = result.trace.find("merge")
        rounds = [span for span in merge.children if span.name == "merge.round"]
        iterations = merge.attrs["iterations"]
        assert rounds
        assert len(rounds) == min(iterations, _MAX_ROUND_RECORDS)
        assert {"pivot", "removed", "remaining", "stability"} <= set(
            rounds[0].attrs
        )

    def test_phase_deltas_sum_to_the_charged_tests(self, traced_run):
        result, counter = traced_run
        charged = sum(
            span.counter_delta.get("tests", 0.0) for span in result.trace.roots
        )
        assert charged == float(counter.tests)

    def test_plan_span_carries_the_label(self, traced_run):
        result, _ = traced_run
        (plan,) = [s for s in result.trace.roots if s.name == "plan"]
        assert plan.attrs["label"] == "sdi-subset"

    def test_warm_run_marks_reused_merge(self, ui_traceable):
        engine = SkylineEngine(ExecutionContext(tracer=Tracer()))
        cold = engine.execute(ui_traceable, "sdi-subset")
        warm = engine.execute(ui_traceable, "sdi-subset")
        assert cold.trace.find("merge") and not cold.trace.find("merge.cached")
        assert warm.trace.find("merge.cached") and not warm.trace.find("merge")


class TestNullTracerEquivalence:
    def test_default_engine_produces_no_trace(self, ui_traceable, traced_run):
        traced_result, traced_counter = traced_run
        counter = DominanceCounter()
        result = SkylineEngine().execute(ui_traceable, "sdi-subset", counter=counter)
        assert result.trace is None
        assert list(result.indices) == list(traced_result.indices)
        assert counter.tests == traced_counter.tests


class TestParallelSpans:
    def test_map_and_merge_spans(self):
        dataset = generate("UI", n=400, d=4, seed=9)
        tracer = Tracer()
        with tracer.activate():
            parallel_skyline(dataset, workers=2)
        trace = tracer.drain()
        (map_span,) = trace.find("parallel.map")
        (merge_span,) = trace.find("parallel.merge")
        assert map_span.attrs["blocks"] == 2
        assert merge_span.attrs["candidates"] >= 1

    def test_single_worker_path_skips_parallel_spans(self):
        dataset = generate("UI", n=200, d=4, seed=9)
        tracer = Tracer()
        with tracer.activate():
            parallel_skyline(dataset, workers=1)
        trace = tracer.drain()
        assert trace.find("parallel.map") == []
        assert trace.find("parallel.merge") == []


class TestBenchRunnerSpans:
    def test_one_repeat_record_per_repeat(self):
        dataset = generate("UI", n=300, d=4, seed=3)
        tracer = Tracer()
        row = run_one(dataset, "sfs", repeats=3, tracer=tracer)
        repeats = tracer.drain().find("repeat")
        assert row.elapsed_seconds > 0
        assert [span.attrs["repeat"] for span in repeats] == [0, 1, 2]
        assert all(span.attrs["cold"] for span in repeats)

    def test_untraced_runner_records_nothing(self):
        dataset = generate("UI", n=300, d=4, seed=3)
        tracer = Tracer()
        run_one(dataset, "sfs", repeats=2)
        assert tracer.drain().roots == []
