"""The tracing overhead budget (ISSUE 4, satellite 3; ISSUE 9, satellite 4).

Tracing is observation-only: with a live :class:`Tracer` the engine must
return the identical skyline ids and charge the identical dominance tests
as with the default :class:`NullTracer` (hypothesis bridges the claim over
seeds), and at the reference workload (UI ``n=10_000``, ``d=6``) the
best-of-N wall time with tracing on must stay within 5% of tracing off.
The same budget covers the incremental-repair path with the full
telemetry stack live (tracer *and* event log).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import generate
from repro.engine import SkylineEngine
from repro.engine.context import ExecutionContext
from repro.obs.clock import timed
from repro.obs.events import EventLog
from repro.obs.trace import Tracer
from repro.stats.counters import DominanceCounter

ALGORITHM = "sdi-subset"
OVERHEAD_BUDGET = 0.05
# Absolute slack for the repair path: the repaired step is milliseconds
# long, where a single scheduler hiccup dwarfs any relative budget.
ABSOLUTE_SLACK_S = 2e-3
BEST_OF = 5


def cold_run(dataset, traced):
    """One fresh-engine execution; returns (ids, tests, wall seconds)."""
    context = ExecutionContext(tracer=Tracer()) if traced else ExecutionContext()
    engine = SkylineEngine(context)
    counter = DominanceCounter()
    result, elapsed = timed(
        lambda: engine.execute(dataset, ALGORITHM, counter=counter)
    )
    return list(result.indices), counter.tests, elapsed


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_tracing_is_observation_only(seed):
    dataset = generate("UI", n=1500, d=6, seed=seed)
    traced_ids, traced_tests, _ = cold_run(dataset, traced=True)
    plain_ids, plain_tests, _ = cold_run(dataset, traced=False)
    assert traced_ids == plain_ids
    assert traced_tests == plain_tests


def test_overhead_under_budget_at_reference_workload():
    dataset = generate("UI", n=10_000, d=6, seed=0)
    # Interleave the modes so drift (thermal, cache, scheduler) hits both;
    # best-of-N is the standard noise floor for wall-clock comparisons.
    traced_best = plain_best = float("inf")
    reference = None
    for _ in range(BEST_OF):
        traced_ids, traced_tests, traced_s = cold_run(dataset, traced=True)
        plain_ids, plain_tests, plain_s = cold_run(dataset, traced=False)
        traced_best = min(traced_best, traced_s)
        plain_best = min(plain_best, plain_s)
        if reference is None:
            reference = (plain_ids, plain_tests)
        assert traced_ids == reference[0]
        assert plain_ids == reference[0]
        assert traced_tests == plain_tests == reference[1]
    assert traced_best < plain_best * (1.0 + OVERHEAD_BUDGET), (
        f"tracing overhead {traced_best / plain_best - 1.0:+.1%} exceeds "
        f"{OVERHEAD_BUDGET:.0%} budget "
        f"(traced {traced_best:.4f}s vs plain {plain_best:.4f}s)"
    )


def repair_run(traced):
    """Warm an engine, then time apply_delta + the repaired execution.

    Returns (ids, charged tests, wall seconds of the timed repair step).
    The traced variant runs the full telemetry stack — Chrome tracer and
    structured event log — so the budget covers both emitters at once.
    """
    if traced:
        context = ExecutionContext(tracer=Tracer(), event_log=EventLog())
    else:
        context = ExecutionContext()
    engine = SkylineEngine(context)
    dataset = generate("UI", n=10_000, d=6, seed=0)
    engine.execute(dataset, index_backend="flat", workers=1)
    inserts = np.random.default_rng(9).random((8, 6))
    counter = DominanceCounter()

    def step():
        engine.apply_delta(dataset, inserts=inserts, counter=counter)
        return engine.execute(dataset, workers=1, counter=counter)

    result, elapsed = timed(step)
    assert result.plan.incremental, "delta must take the repair path"
    return list(result.indices), counter.tests, elapsed


def test_repair_path_overhead_under_budget():
    traced_best = plain_best = float("inf")
    reference = None
    for _ in range(BEST_OF):
        traced_ids, traced_tests, traced_s = repair_run(traced=True)
        plain_ids, plain_tests, plain_s = repair_run(traced=False)
        traced_best = min(traced_best, traced_s)
        plain_best = min(plain_best, plain_s)
        if reference is None:
            reference = (plain_ids, plain_tests)
        # Telemetry is observation-only on the repair path too: identical
        # skyline ids and identical charged dominance tests.
        assert traced_ids == reference[0]
        assert plain_ids == reference[0]
        assert traced_tests == plain_tests == reference[1]
        assert traced_tests > 0  # the repair actually charged work
    assert traced_best < plain_best * (1.0 + OVERHEAD_BUDGET) + ABSOLUTE_SLACK_S, (
        f"repair-path telemetry overhead exceeds {OVERHEAD_BUDGET:.0%} budget "
        f"(traced {traced_best:.4f}s vs plain {plain_best:.4f}s)"
    )
