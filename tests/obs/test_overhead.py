"""The tracing overhead budget (ISSUE 4, satellite 3).

Tracing is observation-only: with a live :class:`Tracer` the engine must
return the identical skyline ids and charge the identical dominance tests
as with the default :class:`NullTracer` (hypothesis bridges the claim over
seeds), and at the reference workload (UI ``n=10_000``, ``d=6``) the
best-of-N wall time with tracing on must stay within 5% of tracing off.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import generate
from repro.engine import SkylineEngine
from repro.engine.context import ExecutionContext
from repro.obs.clock import timed
from repro.obs.trace import Tracer
from repro.stats.counters import DominanceCounter

ALGORITHM = "sdi-subset"
OVERHEAD_BUDGET = 0.05
BEST_OF = 5


def cold_run(dataset, traced):
    """One fresh-engine execution; returns (ids, tests, wall seconds)."""
    context = ExecutionContext(tracer=Tracer()) if traced else ExecutionContext()
    engine = SkylineEngine(context)
    counter = DominanceCounter()
    result, elapsed = timed(
        lambda: engine.execute(dataset, ALGORITHM, counter=counter)
    )
    return list(result.indices), counter.tests, elapsed


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_tracing_is_observation_only(seed):
    dataset = generate("UI", n=1500, d=6, seed=seed)
    traced_ids, traced_tests, _ = cold_run(dataset, traced=True)
    plain_ids, plain_tests, _ = cold_run(dataset, traced=False)
    assert traced_ids == plain_ids
    assert traced_tests == plain_tests


def test_overhead_under_budget_at_reference_workload():
    dataset = generate("UI", n=10_000, d=6, seed=0)
    # Interleave the modes so drift (thermal, cache, scheduler) hits both;
    # best-of-N is the standard noise floor for wall-clock comparisons.
    traced_best = plain_best = float("inf")
    reference = None
    for _ in range(BEST_OF):
        traced_ids, traced_tests, traced_s = cold_run(dataset, traced=True)
        plain_ids, plain_tests, plain_s = cold_run(dataset, traced=False)
        traced_best = min(traced_best, traced_s)
        plain_best = min(plain_best, plain_s)
        if reference is None:
            reference = (plain_ids, plain_tests)
        assert traced_ids == reference[0]
        assert plain_ids == reference[0]
        assert traced_tests == plain_tests == reference[1]
    assert traced_best < plain_best * (1.0 + OVERHEAD_BUDGET), (
        f"tracing overhead {traced_best / plain_best - 1.0:+.1%} exceeds "
        f"{OVERHEAD_BUDGET:.0%} budget "
        f"(traced {traced_best:.4f}s vs plain {plain_best:.4f}s)"
    )
