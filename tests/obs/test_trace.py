"""Span mechanics: nesting, counter deltas, draining, the ambient tracer."""

from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Trace,
    Tracer,
    aggregate_phases,
    current_tracer,
)
from repro.stats.counters import DominanceCounter


class TestSpanNesting:
    def test_children_attach_to_open_parent(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
            with tracer.span("sibling"):
                pass
        trace = tracer.drain()
        assert [span.name for span in trace.roots] == ["outer"]
        assert [span.name for span in trace.roots[0].children] == [
            "inner",
            "sibling",
        ]

    def test_walk_reports_depths(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                with tracer.span("c"):
                    pass
        trace = tracer.drain()
        assert [(depth, span.name) for depth, span in trace.walk()] == [
            (0, "a"),
            (1, "b"),
            (2, "c"),
        ]

    def test_find_collects_by_name_depth_first(self):
        tracer = Tracer()
        with tracer.span("run"):
            with tracer.span("round"):
                pass
            with tracer.span("round"):
                pass
        trace = tracer.drain()
        assert len(trace.find("round")) == 2
        assert trace.find("missing") == []

    def test_attrs_from_kwargs_and_set(self):
        tracer = Tracer()
        with tracer.span("merge", sigma=2) as span:
            span.set(pivots=7, sigma=3)
        (merge,) = tracer.drain().roots
        assert merge.attrs == {"sigma": 3, "pivots": 7}

    def test_durations_are_measured(self):
        tracer = Tracer()
        with tracer.span("work"):
            sum(range(1000))
        (span,) = tracer.drain().roots
        assert span.wall_s > 0.0
        assert span.start_s >= 0.0


class TestCounterDelta:
    def test_delta_is_charged_per_span(self):
        tracer = Tracer()
        counter = DominanceCounter()
        counter.add(3)
        with tracer.span("outer", counter=counter):
            counter.add(5)
            with tracer.span("inner", counter=counter):
                counter.add(2)
        trace = tracer.drain()
        (outer,) = trace.roots
        assert outer.counter_delta == {"tests": 7.0}
        assert outer.children[0].counter_delta == {"tests": 2.0}

    def test_zero_deltas_are_omitted(self):
        tracer = Tracer()
        counter = DominanceCounter()
        with tracer.span("idle", counter=counter):
            pass
        (span,) = tracer.drain().roots
        assert span.counter_delta == {}

    def test_extras_appearing_mid_span_count_from_zero(self):
        tracer = Tracer()
        counter = DominanceCounter()
        with tracer.span("scan", counter=counter):
            counter.extras["blocks"] = 4.0
        (span,) = tracer.drain().roots
        assert span.counter_delta == {"extras.blocks": 4.0}

    def test_unbound_span_has_no_delta(self):
        tracer = Tracer()
        counter = DominanceCounter()
        with tracer.span("merge"):
            counter.add(9)
        (span,) = tracer.drain().roots
        assert span.counter_delta == {}


class TestRecord:
    def test_record_attaches_premeasured_span(self):
        tracer = Tracer()
        with tracer.span("merge"):
            tracer.record("merge.round", 0.25, pivot=3, removed=10)
        (merge,) = tracer.drain().roots
        (round_span,) = merge.children
        assert round_span.name == "merge.round"
        assert round_span.wall_s == 0.25
        assert round_span.attrs == {"pivot": 3, "removed": 10}

    def test_record_outside_any_span_becomes_root(self):
        tracer = Tracer()
        tracer.record("orphan", 0.01)
        assert [span.name for span in tracer.drain().roots] == ["orphan"]


class TestDrainAndActivate:
    def test_drain_resets_roots(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        first = tracer.drain()
        second = tracer.drain()
        assert [span.name for span in first.roots] == ["first"]
        assert second.roots == []

    def test_drain_keeps_open_spans(self):
        tracer = Tracer()
        open_span = tracer.span("long")
        open_span.__enter__()
        assert tracer.drain().roots == []
        open_span.__exit__(None, None, None)
        assert [span.name for span in tracer.drain().roots] == ["long"]

    def test_activate_installs_and_restores_ambient(self):
        tracer = Tracer()
        assert current_tracer() is NULL_TRACER
        with tracer.activate():
            assert current_tracer() is tracer
        assert current_tracer() is NULL_TRACER

    def test_activations_nest(self):
        outer, inner = Tracer(), Tracer()
        with outer.activate():
            with inner.activate():
                assert current_tracer() is inner
            assert current_tracer() is outer


class TestNullTracer:
    def test_disabled_flag(self):
        assert NULL_TRACER.enabled is False
        assert Tracer().enabled is True

    def test_span_returns_shared_singleton(self):
        first = NULL_TRACER.span("merge", sigma=2)
        second = NULL_TRACER.span("scan")
        assert first is second

    def test_span_is_a_noop_context_manager(self):
        with NULL_TRACER.span("merge") as span:
            span.set(anything=1)
        with NULL_TRACER.activate():
            pass

    def test_record_and_drain_do_nothing(self):
        tracer = NullTracer()
        tracer.record("merge.round", 0.5)
        assert tracer.drain() is None


class TestAggregatePhases:
    def make_trace(self):
        tracer = Tracer()
        counter = DominanceCounter()
        with tracer.span("execute", counter=counter):
            with tracer.span("merge", counter=counter):
                counter.add(10)
                tracer.record("merge.round", 0.1)
                tracer.record("merge.round", 0.2)
            with tracer.span("scan", counter=counter):
                counter.add(30)
        return tracer.drain()

    def test_sibling_spans_collapse_into_one_row(self):
        phases = aggregate_phases(self.make_trace())
        by_path = {phase.path: phase for phase in phases}
        rounds = by_path[("execute", "merge", "merge.round")]
        assert rounds.calls == 2
        assert abs(rounds.wall_s - 0.3) < 1e-12

    def test_first_visit_order_and_depth(self):
        phases = aggregate_phases(self.make_trace())
        assert [phase.path for phase in phases] == [
            ("execute",),
            ("execute", "merge"),
            ("execute", "merge", "merge.round"),
            ("execute", "scan"),
        ]
        assert [phase.depth for phase in phases] == [0, 1, 2, 1]
        assert phases[1].name == "merge"

    def test_dominance_tests_come_from_the_delta(self):
        phases = aggregate_phases(self.make_trace())
        by_name = {phase.name: phase for phase in phases}
        assert by_name["merge"].dominance_tests == 10.0
        assert by_name["scan"].dominance_tests == 30.0
        assert by_name["execute"].dominance_tests == 40.0

    def test_empty_trace(self):
        assert aggregate_phases(Trace(roots=[])) == []
