"""LogHistogram: bucket layout, quantile oracle, lossless merge, roundtrip."""

import json
import math

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.obs.histogram import LogHistogram


def exact_quantile(samples, q):
    """The order statistic the histogram's quantile() approximates."""
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
    return ordered[rank]


class TestBucketLayout:
    def test_zero_and_negative_samples_use_zero_bucket(self):
        histogram = LogHistogram()
        assert histogram.bucket_index(0.0) == -1
        assert histogram.bucket_index(-1.0) == -1

    def test_values_at_or_below_min_value_share_bucket_zero(self):
        histogram = LogHistogram(min_value=1e-6)
        assert histogram.bucket_index(1e-9) == 0
        assert histogram.bucket_index(1e-6) == 0

    def test_bucket_bounds_contain_their_values(self):
        histogram = LogHistogram()
        for value in (1e-6, 3e-5, 0.01, 1.7, 250.0):
            index = histogram.bucket_index(value)
            low, high = histogram.bucket_bounds(index)
            assert low < value <= high or (index == 0 and value <= high)

    def test_rejects_degenerate_parameters(self):
        with pytest.raises(InvalidParameterError, match="growth"):
            LogHistogram(growth=1.0)
        with pytest.raises(InvalidParameterError, match="min_value"):
            LogHistogram(min_value=0.0)


class TestQuantileOracle:
    """p50/p90/p99 must land in the same bucket as the exact statistic."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("q", [0.5, 0.9, 0.99])
    def test_quantile_within_one_bucket_of_exact(self, seed, q):
        rng = np.random.default_rng(seed)
        samples = rng.lognormal(mean=-4.0, sigma=2.0, size=2000)
        histogram = LogHistogram()
        histogram.add_many(samples)
        estimate = histogram.quantile(q)
        exact = exact_quantile(samples, q)
        # Same-bucket contract: the estimate and the exact order statistic
        # differ by at most one bucket width (a factor of growth).
        assert exact / histogram.growth <= estimate <= exact * histogram.growth

    def test_summary_matches_brute_force_on_uniform(self):
        rng = np.random.default_rng(7)
        samples = rng.uniform(0.001, 1.0, size=500)
        histogram = LogHistogram()
        histogram.add_many(samples)
        summary = histogram.summary()
        assert summary["count"] == 500.0
        assert summary["sum"] == pytest.approx(float(samples.sum()))
        assert summary["min"] == pytest.approx(float(samples.min()))
        assert summary["max"] == pytest.approx(float(samples.max()))
        for key, q in (("p50", 0.5), ("p90", 0.9), ("p99", 0.99)):
            exact = exact_quantile(samples, q)
            assert exact / histogram.growth <= summary[key] <= exact * histogram.growth

    def test_zeros_order_before_everything(self):
        histogram = LogHistogram()
        histogram.add_many([0.0, 0.0, 0.0, 5.0])
        assert histogram.quantile(0.5) == 0.0
        assert histogram.quantile(1.0) == 5.0

    def test_empty_histogram_quantile_is_zero(self):
        assert LogHistogram().quantile(0.5) == 0.0

    def test_single_sample_everywhere(self):
        histogram = LogHistogram()
        histogram.add(0.25)
        for q in (0.0, 0.5, 1.0):
            assert histogram.quantile(q) == pytest.approx(0.25)

    def test_rejects_out_of_range_quantile(self):
        with pytest.raises(InvalidParameterError, match="quantile"):
            LogHistogram().quantile(1.5)


class TestLosslessMerge:
    def test_merge_equals_concatenation_bucket_for_bucket(self):
        rng = np.random.default_rng(11)
        left_samples = rng.lognormal(-3, 1.5, size=400)
        right_samples = rng.lognormal(-2, 1.0, size=300)
        left = LogHistogram()
        left.add_many(left_samples)
        right = LogHistogram()
        right.add_many(right_samples)
        left.merge(right)
        combined = LogHistogram()
        combined.add_many(np.concatenate([left_samples, right_samples]))
        assert left.to_dict() == combined.to_dict()

    def test_merge_rejects_layout_mismatch(self):
        with pytest.raises(InvalidParameterError, match="layouts"):
            LogHistogram(growth=2.0).merge(LogHistogram(growth=1.5))
        with pytest.raises(InvalidParameterError, match="layouts"):
            LogHistogram(min_value=1e-6).merge(LogHistogram(min_value=1e-3))

    def test_merging_empty_is_identity(self):
        histogram = LogHistogram()
        histogram.add_many([0.1, 0.2])
        before = histogram.to_dict()
        histogram.merge(LogHistogram())
        assert histogram.to_dict() == before


class TestSerialisation:
    def test_json_roundtrip_is_exact(self):
        histogram = LogHistogram()
        histogram.add_many([0.0, 1e-9, 0.004, 0.004, 1.5, 300.0])
        payload = json.loads(json.dumps(histogram.to_dict()))
        rebuilt = LogHistogram.from_dict(payload)
        assert rebuilt.to_dict() == histogram.to_dict()
        assert rebuilt.quantile(0.5) == histogram.quantile(0.5)

    def test_empty_roundtrip(self):
        rebuilt = LogHistogram.from_dict(LogHistogram().to_dict())
        assert rebuilt.count == 0
        assert rebuilt.min == 0.0 and rebuilt.max == 0.0

    def test_cumulative_covers_every_sample(self):
        histogram = LogHistogram()
        histogram.add_many([0.0, 0.001, 0.002, 0.5])
        pairs = histogram.cumulative()
        assert pairs[0] == (0.0, 1)  # zero bucket first
        assert pairs[-1][1] == histogram.count
        uppers = [upper for upper, _ in pairs]
        assert uppers == sorted(uppers)

    def test_len_tracks_count(self):
        histogram = LogHistogram()
        assert len(histogram) == 0
        histogram.add(1.0)
        assert len(histogram) == 1
