"""Dataset persistence: CSV (interchange) and NPY (fast) round-trips."""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from repro.dataset import Dataset
from repro.errors import InvalidDatasetError


def save_csv(dataset: Dataset, path: str | Path) -> None:
    """Write a dataset to CSV with a ``dim_0..dim_{d-1}`` header row."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow([f"dim_{i}" for i in range(dataset.dimensionality)])
        writer.writerows(dataset.values.tolist())


def load_csv(path: str | Path, name: str | None = None, kind: str = "custom") -> Dataset:
    """Read a dataset from CSV; a header row is detected and skipped."""
    path = Path(path)
    rows: list[list[float]] = []
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        for lineno, row in enumerate(reader):
            if not row:
                continue
            try:
                rows.append([float(cell) for cell in row])
            except ValueError:
                if lineno == 0:
                    continue  # header row
                raise InvalidDatasetError(
                    f"{path}:{lineno + 1}: non-numeric cell in {row!r}"
                ) from None
    if not rows:
        raise InvalidDatasetError(f"{path}: no data rows")
    return Dataset(np.asarray(rows, dtype=np.float64), name=name or path.stem, kind=kind)


def save_npy(dataset: Dataset, path: str | Path) -> None:
    """Write the raw value matrix to a ``.npy`` file."""
    np.save(Path(path), dataset.values)


def load_npy(path: str | Path, name: str | None = None, kind: str = "custom") -> Dataset:
    """Read a value matrix from a ``.npy`` file."""
    path = Path(path)
    values = np.load(path)
    return Dataset(values, name=name or path.stem, kind=kind)
