"""Synthetic equivalents of the paper's real datasets (HOUSE, NBA, WEATHER).

Section 6.3 evaluates on three real datasets from Chester et al. [6] that are
not redistributable in this offline environment.  Each is replaced by a
generator that reproduces the property the paper says drives its behaviour:

- **HOUSE** (6-D, 127,931 points): household *expenditure shares* — spending
  more on one category means less on another, so the data is anti-correlated
  ("HOUSE is an AC type dataset", §6.3).  Simulated as Dirichlet budget
  shares scaled by a heavy-tailed total budget.
- **NBA** (8-D, 17,264 points): per-season player statistics — good players
  are good across the board, so the data is positively correlated, and the
  dataset is *small* (§6.3 stresses its size limits the boost).  Simulated
  with a latent skill factor plus per-stat noise, then flipped into the
  min-is-better convention.
- **WEATHER** (15-D, 566,268 points): station measurements with "a large
  number of duplicate values in several dimensions" (§6.3).  Simulated as a
  seasonal mixture coarsely quantised per dimension so that duplicates are
  frequent.

Default cardinalities match the paper; pass a smaller ``n`` to scale down.
"""

from __future__ import annotations

import numpy as np

from repro.dataset import Dataset
from repro.errors import InvalidParameterError

HOUSE_CARDINALITY = 127_931
NBA_CARDINALITY = 17_264
WEATHER_CARDINALITY = 566_268

_HOUSE_DIMS = 6
_NBA_DIMS = 8
_WEATHER_DIMS = 15

# Coarse quantisation levels per WEATHER dimension; low levels produce the
# duplicate-heavy columns the paper describes.
_WEATHER_LEVELS = (8, 12, 16, 20, 24, 32, 40, 48, 64, 80, 96, 128, 160, 200, 256)


def house(n: int = HOUSE_CARDINALITY, seed: int | None = 0) -> Dataset:
    """HOUSE-like dataset: 6-D anti-correlated expenditure amounts.

    Lower spending is preferred in every dimension, so the dataset is
    already in the library's minimisation convention.
    """
    _check_cardinality(n)
    rng = np.random.default_rng(seed)
    shares = rng.dirichlet(alpha=np.full(_HOUSE_DIMS, 0.8), size=n)
    budget = rng.lognormal(mean=10.0, sigma=0.5, size=n)
    values = shares * budget[:, None]
    return Dataset(
        values,
        name=f"HOUSE-{n}",
        kind="REAL",
        metadata={"source": "synthetic-equivalent", "profile": "AC", "seed": seed},
    )


def nba(n: int = NBA_CARDINALITY, seed: int | None = 0) -> Dataset:
    """NBA-like dataset: 8-D correlated player-season statistics.

    Stats are generated as max-is-better (points, rebounds, ...) and flipped
    into the minimisation convention before being returned.
    """
    _check_cardinality(n)
    rng = np.random.default_rng(seed)
    skill = rng.normal(0.0, 1.0, size=n)
    loadings = np.linspace(0.9, 0.5, _NBA_DIMS)
    noise = rng.normal(0.0, 0.55, size=(n, _NBA_DIMS))
    stats = skill[:, None] * loadings[None, :] + noise
    # Shift into a realistic non-negative range resembling per-game stats.
    scales = np.array([25.0, 10.0, 8.0, 2.0, 1.5, 3.0, 45.0, 80.0])
    offsets = np.array([8.0, 4.0, 3.0, 0.8, 0.5, 1.5, 40.0, 20.0])
    raw = np.maximum(stats * (scales / 3.0) + offsets, 0.0)
    flipped = raw.max(axis=0)[None, :] - raw
    return Dataset(
        flipped,
        name=f"NBA-{n}",
        kind="REAL",
        metadata={"source": "synthetic-equivalent", "profile": "CO", "seed": seed},
    )


def weather(n: int = WEATHER_CARDINALITY, seed: int | None = 0) -> Dataset:
    """WEATHER-like dataset: 15-D with heavy duplicate values per dimension."""
    _check_cardinality(n)
    rng = np.random.default_rng(seed)
    season = rng.integers(0, 4, size=n)
    season_centers = rng.random((4, _WEATHER_DIMS))
    continuous = np.clip(
        season_centers[season] + rng.normal(0.0, 0.2, size=(n, _WEATHER_DIMS)),
        0.0,
        1.0,
    )
    values = np.empty_like(continuous)
    for dim, levels in enumerate(_WEATHER_LEVELS):
        values[:, dim] = np.round(continuous[:, dim] * (levels - 1)) / (levels - 1)
    return Dataset(
        values,
        name=f"WEATHER-{n}",
        kind="REAL",
        metadata={
            "source": "synthetic-equivalent",
            "profile": "duplicates",
            "seed": seed,
        },
    )


def _check_cardinality(n: int) -> None:
    if n < 1:
        raise InvalidParameterError(f"cardinality must be >= 1, got {n}")
