"""Workload generation: synthetic AC/CO/UI data and real-dataset equivalents."""

from repro.data.generators import generate
from repro.data.io import load_csv, load_npy, save_csv, save_npy
from repro.data.real import house, nba, weather

__all__ = [
    "generate",
    "house",
    "load_csv",
    "load_npy",
    "nba",
    "save_csv",
    "save_npy",
    "weather",
]
