"""Synthetic skyline workload generators (AC / CO / UI).

The paper generates data with the *Skyline Benchmark Data Generator*
(pgfoundry ``randdataset``), which implements the three classic regimes of
Börzsönyi et al. [4]:

- **UI** (uniform independent): every coordinate uniform on ``[0, 1]``,
  independently.
- **CO** (correlated): points scattered tightly around the main diagonal —
  a point good in one dimension tends to be good in all, so skylines are
  tiny.
- **AC** (anti-correlated): points scattered around the anti-diagonal plane
  ``sum(x) ≈ d/2`` — a point good in one dimension is bad in others, so
  skylines are huge.

The pgfoundry site is defunct and this environment is offline, so the
generators are reimplemented from the published description.  The AC
generator uses the original's construction: start every coordinate at a
plane value ``v`` drawn from a normal peaked at 0.5, then repeatedly move a
random feasible amount between two random dimensions, preserving the sum
while spreading points along the plane.

All generators are deterministic given ``seed`` and produce values in
``[0, 1]``, matching the benchmark's conventions.
"""

from __future__ import annotations

import numpy as np

from repro.dataset import Dataset
from repro.errors import InvalidParameterError

KINDS = ("AC", "CO", "UI")

_CO_BASE_STD = 0.15
_CO_JITTER_STD = 0.05
# Tight spread around the anti-diagonal plane: keeps near-plane points
# mutually incomparable, reproducing the huge AC skylines of Table 1.
_AC_PLANE_STD = 0.05
_AC_TRANSFER_ROUNDS_PER_DIM = 2


def generate(kind: str, n: int, d: int, seed: int | None = None) -> Dataset:
    """Generate a synthetic dataset of the requested correlation regime.

    Parameters
    ----------
    kind:
        ``"AC"``, ``"CO"`` or ``"UI"`` (case-insensitive).
    n:
        Cardinality (number of points), at least 1.
    d:
        Dimensionality, at least 1.
    seed:
        Seed for numpy's :class:`~numpy.random.Generator`; identical seeds
        yield identical datasets.

    >>> ds = generate("UI", n=100, d=4, seed=7)
    >>> ds.cardinality, ds.dimensionality
    (100, 4)
    """
    normalized = kind.upper()
    if normalized not in KINDS:
        raise InvalidParameterError(f"unknown kind {kind!r}; expected one of {KINDS}")
    if n < 1:
        raise InvalidParameterError(f"cardinality must be >= 1, got {n}")
    if d < 1:
        raise InvalidParameterError(f"dimensionality must be >= 1, got {d}")
    rng = np.random.default_rng(seed)
    if normalized == "UI":
        values = _uniform_independent(rng, n, d)
    elif normalized == "CO":
        values = _correlated(rng, n, d)
    else:
        values = _anti_correlated(rng, n, d)
    return Dataset(
        values,
        name=f"{normalized}-{d}D-{n}",
        kind=normalized,
        metadata={"seed": seed, "generator": normalized},
    )


def _uniform_independent(rng: np.random.Generator, n: int, d: int) -> np.ndarray:
    return rng.random((n, d))


def _correlated(rng: np.random.Generator, n: int, d: int) -> np.ndarray:
    base = np.clip(rng.normal(0.5, _CO_BASE_STD, size=n), 0.0, 1.0)
    jitter = rng.normal(0.0, _CO_JITTER_STD, size=(n, d))
    return np.clip(base[:, None] + jitter, 0.0, 1.0)


def _anti_correlated(rng: np.random.Generator, n: int, d: int) -> np.ndarray:
    plane = np.clip(rng.normal(0.5, _AC_PLANE_STD, size=n), 0.0, 1.0)
    values = np.tile(plane[:, None], (1, d))
    if d == 1:
        return values
    rows = np.arange(n)
    for _ in range(_AC_TRANSFER_ROUNDS_PER_DIM * d):
        src = rng.integers(0, d, size=n)
        # Draw a distinct destination by offsetting within the other d-1 dims.
        dst = (src + rng.integers(1, d, size=n)) % d
        from_vals = values[rows, src]
        to_vals = values[rows, dst]
        # delta added to src and removed from dst; both must stay in [0, 1].
        lo = np.maximum(-from_vals, to_vals - 1.0)
        hi = np.minimum(1.0 - from_vals, to_vals)
        delta = lo + rng.random(n) * (hi - lo)
        values[rows, src] = from_vals + delta
        values[rows, dst] = to_vals - delta
    return np.clip(values, 0.0, 1.0)
