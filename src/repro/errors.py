"""Exception hierarchy for the :mod:`repro` library.

All library-raised errors derive from :class:`ReproError` so that callers can
catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class InvalidDatasetError(ReproError):
    """A dataset is malformed: wrong shape, dtype, or contains NaN values."""


class InvalidParameterError(ReproError):
    """A user-supplied parameter is outside its documented domain."""


class UnknownAlgorithmError(ReproError):
    """The requested algorithm name is not present in the registry."""


class DimensionMismatchError(ReproError):
    """Two objects that must share a dimensionality do not."""
