"""A throughput-oriented skyline kernel without dominance-test accounting.

The algorithm implementations in :mod:`repro.algorithms` are built for
*fidelity*: they charge exactly the dominance tests the original papers
count, which caps how aggressively they can batch.  When a user just wants
the skyline of a large array as fast as pure numpy allows — no metrics —
this module provides it.

Positioning: ``fast_skyline`` batches the whole scan into numpy kernels,
which wins decisively over the per-point accounting loops whenever the
skyline is small relative to ``N`` (correlated and real-world data,
moderate dimensionality).  On workloads with *huge* skylines (e.g. 8-D+
uniform independent data) its inherent ``O(N·|skyline|)`` comparison volume
loses to the subset-boosted algorithms, whose candidate sets the index
keeps tiny — use ``repro.skyline(..., "sdi-subset")`` there.

Strategy: a sum-presorted scan processed in chunks.  Each chunk is filtered
against the confirmed skyline with broadcast comparisons (tiled over the
skyline so peak memory stays bounded), survivors are reduced against each
other with an intra-chunk pass (the sum order guarantees dominators come
first), and the chunk's skyline joins the global one.  The result is
bit-identical to every other algorithm in the library.
"""

from __future__ import annotations

import numpy as np

from repro.dataset import Dataset, as_dataset
from repro.errors import InvalidParameterError

#: Rows of one scanning chunk.
_CHUNK = 256
#: Skyline rows compared per broadcast tile; bounds peak memory at
#: roughly ``_TILE * _CHUNK * d`` booleans.  Tiles are visited in
#: insertion (ascending-sum) order — the strongest dominators — so a
#: moderate tile also acts as an early exit: most of a chunk dies in the
#: first tile and later tiles broadcast against the few rows still alive.
_TILE = 256


def fast_skyline(
    data: Dataset | np.ndarray,
    chunk_size: int = _CHUNK,
) -> np.ndarray:
    """Sorted row ids of the skyline, computed with batched numpy kernels.

    >>> import numpy as np
    >>> fast_skyline(np.array([[1.0, 4.0], [2.0, 2.0], [3.0, 3.0]]))
    array([0, 1])
    """
    dataset = as_dataset(data)
    if chunk_size < 1:
        raise InvalidParameterError(f"chunk_size must be >= 1, got {chunk_size}")
    values = dataset.values
    n = dataset.cardinality

    order = np.argsort(values.sum(axis=1), kind="stable")
    ordered = values[order]

    sky_rows = np.empty((0, dataset.dimensionality), dtype=values.dtype)
    sky_ids: list[int] = []
    for start in range(0, n, chunk_size):
        block = ordered[start : start + chunk_size]
        block_ids = order[start : start + chunk_size]
        alive = np.ones(block.shape[0], dtype=bool)
        for tile_start in range(0, sky_rows.shape[0], _TILE):
            if not alive.any():
                break
            tile = sky_rows[tile_start : tile_start + _TILE]
            candidates = block[alive]
            le = np.all(tile[:, None, :] <= candidates[None, :, :], axis=2)
            # A weakly dominating pair is only *not* a dominating pair
            # when the rows are exact duplicates, so the strictness check
            # runs on the flagged pairs alone instead of a second full
            # broadcast pass over the tile.
            ti, cj = le.nonzero()
            if ti.size:
                strict = (tile[ti] != candidates[cj]).any(axis=1)
                dominated = np.bincount(
                    cj[strict], minlength=candidates.shape[0]
                ).astype(bool)
                indices = np.nonzero(alive)[0]
                alive[indices[dominated]] = False
        survivors = block[alive]
        survivor_ids = block_ids[alive]
        # Intra-chunk reduction, fully vectorised: in ascending-sum order
        # a row can only be dominated by an *earlier* row (strict
        # dominance implies a strictly smaller sum), and dominance is
        # transitive, so "dominated by an earlier kept row" equals
        # "dominated by any row" — one pairwise pass, no sequential loop.
        if survivors.shape[0] > 1:
            le = np.all(survivors[:, None, :] <= survivors[None, :, :], axis=2)
            si, sj = le.nonzero()
            strict = (survivors[si] != survivors[sj]).any(axis=1)
            keep = np.bincount(
                sj[strict], minlength=survivors.shape[0]
            ) == 0
            survivors = survivors[keep]
            survivor_ids = survivor_ids[keep]
        if survivors.shape[0]:
            sky_rows = np.vstack([sky_rows, survivors])
            sky_ids.extend(int(i) for i in survivor_ids)
    return np.asarray(sorted(sky_ids), dtype=np.intp)
