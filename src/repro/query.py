"""A declarative skyline-query API on top of the algorithm library.

The skyline operator of Börzsönyi et al. [4] was proposed as a SQL
extension (``SKYLINE OF price MIN, rating MAX``); this module provides the
Python equivalent a downstream application would actually call: name the
dimensions, state each one's direction, optionally restrict the data with
range predicates and project onto a dimension subset, then execute with
any registered algorithm.

>>> import numpy as np
>>> from repro.dataset import Dataset
>>> hotels = Dataset(
...     np.array([[120.0, 0.5, 8.0], [90.0, 2.0, 9.5], [200.0, 0.2, 6.0]]),
...     columns=("price", "distance", "rating"),
... )
>>> query = (
...     SkylineQuery()
...     .minimize("price", "distance")
...     .maximize("rating")
...     .where("price", max_value=150)
... )
>>> sorted(int(i) for i in query.execute(hotels).indices)
[0, 1]
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.algorithms.base import SkylineResult
from repro.dataset import Dataset, as_dataset
from repro.engine import SkylineEngine
from repro.errors import InvalidParameterError
from repro.stats.counters import DominanceCounter


@dataclass(frozen=True)
class _Range:
    column: int | str
    min_value: float | None
    max_value: float | None


class SkylineQuery:
    """Builder for skyline queries with directions, filters and projection.

    Methods return ``self`` so calls chain; :meth:`execute` runs the query
    against a dataset and returns a standard :class:`SkylineResult` whose
    indices refer to the *original* dataset rows.
    """

    def __init__(self) -> None:
        self._minimize: list[int | str] = []
        self._maximize: list[int | str] = []
        self._ranges: list[_Range] = []

    def minimize(self, *columns: int | str) -> "SkylineQuery":
        """Prefer smaller values in these columns."""
        self._minimize.extend(columns)
        return self

    def maximize(self, *columns: int | str) -> "SkylineQuery":
        """Prefer larger values in these columns."""
        self._maximize.extend(columns)
        return self

    def where(
        self,
        column: int | str,
        min_value: float | None = None,
        max_value: float | None = None,
    ) -> "SkylineQuery":
        """Keep only rows with ``min_value <= value <= max_value``.

        The constrained skyline is computed *after* filtering, so points
        outside the range neither appear nor dominate (the standard
        constrained-skyline semantics).
        """
        if min_value is None and max_value is None:
            raise InvalidParameterError("where() needs min_value and/or max_value")
        self._ranges.append(_Range(column, min_value, max_value))
        return self

    def execute(
        self,
        data: Dataset | np.ndarray,
        algorithm: str | None = "sfs",
        sigma: int | None = None,
        counter: DominanceCounter | None = None,
        engine: SkylineEngine | None = None,
        **kwargs: object,
    ) -> SkylineResult:
        """Run the query; result indices refer to the input dataset's rows.

        ``algorithm=None`` lets the engine's planner choose adaptively.
        Passing a shared :class:`~repro.engine.SkylineEngine` lets repeated
        queries over the same dataset reuse prepared subspace views, Merge
        results and sort orders; the returned result carries the executed
        :class:`~repro.engine.plan.Plan` and the run's full counter.
        """
        dataset = as_dataset(data)
        skyline_dims = self._preference_dims(dataset)
        engine = engine if engine is not None else SkylineEngine()

        keep = np.ones(dataset.cardinality, dtype=bool)
        for constraint in self._ranges:
            column = dataset.column_index(constraint.column)
            values = dataset.values[:, column]
            if constraint.min_value is not None:
                keep &= values >= constraint.min_value
            if constraint.max_value is not None:
                keep &= values <= constraint.max_value
        kept_ids = np.nonzero(keep)[0]
        if kept_ids.size == 0:
            return SkylineResult(
                indices=np.empty(0, dtype=np.intp),
                algorithm=algorithm or "auto",
                dominance_tests=0,
                elapsed_seconds=0.0,
                cardinality=dataset.cardinality,
                counter=counter if counter is not None else DominanceCounter(),
            )

        max_dims = self._max_dims(dataset)
        if kept_ids.size == dataset.cardinality:
            # Unfiltered query: execute over the prepared, cached subspace
            # view so repeated queries share projections, Merge results and
            # sort orders.  The flip (max(col) - col over all rows) matches
            # the ephemeral path below exactly.
            target: Dataset | object = engine.prepare(dataset).view(
                skyline_dims, maximize=sorted(max_dims), counter=counter
            )
        else:
            # Range-filtered query: the max-flip is relative to the rows
            # that survive the filter, so the projection is query-specific
            # and not worth caching.
            projected = dataset.values[np.ix_(kept_ids, skyline_dims)].copy()
            flip = [i for i, dim in enumerate(skyline_dims) if dim in max_dims]
            for local_dim in flip:
                column = projected[:, local_dim]
                projected[:, local_dim] = column.max() - column
            target = Dataset(
                projected, name=f"{dataset.name}[query]", kind=dataset.kind
            )
        local = engine.execute(
            target,  # type: ignore[arg-type]
            algorithm,
            sigma,
            counter=counter,
            host_options=kwargs or None,
        )
        return replace(
            local,
            indices=kept_ids[local.indices],
            cardinality=dataset.cardinality,
        )

    def _preference_dims(self, dataset: Dataset) -> list[int]:
        minimized = [dataset.column_index(c) for c in self._minimize]
        maximized = [dataset.column_index(c) for c in self._maximize]
        if not minimized and not maximized:
            raise InvalidParameterError(
                "a skyline query needs at least one minimize()/maximize() column"
            )
        overlap = set(minimized) & set(maximized)
        if overlap:
            raise InvalidParameterError(
                f"columns {sorted(overlap)} are both minimized and maximized"
            )
        dims = minimized + maximized
        if len(set(dims)) != len(dims):
            raise InvalidParameterError("a column may appear only once per direction")
        return dims

    def _max_dims(self, dataset: Dataset) -> set[int]:
        return {dataset.column_index(c) for c in self._maximize}
