"""Algorithm 1 — Merge: subspace union over iteratively selected pivot points.

Scores every point by its Euclidean distance to the zero point, repeatedly
extracts the minimum-score point as a pivot (immediately a skyline point),
prunes everything the pivot dominates, and unions each survivor's dominating
subspace w.r.t. the pivot into its *maximum dominating subspace*.  Iteration
stops when the subspace-size distribution is stable (σ′ >= σ) or when the
dataset is exhausted.

Implementation notes
--------------------
- Each per-pivot dominating-subspace computation inspects one point pair and
  is charged as one dominance test, so boosted algorithms pay ~(pivots · N)
  tests up front — visible in the paper's CO tables, where boosted DT sits
  slightly above 1.0 while stop-point algorithms sit near 0.
- The paper scores by distance to the origin, which presumes non-negative
  data.  We score by distance to the componentwise minimum corner instead —
  identical on the paper's ``[0, 1]`` benchmarks, and it keeps the "minimum
  score ⇒ skyline point" invariant for arbitrary real-valued data.
- Points equal to a pivot are skyline points too (Algorithm 1 lines 14–17)
  and are reported separately in :attr:`MergeResult.duplicate_skyline_ids`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.stability import StabilityTracker, validate_threshold
from repro.dataset import Dataset, as_dataset
from repro.dominance import dominating_subspaces
from repro.errors import InvalidParameterError
from repro.obs.clock import Stopwatch
from repro.obs.trace import TracerLike, current_tracer
from repro.stats.counters import DominanceCounter
from repro.structures import bitset

#: Per-pivot ``merge.round`` records kept per Merge pass.  Exhausted runs
#: can iterate thousands of times; rounds beyond this cap go unrecorded
#: (the enclosing ``merge`` span still reports the true iteration count,
#: so truncation is visible, not silent).
_MAX_ROUND_RECORDS = 128


@dataclass(frozen=True)
class MergeResult:
    """Output of the Merge pass (Algorithm 1).

    Attributes
    ----------
    pivot_ids:
        Pivot points in selection order; each is a skyline point.
    duplicate_skyline_ids:
        Points coordinate-equal to some pivot; also skyline points.
    remaining_ids:
        Non-pruned points: every one of them is *not* dominated by any
        pivot, and carries a non-empty maximum dominating subspace.
    masks:
        ``int64`` bitmasks aligned with ``remaining_ids``: entry ``k`` is
        ``D_{q<S}`` for ``q = remaining_ids[k]``.
    iterations:
        Number of pivots processed.
    final_stability:
        σ′ when the loop stopped.
    exhausted:
        True when the dataset emptied before σ′ reached σ; in that case
        the skyline is already complete and no scan phase is needed.
    """

    pivot_ids: list[int]
    duplicate_skyline_ids: list[int]
    remaining_ids: np.ndarray
    masks: np.ndarray
    iterations: int
    final_stability: int
    exhausted: bool
    metadata: dict[str, object] = field(default_factory=dict)
    _position_of: dict[int, int] | None = field(
        default=None, repr=False, compare=False
    )

    @property
    def initial_skyline_ids(self) -> list[int]:
        """All skyline points identified during the merge phase."""
        return [*self.pivot_ids, *self.duplicate_skyline_ids]

    def mask_of(self, point_id: int) -> int:
        """The maximum dominating subspace of a remaining point.

        ``O(1)`` after a lazily built id → position map (the boosted scan
        looks masks up per testing point; a linear ``np.nonzero`` scan per
        lookup would be quadratic overall).
        """
        if self._position_of is None:
            positions = {
                int(pid): pos for pos, pid in enumerate(self.remaining_ids)
            }
            object.__setattr__(self, "_position_of", positions)
        assert self._position_of is not None
        position = self._position_of.get(point_id)
        if position is None:
            raise KeyError(f"point {point_id} is not in the remaining set")
        return int(self.masks[position])


#: Pivot scoring strategies for the ablation study.  Every strategy must
#: guarantee that the argmin (with the coordinate-sum tiebreak) is a skyline
#: point of the remaining set; all three are strictly monotone under
#: dominance on min-corner-shifted data.
PIVOT_STRATEGIES = ("euclidean", "sum", "maxmin")


def merge(
    data: Dataset | np.ndarray,
    sigma: int,
    counter: DominanceCounter | None = None,
    pivot_strategy: str = "euclidean",
) -> MergeResult:
    """Run Algorithm 1 with stability threshold ``sigma`` (``1 < σ <= d``).

    ``pivot_strategy`` selects the scoring function for pivot extraction:
    the paper's Euclidean distance (default), the coordinate sum, or the
    maximum coordinate (``maxmin``) — compared by the pivot ablation bench.

    >>> from repro.data import generate
    >>> result = merge(generate("UI", n=500, d=6, seed=1), sigma=2)
    >>> len(result.pivot_ids) >= 1
    True
    """
    dataset = as_dataset(data)
    values = dataset.values
    n, d = values.shape
    validate_threshold(sigma, d)
    if pivot_strategy not in PIVOT_STRATEGIES:
        raise InvalidParameterError(
            f"unknown pivot strategy {pivot_strategy!r}; "
            f"expected one of {PIVOT_STRATEGIES}"
        )
    counter = counter if counter is not None else DominanceCounter()
    tracer = current_tracer()
    with tracer.span(
        "merge", counter=counter, sigma=sigma, n=n, d=d, strategy=pivot_strategy
    ) as span:
        result = _merge_body(
            values, n, d, sigma, pivot_strategy, counter, tracer
        )
        span.set(
            iterations=result.iterations,
            pivots=len(result.pivot_ids),
            remaining=int(result.remaining_ids.size),
            exhausted=result.exhausted,
        )
    return result


def _merge_body(
    values: np.ndarray,
    n: int,
    d: int,
    sigma: int,
    pivot_strategy: str,
    counter: DominanceCounter,
    tracer: TracerLike,
) -> MergeResult:
    # Distance to the minimum corner: the generalised "zero point" score.
    corner = values.min(axis=0)
    shifted = values - corner
    sums = shifted.sum(axis=1)
    if pivot_strategy == "euclidean":
        scores = np.sqrt(np.einsum("ij,ij->i", shifted, shifted))
    elif pivot_strategy == "sum":
        scores = sums
    else:  # maxmin: smallest worst coordinate; sum tiebreak keeps it skyline
        scores = shifted.max(axis=1)

    # The pruning loop operates on *compacted* parallel buffers: ids,
    # coordinates, scores, sums and masks of the alive points occupy the
    # prefix [:size] of preallocated arrays, in original id order.  Each
    # iteration runs the dominating-subspace kernel on the two contiguous
    # slices around the pivot row (no per-pivot fancy-index gather) and
    # then compacts pivot + pruned rows away in one boolean pass — the
    # batched replacement for the former ``np.delete`` + gather + filter
    # sequence, with identical pivot selection, masks and test accounting.
    size = n
    ids_buf = np.arange(n, dtype=np.intp)
    vals_buf = np.array(values, copy=True)
    score_buf = np.array(scores, copy=True)
    sums_buf = np.array(sums, copy=True)
    masks_buf = np.zeros(n, dtype=np.int64)
    tracker = StabilityTracker(d)
    pivots: list[int] = []
    duplicates: list[int] = []
    stability = 0
    iterations = 0
    exhausted = False
    # Per-round phase records are sampled only under an enabled tracer;
    # the disabled path pays one boolean check per pivot.
    rounds_watch = Stopwatch() if tracer.enabled else None

    while stability < sigma:
        if size == 0:
            exhausted = True
            break
        active_scores = score_buf[:size]
        minima = np.nonzero(active_scores == active_scores.min())[0]
        local = int(minima[np.argmin(sums_buf[:size][minima])])
        pivots.append(int(ids_buf[local]))
        pivot_row = vals_buf[local].copy()
        iterations += 1
        keep = np.ones(size, dtype=bool)
        keep[local] = False
        if size > 1:
            # One dominance test per surviving point, exactly as the
            # scalar loop would charge: the pivot row itself is excluded
            # by splitting the block around it.
            subs = np.empty(size, dtype=np.int64)
            subs[local] = 0
            if local:
                subs[:local] = dominating_subspaces(
                    vals_buf[:local], pivot_row, counter
                )
            if local + 1 < size:
                subs[local + 1 : size] = dominating_subspaces(
                    vals_buf[local + 1 : size], pivot_row, counter
                )
            masks_buf[:size] = bitset.union(masks_buf[:size], subs)
            pruned = (subs == 0) & keep
            if pruned.any():
                pruned_ids = ids_buf[:size][pruned]
                equal = np.all(vals_buf[:size][pruned] == pivot_row, axis=1)
                duplicates.extend(int(i) for i in pruned_ids[equal])
                keep[pruned] = False
        newsize = int(keep.sum())
        ids_buf[:newsize] = ids_buf[:size][keep]
        vals_buf[:newsize] = vals_buf[:size][keep]
        score_buf[:newsize] = score_buf[:size][keep]
        sums_buf[:newsize] = sums_buf[:size][keep]
        masks_buf[:newsize] = masks_buf[:size][keep]
        removed = size - newsize
        size = newsize
        stability = tracker.update(np.bitwise_count(masks_buf[:size]))
        if rounds_watch is not None and iterations <= _MAX_ROUND_RECORDS:
            tracer.record(
                "merge.round",
                rounds_watch.lap(),
                pivot=pivots[-1],
                removed=removed,
                remaining=size,
                stability=stability,
            )

    return MergeResult(
        pivot_ids=pivots,
        duplicate_skyline_ids=duplicates,
        remaining_ids=ids_buf[:size].copy(),
        masks=masks_buf[:size].copy(),
        iterations=iterations,
        final_stability=stability,
        exhausted=exhausted,
        metadata={
            "sigma": sigma,
            "cardinality": n,
            "dimensionality": d,
            "pivot_strategy": pivot_strategy,
        },
    )
