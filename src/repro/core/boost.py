"""``SubsetBoost`` — wiring Merge + the subset index into a host algorithm.

The application sketch from Section 1 of the paper:

1. run Merge (Algorithm 1) to find pivot points and assign every non-pruned
   point its maximum dominating subspace;
2. run the host sorting-based skyline algorithm over the non-pruned points,
   with two new actions: confirmed skyline points are ``put`` into the
   subset index under their subspace, and each testing point retrieves only
   the comparable skyline points via a subset ``query``;
3. the final skyline is the merge-phase skyline plus the scan-phase skyline.

Merge guarantees that no remaining point is dominated by (or equal to) a
pivot, so pivots never need to participate in scan-phase dominance tests —
the index starts empty.
"""

from __future__ import annotations

from collections.abc import MutableMapping
from typing import TYPE_CHECKING, Protocol, runtime_checkable

import numpy as np

from repro.core.container import ListContainer, SkylineContainer, SubsetContainer
from repro.core.merge import MergeResult, merge
from repro.core.stability import default_threshold, validate_threshold
from repro.dataset import Dataset
from repro.obs.trace import current_tracer
from repro.stats.counters import DominanceCounter

if TYPE_CHECKING:  # import cycle: algorithms.base imports core.container
    from repro.algorithms.base import SkylineResult


@runtime_checkable
class BoostableHost(Protocol):
    """What a host algorithm must provide to be subset-boosted.

    Sorting-based algorithms (SFS, LESS, SaLSa, SDI, Z-order scan) satisfy
    this protocol; partitioning-based ones deliberately do not — the paper
    notes they "cannot benefit much" because their data is already
    partitioned.
    """

    name: str

    def run_phase(
        self,
        dataset: Dataset,
        ids: np.ndarray,
        masks: np.ndarray,
        container: SkylineContainer,
        counter: DominanceCounter,
    ) -> list[int]:
        """Compute the skyline of ``dataset`` restricted to rows ``ids``.

        ``masks[i]`` is the maximum dominating subspace of point ``i`` (the
        full-length array is indexed by original point id).  Confirmed
        skyline points must be added to ``container`` with their mask, and
        candidate dominators must come from ``container.candidates``.
        """
        ...


def run_unboosted_scan(
    dataset: Dataset,
    host: BoostableHost,
    counter: DominanceCounter,
    sort_cache: MutableMapping[str, object] | None = None,
) -> list[int]:
    """Run ``host`` over all rows with a plain list container (no boost).

    The non-boosted reference wiring shared by ``SkylineAlgorithm._run``
    implementations and the engine's unboosted plans: all ids active, all
    masks zero, :class:`ListContainer` as the skyline store.
    """
    all_ids = np.arange(dataset.cardinality, dtype=np.intp)
    masks = np.zeros(dataset.cardinality, dtype=np.int64)
    container = ListContainer(dataset.values)
    with current_tracer().span(
        "scan",
        counter=counter,
        host=host.name,
        container="list",
        points=dataset.cardinality,
        boosted=False,
    ):
        if sort_cache is not None and getattr(host, "supports_sort_cache", False):
            return host.run_phase(
                dataset, all_ids, masks, container, counter, sort_cache=sort_cache
            )
        return host.run_phase(dataset, all_ids, masks, container, counter)


def run_boosted_scan(
    dataset: Dataset,
    host: BoostableHost,
    counter: DominanceCounter,
    *,
    sigma: int | None = None,
    container: str = "subset",
    pivot_strategy: str = "euclidean",
    memoize: bool = True,
    merged: MergeResult | None = None,
    sort_cache: MutableMapping[str, object] | None = None,
    index_backend: str = "map",
) -> list[int]:
    """The subset-boost wiring: Merge, mask scatter, container, host scan.

    This is the single implementation behind :meth:`SubsetBoost._run` and
    the engine's boosted plans.  ``merged`` lets a caller supply a
    precomputed Merge result (the warm path of
    :class:`~repro.engine.prepared.PreparedDataset`); it must have been
    produced by ``merge(dataset, sigma, ..., pivot_strategy=...)`` with the
    same arguments, and its dominance tests are *not* re-charged here.
    ``sort_cache`` is forwarded to hosts that opt in via
    ``supports_sort_cache`` and must be private to one
    ``(host-configuration, dataset, merged)`` triple.  ``index_backend``
    selects the subset-index implementation (``"map"``/``"flat"``, see
    :class:`~repro.core.container.SubsetContainer`); the skyline and the
    charged dominance tests are identical either way.
    """
    d = dataset.dimensionality
    if d < 2:
        # No non-trivial subspaces exist; the boost is undefined (the
        # paper starts at d = 2).  Fall back to the plain host.
        return run_unboosted_scan(dataset, host, counter, sort_cache)
    if sigma is None:
        sigma = default_threshold(d)
    validate_threshold(sigma, d)

    tracer = current_tracer()
    merge_cached = merged is not None
    if merged is None:
        merged = merge(dataset, sigma, counter, pivot_strategy=pivot_strategy)
    skyline = merged.initial_skyline_ids
    if merged.remaining_ids.size == 0:
        return skyline

    masks = np.zeros(dataset.cardinality, dtype=np.int64)
    masks[merged.remaining_ids] = merged.masks
    store: SkylineContainer
    if container == "subset":
        store = SubsetContainer(
            dataset.values, d, counter, memoize=memoize, backend=index_backend
        )
    else:
        # Ablation mode: identical merge phase, plain list store — this
        # isolates the contribution of the subset index (Algs. 2-4)
        # from that of the merge pruning (Alg. 1).
        store = ListContainer(dataset.values)
    with tracer.span(
        "scan",
        counter=counter,
        host=host.name,
        container=container,
        points=int(merged.remaining_ids.size),
        boosted=True,
        merge_cached=merge_cached,
        index_backend=index_backend if container == "subset" else None,
    ):
        if sort_cache is not None and getattr(host, "supports_sort_cache", False):
            scan_skyline = host.run_phase(
                dataset,
                merged.remaining_ids,
                masks,
                store,
                counter,
                sort_cache=sort_cache,
            )
        else:
            scan_skyline = host.run_phase(
                dataset, merged.remaining_ids, masks, store, counter
            )
    return [*skyline, *scan_skyline]


class SubsetBoost:
    """A host skyline algorithm boosted by the subset approach.

    Parameters
    ----------
    host:
        Any :class:`BoostableHost` (e.g. ``SFS()``, ``SaLSa()``, ``SDI()``).
    sigma:
        Stability threshold for Merge; defaults to the paper's rounded
        ``d/3`` heuristic at compute time.
    memoize:
        Enable the subset index's per-subspace result cache and the
        container's gathered-block cache (default).  ``False`` is the
        scalar reference path: identical skyline and dominance-test
        accounting, used by the differential tests and the throughput
        benchmark baseline.
    index_backend:
        ``"map"`` (default) or ``"flat"`` — which subset-index
        implementation backs the container; results and charged dominance
        tests are bit-identical (see
        :class:`~repro.core.flat_index.FlatSubsetIndex`).

    >>> from repro.algorithms.sfs import SFS
    >>> from repro.data import generate
    >>> boosted = SubsetBoost(SFS())
    >>> result = boosted.compute(generate("UI", n=300, d=6, seed=3))
    >>> boosted.name
    'sfs-subset'
    """

    def __init__(
        self,
        host: BoostableHost,
        sigma: int | None = None,
        container: str = "subset",
        pivot_strategy: str = "euclidean",
        memoize: bool = True,
        index_backend: str = "map",
    ) -> None:
        if not isinstance(host, BoostableHost):
            raise TypeError(
                f"{type(host).__name__} is not boostable: it lacks run_phase()"
            )
        if container not in ("subset", "list"):
            raise ValueError(f"container must be 'subset' or 'list', got {container!r}")
        if index_backend not in ("map", "flat"):
            raise ValueError(
                f"index_backend must be 'map' or 'flat', got {index_backend!r}"
            )
        self.host = host
        self.sigma = sigma
        self.container = container
        self.pivot_strategy = pivot_strategy
        self.memoize = memoize
        self.index_backend = index_backend
        self.name = f"{host.name}-subset"

    def compute(
        self,
        data: Dataset | np.ndarray,
        counter: DominanceCounter | None = None,
    ) -> "SkylineResult":
        """Compute the skyline; same contract as ``SkylineAlgorithm.compute``."""
        # Imported here to keep the core package import-light and acyclic.
        from repro.algorithms.base import run_timed

        return run_timed(self.name, data, counter, self._run)

    def _run(self, dataset: Dataset, counter: DominanceCounter) -> list[int]:
        return run_boosted_scan(
            dataset,
            self.host,
            counter,
            sigma=self.sigma,
            container=self.container,
            pivot_strategy=self.pivot_strategy,
            memoize=self.memoize,
            index_backend=self.index_backend,
        )
