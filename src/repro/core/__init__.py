"""The paper's primary contribution: subspace union + subset-query skyline index.

- :mod:`repro.core.subspace` — Definitions 3.3/3.4 and Lemmas 3.5/3.6/4.2/4.3
  as executable predicates.
- :mod:`repro.core.stability` — the subspace-size histogram and the σ′
  stability measure of Section 4.
- :mod:`repro.core.merge` — Algorithm 1 (subspace union over pivot points).
- :mod:`repro.core.subset_index` — Figure 3's map-based prefix tree with
  Algorithm 2 (``put``) and Algorithms 3/4 (``query``).
- :mod:`repro.core.flat_index` — the struct-of-arrays backend answering the
  same subset queries with one vectorised superset pass (Lemma 5.1).
- :mod:`repro.core.container` — the generic skyline-container abstraction the
  paper proposes, with list-backed and subset-index-backed implementations.
- :mod:`repro.core.boost` — ``SubsetBoost``: wires Merge + the subset index
  into any sorting-based host algorithm (SFS-Subset, SaLSa-Subset, ...).
- :mod:`repro.core.prefix` — shared-survivor prefix kernels for prune-aware
  block-parallel execution (monotone scan order, prefix selection and the
  vectorised early-exit block filter).
- :mod:`repro.core.autotune` — sample-based stability-threshold selection
  (the paper's future-work item (2)).
"""

from repro.core.boost import SubsetBoost
from repro.core.container import ListContainer, SkylineContainer, SubsetContainer
from repro.core.flat_index import FlatSubsetIndex
from repro.core.merge import MergeResult, merge
from repro.core.prefix import (
    block_bounds,
    monotone_order,
    prefix_filter,
    select_prefix,
)
from repro.core.stability import StabilityTracker, subspace_size_histogram
from repro.core.subset_index import SkylineIndex
from repro.core.subspace import (
    implies_incomparable,
    may_dominate,
    maximum_dominating_subspace,
)

__all__ = [
    "FlatSubsetIndex",
    "ListContainer",
    "MergeResult",
    "SkylineContainer",
    "SkylineIndex",
    "StabilityTracker",
    "SubsetBoost",
    "SubsetContainer",
    "block_bounds",
    "implies_incomparable",
    "maximum_dominating_subspace",
    "may_dominate",
    "merge",
    "monotone_order",
    "prefix_filter",
    "select_prefix",
    "subspace_size_histogram",
]
