"""The generic skyline *container* the paper proposes (Section 1 sketch).

The subset approach is deliberately algorithm-agnostic: it is "designed as a
component like a container that allows to store (as ``put`` function) the
skyline points and to retrieve (as a ``get`` function) a minimum number of
skyline points to compare with a testing point".  This module defines that
interface plus its two implementations:

- :class:`ListContainer` — the classic presorted-scan store: an
  insertion-ordered list; every stored point is a candidate.
- :class:`SubsetContainer` — the paper's contribution: candidates are
  retrieved from the :class:`~repro.core.subset_index.SkylineIndex` by
  subspace, so provably-incomparable skyline points are never tested.

Both return candidates as an ``(ids, values_block)`` pair so hosts can run
the vectorised exact-count dominance kernel on the block directly.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.core.subset_index import SkylineIndex
from repro.stats.counters import DominanceCounter


class _GrowingBlock:
    """An append-only ``(k, d)`` float buffer with amortised doubling."""

    def __init__(self, d: int, initial_capacity: int = 64) -> None:
        self._data = np.empty((initial_capacity, d), dtype=np.float64)
        self._len = 0

    def append(self, row: np.ndarray) -> None:
        if self._len == self._data.shape[0]:
            grown = np.empty((self._data.shape[0] * 2, self._data.shape[1]))
            grown[: self._len] = self._data[: self._len]
            self._data = grown
        self._data[self._len] = row
        self._len += 1

    def view(self) -> np.ndarray:
        return self._data[: self._len]

    def __len__(self) -> int:
        return self._len


class SkylineContainer(ABC):
    """Store for confirmed skyline points during a presorted scan."""

    @abstractmethod
    def add(self, point_id: int, mask: int) -> None:
        """Store a confirmed skyline point with its maximum dominating subspace."""

    @abstractmethod
    def candidates(self, mask: int) -> tuple[np.ndarray, np.ndarray]:
        """Candidate dominators for a testing point with subspace ``mask``.

        Returns ``(ids, block)`` where ``block[k]`` holds the coordinates of
        skyline point ``ids[k]``.  Every stored point that could possibly
        dominate the testing point is guaranteed to be in the result.
        """

    @abstractmethod
    def ids(self) -> list[int]:
        """All stored skyline point ids."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of stored points."""


class ListContainer(SkylineContainer):
    """Insertion-ordered list store; every stored point is always a candidate.

    This is what plain SFS/SaLSa/LESS use: testing in insertion order means
    low-score (highly dominating) points are compared first.
    """

    def __init__(self, values: np.ndarray) -> None:
        self._values = values
        self._ids: list[int] = []
        self._id_array = np.empty(0, dtype=np.intp)
        self._block = _GrowingBlock(values.shape[1])
        self._dirty = False

    def add(self, point_id: int, mask: int) -> None:
        self._ids.append(point_id)
        self._block.append(self._values[point_id])
        self._dirty = True

    def candidates(self, mask: int) -> tuple[np.ndarray, np.ndarray]:
        if self._dirty:
            self._id_array = np.asarray(self._ids, dtype=np.intp)
            self._dirty = False
        return self._id_array, self._block.view()

    def ids(self) -> list[int]:
        return list(self._ids)

    def __len__(self) -> int:
        return len(self._ids)


class SubsetContainer(SkylineContainer):
    """Subset-index-backed store: candidates filtered by Lemma 5.1.

    ``candidates(mask)`` returns only the stored points whose maximum
    dominating subspace is a superset of ``mask`` — the minimal correct
    candidate set.  Index accesses are recorded on the counter separately
    from dominance tests.
    """

    def __init__(
        self,
        values: np.ndarray,
        d: int,
        counter: DominanceCounter | None = None,
    ) -> None:
        self._values = values
        self._index = SkylineIndex(d)
        self._counter = counter
        self._all_ids: list[int] = []

    @property
    def index(self) -> SkylineIndex:
        """The underlying prefix-tree index (exposed for diagnostics)."""
        return self._index

    def add(self, point_id: int, mask: int) -> None:
        self._index.put(point_id, mask)
        self._all_ids.append(point_id)

    def candidates(self, mask: int) -> tuple[np.ndarray, np.ndarray]:
        ids = self._index.query(mask, self._counter)
        id_array = np.asarray(ids, dtype=np.intp)
        return id_array, self._values[id_array]

    def ids(self) -> list[int]:
        return list(self._all_ids)

    def __len__(self) -> int:
        return len(self._all_ids)
