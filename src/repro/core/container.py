"""The generic skyline *container* the paper proposes (Section 1 sketch).

The subset approach is deliberately algorithm-agnostic: it is "designed as a
component like a container that allows to store (as ``put`` function) the
skyline points and to retrieve (as a ``get`` function) a minimum number of
skyline points to compare with a testing point".  This module defines that
interface plus its two implementations:

- :class:`ListContainer` — the classic presorted-scan store: an
  insertion-ordered list; every stored point is a candidate.
- :class:`SubsetContainer` — the paper's contribution: candidates are
  retrieved from the :class:`~repro.core.subset_index.SkylineIndex` by
  subspace, so provably-incomparable skyline points are never tested.

Both return candidates as an ``(ids, values_block)`` pair so hosts can run
the vectorised exact-count dominance kernel on the block directly.  The
blocks are *stable-prefix*: between two ``add`` calls the returned block is
identical, and an ``add`` only ever appends rows — hosts exploit this (via
:attr:`SkylineContainer.generation`) to maintain incremental per-subspace
views (e.g. SDI's per-dimension sorted prefixes) without re-deriving them
from scratch on every testing point.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.core.flat_index import FlatSubsetIndex
from repro.core.subset_index import SkylineIndex
from repro.errors import InvalidParameterError
from repro.stats.counters import DominanceCounter


class _GrowingBlock:
    """An append-only ``(k, d)`` float buffer with amortised doubling."""

    def __init__(self, d: int, initial_capacity: int = 64) -> None:
        self._data = np.empty((initial_capacity, d), dtype=np.float64)
        self._len = 0

    def append(self, row: np.ndarray) -> None:
        if self._len == self._data.shape[0]:
            grown = np.empty((self._data.shape[0] * 2, self._data.shape[1]))
            grown[: self._len] = self._data[: self._len]
            self._data = grown
        self._data[self._len] = row
        self._len += 1

    def extend(self, rows: np.ndarray) -> None:
        needed = self._len + rows.shape[0]
        if needed > self._data.shape[0]:
            capacity = self._data.shape[0]
            while capacity < needed:
                capacity *= 2
            grown = np.empty((capacity, self._data.shape[1]))
            grown[: self._len] = self._data[: self._len]
            self._data = grown
        self._data[self._len : needed] = rows
        self._len = needed

    def view(self) -> np.ndarray:
        return self._data[: self._len]

    def __len__(self) -> int:
        return self._len


class SkylineContainer(ABC):
    """Store for confirmed skyline points during a presorted scan."""

    @abstractmethod
    def add(self, point_id: int, mask: int) -> None:
        """Store a confirmed skyline point with its maximum dominating subspace."""

    @abstractmethod
    def candidates(self, mask: int) -> tuple[np.ndarray, np.ndarray]:
        """Candidate dominators for a testing point with subspace ``mask``.

        Returns ``(ids, block)`` where ``block[k]`` holds the coordinates of
        skyline point ``ids[k]``.  Every stored point that could possibly
        dominate the testing point is guaranteed to be in the result, and
        consecutive calls with the same ``mask`` and no intervening ``add``
        return identical arrays (stable-prefix contract).
        """

    @abstractmethod
    def ids(self) -> list[int]:
        """All stored skyline point ids."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of stored points."""

    #: Whether :meth:`candidates` actually varies with ``mask``.  Hosts use
    #: this to key derived per-mask views: a mask-insensitive store (the
    #: plain list) needs only one view per dimension, not one per subspace.
    uses_masks: bool = True

    @property
    def generation(self) -> int:
        """Monotone change counter; advances at least once per ``add``.

        Hosts key incremental candidate views on this: a block returned by
        :meth:`candidates` stays a prefix of any later block for the same
        mask while the container only grows (no removals).
        """
        return len(self)


class ListContainer(SkylineContainer):
    """Insertion-ordered list store; every stored point is always a candidate.

    This is what plain SFS/SaLSa/LESS use: testing in insertion order means
    low-score (highly dominating) points are compared first.
    """

    uses_masks = False

    def __init__(self, values: np.ndarray) -> None:
        self._values = values
        self._ids: list[int] = []
        self._id_array = np.empty(0, dtype=np.intp)
        self._block = _GrowingBlock(values.shape[1])
        self._dirty = False

    def add(self, point_id: int, mask: int) -> None:
        self._ids.append(point_id)
        self._block.append(self._values[point_id])
        self._dirty = True

    def candidates(self, mask: int) -> tuple[np.ndarray, np.ndarray]:
        if self._dirty:
            self._id_array = np.asarray(self._ids, dtype=np.intp)
            self._dirty = False
        return self._id_array, self._block.view()

    def ids(self) -> list[int]:
        return list(self._ids)

    def __len__(self) -> int:
        return len(self._ids)


class _MaskBlock:
    """Gathered candidate rows of one query subspace (stable prefix).

    Mirrors the index's memoized id list: when the list grows by ``r`` ids,
    only the ``r`` new rows are gathered from the dataset — every testing
    point after that reuses the same contiguous block.
    """

    __slots__ = ("generation", "epoch", "n", "ids", "block")

    def __init__(self, d: int) -> None:
        self.generation = -1
        self.epoch = -1
        self.n = 0
        self.ids = np.empty(0, dtype=np.intp)
        self.block = _GrowingBlock(d, initial_capacity=8)


class SubsetContainer(SkylineContainer):
    """Subset-index-backed store: candidates filtered by Lemma 5.1.

    ``candidates(mask)`` returns only the stored points whose maximum
    dominating subspace is a superset of ``mask`` — the minimal correct
    candidate set.  Index accesses are recorded on the counter separately
    from dominance tests.

    Parameters
    ----------
    values:
        The dataset's value matrix, or ``None`` for an *id-only*
        container: subset-index maintenance (:meth:`add`, :meth:`remove`,
        :meth:`clear`, :meth:`query_ids`) works normally, but
        :meth:`candidates` — which gathers coordinate blocks — raises.
        The streaming extension uses this mode: it owns its own row
        storage (points arrive one at a time), yet still routes index
        construction through the sanctioned backend switch.
    memoize:
        Forwarded to the index; additionally enables the per-subspace
        gathered-block cache.  ``False`` reproduces the scalar reference
        path (fresh traversal + fresh gather per query) with bit-identical
        results and dominance-test accounting.
    backend:
        ``"map"`` (default) uses the paper's hash-map prefix tree
        (:class:`SkylineIndex`); ``"flat"`` uses the struct-of-arrays
        :class:`FlatSubsetIndex`, whose fused ``candidates`` path serves
        ids and gathered rows from a single cache probe.  Both return
        bit-identical candidate sets in the same order, so the skyline
        and every charged dominance test are unchanged; only the
        index-access statistics (nodes visited) differ.
    """

    def __init__(
        self,
        values: np.ndarray | None,
        d: int,
        counter: DominanceCounter | None = None,
        memoize: bool = True,
        backend: str = "map",
    ) -> None:
        if backend not in ("map", "flat"):
            raise InvalidParameterError(
                f"backend must be 'map' or 'flat', got {backend!r}"
            )
        self._values = values
        self._backend = backend
        self._index: SkylineIndex | FlatSubsetIndex
        if backend == "flat":
            self._index = FlatSubsetIndex(d, memoize=memoize, values=values)
        else:
            self._index = SkylineIndex(d, memoize=memoize)
        self._counter = counter
        self._all_ids: list[int] = []
        self._blocks: dict[int, _MaskBlock] = {}

    @property
    def index(self) -> SkylineIndex | FlatSubsetIndex:
        """The underlying subset index (exposed for diagnostics)."""
        return self._index

    @property
    def backend(self) -> str:
        """Which index backend serves the candidates (``map``/``flat``)."""
        return self._backend

    @property
    def generation(self) -> int:
        return self._index.generation

    def add(self, point_id: int, mask: int) -> None:
        self._index.put(point_id, mask)
        self._all_ids.append(point_id)

    def remove(self, point_id: int, mask: int) -> None:
        """Remove a point previously :meth:`add`-ed under ``mask``.

        Needed by incremental maintenance (streaming deletes); the index
        bumps its epoch so memoized views rebuild instead of trusting the
        stable-prefix contract.
        """
        self._index.remove(point_id, mask)
        self._all_ids.remove(point_id)

    def clear(self) -> None:
        """Drop every stored point and all cached per-mask views."""
        self._index.clear()
        self._all_ids.clear()
        self._blocks.clear()

    def query_ids(self, mask: int) -> list[int]:
        """Candidate ids for ``mask``, without gathering coordinate rows.

        The id-level complement of :meth:`candidates` for hosts that keep
        their own row storage (works on value-less containers too).
        """
        return self._index.query(mask, self._counter)

    def candidates(self, mask: int) -> tuple[np.ndarray, np.ndarray]:
        if self._values is None:
            raise InvalidParameterError(
                "candidates() needs the value matrix; this container was "
                "built id-only (values=None) — use query_ids() instead"
            )
        if self._backend == "flat":
            # Fused path: the flat index serves ids and gathered rows from
            # one cache probe — no separate _MaskBlock bookkeeping.
            return self._index.candidates(mask, self._counter)  # type: ignore[union-attr]
        ids = self._index.query_array(mask, self._counter)
        if not self._index.memoized:
            return ids, self._values[ids]
        cached = self._blocks.get(mask)
        if cached is None:
            cached = _MaskBlock(self._values.shape[1])
            self._blocks[mask] = cached
        generation = self._index.generation
        if cached.generation != generation:
            epoch = self._index.epoch
            if cached.epoch != epoch:
                # A removal may have shrunk or reordered the result set:
                # the append-only block is no longer a valid prefix.
                cached.n = 0
                cached.block = _GrowingBlock(self._values.shape[1], 8)
                cached.epoch = epoch
            if ids.shape[0] > cached.n:
                cached.block.extend(self._values[ids[cached.n :]])
                cached.n = ids.shape[0]
            cached.ids = ids
            cached.generation = generation
        return cached.ids, cached.block.view()

    def ids(self) -> list[int]:
        return list(self._all_ids)

    def __len__(self) -> int:
        return len(self._all_ids)
