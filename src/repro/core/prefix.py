"""Shared-survivor prefix kernels for prune-aware block-parallel execution.

The PR 5 block-parallel scheme computed every block's local skyline blind
to every other block, so each worker re-discovered (and re-tested against)
the same globally strong points — the recorded redundancy was ~1.6x the
serial dominance-test count.  Partition-based parallel skylines live or
die by cross-partition pruning (Kalyvas & Tzouramanis, arXiv:1704.01788);
the SDI framework paper (Liu, arXiv:1908.04083) shows that a *small* set
of strong pruning points shared up front eliminates most non-skyline
tuples before any expensive scan.

This module provides the three pure kernels the parallel path composes:

- :func:`monotone_order` — one global scan order under a monotone sorting
  function (SFS's entropy key with the shared sum tiebreak), so blocks can
  be cut along it: every dominator of a point sorts *before* it, hence the
  head of the order concentrates the strongest pruners;
- :func:`select_prefix` — the first ``size`` mutually non-dominated points
  of that order: the *shared-survivor prefix* broadcast to all workers.
  Because the order is monotone, these are guaranteed global skyline
  points, so filtering against them never removes a skyline member;
- :func:`prefix_filter` — the vectorised block filter, charging exactly
  the dominance tests a sequential early-exit loop over the prefix would
  pay per point (first dominating prefix position + 1, or the full prefix
  length for survivors);
- :func:`block_bounds` — planner-driven block sizing: geometric growth
  along the sort order, because survivor density (and therefore local scan
  cost) falls off monotonically once the prefix has filtered a block.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.sortkeys import sort_keys, sum_tiebreak
from repro.dominance import first_dominator
from repro.errors import InvalidParameterError
from repro.stats.counters import DominanceCounter

__all__ = [
    "block_bounds",
    "monotone_order",
    "prefix_filter",
    "select_prefix",
]

#: Rows of the sort-order head inspected per requested prefix point.  The
#: head is scanned with early-exit dominance tests until ``size`` mutually
#: non-dominated points are found, so the factor bounds the selection cost
#: at a few hundred cheap tests regardless of ``n``.
_HEAD_FACTOR = 8

#: Row-chunk size of the broadcast dominance pass in :func:`prefix_filter`.
#: Bounds the ``chunk × prefix × d`` comparison temporaries at a few MB.
_FILTER_CHUNK = 65_536


def monotone_order(values: np.ndarray) -> np.ndarray:
    """The global entropy-sorted scan order of ``values`` (row ids).

    Entropy is strictly monotone under dominance (Section 2: ``f(p) < f(q)
    ⇒ q ⊀ p``), so a prefix of this order can only be dominated from
    within itself — the property both :func:`select_prefix` and
    sort-order partitioning rely on.  The sum tiebreak keeps the order
    aligned with the SFS scan convention on equal keys.
    """
    keys = sort_keys(values, "entropy")
    return np.lexsort((sum_tiebreak(values), keys)).astype(np.intp)


def select_prefix(
    values: np.ndarray,
    order: np.ndarray,
    size: int,
    counter: DominanceCounter | None = None,
) -> np.ndarray:
    """The first ``size`` mutually non-dominated row ids along ``order``.

    Scans the head of the monotone order (at most ``8 × size`` rows, min
    64) with early-exit dominance tests against the points kept so far.
    Monotonicity guarantees a later point never dominates an earlier kept
    one, so the kept set is exactly the skyline of the inspected head —
    every returned id is a *global* skyline point, which makes filtering
    any block against them sound: only non-skyline points are removed.

    Dominance tests are charged on ``counter`` exactly as the sequential
    scan performs them.
    """
    if size <= 0:
        return np.empty(0, dtype=np.intp)
    head = order[: min(order.size, max(64, _HEAD_FACTOR * size))]
    kept_ids: list[int] = []
    kept_rows = np.empty((0, values.shape[1]), dtype=values.dtype)
    for point_id in head.tolist():
        row = values[point_id]
        if first_dominator(kept_rows, row, counter) == -1:
            kept_ids.append(point_id)
            kept_rows = np.vstack((kept_rows, row[np.newaxis, :]))
            if len(kept_ids) >= size:
                break
    return np.asarray(kept_ids, dtype=np.intp)


def prefix_filter(
    block: np.ndarray,
    prefix: np.ndarray,
    counter: DominanceCounter | None = None,
) -> np.ndarray:
    """Boolean survivor mask: which rows of ``block`` no prefix row dominates.

    A row is pruned when some prefix row strictly dominates it (Definition
    3.1); rows *equal* to a prefix row survive — duplicates of a skyline
    point are skyline points and must reach the merge phase.

    Accounting matches the sequential early-exit loop bit for bit: each
    block row is charged ``first dominating prefix position + 1`` tests,
    or ``len(prefix)`` when no prefix row dominates it.
    """
    n = block.shape[0]
    if n == 0 or prefix.shape[0] == 0:
        return np.ones(n, dtype=bool)
    k = prefix.shape[0]
    keep = np.empty(n, dtype=bool)
    charged = 0
    for start in range(0, n, _FILTER_CHUNK):
        chunk = block[start : start + _FILTER_CHUNK]
        le = (chunk[:, np.newaxis, :] >= prefix[np.newaxis, :, :]).all(axis=2)
        strict = (chunk[:, np.newaxis, :] > prefix[np.newaxis, :, :]).any(axis=2)
        dominated = le & strict
        any_dominated = dominated.any(axis=1)
        first = dominated.argmax(axis=1)
        charged += int(np.where(any_dominated, first + 1, k).sum())
        keep[start : start + chunk.shape[0]] = ~any_dominated
    if counter is not None:
        counter.add(charged)
    return keep


def block_bounds(n: int, workers: int, growth: float = 1.0) -> list[tuple[int, int]]:
    """``(lo, hi)`` block bounds covering ``[0, n)`` with geometric sizing.

    ``growth=1.0`` reproduces the even ``np.linspace`` split; ``growth >
    1`` makes each successive block ``growth`` times larger than the
    previous one.  Under sort-order partitioning the early blocks hold the
    dense head of the skyline (expensive local scans) while late blocks
    are mostly cleared by the prefix filter, so growing sizes balance the
    per-block work.  Empty blocks are dropped, so fewer than ``workers``
    pairs may be returned for tiny ``n``.
    """
    if workers < 1:
        raise InvalidParameterError(f"workers must be >= 1, got {workers}")
    if growth <= 0:
        raise InvalidParameterError(f"growth must be > 0, got {growth}")
    if n <= 0:
        return []
    if workers == 1:
        return [(0, n)]
    weights = np.power(float(growth), np.arange(workers, dtype=np.float64))
    edges = np.rint(n * np.cumsum(weights) / weights.sum()).astype(int)
    edges[-1] = n
    bounds = np.concatenate(([0], edges))
    return [
        (int(lo), int(hi))
        for lo, hi in zip(bounds[:-1], bounds[1:])
        if hi > lo
    ]
