"""The stability measure σ′ that stops the subspace-union iteration.

Section 4: after each pivot point is merged, the Merge algorithm measures
"the change of point number of each subspace size" — a histogram with one
bucket per subspace size ``1..d`` rather than one per each of the ``2^d - 2``
subspaces.  The *stability* σ′ is the number of size buckets whose count did
not change between consecutive iterations; Merge stops once σ′ reaches the
user-supplied *stability threshold* σ, with meaningful values ``1 < σ <= d``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError


def subspace_size_histogram(sizes: np.ndarray, d: int) -> np.ndarray:
    """Histogram of subspace sizes over buckets ``0..d`` (bucket 0 = unset).

    ``sizes`` holds ``|D_q|`` for every non-pruned point; the returned array
    has length ``d + 1`` and ``hist[s]`` counts points whose maximum
    dominating subspace currently has ``s`` dimensions.
    """
    if d < 1:
        raise InvalidParameterError(f"dimensionality must be >= 1, got {d}")
    return np.bincount(np.asarray(sizes, dtype=np.intp), minlength=d + 1)[: d + 1]


class StabilityTracker:
    """Tracks σ′ across Merge iterations.

    σ′ is the number of size buckets in ``1..d`` whose count is identical to
    the previous iteration's count.  Bucket 0 (points not yet assigned any
    subspace) is excluded: the paper's histogram is over subspaces, which by
    construction are non-empty for every non-pruned point after the first
    pivot.
    """

    def __init__(self, d: int) -> None:
        if d < 1:
            raise InvalidParameterError(f"dimensionality must be >= 1, got {d}")
        self._d = d
        self._previous: np.ndarray | None = None

    @property
    def dimensionality(self) -> int:
        return self._d

    def update(self, sizes: np.ndarray) -> int:
        """Record the current subspace sizes and return the new σ′."""
        histogram = subspace_size_histogram(sizes, self._d)
        if self._previous is None:
            stability = 0
        else:
            stability = int(np.sum(histogram[1:] == self._previous[1:]))
        self._previous = histogram
        return stability

    @property
    def histogram(self) -> np.ndarray | None:
        """The most recent histogram (length ``d + 1``), or ``None``."""
        return None if self._previous is None else self._previous.copy()


def validate_threshold(sigma: int, d: int) -> int:
    """Check ``1 < σ <= d`` (Section 6.1) and return σ.

    σ = 1 is rejected as "meaningless" per the paper; for ``d == 1`` the
    subset approach is undefined and σ is clamped to 1 by callers that have
    already rejected such data.
    """
    if not isinstance(sigma, int):
        raise InvalidParameterError(f"sigma must be an int, got {type(sigma).__name__}")
    if sigma <= 1 or sigma > d:
        raise InvalidParameterError(
            f"stability threshold must satisfy 1 < sigma <= d={d}, got {sigma}"
        )
    return sigma


def default_threshold(d: int) -> int:
    """The paper's recommended default: σ = round(d / 3), clamped to (1, d].

    Section 6.1: "the fastest σ for SDI-Subset is around d/3.  Therefore, in
    the reported performance evaluations, the stability threshold σ is set
    to rounded d/3."
    """
    if d < 2:
        raise InvalidParameterError(f"subset approach requires d >= 2, got d={d}")
    return max(2, min(d, round(d / 3)))
