"""Sample-based stability-threshold selection (future-work item 2 of §7).

The paper fixes σ = round(d/3) after a manual sweep and notes that "for
large datasets, the stability threshold can be tested from a random sample
of the dataset" and that a proper *cost model* is future work.  This module
implements that idea: draw a random sample, run the boosted pipeline on it
for every candidate σ, and score each run with a simple linear cost model
combining dominance tests (the dominant cost) and subset-index node visits
(the I/O overhead the paper blames for the NBA dataset's flat results).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.boost import BoostableHost, SubsetBoost
from repro.dataset import Dataset, as_dataset
from repro.errors import InvalidParameterError
from repro.stats.counters import DominanceCounter

#: Relative cost of one index node visit versus one dominance test.  A node
#: visit is a single hash-map probe; a dominance test inspects d values.
INDEX_ACCESS_WEIGHT = 0.25


@dataclass(frozen=True)
class SigmaChoice:
    """Outcome of :func:`tune_sigma`."""

    sigma: int
    costs: dict[int, float]
    sample_size: int

    def ranked(self) -> list[tuple[int, float]]:
        """Candidate thresholds from cheapest to most expensive."""
        return sorted(self.costs.items(), key=lambda item: item[1])


def tune_sigma(
    data: Dataset | np.ndarray,
    host: BoostableHost,
    sample_size: int = 2000,
    candidates: list[int] | None = None,
    seed: int | None = 0,
) -> SigmaChoice:
    """Pick the stability threshold that minimises modelled cost on a sample.

    Parameters
    ----------
    data:
        The full dataset; a uniform sample of ``sample_size`` rows is used.
    host:
        The boostable host algorithm the threshold is being tuned for.
    candidates:
        Thresholds to try; defaults to every valid value ``2..d``.
    """
    dataset = as_dataset(data)
    d = dataset.dimensionality
    if d < 2:
        raise InvalidParameterError(f"subset approach requires d >= 2, got d={d}")
    if sample_size < 2:
        raise InvalidParameterError(f"sample_size must be >= 2, got {sample_size}")
    if candidates is None:
        candidates = list(range(2, d + 1))
    for sigma in candidates:
        if sigma <= 1 or sigma > d:
            raise InvalidParameterError(f"candidate sigma {sigma} outside (1, {d}]")

    if dataset.cardinality > sample_size:
        rng = np.random.default_rng(seed)
        rows = rng.choice(dataset.cardinality, size=sample_size, replace=False)
        sample = dataset.subset(rows, name=f"{dataset.name}[sample]")
    else:
        sample = dataset

    costs: dict[int, float] = {}
    for sigma in candidates:
        counter = DominanceCounter()
        SubsetBoost(host, sigma=sigma).compute(sample, counter=counter)
        costs[sigma] = counter.tests + INDEX_ACCESS_WEIGHT * counter.index_nodes_visited

    best = min(costs, key=lambda s: (costs[s], s))
    return SigmaChoice(sigma=best, costs=costs, sample_size=sample.cardinality)
