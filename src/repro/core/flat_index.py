"""A flat, vectorised backend for the subset-query skyline index.

:mod:`repro.core.subset_index` answers Problem 2 with the paper's hash-map
prefix tree: a ``put`` walks ``O(d/2)`` nodes and a cold ``query`` visits
``O((d/2)^2)`` — but every node hop is a Python-level dict probe.  This
module trades the tree for a struct-of-arrays layout where Lemma 5.1's
superset filter is a single numpy expression over *all* stored subspaces:

``(q & ~masks) == 0``   —   equivalently ``masks & q == q``

- **CSR region** — compacted storage.  ``_csr_masks`` holds the distinct
  subspace masks sorted ascending; ``_csr_starts`` delimits, per mask, the
  slice of ``_csr_ids``/``_csr_seqs`` holding that group's point ids and
  insertion sequence numbers.  One vectorised superset pass over the
  distinct masks selects whole groups at once.
- **Tail region** — append-friendly parallel arrays (amortised doubling)
  that absorb ``put`` calls in O(1).  When the tail outgrows a quarter of
  the CSR region it is folded in by one vectorised rebuild (lexsort by
  ``(mask, seq)`` + ``np.unique``), keeping amortised maintenance linear.

Query results are ordered by insertion sequence — bit-identical to the map
index, so every dominance test charged downstream is identical.  The same
per-subspace memoization (put-log suffix repair, generation/epoch
invalidation) is reused from the map index; only ``index_nodes_visited``
differs, because "visited" here counts distinct mask groups plus tail
entries examined by the flat filter rather than tree nodes walked.

The flat index can additionally *fuse* the candidate-row gather into the
cache entry (:meth:`FlatSubsetIndex.candidates`): when constructed with the
dataset's value matrix, each memoized entry carries the gathered candidate
rows alongside the ids, repaired together from the put-log suffix.  This
collapses the container's separate id-cache + row-block bookkeeping into
one dict probe per testing point — the hot path of every batched scan.
"""

from __future__ import annotations

import numpy as np

from repro.core.subset_index import _TRACE_SAMPLE, _CacheEntry
from repro.errors import DimensionMismatchError, InvalidParameterError
from repro.obs.clock import timed
from repro.obs.trace import current_tracer
from repro.stats.counters import DominanceCounter
from repro.structures import bitset

__all__ = ["FlatSubsetIndex"]

#: The tail is folded into the CSR region when it exceeds
#: ``max(_COMPACT_MIN, csr_entries // 4)``.  The floor keeps tiny indexes
#: from compacting on every put; the ratio keeps the number of rebuilds
#: logarithmic in the final size, so total maintenance stays linearithmic.
_COMPACT_MIN = 64


class _FusedEntry(_CacheEntry):
    """A cache entry that carries the gathered candidate rows as well.

    The row block grows in lockstep with the id buffer, so a single
    put-log repair updates both and :meth:`FlatSubsetIndex.candidates`
    serves ``(ids, rows)`` from one dict probe.  Rows handed out are
    views of a stable prefix — appends never touch published positions.
    """

    __slots__ = ("rows",)

    def __init__(
        self, epoch: int, log_pos: int, ids: list[int], values: np.ndarray
    ) -> None:
        super().__init__(epoch, log_pos, ids)
        self.rows = np.empty((max(4, self.size), values.shape[1]))
        self.rows[: self.size] = values[self.buf[: self.size]]

    def extend_fused(self, new_ids: np.ndarray, values: np.ndarray) -> None:
        grown = self.size + new_ids.shape[0]
        if grown > self.rows.shape[0]:
            rows = np.empty((max(grown, 2 * self.rows.shape[0]), self.rows.shape[1]))
            rows[: self.size] = self.rows[: self.size]
            self.rows = rows
        self.rows[self.size : grown] = values[new_ids]
        self.extend(new_ids)

    def rows_view(self) -> np.ndarray:
        return self.rows[: self.size]


class FlatSubsetIndex:
    """Struct-of-arrays subset index; drop-in for :class:`SkylineIndex`.

    Parameters
    ----------
    d:
        Dimensionality of the space; subspace masks must fit in ``d`` bits.
    memoize:
        Keep the per-subspace result cache (default), exactly as the map
        index does.  ``False`` re-runs the flat filter on every query.
    values:
        Optional ``(n, d)`` value matrix.  When given, the index offers
        the fused :meth:`candidates` path returning gathered rows.

    >>> idx = FlatSubsetIndex(d=4)
    >>> idx.put(7, subspace=0b0011)
    >>> idx.put(9, subspace=0b0111)
    >>> sorted(idx.query(0b0011))
    [7, 9]
    >>> idx.query(0b0111)
    [9]
    """

    def __init__(
        self, d: int, memoize: bool = True, values: np.ndarray | None = None
    ) -> None:
        if d < 1:
            raise InvalidParameterError(f"dimensionality must be >= 1, got {d}")
        self._d = d
        self._full = bitset.universe(d)
        self._memoize = memoize
        self._values = values
        # CSR region: distinct masks ascending; starts delimit each group's
        # (id, seq) slice.  Entries within a group ascend by seq because
        # every rebuild lexsorts by (mask, seq).
        self._csr_masks = np.empty(0, dtype=np.int64)
        self._csr_starts = np.zeros(1, dtype=np.intp)
        self._csr_ids = np.empty(0, dtype=np.intp)
        self._csr_seqs = np.empty(0, dtype=np.intp)
        # Tail region: append-only parallel arrays.
        self._tail_subs = np.empty(16, dtype=np.int64)
        self._tail_ids = np.empty(16, dtype=np.intp)
        self._tail_seqs = np.empty(16, dtype=np.intp)
        self._tail_n = 0
        self._size = 0
        self._seq = 0
        self._generation = 0
        self._epoch = 0
        # Same put-log + per-subspace cache machinery as the map index.
        self._log_pids = np.empty(16, dtype=np.intp)
        self._log_subs = np.empty(16, dtype=np.int64)
        self._log_size = 0
        self._cache: dict[int, _CacheEntry] = {}
        self._hits = 0
        self._misses = 0
        self._invalidations = 0
        self._tracer = current_tracer()
        self._trace_every = _TRACE_SAMPLE if self._tracer.enabled else 0
        self._trace_seen = 0

    @property
    def dimensionality(self) -> int:
        return self._d

    @property
    def memoized(self) -> bool:
        """Whether the per-subspace result cache is active."""
        return self._memoize

    @property
    def generation(self) -> int:
        """Monotone change counter: advances on every ``put``/``remove``."""
        return self._generation

    @property
    def epoch(self) -> int:
        """Advances on ``remove``/``clear`` — changes that can shrink or
        reorder query results, invalidating append-only derived views."""
        return self._epoch

    def __len__(self) -> int:
        """Number of stored points."""
        return self._size

    def _validate(self, subspace: int) -> None:
        try:
            bitset.complement(subspace, self._d)
        except ValueError as exc:
            raise DimensionMismatchError(str(exc)) from None

    def put(self, point_id: int, subspace: int) -> None:
        """Store ``point_id`` under its maximum dominating subspace.

        O(1) append to the tail region; periodically folds the tail into
        the CSR region (see ``_COMPACT_MIN``).
        """
        self._validate(subspace)
        n = self._tail_n
        if n == self._tail_ids.shape[0]:
            self._tail_subs = np.concatenate(
                [self._tail_subs, np.empty_like(self._tail_subs)]
            )
            self._tail_ids = np.concatenate(
                [self._tail_ids, np.empty_like(self._tail_ids)]
            )
            self._tail_seqs = np.concatenate(
                [self._tail_seqs, np.empty_like(self._tail_seqs)]
            )
        self._tail_subs[n] = subspace
        self._tail_ids[n] = point_id
        self._tail_seqs[n] = self._seq
        self._tail_n = n + 1
        self._seq += 1
        self._size += 1
        self._generation += 1
        if self._memoize:
            m = self._log_size
            if m == self._log_pids.shape[0]:
                self._log_pids = np.concatenate(
                    [self._log_pids, np.empty_like(self._log_pids)]
                )
                self._log_subs = np.concatenate(
                    [self._log_subs, np.empty_like(self._log_subs)]
                )
            self._log_pids[m] = point_id
            self._log_subs[m] = subspace
            self._log_size = m + 1
        if self._tail_n > max(_COMPACT_MIN, self._csr_ids.shape[0] // 4):
            self._compact()

    def _compact(self) -> None:
        """Fold the tail into the CSR region with one vectorised rebuild."""
        n = self._tail_n
        if n == 0:
            return
        entry_masks = np.concatenate(
            [
                np.repeat(self._csr_masks, np.diff(self._csr_starts)),
                self._tail_subs[:n],
            ]
        )
        entry_ids = np.concatenate([self._csr_ids, self._tail_ids[:n]])
        entry_seqs = np.concatenate([self._csr_seqs, self._tail_seqs[:n]])
        order = np.lexsort((entry_seqs, entry_masks))
        masks_sorted = entry_masks[order]
        self._csr_ids = entry_ids[order]
        self._csr_seqs = entry_seqs[order]
        distinct, starts = np.unique(masks_sorted, return_index=True)
        self._csr_masks = distinct
        self._csr_starts = np.append(starts, masks_sorted.size).astype(np.intp)
        self._tail_n = 0

    def query(self, subspace: int, counter: DominanceCounter | None = None) -> list[int]:
        """All points whose subspace ⊇ ``subspace``, by insertion sequence.

        Bit-identical to :meth:`SkylineIndex.query`.  On a cache miss the
        flat superset filter runs and ``counter`` records the groups plus
        tail entries it examined as index accesses; a cache hit records
        zero, exactly like the map index.
        """
        if self._trace_every and self._sample():
            ids, elapsed = timed(lambda: self._query(subspace, counter))
            self._tracer.record(
                "index.query",
                elapsed,
                subspace=subspace,
                results=len(ids),
                sampled_1_in=self._trace_every,
                backend="flat",
            )
            return ids
        return self._query(subspace, counter)

    def _query(self, subspace: int, counter: DominanceCounter | None) -> list[int]:
        if not self._memoize:
            self._validate(subspace)
            ids, visited = self._traverse(subspace)
            if counter is not None:
                counter.add_query(visited)
            return ids
        return self._entry(subspace, counter).ids_list()

    def query_array(
        self, subspace: int, counter: DominanceCounter | None = None
    ) -> np.ndarray:
        """Like :meth:`query` but returning a read-only ``intp`` id array."""
        if self._trace_every and self._sample():
            arr, elapsed = timed(lambda: self._query_array(subspace, counter))
            self._tracer.record(
                "index.query",
                elapsed,
                subspace=subspace,
                results=int(arr.shape[0]),
                sampled_1_in=self._trace_every,
                backend="flat",
            )
            return arr
        return self._query_array(subspace, counter)

    def _query_array(
        self, subspace: int, counter: DominanceCounter | None
    ) -> np.ndarray:
        if not self._memoize:
            arr = np.asarray(self._query(subspace, counter), dtype=np.intp)
            arr.setflags(write=False)
            return arr
        return self._entry(subspace, counter).array()

    def candidates(
        self, subspace: int, counter: DominanceCounter | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Fused query: ``(ids, rows)`` with the candidate rows gathered.

        Requires construction with ``values``.  The memoized path serves
        both arrays from one cache probe; ids and accounting are identical
        to :meth:`query_array` followed by a gather.
        """
        if self._values is None:
            raise InvalidParameterError(
                "candidates() requires a FlatSubsetIndex built with values"
            )
        if self._trace_every and self._sample():
            pair, elapsed = timed(lambda: self._candidates(subspace, counter))
            self._tracer.record(
                "index.query",
                elapsed,
                subspace=subspace,
                results=int(pair[0].shape[0]),
                sampled_1_in=self._trace_every,
                backend="flat",
            )
            return pair
        return self._candidates(subspace, counter)

    def _candidates(
        self, subspace: int, counter: DominanceCounter | None
    ) -> tuple[np.ndarray, np.ndarray]:
        if not self._memoize:
            ids = np.asarray(self._query(subspace, counter), dtype=np.intp)
            ids.setflags(write=False)
            return ids, self._values[ids]
        entry = self._entry(subspace, counter)
        assert isinstance(entry, _FusedEntry)
        return entry.array(), entry.rows_view()

    def _entry(self, subspace: int, counter: DominanceCounter | None) -> _CacheEntry:
        """The up-to-date cache entry for ``subspace`` (memoized path)."""
        entry = self._cache.get(subspace)
        if entry is not None and entry.epoch == self._epoch:
            log_size = self._log_size
            pos = entry.log_pos
            if pos < log_size:
                match = bitset.subset_of_many(subspace, self._log_subs[pos:log_size])
                new_ids = self._log_pids[pos:log_size][match]
                if new_ids.shape[0]:
                    if isinstance(entry, _FusedEntry):
                        entry.extend_fused(new_ids, self._values)
                    else:
                        entry.extend(new_ids)
                entry.log_pos = log_size
            self._hits += 1
            if counter is not None:
                counter.add_query(0)
                counter.add_cache_hit()
            return entry
        invalidated = 0
        if entry is not None:
            invalidated = 1
            self._invalidations += 1
        self._validate(subspace)
        ids, visited = self._traverse(subspace)
        if self._values is not None:
            entry = _FusedEntry(self._epoch, self._log_size, ids, self._values)
        else:
            entry = _CacheEntry(self._epoch, self._log_size, ids)
        self._cache[subspace] = entry
        self._misses += 1
        if counter is not None:
            counter.add_query(visited)
            counter.add_cache_miss(invalidated)
        return entry

    def _sample(self) -> bool:
        """Down-counting sampler: True once every ``_trace_every`` calls."""
        self._trace_seen += 1
        if self._trace_seen >= self._trace_every:
            self._trace_seen = 0
            return True
        return False

    def _traverse(self, subspace: int) -> tuple[list[int], int]:
        """Flat filter pass: insertion-ordered ids plus entries examined.

        "Visited" counts the distinct CSR mask groups plus the tail
        entries the filter evaluated — the flat analogue of tree nodes.
        """
        visited = int(self._csr_masks.shape[0]) + self._tail_n
        parts_ids: list[np.ndarray] = []
        parts_seqs: list[np.ndarray] = []
        if self._csr_masks.shape[0]:
            for group in np.flatnonzero(
                bitset.subset_of_many(subspace, self._csr_masks)
            ):
                lo, hi = self._csr_starts[group], self._csr_starts[group + 1]
                parts_ids.append(self._csr_ids[lo:hi])
                parts_seqs.append(self._csr_seqs[lo:hi])
        if self._tail_n:
            match = bitset.subset_of_many(subspace, self._tail_subs[: self._tail_n])
            parts_ids.append(self._tail_ids[: self._tail_n][match])
            parts_seqs.append(self._tail_seqs[: self._tail_n][match])
        if not parts_ids:
            return [], visited
        ids = np.concatenate(parts_ids)
        seqs = np.concatenate(parts_seqs)
        return ids[np.argsort(seqs, kind="stable")].tolist(), visited

    def remove(self, point_id: int, subspace: int) -> None:
        """Remove a point previously stored under ``subspace``.

        Same contract as :meth:`SkylineIndex.remove`: raises ``KeyError``
        when absent, advances the epoch, and drops the whole result cache.
        The tail is folded in first so the entry lives in exactly one place.
        """
        self._validate(subspace)
        self._compact()
        group = int(np.searchsorted(self._csr_masks, subspace))
        if (
            group == self._csr_masks.shape[0]
            or int(self._csr_masks[group]) != subspace
        ):
            raise KeyError(
                f"point {point_id} not stored under subspace {subspace:#x}"
            )
        lo, hi = int(self._csr_starts[group]), int(self._csr_starts[group + 1])
        hits = np.flatnonzero(self._csr_ids[lo:hi] == point_id)
        if hits.shape[0] == 0:
            raise KeyError(
                f"point {point_id} not stored under subspace {subspace:#x}"
            )
        position = lo + int(hits[0])
        self._csr_ids = np.delete(self._csr_ids, position)
        self._csr_seqs = np.delete(self._csr_seqs, position)
        starts = self._csr_starts.copy()
        starts[group + 1 :] -= 1
        if starts[group] == starts[group + 1]:
            self._csr_masks = np.delete(self._csr_masks, group)
            starts = np.delete(starts, group + 1)
        self._csr_starts = starts
        self._size -= 1
        self._generation += 1
        self._invalidate_all()

    def _invalidate_all(self) -> None:
        self._invalidations += len(self._cache)
        self._cache.clear()
        self._log_size = 0
        self._epoch += 1

    def cache_stats(self) -> dict[str, int]:
        """Lifetime memoization statistics of this index instance."""
        return {
            "hits": self._hits,
            "misses": self._misses,
            "invalidations": self._invalidations,
            "entries": len(self._cache),
        }

    def group_count(self) -> int:
        """Distinct stored subspace masks (CSR groups + distinct tail masks)."""
        return len(self.subspaces())

    def node_count(self) -> int:
        """Flat analogue of the map index's node count: the group count.

        There is no tree here; one "node" is one distinct-mask group the
        superset filter evaluates.
        """
        return self.group_count()

    def occupancy(self) -> dict[str, float]:
        """Group-occupancy statistics (same shape as the map index's)."""
        occupied = [len(points) for points in self.subspaces().values()]
        if not occupied:
            return {"nodes": 0.0, "occupied": 0.0, "max": 0.0, "mean": 0.0}
        return {
            "nodes": float(len(occupied)),
            "occupied": float(len(occupied)),
            "max": float(max(occupied)),
            "mean": float(sum(occupied) / len(occupied)),
        }

    def subspaces(self) -> dict[int, list[int]]:
        """Mapping of stored subspace mask → point ids (diagnostics/tests)."""
        result: dict[int, list[int]] = {}
        for group in range(self._csr_masks.shape[0]):
            lo, hi = self._csr_starts[group], self._csr_starts[group + 1]
            result[int(self._csr_masks[group])] = self._csr_ids[lo:hi].tolist()
        for k in range(self._tail_n):
            result.setdefault(int(self._tail_subs[k]), []).append(
                int(self._tail_ids[k])
            )
        return result

    def clear(self) -> None:
        """Drop all stored points, groups and cached query results."""
        self._csr_masks = np.empty(0, dtype=np.int64)
        self._csr_starts = np.zeros(1, dtype=np.intp)
        self._csr_ids = np.empty(0, dtype=np.intp)
        self._csr_seqs = np.empty(0, dtype=np.intp)
        self._tail_n = 0
        self._size = 0
        self._generation += 1
        self._invalidate_all()
