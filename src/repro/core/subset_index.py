"""The map-based subset-query skyline index (Figure 3, Algorithms 2–4).

Problem 1 of the paper: store each skyline point partitioned by its maximum
dominating subspace and, given a testing point's subspace ``D_q``, return
every stored point whose subspace is a **superset** of ``D_q`` — by
Lemma 5.1 the only skyline points that can possibly dominate the testing
point.

The paper reverses the problem: points are stored under the *complement*
``D^¬`` of their subspace, turning superset retrieval into **subset**
retrieval (Problem 2), which a hash-map prefix tree answers cheaply.  Each
tree node is keyed by a dimension index; a stored subspace's complement
``{i1 < i2 < ...}`` becomes the root path ``i1 → i2 → ...`` and the point id
is appended to the terminal node.  A query with complement ``Q`` walks every
path that uses only dimensions in ``Q``, collecting points along the way —
exactly the stored subsets of ``Q``.

Complexities match Lemmas 5.2/5.3: ``put`` is ``O(|D^¬|)`` (average
``O(d/2)``) and ``query`` visits ``O((d/2)^2)`` nodes on average.

Memoization
-----------
During a boosted scan the number of *distinct* query subspaces is far
smaller than the number of testing points, so repeated queries are the
common case.  The index therefore keeps a per-subspace result cache with
generation-based invalidation:

- every ``put``/``remove`` advances :attr:`generation`;
- a ``put`` is appended to an in-order log, and a stale cache entry is
  *repaired* by scanning only the log suffix it has not yet incorporated
  (a put can only ever append candidates to a superset query's result);
- a ``remove`` (or ``clear``) advances the *epoch*, discarding every
  cached entry wholesale — removals are rare (streaming only), appends
  are the hot path.

Query results are canonically ordered by **insertion sequence** (the order
points were ``put``), which is what makes log-repair a pure append and is
also the natural candidate order for sorted scans: earlier-confirmed
skyline points have lower sort keys and are the strongest dominators.
Memoized and unmemoized queries return bit-identical lists, so every
dominance test charged downstream is identical; only
``index_nodes_visited`` differs (a cache hit touches no tree nodes).
"""

from __future__ import annotations

import numpy as np

from repro.errors import DimensionMismatchError, InvalidParameterError
from repro.obs.clock import timed
from repro.obs.trace import current_tracer
from repro.stats.counters import DominanceCounter
from repro.structures import bitset

#: Under an enabled tracer, one in this many index queries is timed and
#: recorded as an ``index.query`` span.  Sampling bounds tracing overhead:
#: a boosted scan issues one query per testing point, so tracing each one
#: would dominate the cost being measured.
_TRACE_SAMPLE = 64


class _Node:
    """One key-value pair of Figure 3: a point bucket plus sub-maps."""

    __slots__ = ("points", "seqs", "children")

    def __init__(self) -> None:
        self.points: list[int] = []
        self.seqs: list[int] = []
        self.children: dict[int, _Node] = {}


class _CacheEntry:
    """Memoized result of one query subspace.

    The id set is append-only within an epoch and lives in an
    amortised-doubling ``intp`` buffer; ``log_pos`` marks how much of the
    index's put-log it has incorporated.  Callers receive read-only views
    of the buffer prefix — appends only ever touch positions beyond every
    view handed out so far.
    """

    __slots__ = ("epoch", "log_pos", "buf", "size")

    def __init__(self, epoch: int, log_pos: int, ids: list[int]) -> None:
        self.epoch = epoch
        self.log_pos = log_pos
        arr = np.asarray(ids, dtype=np.intp)
        self.size = arr.shape[0]
        self.buf = np.empty(max(4, self.size), dtype=np.intp)
        self.buf[: self.size] = arr

    def extend(self, new_ids: np.ndarray) -> None:
        grown = self.size + new_ids.shape[0]
        if grown > self.buf.shape[0]:
            buf = np.empty(max(grown, 2 * self.buf.shape[0]), dtype=np.intp)
            buf[: self.size] = self.buf[: self.size]
            self.buf = buf
        self.buf[self.size : grown] = new_ids
        self.size = grown

    def ids_list(self) -> list[int]:
        return self.buf[: self.size].tolist()

    def array(self) -> np.ndarray:
        view = self.buf[: self.size]
        view.flags.writeable = False
        return view


class SkylineIndex:
    """Hash-map prefix tree answering reversed subset queries over subspaces.

    Parameters
    ----------
    d:
        Dimensionality of the space; subspace masks must fit in ``d`` bits.
    memoize:
        Keep the per-subspace result cache (default).  ``False`` forces a
        full tree traversal on every query — the scalar reference path used
        by the differential tests and the throughput benchmark baseline.

    >>> idx = SkylineIndex(d=4)
    >>> idx.put(7, subspace=0b0011)   # D = {0, 1}, stored under D^¬ = {2, 3}
    >>> idx.put(9, subspace=0b0111)   # D = {0, 1, 2}, stored under {3}
    >>> sorted(idx.query(0b0011))     # supersets of {0, 1}: both points
    [7, 9]
    >>> idx.query(0b0111)             # supersets of {0, 1, 2}: only point 9
    [9]
    """

    def __init__(self, d: int, memoize: bool = True) -> None:
        if d < 1:
            raise InvalidParameterError(f"dimensionality must be >= 1, got {d}")
        self._d = d
        self._memoize = memoize
        self._root = _Node()
        self._size = 0
        self._seq = 0
        self._generation = 0
        self._epoch = 0
        # The put-log as parallel growing arrays, so stale cache entries
        # repair themselves with one vectorised superset test over the
        # unseen suffix instead of a Python loop.
        self._log_pids = np.empty(16, dtype=np.intp)
        self._log_subs = np.empty(16, dtype=np.int64)
        self._log_size = 0
        self._cache: dict[int, _CacheEntry] = {}
        self._hits = 0
        self._misses = 0
        self._invalidations = 0
        # The ambient tracer is captured once at construction: the index
        # lives inside one engine execution, and per-query ContextVar
        # lookups would tax the hot path.  ``_trace_every == 0`` (the
        # NullTracer default) short-circuits sampling to one int check.
        self._tracer = current_tracer()
        self._trace_every = _TRACE_SAMPLE if self._tracer.enabled else 0
        self._trace_seen = 0

    @property
    def dimensionality(self) -> int:
        return self._d

    @property
    def memoized(self) -> bool:
        """Whether the per-subspace result cache is active."""
        return self._memoize

    @property
    def generation(self) -> int:
        """Monotone change counter: advances on every ``put``/``remove``."""
        return self._generation

    @property
    def epoch(self) -> int:
        """Advances on ``remove``/``clear`` — changes that can *shrink* or
        reorder query results, invalidating append-only derived views."""
        return self._epoch

    def __len__(self) -> int:
        """Number of stored points."""
        return self._size

    def put(self, point_id: int, subspace: int) -> None:
        """Algorithm 2: store ``point_id`` under its maximum dominating subspace.

        Walks the reversed subspace's dimensions in increasing order,
        creating nodes on demand, and appends the point to the final node.
        A full-space subspace lands on the root node (empty path).
        """
        reversed_mask = self._reversed(subspace)
        node = self._root
        for dim in bitset.bits_of(reversed_mask):
            child = node.children.get(dim)
            if child is None:
                child = _Node()
                node.children[dim] = child
            node = child
        node.points.append(point_id)
        node.seqs.append(self._seq)
        self._seq += 1
        self._size += 1
        self._generation += 1
        if self._memoize:
            n = self._log_size
            if n == self._log_pids.shape[0]:
                self._log_pids = np.concatenate(
                    [self._log_pids, np.empty_like(self._log_pids)]
                )
                self._log_subs = np.concatenate(
                    [self._log_subs, np.empty_like(self._log_subs)]
                )
            self._log_pids[n] = point_id
            self._log_subs[n] = subspace
            self._log_size = n + 1

    def query(self, subspace: int, counter: DominanceCounter | None = None) -> list[int]:
        """Algorithms 3–4: all points whose subspace ⊇ ``subspace``.

        Results are ordered by insertion sequence.  On a cache miss (or
        with ``memoize=False``) the reversed-subspace paths are traversed
        and node visits are recorded on ``counter`` (they are index
        accesses, *not* dominance tests); a cache hit touches no nodes and
        records zero visits.
        """
        if self._trace_every and self._sample():
            ids, elapsed = timed(lambda: self._query(subspace, counter))
            self._tracer.record(
                "index.query",
                elapsed,
                subspace=subspace,
                results=len(ids),
                sampled_1_in=self._trace_every,
            )
            return ids
        return self._query(subspace, counter)

    def _query(
        self, subspace: int, counter: DominanceCounter | None
    ) -> list[int]:
        if not self._memoize:
            reversed_mask = self._reversed(subspace)
            ids, visited = self._traverse(reversed_mask)
            if counter is not None:
                counter.add_query(visited)
            return ids
        entry = self._entry(subspace, counter)
        return entry.ids_list()

    def _sample(self) -> bool:
        """Down-counting sampler: True once every ``_trace_every`` calls."""
        self._trace_seen += 1
        if self._trace_seen >= self._trace_every:
            self._trace_seen = 0
            return True
        return False

    def query_array(
        self, subspace: int, counter: DominanceCounter | None = None
    ) -> np.ndarray:
        """Like :meth:`query` but returning a read-only ``intp`` id array.

        The memoized path shares one cached array across calls (rebuilt
        only when the entry grows), so containers can gather candidate
        blocks without re-materialising ids on every testing point.
        """
        if self._trace_every and self._sample():
            arr, elapsed = timed(lambda: self._query_array(subspace, counter))
            self._tracer.record(
                "index.query",
                elapsed,
                subspace=subspace,
                results=int(arr.shape[0]),
                sampled_1_in=self._trace_every,
            )
            return arr
        return self._query_array(subspace, counter)

    def _query_array(
        self, subspace: int, counter: DominanceCounter | None
    ) -> np.ndarray:
        if not self._memoize:
            arr = np.asarray(self._query(subspace, counter), dtype=np.intp)
            arr.setflags(write=False)
            return arr
        return self._entry(subspace, counter).array()

    def _entry(self, subspace: int, counter: DominanceCounter | None) -> _CacheEntry:
        """The up-to-date cache entry for ``subspace`` (memoized path)."""
        entry = self._cache.get(subspace)
        if entry is not None and entry.epoch == self._epoch:
            log_size = self._log_size
            pos = entry.log_pos
            if pos < log_size:
                match = bitset.subset_of_many(
                    subspace, self._log_subs[pos:log_size]
                )
                entry.extend(self._log_pids[pos:log_size][match])
                entry.log_pos = log_size
            self._hits += 1
            if counter is not None:
                counter.add_query(0)
                counter.add_cache_hit()
            return entry
        invalidated = 0
        if entry is not None:
            invalidated = 1
            self._invalidations += 1
        reversed_mask = self._reversed(subspace)
        ids, visited = self._traverse(reversed_mask)
        entry = _CacheEntry(self._epoch, self._log_size, ids)
        self._cache[subspace] = entry
        self._misses += 1
        if counter is not None:
            counter.add_query(visited)
            counter.add_cache_miss(invalidated)
        return entry

    def _traverse(self, reversed_mask: int) -> tuple[list[int], int]:
        """Full tree walk: insertion-ordered ids plus nodes visited."""
        collected: list[tuple[int, int]] = []
        visited = self._collect(self._root, reversed_mask, collected)
        collected.sort()
        return [point_id for _, point_id in collected], visited

    def _collect(
        self, node: _Node, reversed_mask: int, out: list[tuple[int, int]]
    ) -> int:
        out.extend(zip(node.seqs, node.points))
        visited = 1
        for dim, child in node.children.items():
            if bitset.has_dim(reversed_mask, dim):
                visited += self._collect(child, reversed_mask, out)
        return visited

    def _reversed(self, subspace: int) -> int:
        try:
            return bitset.complement(subspace, self._d)
        except ValueError as exc:
            raise DimensionMismatchError(str(exc)) from None

    def remove(self, point_id: int, subspace: int) -> None:
        """Remove a point previously stored under ``subspace``.

        Needed by the streaming extension (Section 7's perspective (3));
        raises ``KeyError`` when the point is not stored under that
        subspace.  Emptied nodes are left in place — subspace paths recur,
        so keeping them avoids re-allocation churn.  The whole result
        cache is invalidated (epoch advance): repairs only model appends.
        """
        reversed_mask = self._reversed(subspace)
        node = self._root
        for dim in bitset.bits_of(reversed_mask):
            child = node.children.get(dim)
            if child is None:
                raise KeyError(
                    f"point {point_id} not stored under subspace {subspace:#x}"
                )
            node = child
        try:
            position = node.points.index(point_id)
        except ValueError:
            raise KeyError(
                f"point {point_id} not stored under subspace {subspace:#x}"
            ) from None
        node.points.pop(position)
        node.seqs.pop(position)
        self._size -= 1
        self._generation += 1
        self._invalidate_all()

    def _invalidate_all(self) -> None:
        self._invalidations += len(self._cache)
        self._cache.clear()
        self._log_size = 0
        self._epoch += 1

    def cache_stats(self) -> dict[str, int]:
        """Lifetime memoization statistics of this index instance."""
        return {
            "hits": self._hits,
            "misses": self._misses,
            "invalidations": self._invalidations,
            "entries": len(self._cache),
        }

    def node_count(self) -> int:
        """Total number of tree nodes (root included); index-size statistic."""
        count = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            count += 1
            stack.extend(node.children.values())
        return count

    def occupancy(self) -> dict[str, float]:
        """Node-occupancy statistics: how clumped the stored points are.

        Section 6.3 attributes WEATHER's muted gains to "a lot of skyline
        points in one single node" — duplicate-heavy dimensions collapse
        many points onto few subspaces.  ``max`` close to ``len(index)``
        means the index degenerates toward a plain list.
        """
        occupied = [len(points) for points in self.subspaces().values()]
        if not occupied:
            return {"nodes": 0.0, "occupied": 0.0, "max": 0.0, "mean": 0.0}
        return {
            "nodes": float(self.node_count()),
            "occupied": float(len(occupied)),
            "max": float(max(occupied)),
            "mean": float(sum(occupied) / len(occupied)),
        }

    def subspaces(self) -> dict[int, list[int]]:
        """Mapping of stored subspace mask → point ids (diagnostics/tests)."""
        result: dict[int, list[int]] = {}
        stack: list[tuple[_Node, int]] = [(self._root, 0)]
        while stack:
            node, path_mask = stack.pop()
            if node.points:
                subspace = bitset.complement(path_mask, self._d)
                result.setdefault(subspace, []).extend(node.points)
            for dim, child in node.children.items():
                stack.append((child, bitset.with_dim(path_mask, dim)))
        return result

    def clear(self) -> None:
        """Drop all stored points, nodes and cached query results."""
        self._root = _Node()
        self._size = 0
        self._generation += 1
        self._invalidate_all()
