"""The map-based subset-query skyline index (Figure 3, Algorithms 2–4).

Problem 1 of the paper: store each skyline point partitioned by its maximum
dominating subspace and, given a testing point's subspace ``D_q``, return
every stored point whose subspace is a **superset** of ``D_q`` — by
Lemma 5.1 the only skyline points that can possibly dominate the testing
point.

The paper reverses the problem: points are stored under the *complement*
``D^¬`` of their subspace, turning superset retrieval into **subset**
retrieval (Problem 2), which a hash-map prefix tree answers cheaply.  Each
tree node is keyed by a dimension index; a stored subspace's complement
``{i1 < i2 < ...}`` becomes the root path ``i1 → i2 → ...`` and the point id
is appended to the terminal node.  A query with complement ``Q`` walks every
path that uses only dimensions in ``Q``, collecting points along the way —
exactly the stored subsets of ``Q``.

Complexities match Lemmas 5.2/5.3: ``put`` is ``O(|D^¬|)`` (average
``O(d/2)``) and ``query`` visits ``O((d/2)^2)`` nodes on average.
"""

from __future__ import annotations

from repro.errors import DimensionMismatchError, InvalidParameterError
from repro.stats.counters import DominanceCounter
from repro.structures import bitset


class _Node:
    """One key-value pair of Figure 3: a point bucket plus sub-maps."""

    __slots__ = ("points", "children")

    def __init__(self) -> None:
        self.points: list[int] = []
        self.children: dict[int, _Node] = {}


class SkylineIndex:
    """Hash-map prefix tree answering reversed subset queries over subspaces.

    Parameters
    ----------
    d:
        Dimensionality of the space; subspace masks must fit in ``d`` bits.

    >>> idx = SkylineIndex(d=4)
    >>> idx.put(7, subspace=0b0011)   # D = {0, 1}, stored under D^¬ = {2, 3}
    >>> idx.put(9, subspace=0b0111)   # D = {0, 1, 2}, stored under {3}
    >>> sorted(idx.query(0b0011))     # supersets of {0, 1}: both points
    [7, 9]
    >>> idx.query(0b0111)             # supersets of {0, 1, 2}: only point 9
    [9]
    """

    def __init__(self, d: int) -> None:
        if d < 1:
            raise InvalidParameterError(f"dimensionality must be >= 1, got {d}")
        self._d = d
        self._root = _Node()
        self._size = 0

    @property
    def dimensionality(self) -> int:
        return self._d

    def __len__(self) -> int:
        """Number of stored points."""
        return self._size

    def put(self, point_id: int, subspace: int) -> None:
        """Algorithm 2: store ``point_id`` under its maximum dominating subspace.

        Walks the reversed subspace's dimensions in increasing order,
        creating nodes on demand, and appends the point to the final node.
        A full-space subspace lands on the root node (empty path).
        """
        reversed_mask = self._reversed(subspace)
        node = self._root
        for dim in bitset.bits_of(reversed_mask):
            child = node.children.get(dim)
            if child is None:
                child = _Node()
                node.children[dim] = child
            node = child
        node.points.append(point_id)
        self._size += 1

    def query(self, subspace: int, counter: DominanceCounter | None = None) -> list[int]:
        """Algorithms 3–4: all points whose subspace ⊇ ``subspace``.

        Recursively collects every node reachable through dimensions of the
        reversed query subspace.  Node visits are recorded on ``counter``
        (they are index accesses, *not* dominance tests).
        """
        reversed_mask = self._reversed(subspace)
        collected: list[int] = []
        visited = self._collect(self._root, reversed_mask, collected)
        if counter is not None:
            counter.add_query(visited)
        return collected

    def _collect(self, node: _Node, reversed_mask: int, out: list[int]) -> int:
        out.extend(node.points)
        visited = 1
        for dim, child in node.children.items():
            if bitset.has_dim(reversed_mask, dim):
                visited += self._collect(child, reversed_mask, out)
        return visited

    def _reversed(self, subspace: int) -> int:
        try:
            return bitset.complement(subspace, self._d)
        except ValueError as exc:
            raise DimensionMismatchError(str(exc)) from None

    def remove(self, point_id: int, subspace: int) -> None:
        """Remove a point previously stored under ``subspace``.

        Needed by the streaming extension (Section 7's perspective (3));
        raises ``KeyError`` when the point is not stored under that
        subspace.  Emptied nodes are left in place — subspace paths recur,
        so keeping them avoids re-allocation churn.
        """
        reversed_mask = self._reversed(subspace)
        node = self._root
        for dim in bitset.bits_of(reversed_mask):
            child = node.children.get(dim)
            if child is None:
                raise KeyError(
                    f"point {point_id} not stored under subspace {subspace:#x}"
                )
            node = child
        try:
            node.points.remove(point_id)
        except ValueError:
            raise KeyError(
                f"point {point_id} not stored under subspace {subspace:#x}"
            ) from None
        self._size -= 1

    def node_count(self) -> int:
        """Total number of tree nodes (root included); index-size statistic."""
        count = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            count += 1
            stack.extend(node.children.values())
        return count

    def occupancy(self) -> dict[str, float]:
        """Node-occupancy statistics: how clumped the stored points are.

        Section 6.3 attributes WEATHER's muted gains to "a lot of skyline
        points in one single node" — duplicate-heavy dimensions collapse
        many points onto few subspaces.  ``max`` close to ``len(index)``
        means the index degenerates toward a plain list.
        """
        occupied = [len(points) for points in self.subspaces().values()]
        if not occupied:
            return {"nodes": 0.0, "occupied": 0.0, "max": 0.0, "mean": 0.0}
        return {
            "nodes": float(self.node_count()),
            "occupied": float(len(occupied)),
            "max": float(max(occupied)),
            "mean": float(sum(occupied) / len(occupied)),
        }

    def subspaces(self) -> dict[int, list[int]]:
        """Mapping of stored subspace mask → point ids (diagnostics/tests)."""
        result: dict[int, list[int]] = {}
        stack: list[tuple[_Node, int]] = [(self._root, 0)]
        while stack:
            node, path_mask = stack.pop()
            if node.points:
                subspace = bitset.complement(path_mask, self._d)
                result.setdefault(subspace, []).extend(node.points)
            for dim, child in node.children.items():
                stack.append((child, bitset.with_dim(path_mask, dim)))
        return result

    def clear(self) -> None:
        """Drop all stored points and nodes."""
        self._root = _Node()
        self._size = 0
