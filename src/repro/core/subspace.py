"""Dominating subspaces and the paper's incomparability lemmas.

A *dominating subspace* ``D_{q<p}`` (Definition 3.4) is the set of dimensions
where ``q`` is strictly better than ``p``; it is represented as an integer
bitmask (see :mod:`repro.structures.bitset`).  The *maximum dominating
subspace* of ``q`` with respect to a set of skyline points ``S``
(Definition 4.1) is the union of the per-pivot subspaces.

The two structural facts the whole method rests on:

- **Lemma 4.2** — if neither maximum dominating subspace contains the other,
  the two points are incomparable (no dominance test needed);
- **Lemma 4.3** — ``q1 < q2`` requires ``D_{q1<S} ⊇ D_{q2<S}``, so the only
  candidate dominators of a testing point are skyline points whose subspace
  is a superset of the testing point's subspace (Lemma 5.1).
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.dominance import dominating_subspace
from repro.stats.counters import DominanceCounter
from repro.structures import bitset


def maximum_dominating_subspace(
    q: np.ndarray,
    pivots: Iterable[np.ndarray],
    counter: DominanceCounter | None = None,
) -> int:
    """``D_{q<S} = ⋃_{p∈S} D_{q<p}`` (Definition 4.1) as a bitmask."""
    mask = 0
    for pivot in pivots:
        mask |= dominating_subspace(q, pivot, counter)
    return mask


def implies_incomparable(mask_a: int, mask_b: int) -> bool:
    """Lemma 4.2: non-nested maximum dominating subspaces ⇒ incomparable.

    Returns True when neither mask contains the other, which *guarantees*
    the two points are incomparable; False means nothing (they may or may
    not be comparable).
    """
    return not bitset.is_subset(mask_a, mask_b) and not bitset.is_subset(
        mask_b, mask_a
    )


def may_dominate(mask_p: int, mask_q: int) -> bool:
    """Lemma 4.3 contrapositive: can ``p`` possibly dominate ``q``?

    ``p < q`` requires ``D_{p<S} ⊇ D_{q<S}``; when this returns False a
    dominance test between the points is provably unnecessary.
    """
    return bitset.is_superset(mask_p, mask_q)
