"""Multi-core skyline computation (the parallelisation of Chester et al. [6]).

The paper takes its real datasets from Chester et al.'s multicore skyline
study; this module implements the classic two-phase parallel scheme that
work popularised:

1. partition the dataset into blocks and compute each block's *local
   skyline* in a worker process (any registered sequential algorithm);
2. merge: the global skyline is the skyline of the union of local
   skylines, computed sequentially (the union is typically tiny compared
   with the input).

Correctness is immediate: a globally undominated point is undominated in
its own block, so the global skyline is a subset of the union of local
skylines.  Dominance tests from all workers and the merge phase are summed
into the caller's counter.
"""

from __future__ import annotations

import multiprocessing as mp

import numpy as np

from repro.algorithms.registry import get_algorithm
from repro.dataset import Dataset, as_dataset
from repro.errors import InvalidParameterError
from repro.stats.counters import DominanceCounter


def _local_skyline(args: tuple[np.ndarray, str]) -> tuple[np.ndarray, int]:
    """Worker: skyline indices (block-local) and test count of one block."""
    block, algorithm = args
    counter = DominanceCounter()
    result = get_algorithm(algorithm).compute(Dataset(block), counter=counter)
    return result.indices, counter.tests


def parallel_skyline(
    data: Dataset | np.ndarray,
    workers: int = 2,
    algorithm: str = "sfs",
    merge_algorithm: str = "sfs",
    counter: DominanceCounter | None = None,
) -> np.ndarray:
    """Compute the skyline with ``workers`` processes; returns sorted row ids.

    Parameters
    ----------
    workers:
        Number of blocks / worker processes; ``1`` runs sequentially.
    algorithm:
        Sequential algorithm used for each block's local skyline.
    merge_algorithm:
        Algorithm used for the final skyline over the union of local
        skylines.
    """
    dataset = as_dataset(data)
    if workers < 1:
        raise InvalidParameterError(f"workers must be >= 1, got {workers}")
    counter = counter if counter is not None else DominanceCounter()
    n = dataset.cardinality
    workers = min(workers, n)

    if workers == 1:
        result = get_algorithm(algorithm).compute(dataset, counter=counter)
        return result.indices

    bounds = np.linspace(0, n, workers + 1, dtype=int)
    blocks = [
        (dataset.values[lo:hi], algorithm)
        for lo, hi in zip(bounds, bounds[1:])
        if hi > lo
    ]
    with mp.get_context("fork").Pool(processes=len(blocks)) as pool:
        locals_ = pool.map(_local_skyline, blocks)

    candidate_ids: list[int] = []
    for (local_indices, tests), lo in zip(locals_, bounds):
        counter.add(tests)
        candidate_ids.extend((int(lo) + local_indices).tolist())
    candidates = np.asarray(sorted(candidate_ids), dtype=np.intp)

    union = Dataset(dataset.values[candidates], name=f"{dataset.name}[union]")
    merged = get_algorithm(merge_algorithm).compute(union, counter=counter)
    return candidates[merged.indices]
