"""Prune-aware multi-core skyline computation (Chester et al. [6], extended).

The paper takes its real datasets from Chester et al.'s multicore skyline
study; this module implements the classic two-phase parallel scheme that
work popularised — partition into blocks, compute local skylines in worker
processes, merge the union sequentially — extended with the cross-partition
pruning that partition-parallel skylines need to beat a serial scan
(Kalyvas & Tzouramanis, arXiv:1704.01788):

1. **shared-survivor prefix exchange**: before any local scan, the parent
   selects a small set of guaranteed global skyline points — the first
   mutually non-dominated points along the monotone entropy order
   (:func:`repro.core.prefix.select_prefix`) — and broadcasts it to every
   worker, which vectorised-filters its block against the prefix before
   running the local scan.  Only non-skyline points are ever removed, so
   results stay bit-identical to serial; the redundancy of every block
   re-discovering the same strong points is gone.  Under sort-order
   partitioning the *head* block skips the filter: the prefix points are
   its own rows, so its local skyline is unchanged by the filter, and its
   rows are exactly the strong entropy-head points where the filter's
   per-survivor charge is maximal.
2. **sort-order partitioning**: blocks are cut along the same monotone
   order (shared with workers through a cached shared-memory segment), so
   the head block holds the dense part of the skyline and later blocks are
   mostly cleared by the prefix filter.  On large inputs
   (:data:`_HEAD_SPLIT_MIN_N`) the head region is further subdivided into
   even sub-blocks so its scan — the densest work and the wall-clock
   critical path — spreads across every worker instead of serialising on
   one.
3. **planner-driven sizing**: block bounds come from
   :func:`repro.core.prefix.block_bounds` with a growth factor the planner
   derives from the expected skyline fraction, instead of an even
   ``np.linspace`` split.
4. **seeded merge fast path**: the union of local-skyline ids is built
   with ``np.concatenate`` + ``np.sort`` (:func:`assemble_candidates`),
   and under sort-order partitioning the merge scan is *seeded*: the
   monotone order guarantees a point is never dominated by a later-ranked
   point, so the first sub-block's local skyline points are global skyline
   points outright — they enter the merge container test-free and only
   the other blocks' candidates are scanned against them
   (:func:`_seeded_union_skyline`).

Correctness is immediate: a globally undominated point is undominated in
its own block and never dominated by a prefix point (prefix points are
global skyline points), so the global skyline is a subset of the union of
local skylines.  Dominance tests from the prefix selection, every worker's
filter + scan, and the merge phase are summed into the caller's counter.

Execution model
---------------
Work runs on a persistent :class:`SkylineWorkerPool`.  Instead of pickling
the coordinate array into every worker on every call, the pool copies each
distinct dataset once into a ``multiprocessing.shared_memory`` segment
(plus one segment for its scan order under sort-order partitioning);
workers attach by name and read only their ``[lo, hi)`` slice.  The prefix
itself is a ``size × d`` array of at most a few KB, so it ships inside the
task tuple — cheaper than a segment round-trip.  Repeated calls over the
same dataset reuse the processes and both segments — observable through
:attr:`SkylineWorkerPool.stats`.
"""

from __future__ import annotations

import atexit
import multiprocessing as mp
import os
import threading
from multiprocessing import shared_memory

from typing import TYPE_CHECKING

import numpy as np

from repro.algorithms.registry import get_algorithm
from repro.core.boost import BoostableHost, SubsetBoost
from repro.core.container import ListContainer, SkylineContainer, SubsetContainer
from repro.core.merge import merge
from repro.core.prefix import (
    block_bounds,
    monotone_order,
    prefix_filter,
    select_prefix,
)
from repro.core.stability import default_threshold
from repro.dataset import Dataset, as_dataset
from repro.errors import InvalidParameterError
from repro.obs.clock import Stopwatch
from repro.obs.events import current_event_log
from repro.obs.histogram import LogHistogram
from repro.obs.trace import current_tracer
from repro.stats.counters import DominanceCounter

if TYPE_CHECKING:
    from repro.algorithms.base import SkylineAlgorithm

__all__ = [
    "SkylineWorkerPool",
    "assemble_candidates",
    "default_workers",
    "get_pool",
    "parallel_skyline",
    "shutdown_pool",
]

#: Segments kept alive per pool before the least recently created is
#: unlinked.  Each segment pins its source array in memory, so the cache is
#: deliberately small — parallel workloads typically hammer one dataset.
_MAX_SEGMENTS = 4

#: Prefix points exchanged when the caller does not size the prefix
#: explicitly.  A handful of strong skyline points already clears the bulk
#: of a block on independent data, while keeping the per-survivor filter
#: charge (one test per prefix point) negligible next to the local scan.
_DEFAULT_PREFIX_SIZE = 16


def default_workers() -> int:
    """Default block/worker count: the host's CPU count, at least 1.

    The former hard cap of 8 is gone — hosts with more cores can use them;
    the planner bounds the *effective* count by block-size estimates
    (:meth:`repro.engine.planner.Planner` keeps blocks above a minimum row
    count), so tiny inputs never shatter into per-core crumbs.
    """
    return max(1, os.cpu_count() or 1)


def assemble_candidates(parts: list[np.ndarray]) -> np.ndarray:
    """The sorted union of per-block survivor ids, as one ``intp`` array.

    Replaces the PR 5 Python-list ``extend(...tolist())`` + ``sorted()``
    assembly with a single ``np.concatenate`` + ``np.sort`` — blocks are
    disjoint, so no dedup pass is needed.
    """
    if not parts:
        return np.empty(0, dtype=np.intp)
    return np.sort(np.concatenate(parts).astype(np.intp, copy=False))


#: A deferred-scan block still runs its local scan when the prefix filter
#: left more than this fraction of its rows: a weakly-filtered block (e.g.
#: anti-correlated data) would otherwise dump near-raw rows on the
#: sequential merge scan and serialise the whole computation.
_DEFER_SURVIVOR_FRACTION = 0.5

#: Minimum rows per head sub-block before the head region is subdivided.
#: The head block's local scan is the densest work in the map phase; below
#: this size the extra per-task overhead outweighs the spread.
_MIN_HEAD_SUB_ROWS = 2048

#: Minimum dataset size before the head region is subdivided at all.
#: Splitting the head trades extra dominance tests (each sub-block loses
#: the pruning of earlier head rows) for map-phase parallelism; measured
#: on UI data the prefix-filter + defer savings only fund that redundancy
#: within the 1.2x serial-DT budget from around this cardinality up
#: (n=400k w=2 lands at 1.35x subdivided vs 1.08x not; n=1M w=4 at 0.87x
#: subdivided).
_HEAD_SPLIT_MIN_N = 500_000


def _shm_local_skyline(
    args: tuple[
        str,
        tuple[int, ...],
        str,
        str | None,
        int,
        int,
        str,
        str,
        np.ndarray | None,
        bool,
    ],
) -> tuple[np.ndarray, int, int, float]:
    """Worker: survivor ids, test count, pruned count and wall time of one block.

    The block is sliced (or gathered through the shared scan order) out of
    the shared segments and copied before they are detached, so the compute
    phase never holds shared pages.  ``prefix`` rows filter the block ahead
    of the local scan; pruned points are charged their early-exit tests and
    never reach the local algorithm.  With ``defer`` set (sort-order
    partitioning, non-head blocks) a well-filtered block skips the local
    scan entirely: its survivors are skyline-dense, so a local scan would
    re-verify points the seeded merge must scan against the head-block
    seeds anyway — the filter is the block's whole map-phase contribution.

    The returned wall time covers the worker-side body (segment slice,
    prefix filter, local scan); the parent folds the per-block times into
    the pool's mergeable block-latency histogram.
    """
    (
        shm_name,
        shape,
        dtype,
        order_name,
        lo,
        hi,
        algorithm,
        index_backend,
        prefix,
        defer,
    ) = args
    watch = Stopwatch()
    # Pool workers (fork or spawn) inherit the owner's resource tracker,
    # so attaching re-registers the already-registered name — a set-level
    # no-op.  The owner alone unlinks, on eviction, close() or atexit;
    # unregistering here instead would drop the owner's registration and
    # spam KeyErrors in the tracker (bpo-39959).
    shm = shared_memory.SharedMemory(name=shm_name)
    try:
        values = np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf)
        if order_name is not None:
            order_shm = shared_memory.SharedMemory(name=order_name)
            try:
                order = np.ndarray(
                    (shape[0],), dtype=np.intp, buffer=order_shm.buf
                )
                ids = np.array(order[lo:hi], copy=True)
            finally:
                order_shm.close()
            block = values[ids]  # fancy index: already a fresh copy
        else:
            ids = np.arange(lo, hi, dtype=np.intp)
            block = np.array(values[lo:hi], copy=True)
    finally:
        shm.close()
    counter = DominanceCounter()
    pruned = 0
    rows = block.shape[0]
    if prefix is not None and prefix.shape[0]:
        keep = prefix_filter(block, prefix, counter)
        pruned = int(rows - int(keep.sum()))
        if pruned:
            block = block[keep]
            ids = ids[keep]
    if block.shape[0] == 0:
        return np.empty(0, dtype=np.intp), counter.tests, pruned, watch.elapsed()
    if defer and block.shape[0] <= rows * _DEFER_SURVIVOR_FRACTION:
        return ids, counter.tests, pruned, watch.elapsed()
    result = _resolve(algorithm, index_backend).compute(
        Dataset(block), counter=counter
    )
    return ids[result.indices], counter.tests, pruned, watch.elapsed()


def _resolve(algorithm: str, index_backend: str) -> "SkylineAlgorithm | SubsetBoost":
    """Instantiate ``algorithm``; backends only apply to boosted names."""
    if algorithm.lower().endswith("-subset"):
        return get_algorithm(algorithm, index_backend=index_backend)
    return get_algorithm(algorithm)


class SkylineWorkerPool:
    """A reusable process pool with a shared-memory dataset cache.

    Parameters
    ----------
    workers:
        Minimum pool size; the pool grows (restarting once) if a call needs
        more concurrent blocks.  Defaults to :func:`default_workers`.
    max_segments:
        Distinct datasets cached in shared memory before eviction.

    Attributes
    ----------
    stats:
        Plain-dict counters — ``pool_starts``, ``segments_created``,
        ``segments_reused``, ``order_segments_created`` and
        ``tasks_dispatched`` — so tests and benchmarks can assert that
        repeated calls re-pickle nothing.
    block_histogram:
        A :class:`~repro.obs.histogram.LogHistogram` of per-block worker
        wall times across every dispatch this pool served.  Per-call
        histograms merge in losslessly (:meth:`observe_block_times`), so
        the pool-lifetime p99 equals the histogram of every block ever
        timed.
    """

    def __init__(
        self, workers: int | None = None, max_segments: int = _MAX_SEGMENTS
    ) -> None:
        if workers is not None and workers < 1:
            raise InvalidParameterError(f"workers must be >= 1, got {workers}")
        self._size_hint = workers if workers is not None else default_workers()
        self._max_segments = max(1, max_segments)
        self._pool: mp.pool.Pool | None = None
        self._processes = 0
        # key -> (segment, source array).  The strong reference to the
        # source array pins its id() so the cache key cannot be recycled
        # onto a different array, and dict order gives FIFO eviction.
        self._segments: dict[
            tuple[int, tuple[int, ...], str],
            tuple[shared_memory.SharedMemory, np.ndarray],
        ] = {}
        # Scan-order segments ride alongside their dataset's segment under
        # the same key (created on demand, evicted together): the order is
        # a pure function of the values, so dataset identity keys it too.
        self._order_segments: dict[
            tuple[int, tuple[int, ...], str],
            tuple[shared_memory.SharedMemory, np.ndarray],
        ] = {}
        self._lock = threading.Lock()
        self.stats = {
            "pool_starts": 0,
            "segments_created": 0,
            "segments_reused": 0,
            "order_segments_created": 0,
            "tasks_dispatched": 0,
        }
        self.block_histogram = LogHistogram()

    def observe_block_times(self, histogram: LogHistogram) -> None:
        """Merge one dispatch's per-block wall-time histogram into the pool's.

        Bucket layouts are identical (both default-constructed), so the
        merge is lossless: the pool histogram equals one histogram over
        the concatenation of every block time ever observed.
        """
        with self._lock:
            self.block_histogram.merge(histogram)

    @property
    def processes(self) -> int:
        """Current pool size (0 before the first dispatch)."""
        return self._processes

    def _ensure_pool(self, needed: int) -> mp.pool.Pool:
        target = max(needed, self._size_hint)
        if self._pool is None or self._processes < needed:
            if self._pool is not None:
                self._pool.terminate()
                self._pool.join()
            method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
            self._pool = mp.get_context(method).Pool(processes=target)
            self._processes = target
            self.stats["pool_starts"] += 1
        return self._pool

    @staticmethod
    def _key(values: np.ndarray) -> tuple[int, tuple[int, ...], str]:
        return (id(values), values.shape, str(values.dtype))

    def _evict_locked(self, key: tuple[int, tuple[int, ...], str]) -> None:
        shm, _source = self._segments.pop(key)
        shm.close()
        shm.unlink()
        order = self._order_segments.pop(key, None)
        if order is not None:
            order[0].close()
            order[0].unlink()

    def _segment_for(self, values: np.ndarray) -> str:
        key = self._key(values)
        with self._lock:
            cached = self._segments.get(key)
            if cached is not None:
                self.stats["segments_reused"] += 1
                return cached[0].name
            while len(self._segments) >= self._max_segments:
                self._evict_locked(next(iter(self._segments)))
            shm = shared_memory.SharedMemory(
                create=True, size=max(values.nbytes, 1)
            )
            np.ndarray(values.shape, dtype=values.dtype, buffer=shm.buf)[
                ...
            ] = values
            self._segments[key] = (shm, values)
            self.stats["segments_created"] += 1
            return shm.name

    def _order_segment_for(self, values: np.ndarray, order: np.ndarray) -> str:
        """The shared segment holding ``values``'s scan order, cached.

        ``order`` must be the canonical monotone order of ``values``
        (:func:`repro.core.prefix.monotone_order`) — it is a pure function
        of the values, so the segment is keyed and cached by dataset
        identity exactly like the values segment, and a recomputed but
        identical order array hits the cache.
        """
        key = self._key(values)
        with self._lock:
            cached = self._order_segments.get(key)
            if cached is not None:
                return cached[0].name
            contiguous = np.ascontiguousarray(order, dtype=np.intp)
            shm = shared_memory.SharedMemory(
                create=True, size=max(contiguous.nbytes, 1)
            )
            np.ndarray(contiguous.shape, dtype=np.intp, buffer=shm.buf)[
                ...
            ] = contiguous
            self._order_segments[key] = (shm, contiguous)
            self.stats["order_segments_created"] += 1
            return shm.name

    def map_blocks(
        self,
        values: np.ndarray,
        pairs: list[tuple[int, int]],
        algorithm: str,
        index_backend: str = "map",
        order: np.ndarray | None = None,
        prefix: np.ndarray | None = None,
        filter_head: bool = True,
        defer_tail: bool = False,
        head_blocks: int = 1,
        processes: int | None = None,
    ) -> list[tuple[np.ndarray, int, int, float]]:
        """Survivor ids of each ``(lo, hi)`` block, with test/pruned counts
        and the block's worker-side wall time.

        ``order`` switches the blocks from row ranges to ranges of the
        shared scan order; ``prefix`` rows filter every block worker-side
        before its local scan.  ``filter_head=False`` exempts the first
        block — under sort-order partitioning the prefix points are head
        rows, so the head's local skyline is provably unchanged by the
        filter and only its charge would remain.  ``defer_tail=True`` lets
        every block from index ``head_blocks`` on skip its local scan when
        the filter pruned well (see :data:`_DEFER_SURVIVOR_FRACTION`); the
        deferred survivors are resolved once by the caller's seeded merge.
        The first ``head_blocks`` tasks (the subdivided head region) always
        run their local scans — their survivors feed the merge directly.
        ``processes`` caps the pool size; surplus tasks queue behind the
        cap instead of growing the pool.
        """
        name = self._segment_for(values)
        order_name = (
            self._order_segment_for(values, order) if order is not None else None
        )
        shape, dtype = values.shape, str(values.dtype)
        tasks = [
            (
                name,
                shape,
                dtype,
                order_name,
                int(lo),
                int(hi),
                algorithm,
                index_backend,
                prefix if (filter_head or index > 0) else None,
                defer_tail and index >= head_blocks,
            )
            for index, (lo, hi) in enumerate(pairs)
        ]
        needed = len(tasks) if processes is None else min(len(tasks), processes)
        pool = self._ensure_pool(needed)
        self.stats["tasks_dispatched"] += len(tasks)
        return pool.map(_shm_local_skyline, tasks)

    def close(self) -> None:
        """Terminate the processes and unlink every cached segment."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
            self._processes = 0
        with self._lock:
            for shm, _source in self._segments.values():
                shm.close()
                shm.unlink()
            self._segments.clear()
            for shm, _source in self._order_segments.values():
                shm.close()
                shm.unlink()
            self._order_segments.clear()

    def __enter__(self) -> "SkylineWorkerPool":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


_default_pool: SkylineWorkerPool | None = None
_default_pool_lock = threading.Lock()


def get_pool(workers: int | None = None) -> SkylineWorkerPool:
    """The process-wide default pool, created on first use."""
    global _default_pool
    with _default_pool_lock:
        if _default_pool is None:
            _default_pool = SkylineWorkerPool(workers)
        return _default_pool


def shutdown_pool() -> None:
    """Tear down the default pool (idempotent; registered with atexit)."""
    global _default_pool
    with _default_pool_lock:
        if _default_pool is not None:
            _default_pool.close()
            _default_pool = None


atexit.register(shutdown_pool)


def _seeded_union_skyline(
    union: Dataset,
    seed_positions: np.ndarray,
    merge_algorithm: str,
    index_backend: str,
    counter: DominanceCounter,
) -> np.ndarray | None:
    """Skyline of ``union`` with ``seed_positions`` accepted test-free.

    ``seed_positions`` (union-local row indices, strongest first) must be
    known global skyline points — under sort-order partitioning the head
    block's local skyline qualifies: the monotone order guarantees no
    later-ranked point dominates an earlier-ranked one, so a point
    undominated within the head block is undominated globally.  Seeds are
    planted in the scan container before any test; only the non-seed rows
    are scanned, and every dominator a scanned row can have is either a
    Merge pivot (excluded from the remaining set by construction), a seed,
    or an earlier-ranked scanned skyline point the host has already
    accepted — so the returned id set is exactly the unseeded skyline.

    Returns ``None`` when ``merge_algorithm`` resolves to an algorithm
    without the boostable scan contract (no seedable container); the
    caller falls back to the unseeded merge.
    """
    algorithm = _resolve(merge_algorithm, index_backend)
    n, d = union.cardinality, union.dimensionality
    tracer = current_tracer()

    if isinstance(algorithm, SubsetBoost) and d >= 2:
        sigma = (
            algorithm.sigma if algorithm.sigma is not None else default_threshold(d)
        )
        merged = merge(
            union, sigma, counter, pivot_strategy=algorithm.pivot_strategy
        )
        skyline = np.asarray(merged.initial_skyline_ids, dtype=np.intp)
        if merged.remaining_ids.size == 0:
            return skyline
        masks = np.zeros(n, dtype=np.int64)
        masks[merged.remaining_ids] = merged.masks
        store: SkylineContainer
        if algorithm.container == "subset":
            store = SubsetContainer(
                union.values,
                d,
                counter,
                memoize=algorithm.memoize,
                backend=index_backend,
            )
        else:
            store = ListContainer(union.values)
        remaining = np.zeros(n, dtype=bool)
        remaining[merged.remaining_ids] = True
        # Seeds still in the remaining set enter the container directly
        # (seeds pruned by Merge are pivots or pivot duplicates — already
        # in the initial skyline).  Strongest-first insertion keeps the
        # early-exit scans over returned candidate blocks cheap.
        seeds = seed_positions[remaining[seed_positions]]
        scan_mask = remaining
        scan_mask[seed_positions] = False
        scan_ids = np.flatnonzero(scan_mask)
        for position in seeds.tolist():
            store.add(position, int(masks[position]))
        host = algorithm.host
        scan_skyline: list[int] = []
        if scan_ids.size:
            with tracer.span(
                "scan",
                counter=counter,
                host=host.name,
                container=algorithm.container,
                points=int(scan_ids.size),
                seeded=int(seeds.size),
                boosted=True,
                index_backend=(
                    index_backend if algorithm.container == "subset" else None
                ),
            ):
                scan_skyline = host.run_phase(
                    union, scan_ids, masks, store, counter
                )
        return np.concatenate(
            [skyline, seeds, np.asarray(scan_skyline, dtype=np.intp)]
        )

    host = algorithm.host if isinstance(algorithm, SubsetBoost) else algorithm
    if not isinstance(host, BoostableHost):
        return None
    masks = np.zeros(n, dtype=np.int64)
    container = ListContainer(union.values)
    for position in seed_positions.tolist():
        container.add(position, 0)
    scan_mask = np.ones(n, dtype=bool)
    scan_mask[seed_positions] = False
    scan_ids = np.flatnonzero(scan_mask)
    scan_skyline = []
    if scan_ids.size:
        with tracer.span(
            "scan",
            counter=counter,
            host=host.name,
            container="list",
            points=int(scan_ids.size),
            seeded=int(seed_positions.size),
            boosted=False,
        ):
            scan_skyline = host.run_phase(
                union, scan_ids, masks, container, counter
            )
    return np.concatenate(
        [seed_positions, np.asarray(scan_skyline, dtype=np.intp)]
    )


def parallel_skyline(
    data: Dataset | np.ndarray,
    workers: int | None = None,
    algorithm: str = "sfs",
    merge_algorithm: str = "sfs",
    counter: DominanceCounter | None = None,
    pool: SkylineWorkerPool | None = None,
    index_backend: str = "map",
    partition: str = "sorted",
    prefix_size: int | None = None,
    block_growth: float = 1.0,
    order: np.ndarray | None = None,
) -> np.ndarray:
    """Compute the skyline with ``workers`` processes; returns sorted row ids.

    Parameters
    ----------
    workers:
        Number of blocks / worker processes; ``1`` runs sequentially.
        Defaults to :func:`default_workers` (the CPU count).
    algorithm:
        Sequential algorithm used for each block's local skyline.
    merge_algorithm:
        Algorithm used for the final skyline over the union of local
        skylines.
    pool:
        A :class:`SkylineWorkerPool` to run on; defaults to the shared
        process-wide pool, so consecutive calls reuse workers and the
        dataset's shared-memory segments.
    index_backend:
        Subset-index backend (``"map"``/``"flat"``) used wherever a
        ``*-subset`` algorithm runs — the per-block local scans and, when
        ``merge_algorithm`` is boosted, the merge over the union of local
        skylines.  Plain algorithms ignore it.
    partition:
        ``"sorted"`` (default) cuts blocks along the monotone entropy
        order so the skyline-dense head lands in the first block;
        ``"even"`` is the PR 5 row-range split.
    prefix_size:
        Shared-survivor prefix points broadcast to every worker; ``0``
        disables the exchange, ``None`` uses the default
        (:data:`_DEFAULT_PREFIX_SIZE`).  The prefix is selected from the
        monotone order, so its points are guaranteed global skyline points
        and the result is bit-identical to serial for any size.
    block_growth:
        Geometric block-size growth along the partition order (see
        :func:`repro.core.prefix.block_bounds`); ``1.0`` is an even split.
    order:
        A precomputed :func:`repro.core.prefix.monotone_order` of the
        values (e.g. a :class:`~repro.engine.prepared.PreparedDataset`
        artefact); computed on the fly when omitted.
    """
    dataset = as_dataset(data)
    if workers is None:
        workers = default_workers()
    if workers < 1:
        raise InvalidParameterError(f"workers must be >= 1, got {workers}")
    if partition not in ("sorted", "even"):
        raise InvalidParameterError(
            f"partition must be 'sorted' or 'even', got {partition!r}"
        )
    if prefix_size is not None and prefix_size < 0:
        raise InvalidParameterError(
            f"prefix_size must be >= 0, got {prefix_size}"
        )
    counter = counter if counter is not None else DominanceCounter()
    n = dataset.cardinality
    workers = min(workers, n)

    if workers == 1:
        result = _resolve(algorithm, index_backend).compute(
            dataset, counter=counter
        )
        return result.indices

    tracer = current_tracer()
    values = dataset.values
    size = _DEFAULT_PREFIX_SIZE if prefix_size is None else prefix_size
    size = min(size, n)

    with tracer.span(
        "parallel.prefix",
        counter=counter,
        partition=partition,
        prefix_size=size,
        n=n,
    ) as prefix_span:
        need_order = partition == "sorted" or size > 0
        if order is None and need_order:
            order = monotone_order(values)
        if size > 0:
            assert order is not None
            prefix_ids = select_prefix(values, order, size, counter)
            prefix = np.array(values[prefix_ids], copy=True)
        else:
            prefix = None
        prefix_span.set(prefix_points=0 if prefix is None else len(prefix))

    pairs = block_bounds(n, workers, block_growth)
    head_blocks = 1
    if partition == "sorted":
        # Subdivide the head region into even sub-blocks: the head holds
        # the skyline-dense rows whose local scan dominates the map
        # phase's wall clock, and an even split spreads it across every
        # worker.  Only the first sub-block skips the prefix filter (its
        # rows contain the prefix points); none of them ever defer —
        # their local skylines feed the seeded merge.
        head_lo, head_hi = pairs[0]
        head_rows = head_hi - head_lo
        splits = min(workers, max(1, head_rows // _MIN_HEAD_SUB_ROWS))
        if n < _HEAD_SPLIT_MIN_N:
            splits = 1
        if splits > 1:
            pairs = [
                (head_lo + lo, head_lo + hi)
                for lo, hi in block_bounds(head_rows, splits, 1.0)
            ] + pairs[1:]
            head_blocks = splits
    pool = pool if pool is not None else get_pool(workers)
    events = current_event_log()
    if events.enabled:
        events.emit(
            "pool.dispatch",
            blocks=len(pairs),
            workers=workers,
            algorithm=algorithm,
            partition=partition,
            n=n,
        )
    with tracer.span(
        "parallel.map",
        counter=counter,
        blocks=len(pairs),
        head_blocks=head_blocks,
        algorithm=algorithm,
        index_backend=index_backend,
        partition=partition,
        n=n,
    ) as map_span:
        locals_ = pool.map_blocks(
            values,
            pairs,
            algorithm,
            index_backend=index_backend,
            order=order if partition == "sorted" else None,
            prefix=prefix,
            filter_head=partition != "sorted",
            defer_tail=partition == "sorted",
            head_blocks=head_blocks,
            processes=workers,
        )
        parts: list[np.ndarray] = []
        pruned_total = 0
        block_times = LogHistogram()
        for block_ids, tests, pruned, block_wall_s in locals_:
            counter.add(tests)
            parts.append(block_ids)
            pruned_total += pruned
            block_times.add(block_wall_s)
        # Per-block latencies merge losslessly into the pool-lifetime
        # histogram (identical bucket layouts), so pool.block_histogram
        # reports the true p99 across every dispatch it ever served.
        pool.observe_block_times(block_times)
        candidates = assemble_candidates(parts)
        map_span.set(
            candidates=int(candidates.size),
            pruned_by_prefix=pruned_total,
            block_wall_p50_s=block_times.quantile(0.5),
            block_wall_max_s=block_times.max,
        )

    if len(parts) == 1:
        # A single non-empty block covered the whole dataset: its local
        # skyline is already the global skyline, nothing to merge.
        return candidates

    with tracer.span(
        "parallel.merge",
        counter=counter,
        candidates=int(candidates.size),
        algorithm=merge_algorithm,
        index_backend=index_backend,
    ) as merge_span:
        local_skyline: np.ndarray | None = None
        seed_positions: np.ndarray | None = None
        if partition == "sorted":
            # First-sub-block survivors are global skyline points (the
            # monotone order admits no later-ranked dominator), so they
            # seed the merge container test-free — strongest rank first —
            # and only the other blocks' candidates are scanned.
            head = np.sort(parts[0])
            assert order is not None
            rank = np.empty(n, dtype=np.intp)
            rank[order] = np.arange(n, dtype=np.intp)
            seed_positions = np.searchsorted(candidates, head)
            seed_positions = seed_positions[np.argsort(rank[head])]
            merge_span.set(seeds=int(seed_positions.size))
        union = Dataset(
            dataset.values[candidates], name=f"{dataset.name}[union]"
        )
        if seed_positions is not None:
            local_skyline = _seeded_union_skyline(
                union, seed_positions, merge_algorithm, index_backend, counter
            )
        if local_skyline is None:
            merged = _resolve(merge_algorithm, index_backend).compute(
                union, counter=counter
            )
            local_skyline = np.asarray(merged.indices, dtype=np.intp)
    return np.sort(candidates[local_skyline])
