"""Multi-core skyline computation (the parallelisation of Chester et al. [6]).

The paper takes its real datasets from Chester et al.'s multicore skyline
study; this module implements the classic two-phase parallel scheme that
work popularised:

1. partition the dataset into blocks and compute each block's *local
   skyline* in a worker process (any registered sequential algorithm);
2. merge: the global skyline is the skyline of the union of local
   skylines, computed sequentially (the union is typically tiny compared
   with the input).

Correctness is immediate: a globally undominated point is undominated in
its own block, so the global skyline is a subset of the union of local
skylines.  Dominance tests from all workers and the merge phase are summed
into the caller's counter.

Execution model
---------------
Work runs on a persistent :class:`SkylineWorkerPool`.  Instead of pickling
the coordinate array into every worker on every call, the pool copies each
distinct dataset once into a ``multiprocessing.shared_memory`` segment;
workers attach by name and read only their ``[lo, hi)`` slice.  Repeated
calls over the same dataset reuse both the processes and the segment —
observable through :attr:`SkylineWorkerPool.stats`.
"""

from __future__ import annotations

import atexit
import multiprocessing as mp
import os
import threading
from multiprocessing import shared_memory

from typing import TYPE_CHECKING

import numpy as np

from repro.algorithms.registry import get_algorithm
from repro.dataset import Dataset, as_dataset
from repro.errors import InvalidParameterError
from repro.obs.trace import current_tracer
from repro.stats.counters import DominanceCounter

if TYPE_CHECKING:
    from repro.algorithms.base import SkylineAlgorithm
    from repro.core.boost import SubsetBoost

__all__ = [
    "SkylineWorkerPool",
    "default_workers",
    "get_pool",
    "parallel_skyline",
    "shutdown_pool",
]

#: Segments kept alive per pool before the least recently created is
#: unlinked.  Each segment pins its source array in memory, so the cache is
#: deliberately small — parallel workloads typically hammer one dataset.
_MAX_SEGMENTS = 4


def default_workers() -> int:
    """Default block/worker count: the CPU count, capped at 8, at least 1."""
    return max(1, min(os.cpu_count() or 1, 8))


def _shm_local_skyline(
    args: tuple[str, tuple[int, ...], str, int, int, str, str],
) -> tuple[np.ndarray, int]:
    """Worker: skyline indices (block-local) and test count of one block.

    The block is sliced out of the shared segment and copied before the
    segment is detached, so the compute phase never holds shared pages.
    """
    shm_name, shape, dtype, lo, hi, algorithm, index_backend = args
    # Pool workers (fork or spawn) inherit the owner's resource tracker,
    # so attaching re-registers the already-registered name — a set-level
    # no-op.  The owner alone unlinks, on eviction, close() or atexit;
    # unregistering here instead would drop the owner's registration and
    # spam KeyErrors in the tracker (bpo-39959).
    shm = shared_memory.SharedMemory(name=shm_name)
    try:
        values = np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf)
        block = np.array(values[lo:hi], copy=True)
    finally:
        shm.close()
    counter = DominanceCounter()
    result = _resolve(algorithm, index_backend).compute(
        Dataset(block), counter=counter
    )
    return result.indices, counter.tests


def _resolve(algorithm: str, index_backend: str) -> "SkylineAlgorithm | SubsetBoost":
    """Instantiate ``algorithm``; backends only apply to boosted names."""
    if algorithm.lower().endswith("-subset"):
        return get_algorithm(algorithm, index_backend=index_backend)
    return get_algorithm(algorithm)


class SkylineWorkerPool:
    """A reusable process pool with a shared-memory dataset cache.

    Parameters
    ----------
    workers:
        Minimum pool size; the pool grows (restarting once) if a call needs
        more concurrent blocks.  Defaults to :func:`default_workers`.
    max_segments:
        Distinct datasets cached in shared memory before eviction.

    Attributes
    ----------
    stats:
        Plain-dict counters — ``pool_starts``, ``segments_created``,
        ``segments_reused`` and ``tasks_dispatched`` — so tests and
        benchmarks can assert that repeated calls re-pickle nothing.
    """

    def __init__(
        self, workers: int | None = None, max_segments: int = _MAX_SEGMENTS
    ) -> None:
        if workers is not None and workers < 1:
            raise InvalidParameterError(f"workers must be >= 1, got {workers}")
        self._size_hint = workers if workers is not None else default_workers()
        self._max_segments = max(1, max_segments)
        self._pool: mp.pool.Pool | None = None
        self._processes = 0
        # key -> (segment, source array).  The strong reference to the
        # source array pins its id() so the cache key cannot be recycled
        # onto a different array, and dict order gives FIFO eviction.
        self._segments: dict[
            tuple[int, tuple[int, ...], str],
            tuple[shared_memory.SharedMemory, np.ndarray],
        ] = {}
        self._lock = threading.Lock()
        self.stats = {
            "pool_starts": 0,
            "segments_created": 0,
            "segments_reused": 0,
            "tasks_dispatched": 0,
        }

    @property
    def processes(self) -> int:
        """Current pool size (0 before the first dispatch)."""
        return self._processes

    def _ensure_pool(self, needed: int) -> mp.pool.Pool:
        target = max(needed, self._size_hint)
        if self._pool is None or self._processes < needed:
            if self._pool is not None:
                self._pool.terminate()
                self._pool.join()
            method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
            self._pool = mp.get_context(method).Pool(processes=target)
            self._processes = target
            self.stats["pool_starts"] += 1
        return self._pool

    def _segment_for(self, values: np.ndarray) -> str:
        key = (id(values), values.shape, str(values.dtype))
        with self._lock:
            cached = self._segments.get(key)
            if cached is not None:
                self.stats["segments_reused"] += 1
                return cached[0].name
            while len(self._segments) >= self._max_segments:
                oldest = next(iter(self._segments))
                shm, _source = self._segments.pop(oldest)
                shm.close()
                shm.unlink()
            shm = shared_memory.SharedMemory(
                create=True, size=max(values.nbytes, 1)
            )
            np.ndarray(values.shape, dtype=values.dtype, buffer=shm.buf)[
                ...
            ] = values
            self._segments[key] = (shm, values)
            self.stats["segments_created"] += 1
            return shm.name

    def map_blocks(
        self,
        values: np.ndarray,
        pairs: list[tuple[int, int]],
        algorithm: str,
        index_backend: str = "map",
    ) -> list[tuple[np.ndarray, int]]:
        """Local skylines of ``values[lo:hi]`` for each ``(lo, hi)`` pair."""
        name = self._segment_for(values)
        shape, dtype = values.shape, str(values.dtype)
        tasks = [
            (name, shape, dtype, int(lo), int(hi), algorithm, index_backend)
            for lo, hi in pairs
        ]
        pool = self._ensure_pool(len(tasks))
        self.stats["tasks_dispatched"] += len(tasks)
        return pool.map(_shm_local_skyline, tasks)

    def close(self) -> None:
        """Terminate the processes and unlink every cached segment."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
            self._processes = 0
        with self._lock:
            for shm, _source in self._segments.values():
                shm.close()
                shm.unlink()
            self._segments.clear()

    def __enter__(self) -> "SkylineWorkerPool":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


_default_pool: SkylineWorkerPool | None = None
_default_pool_lock = threading.Lock()


def get_pool(workers: int | None = None) -> SkylineWorkerPool:
    """The process-wide default pool, created on first use."""
    global _default_pool
    with _default_pool_lock:
        if _default_pool is None:
            _default_pool = SkylineWorkerPool(workers)
        return _default_pool


def shutdown_pool() -> None:
    """Tear down the default pool (idempotent; registered with atexit)."""
    global _default_pool
    with _default_pool_lock:
        if _default_pool is not None:
            _default_pool.close()
            _default_pool = None


atexit.register(shutdown_pool)


def parallel_skyline(
    data: Dataset | np.ndarray,
    workers: int | None = None,
    algorithm: str = "sfs",
    merge_algorithm: str = "sfs",
    counter: DominanceCounter | None = None,
    pool: SkylineWorkerPool | None = None,
    index_backend: str = "map",
) -> np.ndarray:
    """Compute the skyline with ``workers`` processes; returns sorted row ids.

    Parameters
    ----------
    workers:
        Number of blocks / worker processes; ``1`` runs sequentially.
        Defaults to :func:`default_workers` (CPU count, capped at 8).
    algorithm:
        Sequential algorithm used for each block's local skyline.
    merge_algorithm:
        Algorithm used for the final skyline over the union of local
        skylines.
    pool:
        A :class:`SkylineWorkerPool` to run on; defaults to the shared
        process-wide pool, so consecutive calls reuse workers and the
        dataset's shared-memory segment.
    index_backend:
        Subset-index backend (``"map"``/``"flat"``) used wherever a
        ``*-subset`` algorithm runs — the per-block local scans and, when
        ``merge_algorithm`` is boosted, the merge over the union of local
        skylines.  Plain algorithms ignore it.
    """
    dataset = as_dataset(data)
    if workers is None:
        workers = default_workers()
    if workers < 1:
        raise InvalidParameterError(f"workers must be >= 1, got {workers}")
    counter = counter if counter is not None else DominanceCounter()
    n = dataset.cardinality
    workers = min(workers, n)

    if workers == 1:
        result = _resolve(algorithm, index_backend).compute(
            dataset, counter=counter
        )
        return result.indices

    tracer = current_tracer()
    bounds = np.linspace(0, n, workers + 1, dtype=int)
    pairs = [
        (int(lo), int(hi)) for lo, hi in zip(bounds, bounds[1:]) if hi > lo
    ]
    pool = pool if pool is not None else get_pool(workers)
    with tracer.span(
        "parallel.map",
        counter=counter,
        blocks=len(pairs),
        algorithm=algorithm,
        index_backend=index_backend,
        n=n,
    ):
        locals_ = pool.map_blocks(
            dataset.values, pairs, algorithm, index_backend=index_backend
        )

        candidate_ids: list[int] = []
        for (local_indices, tests), (lo, _hi) in zip(locals_, pairs):
            counter.add(tests)
            candidate_ids.extend((lo + local_indices).tolist())
        candidates = np.asarray(sorted(candidate_ids), dtype=np.intp)

    union = Dataset(dataset.values[candidates], name=f"{dataset.name}[union]")
    with tracer.span(
        "parallel.merge",
        counter=counter,
        candidates=int(candidates.size),
        algorithm=merge_algorithm,
        index_backend=index_backend,
    ):
        merged = _resolve(merge_algorithm, index_backend).compute(
            union, counter=counter
        )
    return candidates[merged.indices]
