"""Incremental skyline maintenance over a stream of inserts and deletes.

Section 7, perspective (3): "adapting the proposed method to updating data
such as data streams".  The batch pipeline indexes skyline points by their
maximum dominating subspace relative to *pivot skyline points*; streaming
generalises the idea with one observation: the superset property of
Lemma 4.3 (``q1 < q2 ⇒ D_{q1<A} ⊇ D_{q2<A}``) holds for **any** fixed set of
anchor points ``A``, whether or not they are (or remain) skyline points.

The structure therefore freezes the first ``anchors`` observed points as
pure geometric anchors, computes every point's subspace mask against them,
and keeps:

- the current skyline in a :class:`~repro.core.container.SubsetContainer`
  (id-only, backend-switchable)
  keyed by those masks — candidate dominators for any probe are retrieved
  with one subset query;
- every dominated live point in a buffer, so deletions of skyline points
  can promote newly exposed points.

Costs: ``insert`` is a subset query plus one vectorised demotion sweep over
the skyline; ``delete`` of a skyline point re-probes each buffered point
against the index in ascending coordinate-sum order (promotions first, so
a promoted point immediately shields the points it dominates).
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import TYPE_CHECKING

import numpy as np

from repro.core.container import SubsetContainer
from repro.dominance import first_dominator
from repro.errors import DimensionMismatchError, InvalidParameterError
from repro.stats.counters import DominanceCounter
from repro.structures import bitset

if TYPE_CHECKING:
    from repro.dataset import Dataset
    from repro.engine import SkylineEngine


class StreamingSkyline:
    """A dynamic skyline over inserts and deletes, subset-index accelerated.

    Parameters
    ----------
    d:
        Dimensionality of the stream.
    anchors:
        Number of leading points frozen as mask anchors.  More anchors give
        finer subspace partitions (fewer candidates per query) at the cost
        of longer mask computation per arrival.
    backend:
        Subset-index backend (``"map"``/``"flat"``), forwarded to
        :class:`~repro.core.container.SubsetContainer`.  Streaming keeps
        no value matrix up front, so the container runs id-only: queries
        return ids and the stream gathers rows from its own point store.

    >>> sky = StreamingSkyline(d=2)
    >>> a = sky.insert([1.0, 4.0]); b = sky.insert([2.0, 2.0])
    >>> c = sky.insert([3.0, 3.0])  # dominated by b
    >>> sorted(sky.skyline_ids()) == [a, b]
    True
    >>> sky.delete(b)
    >>> sorted(sky.skyline_ids()) == [a, c]
    True
    """

    def __init__(
        self,
        d: int,
        anchors: int = 8,
        counter: DominanceCounter | None = None,
        backend: str = "map",
    ) -> None:
        if d < 1:
            raise InvalidParameterError(f"dimensionality must be >= 1, got {d}")
        if anchors < 1:
            raise InvalidParameterError(f"anchors must be >= 1, got {anchors}")
        self._d = d
        self._max_anchors = anchors
        self._anchor_rows: list[np.ndarray] = []
        self._counter = counter if counter is not None else DominanceCounter()
        # Id-only container: streaming gathers rows from its own point
        # store, but index construction stays on the sanctioned backend
        # switch so map/flat selection is a one-argument choice.
        self._store = SubsetContainer(
            None, d, counter=self._counter, backend=backend
        )
        self._points: dict[int, np.ndarray] = {}
        self._masks: dict[int, int] = {}
        self._sky: set[int] = set()
        self._buffer: set[int] = set()
        self._next_id = 0

    @classmethod
    def from_dataset(
        cls,
        data: "Dataset | np.ndarray",
        anchors: int = 8,
        counter: DominanceCounter | None = None,
        engine: "SkylineEngine | None" = None,
        algorithm: str | None = None,
        backend: str = "map",
    ) -> "StreamingSkyline":
        """Bulk-load a dataset as the stream's prefix, batch-computed.

        Equivalent end state to inserting every row in order — row ``i``
        gets stream id ``i``, the first ``min(anchors, n)`` rows become the
        anchor set, and skyline/buffer membership matches — but the initial
        skyline is computed through the engine's planned batch pipeline and
        the anchor masks in one vectorised pass, instead of ``n`` index
        probes.

        ``algorithm`` pins the batch algorithm (``None`` = planner's
        choice); ``engine`` shares prepared caches with other engine users.
        """
        from repro.dataset import as_dataset
        from repro.engine import SkylineEngine

        dataset = as_dataset(data)
        stream = cls(
            dataset.dimensionality, anchors=anchors, counter=counter, backend=backend
        )
        values = dataset.values
        n = dataset.cardinality
        stream._anchor_rows = [values[i].copy() for i in range(min(anchors, n))]
        anchor_block = np.stack(stream._anchor_rows)

        # Vectorised _mask_of over all rows: one dominating-subspace
        # evaluation per (row, anchor) pair, charged as the sequential
        # loader's final mask computation would be.
        stream._counter.add(n * anchor_block.shape[0])
        beats_some_anchor = (values[:, None, :] < anchor_block[None, :, :]).any(axis=1)
        mask_values = beats_some_anchor @ (
            np.int64(1) << np.arange(dataset.dimensionality, dtype=np.int64)
        )

        run_engine = engine if engine is not None else SkylineEngine()
        result = run_engine.execute(dataset, algorithm, counter=stream._counter)
        skyline_ids = set(int(i) for i in result.indices)

        for point_id in range(n):
            stream._points[point_id] = values[point_id].copy()
            stream._masks[point_id] = int(mask_values[point_id])
            if point_id in skyline_ids:
                stream._sky.add(point_id)
                stream._store.add(point_id, stream._masks[point_id])
            else:
                stream._buffer.add(point_id)
        stream._next_id = n
        return stream

    @property
    def dimensionality(self) -> int:
        return self._d

    @property
    def counter(self) -> DominanceCounter:
        """Dominance-test accounting across the stream's lifetime."""
        return self._counter

    def __len__(self) -> int:
        """Number of live (inserted, not deleted) points."""
        return len(self._points)

    def skyline_ids(self) -> list[int]:
        """Sorted ids of the current skyline."""
        return sorted(self._sky)

    def skyline_points(self) -> np.ndarray:
        """Coordinates of the current skyline, ordered by id."""
        ids = self.skyline_ids()
        if not ids:
            return np.empty((0, self._d))
        return np.stack([self._points[i] for i in ids])

    def insert(self, point: Iterable[float]) -> int:
        """Insert a point; returns its stream id."""
        row = np.asarray(list(point), dtype=np.float64)
        if row.shape != (self._d,):
            raise DimensionMismatchError(
                f"expected a point of {self._d} dims, got shape {row.shape}"
            )
        if not np.isfinite(row).all():
            raise InvalidParameterError("point contains NaN or infinite values")
        point_id = self._next_id
        self._next_id += 1
        self._points[point_id] = row
        if len(self._anchor_rows) < self._max_anchors:
            # Lemma 4.3's superset property only holds between masks
            # computed against the SAME anchor set, so growing the set
            # forces a recomputation of every live mask (cheap: it can
            # happen at most `anchors` times, at stream start).
            self._anchor_rows.append(row.copy())
            self._recompute_masks()
        mask = self._mask_of(row)
        self._masks[point_id] = mask

        candidate_ids = self._store.query_ids(mask)
        block = self._gather(candidate_ids)
        if first_dominator(block, row, self._counter) != -1:
            self._buffer.add(point_id)
            return point_id

        # New skyline point: demote every skyline point it now dominates.
        sky_ids = sorted(self._sky)
        if sky_ids:
            sky_block = self._gather(sky_ids)
            self._counter.add(len(sky_ids))
            dominated = np.all(row <= sky_block, axis=1) & ~np.all(
                row == sky_block, axis=1
            )
            for demoted in np.asarray(sky_ids, dtype=np.intp)[dominated]:
                demoted = int(demoted)
                self._sky.discard(demoted)
                self._store.remove(demoted, self._masks[demoted])
                self._buffer.add(demoted)
        self._sky.add(point_id)
        self._store.add(point_id, mask)
        return point_id

    def delete(self, point_id: int) -> None:
        """Delete a live point; promotes newly exposed buffered points."""
        if point_id not in self._points:
            raise KeyError(f"point {point_id} is not live")
        row = self._points.pop(point_id)
        mask = self._masks.pop(point_id)
        if point_id in self._buffer:
            self._buffer.discard(point_id)
            return
        self._sky.discard(point_id)
        self._store.remove(point_id, mask)

        # Promotion sweep: only points the deleted row dominated can become
        # skyline.  Ascending coordinate sum guarantees that a promoted
        # point is indexed before anything it dominates is probed.
        exposed = [
            buf_id
            for buf_id in self._buffer
            if self._charged_dominates(row, self._points[buf_id])
        ]
        exposed.sort(key=lambda i: float(self._points[i].sum()))
        for buf_id in exposed:
            candidate_ids = self._store.query_ids(self._masks[buf_id])
            block = self._gather(candidate_ids)
            if first_dominator(block, self._points[buf_id], self._counter) == -1:
                self._buffer.discard(buf_id)
                self._sky.add(buf_id)
                self._store.add(buf_id, self._masks[buf_id])

    def _recompute_masks(self) -> None:
        """Refresh every live mask and rebuild the index for new anchors."""
        self._store.clear()
        for pid, row in self._points.items():
            self._masks[pid] = self._mask_of(row)
        for pid in self._sky:
            self._store.add(pid, self._masks[pid])

    def _charged_dominates(self, p: np.ndarray, q: np.ndarray) -> bool:
        self._counter.add()
        return bool(np.all(p <= q) and np.any(p < q))

    def _mask_of(self, row: np.ndarray) -> int:
        anchors = np.stack(self._anchor_rows)
        self._counter.add(anchors.shape[0])
        strict = row[None, :] < anchors
        return bitset.from_dims(int(dim) for dim in np.nonzero(strict.any(axis=0))[0])

    def _gather(self, ids: Iterable[int]) -> np.ndarray:
        ids = list(ids)
        if not ids:
            return np.empty((0, self._d))
        return np.stack([self._points[i] for i in ids])
