"""Incremental skyline maintenance over a stream of inserts and deletes.

Section 7, perspective (3): "adapting the proposed method to updating data
such as data streams".  The batch pipeline indexes skyline points by their
maximum dominating subspace relative to *pivot skyline points*; streaming
generalises the idea with one observation: the superset property of
Lemma 4.3 (``q1 < q2 ⇒ D_{q1<A} ⊇ D_{q2<A}``) holds for **any** fixed set of
anchor points ``A``, whether or not they are (or remain) skyline points.

The structure freezes the first ``anchors`` observed points as pure
geometric anchors, computes every point's subspace mask against them, and
keeps the current skyline in a
:class:`~repro.core.container.SubsetContainer` (id-only,
backend-switchable) keyed by those masks — candidate dominators for any
probe are retrieved with one subset query.

Storage is columnar: one amortised-doubling ``(capacity, d)`` row matrix
where the stream id *is* the row index, plus parallel liveness /
skyline-membership / mask arrays.  Stream ids are never reused, so the
matrix only ever grows; deleted rows cost their slot but nothing else.
Sweeps operate on the columnar prefix directly — demotion after an insert
is one vectorised comparison against the gathered skyline block, and the
promotion filter after a delete is one vectorised comparison against the
gathered buffer block — with the same dominance-test accounting the
per-point loops would charge.

Sliding windows: constructing with ``window=k`` evicts the oldest live
point (full delete semantics, promotions included) whenever an insert
pushes the live count above ``k``.  Eviction walks a monotone cursor over
the id space, so finding the oldest live point is amortised O(1).

Every buffered point carries a *witness*: the id of one live point known to
dominate it, recorded when the point is first dominated (insert probe,
demotion, or bulk elimination) and refreshed whenever its witness dies.
Deletes therefore never rescan the buffer — only points whose witness is
among the deleted ids can possibly join the skyline, and exactly those are
re-probed against the surviving skyline (new witness or promotion).  The
witness invariant — every buffered point's witness is live and dominates
it — makes the candidate scan pure bookkeeping: no dominance test is
charged for points whose proof of domination still stands.

Costs: ``insert`` is a subset query plus one vectorised demotion sweep over
the skyline; ``delete``/``delete_many`` re-probe only the witness-orphaned
buffered points, in ascending coordinate-sum order (promotions first, so a
promoted point immediately shields the points it dominates), charging one
dominance test per inspected pair.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import TYPE_CHECKING

import numpy as np

from repro.core.container import SubsetContainer
from repro.dominance import first_dominator
from repro.errors import DimensionMismatchError, InvalidParameterError
from repro.stats.counters import DominanceCounter

if TYPE_CHECKING:
    from repro.dataset import Dataset
    from repro.engine import SkylineEngine

#: Initial row-matrix capacity; doubles whenever the stream outgrows it.
_MIN_CAPACITY = 64

#: Dominator rows compared per vectorised elimination round of the batched
#: promotion sweep.  Dominator blocks are sorted by ascending coordinate
#: sum, so almost every exposed candidate meets a dominator in the first
#: chunk — small chunks keep the charged tests close to what a short-
#: circuiting per-candidate probe would charge while staying vectorised.
_PROMOTION_CHUNK = 64

#: First-chunk row count of the chunk-gathered dominance probe
#: (:meth:`StreamingSkyline._find_dominator`); grows geometrically, same
#: accounting as a sequential early-exit scan of the full candidate set.
_PROBE_CHUNK = 256


class StreamingSkyline:
    """A dynamic skyline over inserts and deletes, subset-index accelerated.

    Parameters
    ----------
    d:
        Dimensionality of the stream.
    anchors:
        Number of leading points frozen as mask anchors.  More anchors give
        finer subspace partitions (fewer candidates per query) at the cost
        of longer mask computation per arrival.
    backend:
        Subset-index backend (``"map"``/``"flat"``), forwarded to
        :class:`~repro.core.container.SubsetContainer`.  Streaming keeps
        no value matrix up front, so the container runs id-only: queries
        return ids and the stream gathers rows from its columnar store.
    window:
        Optional sliding-window size: after every insert, the oldest live
        points are evicted (with full delete/promotion semantics) until at
        most ``window`` points remain live.  ``None`` keeps everything.

    >>> sky = StreamingSkyline(d=2)
    >>> a = sky.insert([1.0, 4.0]); b = sky.insert([2.0, 2.0])
    >>> c = sky.insert([3.0, 3.0])  # dominated by b
    >>> sorted(sky.skyline_ids()) == [a, b]
    True
    >>> sky.delete(b)
    >>> sorted(sky.skyline_ids()) == [a, c]
    True
    """

    def __init__(
        self,
        d: int,
        anchors: int = 8,
        counter: DominanceCounter | None = None,
        backend: str = "map",
        window: int | None = None,
    ) -> None:
        if d < 1:
            raise InvalidParameterError(f"dimensionality must be >= 1, got {d}")
        if anchors < 1:
            raise InvalidParameterError(f"anchors must be >= 1, got {anchors}")
        if window is not None and window < 1:
            raise InvalidParameterError(f"window must be >= 1, got {window}")
        self._d = d
        self._max_anchors = anchors
        self._window = window
        self._counter = counter if counter is not None else DominanceCounter()
        # Id-only container: streaming gathers rows from its own columnar
        # store, but index construction stays on the sanctioned backend
        # switch so map/flat selection is a one-argument choice.
        self._store = SubsetContainer(
            None, d, counter=self._counter, backend=backend
        )
        self._anchor_block = np.empty((anchors, d), dtype=np.float64)
        self._n_anchors = 0
        self._powers = np.int64(1) << np.arange(d, dtype=np.int64)
        # Columnar state: the stream id is the row index into `_rows`; the
        # boolean prefixes `[:_next_id]` encode liveness and skyline
        # membership (buffer = live & ~in_sky).  Ids are never reused.
        self._rows = np.empty((_MIN_CAPACITY, d), dtype=np.float64)
        self._live = np.zeros(_MIN_CAPACITY, dtype=bool)
        self._in_sky = np.zeros(_MIN_CAPACITY, dtype=bool)
        self._mask_arr = np.zeros(_MIN_CAPACITY, dtype=np.int64)
        # Witness column: for each buffered point, the id of one live
        # point that dominates it (-1 for skyline members).  Deletes only
        # re-probe points whose witness died.
        self._witness = np.full(_MIN_CAPACITY, -1, dtype=np.intp)
        self._next_id = 0
        self._live_count = 0
        self._oldest = 0  # monotone eviction cursor for window mode

    @classmethod
    def from_dataset(
        cls,
        data: "Dataset | np.ndarray",
        anchors: int = 8,
        counter: DominanceCounter | None = None,
        engine: "SkylineEngine | None" = None,
        algorithm: str | None = None,
        backend: str = "map",
        window: int | None = None,
        skyline_ids: "Sequence[int] | np.ndarray | None" = None,
    ) -> "StreamingSkyline":
        """Bulk-load a dataset as the stream's prefix, batch-computed.

        Equivalent end state to inserting every row in order — row ``i``
        gets stream id ``i``, the first ``min(anchors, n)`` rows become the
        anchor set, and skyline/buffer membership matches — but the initial
        skyline is computed through the engine's planned batch pipeline and
        the anchor masks in one vectorised pass, instead of ``n`` index
        probes.

        ``algorithm`` pins the batch algorithm (``None`` = planner's
        choice); ``engine`` shares prepared caches with other engine users.
        ``skyline_ids`` short-circuits the engine run when the caller
        already holds the dataset's skyline (the delta-repair warm start of
        :meth:`repro.engine.prepared.PreparedDataset.repair_skyline`): the
        ids are trusted, no dominance tests are charged for them.
        ``window`` must admit the whole prefix — a bulk load that would
        immediately evict rows has no sequential-insert equivalent.
        """
        from repro.dataset import as_dataset

        dataset = as_dataset(data)
        n = dataset.cardinality
        if window is not None and n > window:
            raise InvalidParameterError(
                f"bulk prefix of {n} rows does not fit window={window}"
            )
        stream = cls(
            dataset.dimensionality,
            anchors=anchors,
            counter=counter,
            backend=backend,
            window=window,
        )
        values = dataset.values
        stream._grow_to(n)
        stream._rows[:n] = values
        stream._live[:n] = True
        stream._next_id = n
        stream._live_count = n
        stream._n_anchors = min(anchors, n)
        stream._anchor_block[: stream._n_anchors] = values[: stream._n_anchors]
        anchor_block = stream._anchor_block[: stream._n_anchors]

        # Vectorised _mask_of over all rows: one dominating-subspace
        # evaluation per (row, anchor) pair, charged as the sequential
        # loader's final mask computation would be.
        stream._counter.add(n * anchor_block.shape[0])
        beats_some_anchor = (values[:, None, :] < anchor_block[None, :, :]).any(axis=1)
        stream._mask_arr[:n] = beats_some_anchor @ stream._powers

        if skyline_ids is None:
            from repro.engine import SkylineEngine

            run_engine = engine if engine is not None else SkylineEngine()
            result = run_engine.execute(dataset, algorithm, counter=stream._counter)
            sky = np.asarray(result.indices, dtype=np.intp)
        else:
            sky = np.asarray(skyline_ids, dtype=np.intp)
        stream._in_sky[sky] = True
        masks_list = stream._mask_arr[sky].tolist()
        for point_id, mask in zip(sky.tolist(), masks_list):
            stream._store.add(point_id, mask)
        # Witness discovery: every non-skyline row is dominated by some
        # skyline row; one bulk elimination sweep records a dominator id
        # per buffered point so later deletes re-probe only orphans.  This
        # is the bulk analogue of the per-arrival probe, charged the same
        # way, and it runs once per bulk load.
        buffered = np.flatnonzero(stream._live[:n] & ~stream._in_sky[:n])
        if buffered.size:
            sky_rows, sky_ids_sorted = stream._sky_by_sum()
            _, witness = stream._eliminate(
                stream._rows[buffered], sky_rows, sky_ids_sorted
            )
            stream._witness[buffered] = witness
        return stream

    # -- introspection -------------------------------------------------------

    @property
    def dimensionality(self) -> int:
        return self._d

    @property
    def counter(self) -> DominanceCounter:
        """Dominance-test accounting across the stream's lifetime."""
        return self._counter

    @property
    def window(self) -> int | None:
        """The sliding-window size; ``None`` when unbounded."""
        return self._window

    @property
    def issued_ids(self) -> int:
        """Total stream ids issued so far (live or not; never reused)."""
        return self._next_id

    def __len__(self) -> int:
        """Number of live (inserted, not deleted, not evicted) points."""
        return self._live_count

    def skyline_ids(self) -> list[int]:
        """Sorted ids of the current skyline."""
        return np.flatnonzero(self._in_sky[: self._next_id]).tolist()

    def skyline_points(self) -> np.ndarray:
        """Coordinates of the current skyline, ordered by id."""
        ids = np.flatnonzero(self._in_sky[: self._next_id])
        if ids.size == 0:
            return np.empty((0, self._d), dtype=np.float64)
        return self._rows[ids]

    def live_ids(self) -> list[int]:
        """Sorted ids of every live point (skyline and buffered)."""
        return np.flatnonzero(self._live[: self._next_id]).tolist()

    # -- mutation ------------------------------------------------------------

    def insert(self, point: Iterable[float]) -> int:
        """Insert a point; returns its stream id."""
        row = np.asarray(list(point), dtype=np.float64)
        if row.shape != (self._d,):
            raise DimensionMismatchError(
                f"expected a point of {self._d} dims, got shape {row.shape}"
            )
        if not np.isfinite(row).all():
            raise InvalidParameterError("point contains NaN or infinite values")
        return self._insert_row(row)

    def insert_many(self, rows: "Sequence[Iterable[float]] | np.ndarray") -> list[int]:
        """Insert a block of rows; returns their stream ids.

        The final state is identical to calling :meth:`insert` per row.
        When no window is active and the anchor set is full, inserts that
        the pre-batch skyline already dominates are identified with one
        vectorised elimination sweep and appended as plain buffered points
        — the per-point probe (index query, demotion sweep) runs only for
        the survivors.  Elimination against the pre-batch skyline is sound
        even though survivors may demote points mid-batch: a demoted
        dominator was itself dominated by an earlier insert, which by
        transitivity still dominates the eliminated point.
        """
        block = np.asarray(rows, dtype=np.float64)
        if block.ndim != 2 or block.shape[1] != self._d:
            raise DimensionMismatchError(
                f"expected a (k, {self._d}) block, got shape {block.shape}"
            )
        if not np.isfinite(block).all():
            raise InvalidParameterError("block contains NaN or infinite values")
        k = block.shape[0]
        if (
            self._window is not None
            or self._n_anchors < self._max_anchors
            or k < 2
        ):
            # Window eviction (and anchor growth) interleaves with the
            # arrivals, so the pre-batch skyline is not a stable filter.
            return [self._insert_row(block[i]) for i in range(k)]

        anchors = self._anchor_block[: self._n_anchors]
        self._counter.add(k * anchors.shape[0])
        masks = (block[:, None, :] < anchors[None, :, :]).any(axis=1) @ self._powers

        sky_rows, sky_ids_sorted = self._sky_by_sum()
        dominated, witness = self._eliminate(block, sky_rows, sky_ids_sorted)

        # Bulk allocation: ids are assigned in arrival order either way,
        # and a dominated arrival never influences later probes, so the
        # whole block lands in one columnar write.  Survivors then settle
        # (probe, demote, index) one by one in arrival order.
        base = self._next_id
        self._grow_to(base + k)
        self._rows[base : base + k] = block
        self._live[base : base + k] = True
        self._mask_arr[base : base + k] = masks
        self._witness[base : base + k] = witness
        self._next_id = base + k
        self._live_count += k
        survivors = np.flatnonzero(~dominated)
        if survivors.size:
            self._settle_survivors(base, block, masks, survivors)
        return list(range(base, base + k))

    def delete(self, point_id: int) -> None:
        """Delete a live point; promotes newly exposed buffered points.

        Only buffered points whose recorded witness is the deleted point
        can join the skyline — every other buffered point still holds a
        live dominator — so the candidate scan is an uncharged id
        comparison and dominance tests are spent on the orphans alone.
        """
        point_id = self._checked_live(point_id)
        was_sky = bool(self._in_sky[point_id])
        self._live[point_id] = False
        self._in_sky[point_id] = False
        self._live_count -= 1
        if was_sky:
            self._store.remove(point_id, int(self._mask_arr[point_id]))
        # A demoted (buffered) point can be a witness too, so the orphan
        # scan runs for every delete, skyline member or not.
        buffer = self._buffer_ids()
        if buffer.size == 0:
            return
        orphans = buffer[self._witness[buffer] == point_id]
        self._promote_exposed(orphans, self._rows[orphans])

    def delete_many(self, point_ids: "Sequence[int] | np.ndarray") -> None:
        """Delete a batch of live points with one shared promotion sweep.

        The final state equals deleting the points one by one.  The
        witness column turns exposure into bookkeeping: only buffered
        points whose witness is among the deleted ids are candidates, and
        those orphans flow through one shared vectorised promotion sweep
        (one dominance test per inspected pair).
        """
        ids = np.unique(np.asarray(point_ids, dtype=np.intp))
        if ids.size == 0:
            return
        for point_id in ids.tolist():
            self._checked_live(point_id)
        sky_deleted = ids[self._in_sky[ids]]
        self._live[ids] = False
        self._in_sky[ids] = False
        self._live_count -= int(ids.size)
        masks_list = self._mask_arr[sky_deleted].tolist()
        for point_id, mask in zip(sky_deleted.tolist(), masks_list):
            self._store.remove(point_id, mask)
        buffer = self._buffer_ids()
        if buffer.size == 0:
            return
        orphans = buffer[np.isin(self._witness[buffer], ids)]
        self._promote_exposed(orphans, self._rows[orphans])

    # -- internals -----------------------------------------------------------

    def _append_row(self, row: np.ndarray) -> int:
        """Storage-only arrival: allocate the slot, mark live, no probing."""
        point_id = self._next_id
        self._grow_to(point_id + 1)
        self._rows[point_id] = row
        self._live[point_id] = True
        self._next_id = point_id + 1
        self._live_count += 1
        return point_id

    def _insert_row(self, row: np.ndarray, mask: int | None = None) -> int:
        point_id = self._append_row(row)
        if self._n_anchors < self._max_anchors:
            # Lemma 4.3's superset property only holds between masks
            # computed against the SAME anchor set, so growing the set
            # forces a recomputation of every live mask (cheap: it can
            # happen at most `anchors` times, at stream start).
            self._anchor_block[self._n_anchors] = row
            self._n_anchors += 1
            self._recompute_masks()
            mask = None  # computed against the pre-growth anchor set
        if mask is None:
            mask = self._mask_of(row)
        self._mask_arr[point_id] = mask
        self._settle_new_point(point_id, row, mask)
        self._evict_overflow()
        return point_id

    def _settle_new_point(self, point_id: int, row: np.ndarray, mask: int) -> None:
        """Probe an allocated arrival: buffer it (with witness) or promote.

        On promotion, every skyline point the arrival dominates is demoted
        to the buffer with the arrival as its witness.
        """
        wid = self._find_dominator(row, mask)
        if wid != -1:
            self._witness[point_id] = wid
            return
        # New skyline point: demote every skyline point it now dominates.
        sky_ids = np.flatnonzero(self._in_sky[:point_id])
        if sky_ids.size:
            sky_block = self._rows[sky_ids]
            self._counter.add(int(sky_ids.size))
            dominated = np.all(row <= sky_block, axis=1) & ~np.all(
                row == sky_block, axis=1
            )
            for demoted in sky_ids[dominated].tolist():
                self._in_sky[demoted] = False
                self._store.remove(demoted, int(self._mask_arr[demoted]))
                self._witness[demoted] = point_id
        self._witness[point_id] = -1
        self._in_sky[point_id] = True
        self._store.add(point_id, mask)

    def _settle_survivors(
        self,
        base: int,
        block: np.ndarray,
        masks: np.ndarray,
        survivors: np.ndarray,
    ) -> None:
        """Settle a batch's undominated arrivals against sky and each other.

        Elimination already proved no pre-batch skyline point dominates a
        survivor, so the only possible dominators are survivors promoted
        earlier in the same batch (a since-demoted one still counts: it is
        live and, by transitivity, something in the skyline dominates the
        probe too).  The per-survivor demotion sweeps against the
        pre-batch skyline collapse into one broadcast comparison, charged
        as the sequential sweeps would be; survivor-vs-survivor dominance
        is one pairwise pass, charged per ordered pair.
        """
        sky_ids_cur = np.flatnonzero(self._in_sky[:base])
        srows = block[survivors]
        m = int(survivors.size)
        if sky_ids_cur.size:
            sky_block = self._rows[sky_ids_cur]
            self._counter.add(m * int(sky_ids_cur.size))
            demote = np.all(
                srows[:, None, :] <= sky_block[None, :, :], axis=2
            ) & ~np.all(srows[:, None, :] == sky_block[None, :, :], axis=2)
        else:
            demote = np.zeros((m, 0), dtype=bool)
        if m > 1:
            self._counter.add(m * (m - 1))
            dom_ss = np.all(
                srows[:, None, :] <= srows[None, :, :], axis=2
            ) & ~np.all(srows[:, None, :] == srows[None, :, :], axis=2)
        else:
            dom_ss = np.zeros((m, m), dtype=bool)
        sky_list = sky_ids_cur.tolist()
        promoted: list[int] = []  # positions into `survivors`, in order
        for j in range(m):
            point_id = int(base + survivors[j])
            dominator = next((p for p in promoted if dom_ss[p, j]), None)
            if dominator is not None:
                self._witness[point_id] = int(base + survivors[dominator])
                continue
            for q_idx in np.flatnonzero(demote[j]).tolist():
                q = sky_list[q_idx]
                if self._in_sky[q]:
                    self._in_sky[q] = False
                    self._store.remove(q, int(self._mask_arr[q]))
                    self._witness[q] = point_id
            for p in promoted:
                pid = int(base + survivors[p])
                if self._in_sky[pid] and dom_ss[j, p]:
                    self._in_sky[pid] = False
                    self._store.remove(pid, int(self._mask_arr[pid]))
                    self._witness[pid] = point_id
            self._witness[point_id] = -1
            self._in_sky[point_id] = True
            self._store.add(point_id, int(masks[survivors[j]]))
            promoted.append(j)

    def _promote_exposed(self, exposed: np.ndarray, block: np.ndarray) -> None:
        """Promote exposed buffered points in ascending coordinate-sum order.

        Two phases.  The elimination phase (:meth:`_eliminate`) discards
        candidates the *current* skyline still dominates, vectorised.  The
        few survivors then re-probe the live store per
        candidate in ascending-sum order — a promoted point is indexed
        before anything it dominates is probed, so survivors dominated
        only by *other exposed candidates* resolve exactly as the
        one-by-one delete path would.
        """
        if exposed.size == 0:
            return
        order = np.argsort(block.sum(axis=1), kind="stable")
        exposed = exposed[order]
        block = block[order]
        sky_rows, sky_ids_sorted = self._sky_by_sum()
        dominated, witness = self._eliminate(block, sky_rows, sky_ids_sorted)
        self._witness[exposed] = witness
        for buf_id in exposed[~dominated].tolist():
            mask = int(self._mask_arr[buf_id])
            wid = self._find_dominator(self._rows[buf_id], mask)
            if wid != -1:
                # Dominated by a candidate promoted earlier in this sweep.
                self._witness[buf_id] = wid
            else:
                self._witness[buf_id] = -1
                self._in_sky[buf_id] = True
                self._store.add(buf_id, mask)

    def _sky_by_sum(self) -> tuple[np.ndarray, np.ndarray]:
        """Skyline rows and their ids, sorted by ascending coordinate sum."""
        ids = np.flatnonzero(self._in_sky[: self._next_id])
        rows = self._rows[ids]
        order = np.argsort(rows.sum(axis=1), kind="stable")
        return rows[order], ids[order]

    def _eliminate(
        self, rows: np.ndarray, sky_rows: np.ndarray, sky_ids: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Flag which of ``rows`` some skyline point dominates, vectorised.

        The dominator block — in ascending coordinate-sum order, strongest
        points first — is scanned in ``_PROMOTION_CHUNK``-row rounds
        against every still-undecided candidate at once, dropping
        dominated candidates between rounds.  Candidates are ordered by
        coordinate sum too: once the scan reaches dominators whose sums
        meet a candidate's own, that candidate can never be dominated and
        is finalised without further charge, so the charged tests (one
        per inspected pair) stay near what a short-circuiting sort-first
        scalar scan would charge while every comparison is one numpy
        kernel.

        Returns ``(dominated, witness)``: the flag per row plus the id
        (from ``sky_ids``, aligned with ``sky_rows``) of one dominator per
        dominated row, -1 elsewhere.
        """
        dominated = np.zeros(rows.shape[0], dtype=bool)
        witness = np.full(rows.shape[0], -1, dtype=np.intp)
        if sky_rows.shape[0] == 0 or rows.shape[0] == 0:
            return dominated, witness
        order = np.argsort(rows.sum(axis=1), kind="stable")
        sorted_rows = rows[order]
        sky_sums = sky_rows.sum(axis=1)
        undecided = np.arange(rows.shape[0])
        undecided_sums = sorted_rows.sum(axis=1)
        for start in range(0, sky_rows.shape[0], _PROMOTION_CHUNK):
            # A dominator's sum is strictly below its victim's; candidates
            # whose sums fall at or below every remaining dominator's are
            # survivors — finalise them for free.
            cut = int(
                np.searchsorted(undecided_sums, sky_sums[start], side="right")
            )
            if cut:
                undecided = undecided[cut:]
                undecided_sums = undecided_sums[cut:]
            if undecided.size == 0:
                break
            stop = min(start + _PROMOTION_CHUNK, sky_rows.shape[0])
            chunk = sky_rows[start:stop]
            sub = sorted_rows[undecided]
            self._counter.add(int(undecided.size) * chunk.shape[0])
            # all(<=) plus a strictly smaller coordinate sum is exactly
            # dominance: given all(<=), some coordinate is strict iff the
            # sums differ — one comparison pass instead of two.
            hits = np.all(chunk[None, :, :] <= sub[:, None, :], axis=2) & (
                sky_sums[None, start:stop] < undecided_sums[:, None]
            )
            hit = hits.any(axis=1)
            if hit.any():
                rows_hit = undecided[hit]
                first = np.argmax(hits[hit], axis=1)
                dominated[order[rows_hit]] = True
                witness[order[rows_hit]] = sky_ids[start + first]
                undecided = undecided[~hit]
                undecided_sums = undecided_sums[~hit]
        return dominated, witness

    def _find_dominator(self, row: np.ndarray, mask: int) -> int:
        """Id of an indexed skyline point dominating ``row``, or -1.

        One subset query, then the candidate rows are gathered and tested
        in geometrically growing chunks — candidates are charged exactly
        as :func:`first_dominator`'s sequential early-exit scan charges,
        but a dominated probe never pays the gather of the full candidate
        set.
        """
        ids = self._store.query_ids(mask)
        ids = np.asarray(
            ids if isinstance(ids, np.ndarray) else list(ids), dtype=np.intp
        )
        start, width = 0, _PROBE_CHUNK
        while start < ids.size:
            block = self._rows[ids[start : start + width]]
            idx = first_dominator(block, row, self._counter)
            if idx != -1:
                return int(ids[start + idx])
            start += width
            width *= 2
        return -1

    def _evict_overflow(self) -> None:
        """Window mode: delete oldest live points while over the window."""
        if self._window is None:
            return
        while self._live_count > self._window:
            while not self._live[self._oldest]:
                self._oldest += 1
            self.delete(self._oldest)

    def _checked_live(self, point_id: int) -> int:
        point_id = int(point_id)
        if not (0 <= point_id < self._next_id) or not self._live[point_id]:
            raise KeyError(f"point {point_id} is not live")
        return point_id

    def _buffer_ids(self) -> np.ndarray:
        prefix = slice(0, self._next_id)
        return np.flatnonzero(self._live[prefix] & ~self._in_sky[prefix])

    def _grow_to(self, needed: int) -> None:
        capacity = self._rows.shape[0]
        if needed <= capacity:
            return
        new_capacity = capacity
        while new_capacity < needed:
            new_capacity *= 2
        rows = np.empty((new_capacity, self._d), dtype=np.float64)
        rows[:capacity] = self._rows
        live = np.zeros(new_capacity, dtype=bool)
        live[:capacity] = self._live
        in_sky = np.zeros(new_capacity, dtype=bool)
        in_sky[:capacity] = self._in_sky
        mask_arr = np.zeros(new_capacity, dtype=np.int64)
        mask_arr[:capacity] = self._mask_arr
        witness = np.full(new_capacity, -1, dtype=np.intp)
        witness[:capacity] = self._witness
        self._rows, self._live, self._in_sky, self._mask_arr = (
            rows,
            live,
            in_sky,
            mask_arr,
        )
        self._witness = witness

    def _recompute_masks(self) -> None:
        """Refresh every live mask and rebuild the index for new anchors."""
        self._store.clear()
        live = np.flatnonzero(self._live[: self._next_id])
        anchor_block = self._anchor_block[: self._n_anchors]
        if live.size:
            self._counter.add(int(live.size) * anchor_block.shape[0])
            beats = (self._rows[live][:, None, :] < anchor_block[None, :, :]).any(
                axis=1
            )
            self._mask_arr[live] = beats @ self._powers
        sky = live[self._in_sky[live]]
        masks_list = self._mask_arr[sky].tolist()
        for point_id, mask in zip(sky.tolist(), masks_list):
            self._store.add(point_id, mask)

    def _mask_of(self, row: np.ndarray) -> int:
        anchors = self._anchor_block[: self._n_anchors]
        self._counter.add(anchors.shape[0])
        strict = row[None, :] < anchors
        return int(strict.any(axis=0) @ self._powers)
