"""Subspace skylines and the skycube.

The paper's introduction grounds the subset approach in subspace analysis
([15, 22, 23, 26]) and the skycube [3, 23]: the collection of the skylines
of *every* non-empty subspace.  This module provides both:

- :func:`subspace_skyline` — the skyline of a projection onto a chosen
  dimension subset (points equal on all projected dimensions are mutually
  non-dominating, the standard "skyline of the projection" semantics);
- :class:`Skycube` — all ``2^d - 1`` subspace skylines, queryable by
  dimension subset, with per-subspace sizes for cube analysis.

Each subspace is computed independently with a configurable algorithm;
the cube is exponential in ``d`` by definition, so construction is guarded
to ``d <= 16``.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.dataset import Dataset, as_dataset
from repro.engine import SkylineEngine
from repro.errors import InvalidParameterError
from repro.stats.counters import DominanceCounter
from repro.structures import bitset

_MAX_CUBE_DIMS = 16


def subspace_skyline(
    data: Dataset | np.ndarray,
    dims: Sequence[int],
    algorithm: str = "sfs",
    counter: DominanceCounter | None = None,
    engine: SkylineEngine | None = None,
) -> np.ndarray:
    """Skyline row ids of ``data`` projected onto 0-based dimensions ``dims``.

    With a shared ``engine``, the projected view and its Merge/sort
    artefacts are cached per subspace, so repeated queries over the same
    dimension set reuse the preprocessing (hits are recorded on
    ``counter``).

    >>> import numpy as np
    >>> pts = np.array([[1.0, 9.0], [2.0, 1.0], [3.0, 3.0]])
    >>> list(subspace_skyline(pts, dims=[0]))
    [0]
    """
    dataset = as_dataset(data)
    dims = sorted(set(int(dim) for dim in dims))
    if not dims:
        raise InvalidParameterError("a subspace needs at least one dimension")
    if dims[0] < 0 or dims[-1] >= dataset.dimensionality:
        raise InvalidParameterError(
            f"dimensions {dims} outside [0, {dataset.dimensionality})"
        )
    engine = engine if engine is not None else SkylineEngine()
    view = engine.prepare(dataset).view(dims, counter=counter)
    result = engine.execute(view, algorithm, counter=counter)
    return result.indices


class Skycube:
    """All subspace skylines of a dataset.

    >>> import numpy as np
    >>> cube = Skycube(np.array([[1.0, 2.0], [2.0, 1.0], [3.0, 3.0]]))
    >>> sorted(cube.skyline([0, 1]))
    [0, 1]
    >>> cube.size([0]), cube.size([1])
    (1, 1)
    """

    def __init__(
        self,
        data: Dataset | np.ndarray,
        algorithm: str = "sfs",
        counter: DominanceCounter | None = None,
        engine: SkylineEngine | None = None,
    ) -> None:
        dataset = as_dataset(data)
        d = dataset.dimensionality
        if d > _MAX_CUBE_DIMS:
            raise InvalidParameterError(
                f"skycube of a {d}-D dataset has 2^{d}-1 cuboids; "
                f"refusing above d={_MAX_CUBE_DIMS}"
            )
        self._dataset = dataset
        self._counter = counter if counter is not None else DominanceCounter()
        self._cuboids: dict[int, np.ndarray] = {}
        # One engine for the whole cube: every cuboid's view, Merge result
        # and sort order lands in the same prepared caches, so later
        # queries over any subspace (or a rebuild) are warm.
        engine = engine if engine is not None else SkylineEngine()
        for mask in range(1, 1 << d):
            dims = bitset.to_dims(mask)
            self._cuboids[mask] = subspace_skyline(
                dataset,
                dims,
                algorithm=algorithm,
                counter=self._counter,
                engine=engine,
            )

    @property
    def dimensionality(self) -> int:
        return self._dataset.dimensionality

    @property
    def counter(self) -> DominanceCounter:
        """Total dominance-test accounting across all cuboids."""
        return self._counter

    def __len__(self) -> int:
        """Number of cuboids (``2^d - 1``)."""
        return len(self._cuboids)

    def skyline(self, dims: Sequence[int]) -> np.ndarray:
        """Skyline ids of the subspace spanned by 0-based ``dims``."""
        mask = bitset.from_dims(dims)
        cuboid = self._cuboids.get(mask)
        if cuboid is None:
            raise InvalidParameterError(f"dimensions {list(dims)} not in this cube")
        return cuboid

    def size(self, dims: Sequence[int]) -> int:
        """Skyline size of one subspace."""
        return int(self.skyline(dims).shape[0])

    def sizes(self) -> dict[tuple[int, ...], int]:
        """Mapping of dimension tuple → skyline size, for cube analysis."""
        return {
            tuple(bitset.to_dims(mask)): int(ids.shape[0])
            for mask, ids in self._cuboids.items()
        }
