"""Top-k dominating queries.

The *top-k dominating* query (Papadias et al., TODS 2005) returns the ``k``
points that dominate the most other points — a ranking operator that, like
the skyline, needs no user-defined scoring function.

Candidate pruning uses a structural fact that ties it to the skyband: if
``q`` dominates ``p``, then ``q`` dominates every point ``p`` dominates and
``p`` itself, so ``score(q) >= score(p) + 1``.  A point with ``j``
dominators therefore has ``j`` points strictly outscoring it, which means
**the top-k dominating points always lie inside the k-skyband**.  The
implementation computes the k-skyband (mask-filtered, see
:mod:`repro.extensions.skyband`) and counts dominated points only for its
members — exact counts, one vectorised pass per candidate.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.dataset import Dataset, as_dataset
from repro.errors import InvalidParameterError
from repro.extensions.skyband import skyband
from repro.stats.counters import DominanceCounter

if TYPE_CHECKING:
    from repro.engine import SkylineEngine


def dominance_score(
    data: Dataset | np.ndarray,
    point_id: int,
    counter: DominanceCounter | None = None,
) -> int:
    """Number of dataset points strictly dominated by point ``point_id``."""
    dataset = as_dataset(data)
    values = dataset.values
    if not 0 <= point_id < dataset.cardinality:
        raise InvalidParameterError(
            f"point id {point_id} outside [0, {dataset.cardinality})"
        )
    p = values[point_id]
    if counter is not None:
        counter.add(dataset.cardinality - 1)
    dominated = np.all(p <= values, axis=1) & np.any(p < values, axis=1)
    return int(dominated.sum())


def top_k_dominating(
    data: Dataset | np.ndarray,
    k: int,
    counter: DominanceCounter | None = None,
    engine: "SkylineEngine | None" = None,
) -> list[tuple[int, int]]:
    """The ``k`` points with the highest dominance scores.

    Returns ``(point_id, score)`` pairs sorted by descending score, ties
    broken by ascending id.  Fewer than ``k`` pairs are returned only when
    the dataset is smaller than ``k``.  A shared ``engine`` lets the
    underlying skyband pass reuse its cached anchor-mask preprocessing.

    >>> import numpy as np
    >>> pts = np.array([[1.0, 1.0], [2.0, 2.0], [3.0, 3.0], [0.5, 9.0]])
    >>> top_k_dominating(pts, k=2)
    [(0, 2), (1, 1)]
    """
    dataset = as_dataset(data)
    if k < 1:
        raise InvalidParameterError(f"k must be >= 1, got {k}")
    counter = counter if counter is not None else DominanceCounter()
    k = min(k, dataset.cardinality)
    candidates = sorted(skyband(dataset, k, counter, engine=engine))
    scored = [
        (point_id, dominance_score(dataset, point_id, counter))
        for point_id in candidates
    ]
    scored.sort(key=lambda pair: (-pair[1], pair[0]))
    return scored[:k]
