"""Skylines over partially ordered attribute domains (the ZINC setting).

The paper restricts itself to totally ordered domains and cites ZINC
(Liu & Chan, PVLDB 2010) as the system that "can perform skyline
computation in both totally ordered and partially ordered data attribute
domains".  This module supplies that capability as an extension: attribute
domains may be partial orders (e.g. colour preferences, brand hierarchies,
interval containment), given as directed acyclic preference graphs.

- :class:`PartialOrder` wraps a DAG whose edge ``u -> v`` means "``u`` is
  preferred to ``v``"; dominance within the dimension is reachability,
  computed once into a closure matrix.
- :func:`partial_order_skyline` runs a BNL-style scan under the mixed
  dominance relation (some dimensions totally ordered, some partial).

Dominance over mixed domains: ``p`` dominates ``q`` iff ``p`` is better or
equal in every dimension and strictly better in at least one, where
"better" in a partial-order dimension means reachability in the preference
DAG.  Incomparable values (neither reaches the other) block dominance in
both directions — the semantics ZINC formalises.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Sequence

import networkx as nx
import numpy as np

from repro.errors import InvalidParameterError
from repro.stats.counters import DominanceCounter


class PartialOrder:
    """A preference partial order over a finite domain of values.

    Parameters
    ----------
    edges:
        Pairs ``(better, worse)``; the transitive closure is taken, so
        listing a covering relation suffices.
    values:
        Optional extra domain values that participate in no preference
        (mutually incomparable with everything unless related by edges).

    >>> colours = PartialOrder([("red", "pink"), ("pink", "white")])
    >>> colours.prefers("red", "white")
    True
    >>> colours.prefers("white", "red")
    False
    >>> colours.comparable("red", "red")
    True
    """

    def __init__(
        self,
        edges: Iterable[tuple[Hashable, Hashable]],
        values: Iterable[Hashable] = (),
    ) -> None:
        graph = nx.DiGraph()
        graph.add_edges_from(edges)
        graph.add_nodes_from(values)
        if graph.number_of_nodes() == 0:
            raise InvalidParameterError("a partial order needs at least one value")
        if not nx.is_directed_acyclic_graph(graph):
            cycle = nx.find_cycle(graph)
            raise InvalidParameterError(f"preference graph has a cycle: {cycle}")
        self._graph = graph
        self._index = {value: i for i, value in enumerate(graph.nodes)}
        n = len(self._index)
        closure = np.zeros((n, n), dtype=bool)
        for value in graph.nodes:
            row = self._index[value]
            for worse in nx.descendants(graph, value):
                closure[row, self._index[worse]] = True
        self._closure = closure

    @property
    def domain(self) -> list[Hashable]:
        """All values of the domain, in insertion order."""
        return list(self._index)

    def __contains__(self, value: Hashable) -> bool:
        return value in self._index

    def prefers(self, a: Hashable, b: Hashable) -> bool:
        """True when ``a`` is strictly preferred to ``b``."""
        return bool(self._closure[self._id(a), self._id(b)])

    def at_least_as_good(self, a: Hashable, b: Hashable) -> bool:
        """True when ``a == b`` or ``a`` is strictly preferred to ``b``."""
        return a == b or self.prefers(a, b)

    def comparable(self, a: Hashable, b: Hashable) -> bool:
        """True when the two values are related (either direction, or equal)."""
        return a == b or self.prefers(a, b) or self.prefers(b, a)

    def _id(self, value: Hashable) -> int:
        try:
            return self._index[value]
        except KeyError:
            raise InvalidParameterError(
                f"value {value!r} is not in this partial order's domain"
            ) from None

    def rank_matrix(self, column: Sequence[Hashable]) -> np.ndarray:
        """Map a data column to domain ids (used by the scan's fast path)."""
        return np.asarray([self._id(v) for v in column], dtype=np.intp)


def _dominates_mixed(
    row_p: Sequence,
    row_q: Sequence,
    orders: dict[int, PartialOrder],
) -> bool:
    """Mixed-domain dominance: numeric minimisation + DAG preference."""
    strict = False
    for dim, (a, b) in enumerate(zip(row_p, row_q)):
        order = orders.get(dim)
        if order is None:
            if a > b:
                return False
            if a < b:
                strict = True
        else:
            if a == b:
                continue
            if order.prefers(a, b):
                strict = True
            else:
                return False
    return strict


def partial_order_skyline(
    rows: Sequence[Sequence],
    orders: dict[int, PartialOrder],
    counter: DominanceCounter | None = None,
) -> list[int]:
    """Skyline of mixed totally/partially ordered rows (sorted row ids).

    Parameters
    ----------
    rows:
        A sequence of equal-length records; dimensions not in ``orders``
        are numeric and minimised, the rest hold partial-order values.
    orders:
        0-based dimension index → :class:`PartialOrder`.

    >>> size = PartialOrder([("S", "M"), ("M", "L")])
    >>> partial_order_skyline(
    ...     [(10.0, "S"), (5.0, "L"), (5.0, "M"), (4.0, "L")],
    ...     orders={1: size},
    ... )
    [0, 2, 3]
    """
    if not rows:
        return []
    width = len(rows[0])
    for dim in orders:
        if not 0 <= dim < width:
            raise InvalidParameterError(f"order dimension {dim} outside [0, {width})")
    if any(len(row) != width for row in rows):
        raise InvalidParameterError("all rows must have the same arity")
    counter = counter if counter is not None else DominanceCounter()

    skyline: list[int] = []
    for i, candidate in enumerate(rows):
        dominated = False
        evicted: list[int] = []
        for kept in skyline:
            counter.add()
            if _dominates_mixed(rows[kept], candidate, orders):
                dominated = True
                break
            if _dominates_mixed(candidate, rows[kept], orders):
                evicted.append(kept)
        if dominated:
            continue
        for kept in evicted:
            skyline.remove(kept)
        skyline.append(i)
    return sorted(skyline)
