"""k-skyband computation with the paper's incomparability machinery.

The *k-skyband* (Papadias et al., TODS 2005) generalises the skyline: it is
the set of points dominated by fewer than ``k`` other points (``k = 1``
gives the skyline).  It is the natural "give me slightly more than the
frontier" operator for top-k preference queries.

The subset approach's Merge pruning is **unsound** here — a point dominated
by one pivot can still belong to the skyband for ``k > 1`` — but the
paper's incomparability masks remain valid for any reference point: a
point ``p`` can only dominate ``q`` when ``mask(p) ⊇ mask(q)``
(Lemma 4.3 holds unconditionally for a fixed anchor).  This module
therefore runs a monotone sorted scan that counts dominators only among
mask-superset skyband members, skipping all provably incomparable pairs.

Key invariant of the sorted scan (sum order, strictly monotone): every
dominator of a point precedes it, skyband members are never invalidated
later, and a discarded point's dominators are themselves skyband members —
so counting dominators within the current skyband is exact.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.dataset import Dataset, as_dataset
from repro.dominance import dominance_mask, dominating_subspaces
from repro.errors import InvalidParameterError
from repro.stats.counters import DominanceCounter
from repro.structures import bitset

if TYPE_CHECKING:
    from repro.engine import SkylineEngine


def _count_dominators_capped(
    block: np.ndarray,
    q: np.ndarray,
    cap: int,
    counter: DominanceCounter,
) -> int:
    """Dominators of ``q`` in ``block``, stopping (in accounting) at ``cap``.

    Charges exactly the tests a sequential loop with an early exit at the
    ``cap``-th dominator would pay.
    """
    n = block.shape[0]
    if n == 0:
        return 0
    mask = dominance_mask(block, q)
    total = int(mask.sum())
    if total < cap:
        counter.add(n)
        return total
    # Position of the cap-th dominator: the sequential loop stops there.
    stop = int(np.nonzero(np.cumsum(mask) == cap)[0][0])
    counter.add(stop + 1)
    return cap


def anchor_masks(
    dataset: Dataset, counter: DominanceCounter
) -> np.ndarray:
    """Per-point incomparability masks against the distance-minimal anchor.

    One dominating-subspace computation per point is charged.  The masks
    are a pure function of the dataset, so engine-aware callers cache them
    via :meth:`~repro.engine.prepared.PreparedDataset.artefact`.
    """
    values = dataset.values
    corner = values.min(axis=0)
    shifted = values - corner
    anchor = int(np.argmin(np.einsum("ij,ij->i", shifted, shifted)))
    return dominating_subspaces(values, values[anchor], counter)


def skyband(
    data: Dataset | np.ndarray,
    k: int,
    counter: DominanceCounter | None = None,
    engine: "SkylineEngine | None" = None,
) -> dict[int, int]:
    """The k-skyband: point id → exact dominator count (< ``k``).

    With a shared ``engine``, the anchor-mask preprocessing (one
    dominating-subspace test per point) is computed once per dataset and
    served from the prepared cache on repeated calls — e.g. the skyband
    pass inside :func:`~repro.extensions.topk.top_k_dominating` followed by
    a direct skyband query.

    >>> import numpy as np
    >>> band = skyband(np.array([[1.0, 1.0], [2.0, 2.0], [3.0, 3.0]]), k=2)
    >>> sorted(band.items())
    [(0, 0), (1, 1)]
    """
    dataset = as_dataset(data)
    if k < 1:
        raise InvalidParameterError(f"k must be >= 1, got {k}")
    counter = counter if counter is not None else DominanceCounter()
    values = dataset.values
    n, d = values.shape

    # Anchor masks: valid incomparability filters for any reference point.
    if engine is not None:
        run_counter = counter
        masks = engine.prepare(dataset).artefact(
            "skyband-anchor-masks",
            lambda: anchor_masks(dataset, run_counter),
            counter,
        )
    else:
        masks = anchor_masks(dataset, counter)

    order = np.lexsort((np.arange(n), values.sum(axis=1)))
    band: dict[int, int] = {}
    member_ids: list[int] = []
    member_masks = np.empty(0, dtype=np.int64)
    for point_id in order:
        point_id = int(point_id)
        q_mask = int(masks[point_id])
        # Candidate dominators: skyband members whose mask ⊇ q's mask.
        candidate = bitset.subset_of_many(q_mask, member_masks)
        block = values[np.asarray(member_ids, dtype=np.intp)[candidate]]
        dominators = _count_dominators_capped(block, values[point_id], k, counter)
        if dominators < k:
            band[point_id] = dominators
            member_ids.append(point_id)
            member_masks = np.append(member_masks, np.int64(q_mask))
    return band


def skyband_ids(
    data: Dataset | np.ndarray,
    k: int,
    counter: DominanceCounter | None = None,
    engine: "SkylineEngine | None" = None,
) -> list[int]:
    """Sorted ids of the k-skyband members."""
    return sorted(skyband(data, k, counter, engine=engine))
