"""Extensions implementing the paper's Section 7 perspectives.

- :mod:`repro.extensions.streaming` — incremental skyline maintenance over
  inserts and deletes, accelerated by the subset index (perspective 3:
  "adapting the proposed method to updating data such as data streams").
- :mod:`repro.extensions.skycube` — subspace skylines and full skycube
  enumeration (the subspace-skyline problem family the introduction builds
  on [3, 15, 23, 26]).
- :mod:`repro.extensions.skyband` — the k-skyband operator, reusing the
  paper's incomparability masks without the (unsound-for-k>1) pruning.
- :mod:`repro.extensions.parallel` — two-phase multicore skyline in the
  style of Chester et al. [6], the source of the paper's real datasets.
"""

from repro.extensions.parallel import SkylineWorkerPool, parallel_skyline
from repro.extensions.partialorder import PartialOrder, partial_order_skyline
from repro.extensions.skyband import skyband, skyband_ids
from repro.extensions.skycube import Skycube, subspace_skyline
from repro.extensions.streaming import StreamingSkyline
from repro.extensions.topk import dominance_score, top_k_dominating

__all__ = [
    "PartialOrder",
    "Skycube",
    "SkylineWorkerPool",
    "StreamingSkyline",
    "dominance_score",
    "parallel_skyline",
    "partial_order_skyline",
    "skyband",
    "skyband_ids",
    "subspace_skyline",
    "top_k_dominating",
]
