"""A simulated external-memory substrate with page I/O accounting.

BNL, LESS and D&C were designed as *external* algorithms: their original
cost model counts page reads and writes, not only dominance tests (see the
paper's §2 discussion of Godfrey et al. and Sheng & Tao's I/O-efficient
analysis).  Real disks are unavailable here, so this module simulates one:
rows live in fixed-size pages, every page transfer is charged to an
:class:`IOCounter`, and algorithms that want external-memory fidelity
(e.g. :class:`repro.algorithms.external.ExternalBNL`) stream pages instead
of touching rows directly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import InvalidParameterError


@dataclass
class IOCounter:
    """Page-transfer tally for one simulated-disk session."""

    reads: int = 0
    writes: int = 0

    def read(self, n: int = 1) -> None:
        self.reads += n

    def write(self, n: int = 1) -> None:
        self.writes += n

    @property
    def total(self) -> int:
        return self.reads + self.writes


class PagedFile:
    """A sequence of ``(row_id, row)`` records stored in fixed-size pages.

    Reading iterates page by page, charging one read per page; appending
    buffers rows and charges one write per flushed page.  ``flush`` must be
    called before reading back a file that has buffered rows.
    """

    def __init__(self, io: IOCounter, page_size: int) -> None:
        if page_size < 1:
            raise InvalidParameterError(f"page_size must be >= 1, got {page_size}")
        self._io = io
        self._page_size = page_size
        self._pages: list[list[tuple[int, np.ndarray]]] = []
        self._buffer: list[tuple[int, np.ndarray]] = []

    @classmethod
    def from_rows(
        cls,
        io: IOCounter,
        page_size: int,
        values: np.ndarray,
        charge_writes: bool = False,
    ) -> "PagedFile":
        """Build a file holding every row of ``values`` (ids = row indices).

        The initial input file is assumed to pre-exist on disk, so writes
        are not charged unless ``charge_writes`` is set.
        """
        file = cls(io, page_size)
        for row_id in range(values.shape[0]):
            file._buffer.append((row_id, values[row_id]))
            if len(file._buffer) == page_size:
                file.flush(charge=charge_writes)
        file.flush(charge=charge_writes)
        return file

    @property
    def page_size(self) -> int:
        return self._page_size

    @property
    def n_pages(self) -> int:
        return len(self._pages)

    def __len__(self) -> int:
        """Number of stored records (buffered rows included)."""
        return sum(len(page) for page in self._pages) + len(self._buffer)

    def append(self, row_id: int, row: np.ndarray) -> None:
        """Buffer one record; a full buffer flushes (and charges) a page."""
        self._buffer.append((row_id, row))
        if len(self._buffer) == self._page_size:
            self.flush()

    def flush(self, charge: bool = True) -> None:
        """Write the partial buffer out as a page (no-op when empty)."""
        if not self._buffer:
            return
        self._pages.append(self._buffer)
        self._buffer = []
        if charge:
            self._io.write()

    def pages(self):
        """Yield pages as ``[(row_id, row), ...]`` lists, charging reads."""
        if self._buffer:
            raise InvalidParameterError("flush() the file before reading it back")
        for page in self._pages:
            self._io.read()
            yield page
