"""A minimal in-memory B+-tree.

The Index skyline algorithm of Tan et al. (VLDB 2001) organises points into
``d`` lists, each sorted by the point's minimum coordinate and stored in a
B+-tree so that the lists can be scanned in key order and probed by key.  The
paper under reproduction cites it as the canonical index-based sorting
algorithm, so the substrate is implemented here from scratch.

Keys are ordered by ``<``; duplicate keys are supported by storing all values
for a key in the same leaf slot.  The tree supports insertion, point lookup,
ordered iteration and half-open range scans.  Deletion is not needed by any
algorithm in this library and is intentionally omitted.
"""

from __future__ import annotations

import bisect
from collections.abc import Iterable, Iterator
from typing import Any

from repro.errors import InvalidParameterError


class _Node:
    """A B+-tree node; ``leaf`` nodes carry values, inner nodes carry children."""

    __slots__ = ("keys", "children", "values", "next")

    def __init__(self, leaf: bool) -> None:
        self.keys: list[Any] = []
        self.children: list[_Node] | None = None if leaf else []
        self.values: list[list[Any]] | None = [] if leaf else None
        self.next: _Node | None = None

    @property
    def is_leaf(self) -> bool:
        return self.values is not None


class BPlusTree:
    """An in-memory B+-tree mapping ordered keys to lists of values.

    Parameters
    ----------
    order:
        Maximum number of keys per node; nodes split when they exceed it.
        Must be at least 3.

    >>> tree = BPlusTree(order=4)
    >>> for k in [5, 1, 3, 2, 4]:
    ...     tree.insert(k, str(k))
    >>> [k for k, _ in tree.items()]
    [1, 2, 3, 4, 5]
    >>> tree.get(3)
    ['3']
    """

    def __init__(self, order: int = 32) -> None:
        if order < 3:
            raise InvalidParameterError(f"B+-tree order must be >= 3, got {order}")
        self._order = order
        self._root: _Node = _Node(leaf=True)
        self._size = 0

    def __len__(self) -> int:
        """Number of stored values (duplicates counted)."""
        return self._size

    @property
    def order(self) -> int:
        return self._order

    def insert(self, key: Any, value: Any) -> None:
        """Insert ``value`` under ``key``; duplicate keys accumulate."""
        root = self._root
        split = self._insert(root, key, value)
        if split is not None:
            sep, right = split
            new_root = _Node(leaf=False)
            new_root.keys = [sep]
            new_root.children = [root, right]
            self._root = new_root
        self._size += 1

    def _insert(self, node: _Node, key: Any, value: Any) -> tuple[Any, _Node] | None:
        if node.is_leaf:
            assert node.values is not None
            idx = bisect.bisect_left(node.keys, key)
            if idx < len(node.keys) and node.keys[idx] == key:
                node.values[idx].append(value)
                return None
            node.keys.insert(idx, key)
            node.values.insert(idx, [value])
            if len(node.keys) > self._order:
                return self._split_leaf(node)
            return None
        assert node.children is not None
        idx = bisect.bisect_right(node.keys, key)
        split = self._insert(node.children[idx], key, value)
        if split is None:
            return None
        sep, right = split
        node.keys.insert(idx, sep)
        node.children.insert(idx + 1, right)
        if len(node.keys) > self._order:
            return self._split_inner(node)
        return None

    def _split_leaf(self, node: _Node) -> tuple[Any, _Node]:
        assert node.values is not None
        mid = len(node.keys) // 2
        right = _Node(leaf=True)
        right.keys = node.keys[mid:]
        right.values = node.values[mid:]
        node.keys = node.keys[:mid]
        node.values = node.values[:mid]
        right.next = node.next
        node.next = right
        return right.keys[0], right

    def _split_inner(self, node: _Node) -> tuple[Any, _Node]:
        assert node.children is not None
        mid = len(node.keys) // 2
        sep = node.keys[mid]
        right = _Node(leaf=False)
        right.keys = node.keys[mid + 1 :]
        right.children = node.children[mid + 1 :]
        node.keys = node.keys[:mid]
        node.children = node.children[: mid + 1]
        return sep, right

    def get(self, key: Any) -> list[Any]:
        """All values stored under ``key`` (empty list when absent)."""
        node = self._leaf_for(key)
        assert node.values is not None
        idx = bisect.bisect_left(node.keys, key)
        if idx < len(node.keys) and node.keys[idx] == key:
            return list(node.values[idx])
        return []

    def _leaf_for(self, key: Any) -> _Node:
        node = self._root
        while not node.is_leaf:
            assert node.children is not None
            idx = bisect.bisect_right(node.keys, key)
            node = node.children[idx]
        return node

    def items(self) -> Iterator[tuple[Any, Any]]:
        """Yield ``(key, value)`` pairs in key order, duplicates in insertion order."""
        node: _Node | None = self._root
        while node is not None and not node.is_leaf:
            assert node.children is not None
            node = node.children[0]
        while node is not None:
            assert node.values is not None
            for key, values in zip(node.keys, node.values):
                for value in values:
                    yield key, value
            node = node.next

    def keys(self) -> Iterator[Any]:
        """Yield distinct keys in increasing order."""
        node: _Node | None = self._root
        while node is not None and not node.is_leaf:
            assert node.children is not None
            node = node.children[0]
        while node is not None:
            yield from node.keys
            node = node.next

    def range(self, lo: Any, hi: Any) -> Iterator[tuple[Any, Any]]:
        """Yield pairs with ``lo <= key < hi`` in key order."""
        node = self._leaf_for(lo)
        while node is not None:
            assert node.values is not None
            for key, values in zip(node.keys, node.values):
                if key < lo:
                    continue
                if key >= hi:
                    return
                for value in values:
                    yield key, value
            node = node.next

    def min_item(self) -> tuple[Any, Any]:
        """The smallest key and its first value; raises on an empty tree."""
        for item in self.items():
            return item
        raise KeyError("min_item() on an empty B+-tree")

    def check_invariants(self) -> None:
        """Validate structural invariants; used by the test suite.

        Raises ``AssertionError`` when the tree is malformed.
        """
        leaf_depths: set[int] = set()
        self._check_node(self._root, depth=0, leaf_depths=leaf_depths, lo=None, hi=None)
        assert len(leaf_depths) <= 1, f"leaves at different depths: {leaf_depths}"
        keys = list(self.keys())
        assert keys == sorted(keys), "leaf chain is not in key order"
        assert len(keys) == len(set(keys)), "duplicate key slots in leaf chain"

    def _check_node(
        self,
        node: _Node,
        depth: int,
        leaf_depths: set[int],
        lo: Any,
        hi: Any,
    ) -> None:
        assert node.keys == sorted(node.keys)
        if node is not self._root:
            assert len(node.keys) >= 1
        for key in node.keys:
            if lo is not None:
                assert key >= lo, f"key {key} below separator {lo}"
            if hi is not None:
                assert key < hi, f"key {key} not below separator {hi}"
        if node.is_leaf:
            assert node.values is not None
            assert len(node.values) == len(node.keys)
            leaf_depths.add(depth)
            return
        assert node.children is not None
        assert len(node.children) == len(node.keys) + 1
        bounds = [lo, *node.keys, hi]
        for child, child_lo, child_hi in zip(node.children, bounds, bounds[1:]):
            self._check_node(child, depth + 1, leaf_depths, child_lo, child_hi)


def bulk_load(pairs: Iterable[tuple[Any, Any]], order: int = 32) -> BPlusTree:
    """Build a B+-tree from an iterable of ``(key, value)`` pairs."""
    tree = BPlusTree(order=order)
    for key, value in pairs:
        tree.insert(key, value)
    return tree
