"""Integer-backed bitsets representing subspaces.

The paper (Definition 3.3) treats a *subspace* of a ``d``-dimensional dataset
as a subset of the dimension set ``D = {1, ..., d}``.  Throughout this library
dimensions are **0-based** (``0 .. d-1``) and a subspace is a plain Python
``int`` whose bit ``i`` is set when dimension ``i`` belongs to the subspace.

Plain ints are the fastest subset representation available in CPython: subset
tests are single ``&`` operations and :meth:`int.bit_count` gives population
counts in constant time.  They are hashable, so they can key the hash maps of
the subset index (Section 5 of the paper) directly.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from typing import TYPE_CHECKING, TypeVar

if TYPE_CHECKING:  # numpy is only needed for the vectorised annotations
    import numpy as np
    import numpy.typing as npt

EMPTY: int = 0

_MaskOrArray = TypeVar("_MaskOrArray", int, "npt.NDArray[np.int64]")


def from_dims(dims: Iterable[int]) -> int:
    """Build a subspace bitmask from an iterable of 0-based dimensions.

    >>> from_dims([0, 2, 3])
    13
    """
    mask = 0
    for dim in dims:
        if dim < 0:
            raise ValueError(f"dimension must be non-negative, got {dim}")
        mask |= 1 << dim
    return mask


def to_dims(mask: int) -> list[int]:
    """Return the sorted list of 0-based dimensions in ``mask``.

    >>> to_dims(13)
    [0, 2, 3]
    """
    return list(bits_of(mask))


def bits_of(mask: int) -> Iterator[int]:
    """Yield the set bit positions of ``mask`` in increasing order."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def popcount(mask: int) -> int:
    """Number of dimensions in the subspace (``|D'|``)."""
    return mask.bit_count()


def is_subset(a: int, b: int) -> bool:
    """True when subspace ``a`` is a (non-strict) subset of subspace ``b``."""
    return a & ~b == 0


def is_proper_subset(a: int, b: int) -> bool:
    """True when ``a`` is a strict subset of ``b``."""
    return a != b and a & ~b == 0


def is_superset(a: int, b: int) -> bool:
    """True when subspace ``a`` is a (non-strict) superset of subspace ``b``."""
    return b & ~a == 0


def complement(mask: int, d: int) -> int:
    """The reversed subspace ``D \\ mask`` within a ``d``-dimensional space.

    This is the ``D_q^¬`` of Section 5: the subset index stores skyline
    points under the complement of their maximum dominating subspace.
    """
    full = (1 << d) - 1
    if mask & ~full:
        raise ValueError(f"mask {mask:#x} has bits outside a {d}-dim space")
    return full & ~mask


def universe(d: int) -> int:
    """The full space ``D`` for dimensionality ``d`` as a bitmask."""
    if d < 0:
        raise ValueError(f"dimensionality must be non-negative, got {d}")
    return (1 << d) - 1


def has_dim(mask: int, dim: int) -> bool:
    """True when dimension ``dim`` belongs to the subspace ``mask``.

    >>> has_dim(0b101, 2)
    True
    >>> has_dim(0b101, 1)
    False
    """
    return bool(mask >> dim & 1)


def with_dim(mask: int, dim: int) -> int:
    """The subspace ``mask ∪ {dim}``.

    >>> with_dim(0b001, 2)
    5
    """
    return mask | (1 << dim)


def union(a: _MaskOrArray, b: _MaskOrArray) -> _MaskOrArray:
    """The union of two subspaces, ``a ∪ b``.

    Accepts plain ints or (elementwise) numpy integer arrays of masks —
    the Merge phase unions a whole block of per-pivot subspaces at once.

    >>> union(0b001, 0b100)
    5
    """
    return a | b


def subset_of_many(a: int, masks: npt.NDArray[np.int64]) -> npt.NDArray[np.bool_]:
    """Elementwise ``a ⊆ masks[k]`` over a numpy array of subspace masks.

    The vectorised form of :func:`is_subset` used by candidate filters:
    the returned boolean array marks the stored masks that are supersets
    of ``a`` — by Lemma 4.3 the only possible dominators.
    """
    return (a & ~masks) == 0
