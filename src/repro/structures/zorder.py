"""Z-order (Morton) addresses for multidimensional points.

ZSearch / Z-sky (Lee et al., VLDBJ 2010) exploit the fact that the Z-order
curve is *monotone with respect to dominance*: if ``p`` dominates ``q`` (all
coordinates of ``p`` are <= those of ``q`` on the quantisation grid), then
``z(p) <= z(q)``.  Scanning points in Z-address order is therefore a valid
monotone presort for a sorting-based skyline scan, which is how
:mod:`repro.algorithms.zorder_scan` uses this module.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError


def grid_coordinates(values: np.ndarray, bits: int = 16) -> np.ndarray:
    """Quantise an ``(n, d)`` float array onto a ``2**bits`` integer grid.

    The mapping is monotone per dimension (min-max normalised), so dominance
    on the grid is implied by dominance on the raw values.
    """
    if bits < 1 or bits > 21:
        raise InvalidParameterError(f"bits must be in [1, 21], got {bits}")
    values = np.asarray(values, dtype=float)
    if values.ndim != 2:
        raise InvalidParameterError(f"values must be 2-D, got shape {values.shape}")
    lo = values.min(axis=0)
    hi = values.max(axis=0)
    span = np.where(hi > lo, hi - lo, 1.0)
    scaled = (values - lo) / span
    grid = np.floor(scaled * ((1 << bits) - 1)).astype(np.int64)
    return np.clip(grid, 0, (1 << bits) - 1)


def z_address(cell: np.ndarray) -> int:
    """Morton address of a single integer grid cell (arbitrary precision).

    Bit ``b`` of dimension ``i`` lands at position ``b * d + i`` of the
    address, which interleaves all dimensions evenly.
    """
    cell = np.asarray(cell, dtype=np.int64)
    d = cell.shape[0]
    address = 0
    for dim in range(d):
        value = int(cell[dim])
        bit_pos = 0
        while value:
            if value & 1:
                address |= 1 << (bit_pos * d + dim)
            value >>= 1
            bit_pos += 1
    return address


def z_addresses(grid: np.ndarray, bits: int = 16) -> list[int]:
    """Morton addresses for every row of an ``(n, d)`` integer grid array.

    Returns Python ints because ``d * bits`` can exceed 64 bits for the
    high-dimensional datasets in the paper (up to 24-D).
    """
    grid = np.asarray(grid, dtype=np.int64)
    if grid.ndim != 2:
        raise InvalidParameterError(f"grid must be 2-D, got shape {grid.shape}")
    n, d = grid.shape
    addresses = [0] * n
    for dim in range(d):
        column = grid[:, dim]
        for bit_pos in range(bits):
            plane_bit = 1 << bit_pos
            target = 1 << (bit_pos * d + dim)
            hits = np.nonzero(column & plane_bit)[0]
            for row in hits:
                addresses[row] |= target
    return addresses
