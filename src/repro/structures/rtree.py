"""An in-memory R-tree with STR bulk loading.

BBS (Papadias et al., SIGMOD 2003) performs a best-first traversal of an
R-tree over the dataset, expanding entries in increasing *mindist* order
(the L1 distance from the origin to the entry's minimum bounding rectangle).
This module supplies that substrate: an STR (Sort-Tile-Recursive) bulk-loaded
R-tree plus a conventional least-enlargement insert for incremental use.

The tree stores point entries ``(point_id, coords)``; rectangles are plain
``Rect`` objects with ``low``/``high`` coordinate tuples.
"""

from __future__ import annotations

import math
from collections.abc import Iterator, Sequence
from dataclasses import dataclass

import numpy as np

from repro.errors import InvalidParameterError


@dataclass(frozen=True)
class Rect:
    """An axis-aligned minimum bounding rectangle."""

    low: tuple[float, ...]
    high: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.low) != len(self.high):
            raise InvalidParameterError("Rect low/high dimensionality mismatch")
        if any(lo > hi for lo, hi in zip(self.low, self.high)):
            raise InvalidParameterError(f"Rect has low > high: {self}")

    @staticmethod
    def of_point(coords: Sequence[float]) -> "Rect":
        point = tuple(float(c) for c in coords)
        return Rect(point, point)

    @staticmethod
    def union(rects: Sequence["Rect"]) -> "Rect":
        if not rects:
            raise InvalidParameterError("Rect.union of an empty sequence")
        low = tuple(min(r.low[i] for r in rects) for i in range(len(rects[0].low)))
        high = tuple(max(r.high[i] for r in rects) for i in range(len(rects[0].low)))
        return Rect(low, high)

    def contains(self, other: "Rect") -> bool:
        return all(a <= b for a, b in zip(self.low, other.low)) and all(
            a >= b for a, b in zip(self.high, other.high)
        )

    def mindist(self) -> float:
        """L1 distance from the origin to the rectangle (BBS priority key)."""
        return float(sum(max(lo, 0.0) for lo in self.low))

    def enlargement(self, other: "Rect") -> float:
        """Increase in L1 perimeter needed to absorb ``other``."""
        merged = Rect.union([self, other])
        return self._perimeter(merged) - self._perimeter(self)

    @staticmethod
    def _perimeter(rect: "Rect") -> float:
        return float(sum(hi - lo for lo, hi in zip(rect.low, rect.high)))


class _RNode:
    __slots__ = ("rect", "children", "entries")

    def __init__(
        self,
        rect: Rect,
        children: list["_RNode"] | None,
        entries: list[tuple[int, tuple[float, ...]]] | None,
    ) -> None:
        self.rect = rect
        self.children = children
        self.entries = entries

    @property
    def is_leaf(self) -> bool:
        return self.entries is not None


class RTree:
    """An R-tree over point data, bulk loaded with Sort-Tile-Recursive packing.

    Parameters
    ----------
    points:
        Array of shape ``(n, d)``; row ``i`` becomes entry ``(i, coords)``.
    max_entries:
        Node fan-out; both leaves and inner nodes hold at most this many
        children.
    """

    def __init__(self, points: np.ndarray, max_entries: int = 16) -> None:
        if max_entries < 2:
            raise InvalidParameterError(f"max_entries must be >= 2, got {max_entries}")
        points = np.asarray(points, dtype=float)
        if points.ndim != 2:
            raise InvalidParameterError(f"points must be 2-D, got shape {points.shape}")
        self._max_entries = max_entries
        self._d = points.shape[1]
        self._size = points.shape[0]
        self._root = self._bulk_load(points)

    def __len__(self) -> int:
        return self._size

    @property
    def dimensionality(self) -> int:
        return self._d

    @property
    def root(self) -> "_RNode":
        """Root node; exposed for best-first traversals such as BBS."""
        return self._root

    def _bulk_load(self, points: np.ndarray) -> _RNode:
        n = points.shape[0]
        if n == 0:
            empty = Rect((0.0,) * self._d, (0.0,) * self._d)
            return _RNode(empty, children=None, entries=[])
        entries = [(int(i), tuple(float(v) for v in points[i])) for i in range(n)]
        leaves = [
            self._make_leaf(chunk) for chunk in self._str_tiles(entries, key_dim=0)
        ]
        level: list[_RNode] = leaves
        while len(level) > 1:
            packed = [
                _RNode(
                    Rect.union([c.rect for c in chunk]),
                    children=list(chunk),
                    entries=None,
                )
                for chunk in self._str_node_tiles(level)
            ]
            level = packed
        return level[0]

    def _make_leaf(self, entries: list[tuple[int, tuple[float, ...]]]) -> _RNode:
        rect = Rect.union([Rect.of_point(coords) for _, coords in entries])
        return _RNode(rect, children=None, entries=entries)

    def _str_tiles(
        self, entries: list[tuple[int, tuple[float, ...]]], key_dim: int
    ) -> Iterator[list[tuple[int, tuple[float, ...]]]]:
        """Sort-Tile-Recursive partitioning of point entries into leaf chunks."""
        cap = self._max_entries
        n = len(entries)
        if n <= cap:
            yield entries
            return
        entries = sorted(entries, key=lambda e: e[1][key_dim])
        n_slabs = max(1, math.ceil(math.sqrt(math.ceil(n / cap))))
        slab_size = math.ceil(n / n_slabs)
        next_dim = (key_dim + 1) % self._d
        for start in range(0, n, slab_size):
            slab = sorted(
                entries[start : start + slab_size], key=lambda e: e[1][next_dim]
            )
            for chunk_start in range(0, len(slab), cap):
                yield slab[chunk_start : chunk_start + cap]

    def _str_node_tiles(self, nodes: list[_RNode]) -> Iterator[list[_RNode]]:
        cap = self._max_entries
        nodes = sorted(nodes, key=lambda nd: nd.rect.low[0])
        n = len(nodes)
        n_slabs = max(1, math.ceil(math.sqrt(math.ceil(n / cap))))
        slab_size = math.ceil(n / n_slabs)
        for start in range(0, n, slab_size):
            slab = sorted(
                nodes[start : start + slab_size],
                key=lambda nd: nd.rect.low[1 % self._d],
            )
            for chunk_start in range(0, len(slab), cap):
                yield slab[chunk_start : chunk_start + cap]

    def insert(self, point_id: int, coords: Sequence[float]) -> None:
        """Insert a point entry using least-enlargement subtree choice."""
        coords_t = tuple(float(c) for c in coords)
        if len(coords_t) != self._d:
            raise InvalidParameterError(
                f"point has {len(coords_t)} dims, tree has {self._d}"
            )
        rect = Rect.of_point(coords_t)
        if self._size == 0:
            self._root = _RNode(rect, children=None, entries=[(point_id, coords_t)])
            self._size = 1
            return
        split = self._insert(self._root, point_id, coords_t, rect)
        if split is not None:
            left, right = split
            self._root = _RNode(
                Rect.union([left.rect, right.rect]),
                children=[left, right],
                entries=None,
            )
        self._size += 1

    def _insert(
        self,
        node: _RNode,
        point_id: int,
        coords: tuple[float, ...],
        rect: Rect,
    ) -> tuple[_RNode, _RNode] | None:
        node.rect = Rect.union([node.rect, rect])
        if node.is_leaf:
            assert node.entries is not None
            node.entries.append((point_id, coords))
            if len(node.entries) > self._max_entries:
                return self._split_leaf(node)
            return None
        assert node.children is not None
        best = min(node.children, key=lambda c: (c.rect.enlargement(rect)))
        split = self._insert(best, point_id, coords, rect)
        if split is None:
            return None
        left, right = split
        node.children.remove(best)
        node.children.extend([left, right])
        if len(node.children) > self._max_entries:
            return self._split_inner(node)
        return None

    def _split_leaf(self, node: _RNode) -> tuple[_RNode, _RNode]:
        assert node.entries is not None
        spread_dim = self._widest_dim([Rect.of_point(c) for _, c in node.entries])
        ordered = sorted(node.entries, key=lambda e: e[1][spread_dim])
        mid = len(ordered) // 2
        return self._make_leaf(ordered[:mid]), self._make_leaf(ordered[mid:])

    def _split_inner(self, node: _RNode) -> tuple[_RNode, _RNode]:
        assert node.children is not None
        spread_dim = self._widest_dim([c.rect for c in node.children])
        ordered = sorted(node.children, key=lambda c: c.rect.low[spread_dim])
        mid = len(ordered) // 2
        left = _RNode(
            Rect.union([c.rect for c in ordered[:mid]]),
            children=ordered[:mid],
            entries=None,
        )
        right = _RNode(
            Rect.union([c.rect for c in ordered[mid:]]),
            children=ordered[mid:],
            entries=None,
        )
        return left, right

    def _widest_dim(self, rects: list[Rect]) -> int:
        merged = Rect.union(rects)
        widths = [hi - lo for lo, hi in zip(merged.low, merged.high)]
        return int(np.argmax(widths))

    def iter_entries(self) -> Iterator[tuple[int, tuple[float, ...]]]:
        """Yield all stored ``(point_id, coords)`` entries."""
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                assert node.entries is not None
                yield from node.entries
            else:
                assert node.children is not None
                stack.extend(node.children)

    def check_invariants(self) -> None:
        """Validate MBR containment and fan-out bounds; used by tests."""
        count = self._check_node(self._root)
        assert count == self._size, f"entry count {count} != size {self._size}"

    def _check_node(self, node: _RNode) -> int:
        if node.is_leaf:
            assert node.entries is not None
            assert len(node.entries) <= self._max_entries + 1
            for _, coords in node.entries:
                assert node.rect.contains(Rect.of_point(coords))
            return len(node.entries)
        assert node.children is not None
        assert 1 <= len(node.children) <= self._max_entries + 1
        total = 0
        for child in node.children:
            assert node.rect.contains(child.rect), "parent MBR does not contain child"
            total += self._check_node(child)
        return total
