"""Low-level data structures used as substrates by the skyline algorithms.

- :mod:`repro.structures.bitset` — integer-backed bitsets for subspaces.
- :mod:`repro.structures.bplustree` — in-memory B+-tree (Index algorithm).
- :mod:`repro.structures.rtree` — STR bulk-loaded R-tree (BBS algorithm).
- :mod:`repro.structures.zorder` — Z-order (Morton) addresses (Z-order scan).
"""

from repro.structures.bitset import (
    bits_of,
    complement,
    from_dims,
    is_proper_subset,
    is_subset,
    is_superset,
    popcount,
    to_dims,
)
from repro.structures.bplustree import BPlusTree
from repro.structures.rtree import Rect, RTree
from repro.structures.zorder import grid_coordinates, z_address, z_addresses

__all__ = [
    "BPlusTree",
    "RTree",
    "Rect",
    "bits_of",
    "complement",
    "from_dims",
    "grid_coordinates",
    "is_proper_subset",
    "is_subset",
    "is_superset",
    "popcount",
    "to_dims",
    "z_address",
    "z_addresses",
]
