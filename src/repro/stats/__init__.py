"""Instrumentation: dominance-test counters and evaluation metrics."""

from repro.stats.counters import DominanceCounter
from repro.stats.metrics import (
    MetricRow,
    mean_dominance_tests,
    performance_gain,
    summarize,
)

__all__ = [
    "DominanceCounter",
    "MetricRow",
    "mean_dominance_tests",
    "performance_gain",
    "summarize",
]
