"""Instrumentation: dominance-test counters and evaluation metrics."""

from repro.stats.counters import DominanceCounter
from repro.stats.estimate import (
    correlation_signal,
    expected_skyline_size,
    expected_skyline_size_asymptotic,
)
from repro.stats.metrics import (
    MetricRow,
    mean_dominance_tests,
    performance_gain,
    summarize,
)

__all__ = [
    "DominanceCounter",
    "MetricRow",
    "correlation_signal",
    "expected_skyline_size",
    "expected_skyline_size_asymptotic",
    "mean_dominance_tests",
    "performance_gain",
    "summarize",
]
