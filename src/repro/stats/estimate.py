"""Expected skyline cardinality under uniform independence.

Godfrey et al. [9, 10] analyse the average-case behaviour of skyline
algorithms under the *uniform independence* (UI) and *component
independence* assumptions.  The classical result (Godfrey; originally
Bentley et al.): with independent, duplicate-free dimensions, the expected
skyline size of ``n`` points in ``d`` dimensions is the generalised
harmonic number

    E[|skyline|] = H_{d-1, n},   H_{0, n} = 1,
    H_{k, n} = sum_{i=1..n} H_{k-1, i} / i,

which grows as ``(ln n)^{d-1} / (d-1)!``.  The benchmark harness uses this
to sanity-check the UI generator's Table 1 shape, and downstream users can
use it to size skyline buffers before computing anything.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import InvalidParameterError


def expected_skyline_size(n: int, d: int) -> float:
    """``E[|skyline|] = H_{d-1, n}`` under uniform independence.

    Exact O(d·n) dynamic program over the harmonic recurrence.

    >>> expected_skyline_size(100, 1)
    1.0
    >>> round(expected_skyline_size(100, 2), 4)   # H_{1,100} = H_100
    5.1874
    """
    if n < 1:
        raise InvalidParameterError(f"n must be >= 1, got {n}")
    if d < 1:
        raise InvalidParameterError(f"d must be >= 1, got {d}")
    # current[i-1] holds H_{k, i}; start with H_0 = 1 for every prefix.
    current = [1.0] * n
    for _ in range(d - 1):
        running = 0.0
        previous = current
        current = []
        for i in range(1, n + 1):
            running += previous[i - 1] / i
            current.append(running)
    return current[n - 1]


def expected_skyline_size_asymptotic(n: int, d: int) -> float:
    """The closed-form approximation ``(ln n)^{d-1} / (d-1)!``."""
    if n < 1:
        raise InvalidParameterError(f"n must be >= 1, got {n}")
    if d < 1:
        raise InvalidParameterError(f"d must be >= 1, got {d}")
    if n == 1:
        return 1.0
    return math.log(n) ** (d - 1) / math.factorial(d - 1)


def correlation_signal(values: np.ndarray) -> float:
    """Mean pairwise Pearson correlation between dimensions, in ``[-1, 1]``.

    The workload-regime signal the planner keys algorithm selection on:
    strongly positive for the paper's AC-style generators (tiny skylines,
    stop points terminate scans early), near zero for UI, strongly
    negative for CO (large skylines, index filtering dominates).  Constant
    dimensions carry no preference information and contribute zero.

    >>> import numpy as np
    >>> base = np.linspace(0.0, 1.0, 64)
    >>> round(correlation_signal(np.column_stack([base, base])), 6)
    1.0
    >>> round(correlation_signal(np.column_stack([base, -base])), 6)
    -1.0
    """
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 2:
        raise InvalidParameterError(
            f"expected an (n, d) array, got shape {values.shape}"
        )
    n, d = values.shape
    if n < 2 or d < 2:
        return 0.0
    deviations = values - values.mean(axis=0)
    norms = np.sqrt(np.einsum("ij,ij->j", deviations, deviations))
    varying = norms > 0.0
    if int(varying.sum()) < 2:
        return 0.0
    unit = deviations[:, varying] / norms[varying]
    matrix = unit.T @ unit
    k = matrix.shape[0]
    off_diagonal = matrix.sum() - np.trace(matrix)
    return float(np.clip(off_diagonal / (k * (k - 1)), -1.0, 1.0))
