"""Evaluation metrics used by the benchmark harness.

Mirrors Section 6 of the paper: the *mean dominance test number* (DT), the
*elapsed processor time* (RT), and the *performance gain* ratio between an
algorithm and its Subset-boosted variant.  Gains below 1 are rendered as
``"-"`` exactly as the paper's tables do.
"""

from __future__ import annotations

from dataclasses import dataclass


def mean_dominance_tests(total_tests: int, cardinality: int) -> float:
    """``DT = total dominance tests / N`` (Section 6, after [14])."""
    if cardinality <= 0:
        raise ValueError(f"cardinality must be positive, got {cardinality}")
    return total_tests / cardinality


def performance_gain(base: float, boosted: float) -> float | None:
    """Ratio ``base / boosted``; ``None`` when there is no gain (ratio <= 1).

    The paper's tables print ``"-"`` when the boost does not help; ``None``
    is this library's machine-readable equivalent.
    """
    if boosted < 0 or base < 0:
        raise ValueError("metric values must be non-negative")
    if boosted == 0:
        return None if base == 0 else float("inf")
    ratio = base / boosted
    return ratio if ratio > 1.0 else None


def format_gain(gain: float | None) -> str:
    """Render a gain the way the paper does: ``x 4.84`` or ``-``."""
    if gain is None:
        return "-"
    if gain == float("inf"):
        return "x inf"
    return f"x {gain:.2f}"


@dataclass(frozen=True)
class MetricRow:
    """One (algorithm, workload) measurement row for the harness tables."""

    algorithm: str
    dominance_tests: int
    cardinality: int
    elapsed_seconds: float
    skyline_size: int

    @property
    def mean_dt(self) -> float:
        return mean_dominance_tests(self.dominance_tests, self.cardinality)

    @property
    def elapsed_ms(self) -> float:
        return self.elapsed_seconds * 1000.0


def summarize(rows: list[MetricRow]) -> dict[str, dict[str, float]]:
    """Index rows by algorithm name, exposing DT/RT for table formatting."""
    summary: dict[str, dict[str, float]] = {}
    for row in rows:
        summary[row.algorithm] = {
            "dt": row.mean_dt,
            "rt_ms": row.elapsed_ms,
            "skyline": float(row.skyline_size),
        }
    return summary
