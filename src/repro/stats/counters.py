"""Dominance-test accounting.

The paper's primary evaluation metric is the *mean dominance test number*
(Section 6): total dominance tests divided by the dataset cardinality.  Every
algorithm in this library threads a :class:`DominanceCounter` through its
dominance kernel so the metric is exact, including the dominating-subspace
computations performed by the Merge phase (each of which inspects one point
pair and is charged as one test).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class DominanceCounter:
    """Mutable tally of point-pair dominance tests plus auxiliary counters.

    Attributes
    ----------
    tests:
        Number of point-pair dominance (or dominating-subspace) evaluations.
    index_queries:
        Number of subset-index ``query`` calls (boosted algorithms only).
    index_nodes_visited:
        Prefix-tree nodes touched by those queries.
    """

    tests: int = 0
    index_queries: int = 0
    index_nodes_visited: int = 0
    extras: dict[str, float] = field(default_factory=dict)

    def add(self, n: int = 1) -> None:
        """Charge ``n`` dominance tests."""
        self.tests += n

    def add_query(self, nodes_visited: int) -> None:
        """Record one subset-index query that touched ``nodes_visited`` nodes."""
        self.index_queries += 1
        self.index_nodes_visited += nodes_visited

    def mean_tests(self, cardinality: int) -> float:
        """The paper's mean dominance test number: ``tests / N``."""
        if cardinality <= 0:
            raise ValueError(f"cardinality must be positive, got {cardinality}")
        return self.tests / cardinality

    def reset(self) -> None:
        """Zero every counter; reuse one counter across runs."""
        self.tests = 0
        self.index_queries = 0
        self.index_nodes_visited = 0
        self.extras.clear()
