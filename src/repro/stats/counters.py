"""Dominance-test accounting.

The paper's primary evaluation metric is the *mean dominance test number*
(Section 6): total dominance tests divided by the dataset cardinality.  Every
algorithm in this library threads a :class:`DominanceCounter` through its
dominance kernel so the metric is exact, including the dominating-subspace
computations performed by the Merge phase (each of which inspects one point
pair and is charged as one test).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class DominanceCounter:
    """Mutable tally of point-pair dominance tests plus auxiliary counters.

    Attributes
    ----------
    tests:
        Number of point-pair dominance (or dominating-subspace) evaluations.
    index_queries:
        Number of subset-index ``query`` calls (boosted algorithms only).
    index_nodes_visited:
        Prefix-tree nodes touched by those queries.  A memoized query that
        is served from the per-subspace cache touches no tree nodes, so
        this counter measures the *actual* traversal work — dominance-test
        accounting is unaffected by memoization.
    index_cache_hits:
        Memoized-index queries answered from the per-subspace cache.
    index_cache_misses:
        Memoized-index queries that required a full tree traversal.
    index_cache_invalidations:
        Cache entries discarded because the index changed under them
        (generation mismatch after a ``remove``/``clear``).
    prepared_cache_hits:
        :class:`~repro.engine.prepared.PreparedDataset` cache lookups
        (Merge results, sort keys, views, anchor masks, statistics) served
        without recomputation.  A hit performs no dominance tests, so the
        DT saving of the warm path is exactly the tests the cold path
        charged for the same artefact.
    prepared_cache_misses:
        Prepared-cache lookups that had to compute (and cache) the
        artefact; the computation's dominance tests are charged normally.
    """

    tests: int = 0
    index_queries: int = 0
    index_nodes_visited: int = 0
    index_cache_hits: int = 0
    index_cache_misses: int = 0
    index_cache_invalidations: int = 0
    prepared_cache_hits: int = 0
    prepared_cache_misses: int = 0
    extras: dict[str, float] = field(default_factory=dict)

    def add(self, n: int = 1) -> None:
        """Charge ``n`` dominance tests."""
        self.tests += n

    def add_query(self, nodes_visited: int) -> None:
        """Record one subset-index query that touched ``nodes_visited`` nodes."""
        self.index_queries += 1
        self.index_nodes_visited += nodes_visited

    def add_cache_hit(self) -> None:
        """Record one memoized query served without a tree traversal."""
        self.index_cache_hits += 1

    def add_cache_miss(self, invalidated: int = 0) -> None:
        """Record one memoized query that fell through to a traversal.

        ``invalidated`` counts cache entries discarded on the way (stale
        generations found during the lookup).
        """
        self.index_cache_misses += 1
        self.index_cache_invalidations += invalidated

    def add_prepared_hit(self, n: int = 1) -> None:
        """Record ``n`` prepared-dataset cache hits (no work performed)."""
        self.prepared_cache_hits += n

    def add_prepared_miss(self, n: int = 1) -> None:
        """Record ``n`` prepared-dataset cache misses (artefact computed)."""
        self.prepared_cache_misses += n

    def absorb(self, other: "DominanceCounter") -> None:
        """Fold another counter's tallies into this one.

        Used by :class:`~repro.engine.context.ExecutionContext` to
        aggregate per-query counters into a session-wide total.
        """
        self.tests += other.tests
        self.index_queries += other.index_queries
        self.index_nodes_visited += other.index_nodes_visited
        self.index_cache_hits += other.index_cache_hits
        self.index_cache_misses += other.index_cache_misses
        self.index_cache_invalidations += other.index_cache_invalidations
        self.prepared_cache_hits += other.prepared_cache_hits
        self.prepared_cache_misses += other.prepared_cache_misses
        for key, value in other.extras.items():
            self.extras[key] = self.extras.get(key, 0.0) + value

    def as_dict(self) -> dict[str, float]:
        """Every tally as a flat mapping with stable key order.

        Scalar fields come first in declaration order, then ``extras``
        entries (sorted) under an ``extras.`` prefix.  This is the single
        serialisation of a counter — the metrics registry, the bench
        report and the CLI all consume it, so two snapshots can be
        compared key-by-key (span boundaries diff them to attribute
        dominance tests per phase).
        """
        out: dict[str, float] = {
            "tests": float(self.tests),
            "index_queries": float(self.index_queries),
            "index_nodes_visited": float(self.index_nodes_visited),
            "index_cache_hits": float(self.index_cache_hits),
            "index_cache_misses": float(self.index_cache_misses),
            "index_cache_invalidations": float(self.index_cache_invalidations),
            "prepared_cache_hits": float(self.prepared_cache_hits),
            "prepared_cache_misses": float(self.prepared_cache_misses),
        }
        for key, value in sorted(self.extras.items()):
            out[f"extras.{key}"] = float(value)
        return out

    def snapshot(self) -> "DominanceCounter":
        """An independent copy of the current tallies."""
        return DominanceCounter(
            tests=self.tests,
            index_queries=self.index_queries,
            index_nodes_visited=self.index_nodes_visited,
            index_cache_hits=self.index_cache_hits,
            index_cache_misses=self.index_cache_misses,
            index_cache_invalidations=self.index_cache_invalidations,
            prepared_cache_hits=self.prepared_cache_hits,
            prepared_cache_misses=self.prepared_cache_misses,
            extras=dict(self.extras),
        )

    def mean_tests(self, cardinality: int) -> float:
        """The paper's mean dominance test number: ``tests / N``."""
        if cardinality <= 0:
            raise ValueError(f"cardinality must be positive, got {cardinality}")
        return self.tests / cardinality

    def reset(self) -> None:
        """Zero every counter; reuse one counter across runs."""
        self.tests = 0
        self.index_queries = 0
        self.index_nodes_visited = 0
        self.index_cache_hits = 0
        self.index_cache_misses = 0
        self.index_cache_invalidations = 0
        self.prepared_cache_hits = 0
        self.prepared_cache_misses = 0
        self.extras.clear()
