"""The :class:`Dataset` wrapper shared by every algorithm in the library.

A dataset is an immutable ``(n, d)`` float64 matrix plus descriptive
metadata.  Row ``i`` is the point with id ``i``; skyline results refer back
to these row ids.  The preference order is minimisation in every dimension
(Definition 3.1); :meth:`Dataset.minimizing` converts columns where larger
is better.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.errors import InvalidDatasetError


@dataclass(frozen=True)
class Dataset:
    """An in-memory multidimensional dataset.

    Parameters
    ----------
    values:
        Array of shape ``(n, d)``; copied and made read-only on construction.
    name:
        Human-readable label used by the benchmark harness.
    kind:
        Correlation regime tag: ``"AC"``, ``"CO"``, ``"UI"``, ``"REAL"`` or
        ``"custom"``.
    """

    values: np.ndarray
    name: str = "dataset"
    kind: str = "custom"
    metadata: dict[str, object] = field(default_factory=dict)
    columns: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        values = np.array(self.values, dtype=np.float64, copy=True)
        if values.ndim != 2:
            raise InvalidDatasetError(
                f"dataset must be a 2-D array, got shape {values.shape}"
            )
        if values.shape[0] == 0 or values.shape[1] == 0:
            raise InvalidDatasetError(f"dataset must be non-empty, got {values.shape}")
        if not np.isfinite(values).all():
            raise InvalidDatasetError("dataset contains NaN or infinite values")
        values.setflags(write=False)
        object.__setattr__(self, "values", values)
        if self.columns is not None:
            columns = tuple(str(c) for c in self.columns)
            if len(columns) != values.shape[1]:
                raise InvalidDatasetError(
                    f"{len(columns)} column names for {values.shape[1]} dimensions"
                )
            if len(set(columns)) != len(columns):
                raise InvalidDatasetError(f"duplicate column names in {columns}")
            object.__setattr__(self, "columns", columns)

    def column_index(self, column: "int | str") -> int:
        """Resolve a 0-based index or a column name to its index."""
        if isinstance(column, (int, np.integer)):
            if not 0 <= int(column) < self.dimensionality:
                raise InvalidDatasetError(
                    f"column index {column} outside [0, {self.dimensionality})"
                )
            return int(column)
        if self.columns is None:
            raise InvalidDatasetError(
                f"dataset {self.name!r} has no column names; use an index"
            )
        try:
            return self.columns.index(column)
        except ValueError:
            raise InvalidDatasetError(
                f"unknown column {column!r}; columns are {self.columns}"
            ) from None

    @classmethod
    def from_columns(
        cls,
        columns: "dict[str, Sequence[float] | np.ndarray]",
        name: str = "dataset",
        kind: str = "custom",
    ) -> "Dataset":
        """Build a named-column dataset from a mapping of column -> values.

        >>> ds = Dataset.from_columns({"price": [1.0, 2.0], "size": [3.0, 4.0]})
        >>> ds.columns
        ('price', 'size')
        >>> ds.column_index("size")
        1
        """
        if not columns:
            raise InvalidDatasetError("from_columns needs at least one column")
        names = tuple(columns)
        arrays = [np.asarray(values, dtype=np.float64) for values in columns.values()]
        lengths = {arr.shape for arr in arrays}
        if len(lengths) != 1 or arrays[0].ndim != 1:
            raise InvalidDatasetError(
                f"columns must be equal-length 1-D sequences, got shapes "
                f"{[arr.shape for arr in arrays]}"
            )
        return cls(np.column_stack(arrays), name=name, kind=kind, columns=names)

    @property
    def cardinality(self) -> int:
        """Number of points ``N``."""
        return int(self.values.shape[0])

    @property
    def dimensionality(self) -> int:
        """Number of dimensions ``d``."""
        return int(self.values.shape[1])

    def __len__(self) -> int:
        return self.cardinality

    def point(self, point_id: int) -> np.ndarray:
        """The coordinates of point ``point_id`` (a read-only view)."""
        return self.values[point_id]

    def subset(self, ids: Sequence[int] | np.ndarray, name: str | None = None) -> "Dataset":
        """A new dataset containing only the given rows (ids re-based to 0..k)."""
        ids = np.asarray(ids, dtype=np.intp)
        return Dataset(
            self.values[ids],
            name=name or f"{self.name}[subset:{len(ids)}]",
            kind=self.kind,
            metadata=dict(self.metadata),
        )

    def minimizing(self, maximize_dims: Sequence[int]) -> "Dataset":
        """Convert max-is-better columns into the library's min convention.

        Each listed column ``j`` is replaced by ``max(col_j) - col_j``, a
        monotone flip that preserves the skyline.
        """
        flipped = np.array(self.values, copy=True)
        for dim in maximize_dims:
            column = flipped[:, dim]
            flipped[:, dim] = column.max() - column
        return Dataset(
            flipped,
            name=f"{self.name}[minimizing]",
            kind=self.kind,
            metadata=dict(self.metadata),
        )

    def euclidean_scores(self) -> np.ndarray:
        """Euclidean distance of every point to the origin (Merge scoring)."""
        return np.sqrt(np.einsum("ij,ij->i", self.values, self.values))

    def describe(self) -> str:
        """One-line summary used in logs and example output."""
        return (
            f"{self.name}: N={self.cardinality} d={self.dimensionality} "
            f"kind={self.kind}"
        )


def as_dataset(data: "Dataset | np.ndarray | Sequence[Sequence[float]]") -> Dataset:
    """Coerce raw arrays into a :class:`Dataset`; pass datasets through."""
    if isinstance(data, Dataset):
        return data
    return Dataset(np.asarray(data, dtype=np.float64))
