"""``Plan`` — the inspectable outcome of planning one skyline query.

A plan is to the skyline operator what ``EXPLAIN`` output is to a SQL
query: which host algorithm runs, whether the subset boost wraps it, which
container backs the scan, the stability threshold σ, and the execution
knobs (memoization, batching, worker count) — plus the signals and reasons
that led there.  Plans are immutable and comparable, so planner
determinism is testable as plain equality.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import InvalidParameterError

if TYPE_CHECKING:
    from repro.algorithms.base import SkylineResult
    from repro.engine.analyze import PlanAnalysis

__all__ = ["Plan"]


@dataclass(frozen=True)
class Plan:
    """An executable description of one skyline computation.

    Attributes
    ----------
    algorithm:
        Registry name of the host algorithm (``"sfs"``, ``"salsa"``, ...).
    boosted:
        Whether the subset approach (Merge + subset container) wraps the
        host.
    sigma:
        Stability threshold for the Merge pass; ``None`` when not boosted.
    container:
        Skyline store for the boosted scan: ``"subset"`` or ``"list"``.
    pivot_strategy:
        Merge pivot selection strategy.
    memoize:
        Whether the subset index's per-subspace caches are enabled.
    index_backend:
        Subset-index implementation backing a ``"subset"`` container:
        ``"map"`` (the paper's prefix tree) or ``"flat"`` (the vectorised
        struct-of-arrays backend).  Results and charged dominance tests
        are identical either way.
    workers:
        Process count for block-parallel execution; ``1`` is sequential.
    parallel_strategy:
        How block-parallel execution partitions and prunes: ``"none"``
        (sequential), ``"prefix"`` (sort-order partitioning with the
        shared-survivor prefix exchange — the default for ``workers > 1``)
        or ``"even"`` (the PR 5 even row-range split, no pruning).
    prefix_size:
        Shared-survivor prefix points broadcast to every worker before the
        local scans (``0`` when the strategy does not exchange a prefix).
    block_growth:
        Geometric block-size growth along the partition order; ``1.0`` is
        an even split.  Derived from the expected skyline fraction in
        adaptive plans: the stronger the prefix prunes, the larger late
        blocks can be.
    adaptive:
        ``True`` when the planner chose the algorithm from dataset
        statistics; ``False`` when the caller pinned it (the mode with
        dominance-test parity guarantees versus direct calls).
    incremental:
        ``True`` when execution repairs the previously noted skyline from
        the prepared dataset's pending delta log instead of scanning; the
        host/boost knobs above are inert for such plans.
    pending_mutations:
        Rows inserted plus deleted since the last noted full skyline (set
        whenever a pending delta informed the decision, even on full
        plans).
    delta_fraction:
        ``pending_mutations`` over the current cardinality.
    repair_cost, recompute_cost:
        The cost model's dominance-test estimates for replaying the delta
        log versus recomputing from scratch — the inputs behind the
        repair-vs-recompute decision shown by :meth:`explain`.
    estimates:
        The ``(name, value)`` cost-model inputs the decision was weighed
        against — the backend/parallel cardinality thresholds, correlation
        cutoffs and per-op repair cost constants in force when the plan
        was made.  Recorded so :meth:`analyze` can show the estimates next
        to measured actuals after execution; empty for pinned plans (which
        never consult the cost model).
    host_options:
        Constructor keyword arguments for the host, as sorted pairs.
    signals:
        The ``(name, value)`` estimator signals the decision consumed.
    reasons:
        Human-readable justification, one clause per decision.
    """

    algorithm: str
    boosted: bool = False
    sigma: int | None = None
    container: str = "subset"
    pivot_strategy: str = "euclidean"
    memoize: bool = True
    index_backend: str = "map"
    workers: int = 1
    parallel_strategy: str = "none"
    prefix_size: int = 0
    block_growth: float = 1.0
    adaptive: bool = False
    incremental: bool = False
    pending_mutations: int = 0
    delta_fraction: float = 0.0
    repair_cost: float = 0.0
    recompute_cost: float = 0.0
    estimates: tuple[tuple[str, float], ...] = ()
    host_options: tuple[tuple[str, object], ...] = ()
    signals: tuple[tuple[str, float], ...] = field(default=(), compare=True)
    reasons: tuple[str, ...] = ()

    @property
    def label(self) -> str:
        """The registry-style name of the planned execution.

        Matches the names direct calls produce (``"sfs"``,
        ``"sfs-subset"``), so results are comparable across paths.
        """
        return f"{self.algorithm}-subset" if self.boosted else self.algorithm

    @property
    def sort_cache_key(self) -> str:
        """The :meth:`PreparedDataset.sort_cache` key for this plan.

        Encodes everything that changes the scanned id set or the scan
        order: host name and options, boost mode, σ and pivot strategy
        (these determine ``remaining_ids``).  The container, memoization
        and index-backend knobs deliberately do not appear — they change
        neither.
        """
        options = ",".join(f"{k}={v!r}" for k, v in self.host_options)
        if self.boosted:
            return (
                f"{self.algorithm}({options})|boosted"
                f"|σ{self.sigma}|{self.pivot_strategy}"
            )
        return f"{self.algorithm}({options})|plain"

    def explain(self) -> str:
        """A multi-line, ``EXPLAIN``-style description of the plan."""
        mode = "adaptive" if self.adaptive else "pinned"
        lines = [f"Plan: {self.label}  [{mode}]"]
        if self.incremental:
            lines.append(
                "  execution: incremental delta-repair "
                f"(index={self.index_backend})"
            )
            self._explain_delta(lines)
            if self.signals:
                rendered = ", ".join(
                    f"{name}={value:g}" for name, value in self.signals
                )
                lines.append(f"  signals: {rendered}")
            for reason in self.reasons:
                lines.append(f"  - {reason}")
            return "\n".join(lines)
        if self.boosted:
            lines.append(
                f"  boost: merge(σ={self.sigma}, pivots={self.pivot_strategy})"
                f" -> {self.container} container"
                f" (memoize={'on' if self.memoize else 'off'}"
                + (
                    f", index={self.index_backend})"
                    if self.container == "subset"
                    else ")"
                )
            )
        else:
            lines.append("  boost: off (plain list container)")
        if self.host_options:
            options = ", ".join(f"{k}={v!r}" for k, v in self.host_options)
            lines.append(f"  host options: {options}")
        if self.workers > 1:
            detail = self.parallel_strategy
            if self.prefix_size:
                detail += f", prefix={self.prefix_size}"
            if self.block_growth != 1.0:
                detail += f", growth={self.block_growth:g}"
            lines.append(f"  execution: parallel x{self.workers} [{detail}]")
        else:
            lines.append("  execution: sequential")
        if self.pending_mutations:
            self._explain_delta(lines)
        if self.signals:
            rendered = ", ".join(f"{name}={value:g}" for name, value in self.signals)
            lines.append(f"  signals: {rendered}")
        for reason in self.reasons:
            lines.append(f"  - {reason}")
        return "\n".join(lines)

    def analyze(self, result: "SkylineResult") -> "PlanAnalysis":
        """EXPLAIN ANALYZE: this plan's estimates against ``result``'s actuals.

        ``result`` must come from executing this plan (checked by
        equality).  Imported lazily so the plain ``explain`` path never
        loads the analysis machinery.
        """
        # Imported lazily: analyze pulls in the obs phase aggregation.
        from repro.engine.analyze import analyze as run_analyze

        if result.plan is not None and result.plan != self:
            raise InvalidParameterError(
                "result was executed under a different plan "
                f"({result.plan.label!r}, not {self.label!r})"
            )
        return run_analyze(result)

    def _explain_delta(self, lines: list[str]) -> None:
        """Append the repair-vs-recompute decision and its cost inputs."""
        lines.append(
            f"  delta: {self.pending_mutations} pending ops "
            f"({self.delta_fraction:.2%} of n)"
        )
        chosen = "delta repair" if self.incremental else "full recompute"
        lines.append(
            f"  repair-vs-recompute: est {self.repair_cost:g} vs "
            f"{self.recompute_cost:g} tests -> {chosen}"
        )
