"""``Planner`` — cost-based algorithm and container selection.

The survey literature (Kalyvas & Tzouramanis, arXiv:1704.01788) and the
SDI framework paper (Liu, arXiv:1908.04083) both observe that no single
skyline algorithm wins across data regimes: stop-point scans (SaLSa)
dominate on correlated data, index-filtered scans on anti-correlated and
high-dimensional data, and plain scans on inputs too small to repay any
setup.  The planner encodes those regime boundaries over the estimator
signals of :meth:`~repro.engine.prepared.PreparedDataset.statistics` —
cardinality, dimensionality, the pairwise correlation signal and the
expected skyline size — and emits an inspectable
:class:`~repro.engine.plan.Plan`.

Two modes:

- **pinned** (``algorithm`` given): the caller's choice is honoured
  exactly; the emitted plan reproduces the direct
  :func:`~repro.algorithms.registry.get_algorithm` wiring bit-for-bit,
  including dominance-test accounting.  This is the compatibility mode
  every refactored call site uses by default.
- **adaptive** (``algorithm=None``): the planner selects host, boost and σ
  from the dataset statistics.  Decisions are pure functions of the
  statistics (plus the seeded sigma autotuner when enabled), so the same
  dataset and seed always produce the identical plan.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.algorithms.registry import available_algorithms
from repro.core.stability import default_threshold, validate_threshold
from repro.engine.plan import Plan
from repro.engine.prepared import DatasetStatistics, PreparedDataset
from repro.errors import InvalidParameterError, UnknownAlgorithmError
from repro.stats.counters import DominanceCounter

__all__ = ["Planner"]

#: Correlation above which the stop point of a sort-and-limit scan is
#: expected to terminate the scan almost immediately (Table 8's regime),
#: making the Merge pass pure overhead.
_CORRELATED_CUTOFF = 0.35

#: Correlation below which the skyline is large enough that subset-index
#: filtering (and SDI's per-dimension traversal) pays off at any d.
_ANTI_CORRELATED_CUTOFF = -0.2

#: Below this cardinality no preprocessing is worth its setup cost.
_SMALL_N = 600

#: From this dimensionality upward SDI's dimension-indexed traversal beats
#: the entropy-sorted scan as the boosted host (Tables 4-7).
_HIGH_D = 5

#: From this cardinality upward the flat subset-index backend's vectorised
#: superset pass beats the map index's per-node dict probes: the candidate
#: sets are big enough that one numpy filter over all distinct masks
#: amortises, and compactions stay rare relative to queries.
_FLAT_N = 20_000

#: High dimensionality multiplies distinct subspace masks, which the map
#: index pays for in tree nodes walked per query; the flat filter's cost is
#: one vectorised pass regardless, so it wins from here upward even when
#: ``n`` alone would not justify it.
_FLAT_D = 6

#: From this cardinality upward block-parallel execution repays process
#: dispatch and the sequential merge over the union of local skylines.
_PARALLEL_N = 200_000

#: Minimum rows per parallel block.  ``default_workers`` is uncapped (the
#: host CPU count), so the planner bounds the *effective* worker count by
#: block size instead: below this many rows per block, process dispatch
#: and per-block Merge setup dominate any split of the scan work.
_MIN_BLOCK_ROWS = 50_000

#: Shared-survivor prefix bounds for adaptive plans.  The prefix grows
#: slowly with the expected skyline (more prefix points keep their pruning
#: power when the skyline is large) but stays small: every survivor is
#: charged one dominance test per prefix point during the worker-side
#: filter, so an oversized prefix taxes exactly the points that matter.
_MIN_PREFIX, _MAX_PREFIX = 8, 32

#: Prefix size and block growth of *pinned* plans with ``workers > 1``.
#: Pinned mode must stay a pure function of the caller's arguments (no
#: estimator statistics), so fixed defaults replace the adaptive formulas.
_PINNED_PREFIX = 16
_PINNED_GROWTH = 1.5

#: Estimated dominance tests the replay stream charges per pending delta
#: operation: an insert probes the anchor masks (8 tests) plus the current
#: skyline's demotion sweep; a delete's exposure filter touches the buffer.
#: 64 over-estimates small skylines and under-estimates huge ones, but the
#: decision only has to be right about the *order of magnitude* against a
#: full ``n * d``-shaped recompute.
_REPAIR_OP_COST = 64.0


class Planner:
    """Chooses algorithm, container and execution mode for one query.

    Parameters
    ----------
    autotune:
        Select σ with :func:`~repro.core.autotune.tune_sigma` on a seeded
        sample instead of the paper's ``round(d/3)`` default.  Off by
        default — it spends sample runs to pick σ, which only pays off
        for sessions with many queries against the same preparation.
    sample_size:
        Sample rows for the autotuner.
    seed:
        Autotuner sampling seed; part of the determinism contract.
    """

    def __init__(
        self,
        autotune: bool = False,
        sample_size: int = 2000,
        seed: int = 0,
    ) -> None:
        self.autotune = autotune
        self.sample_size = sample_size
        self.seed = seed

    def plan(
        self,
        prepared: PreparedDataset,
        algorithm: str | None = None,
        sigma: int | None = None,
        *,
        container: str = "subset",
        pivot_strategy: str = "euclidean",
        memoize: bool = True,
        index_backend: str | None = None,
        workers: int | None = None,
        parallel_strategy: str | None = None,
        incremental: bool | None = None,
        host_options: Mapping[str, object] | None = None,
        counter: DominanceCounter | None = None,
    ) -> Plan:
        """Emit the :class:`Plan` for one query over ``prepared``.

        ``algorithm`` pins a registry name (``"sfs"``, ``"sdi-subset"``,
        ...); ``None`` selects adaptively from the dataset statistics.
        ``index_backend`` pins the subset-index implementation (``"map"``
        or ``"flat"``); ``None`` lets adaptive plans choose from the
        cardinality/dimensionality thresholds while pinned plans keep the
        direct-call default (``"map"``).  Likewise ``workers``: an explicit
        count is honoured as given, ``None`` lets adaptive plans turn on
        block-parallel execution above ``_PARALLEL_N`` rows (pinned plans
        stay sequential).  ``parallel_strategy`` pins how a parallel plan
        partitions and prunes (``"prefix"``/``"even"``); ``None`` selects
        the prune-aware prefix exchange whenever ``workers > 1``.

        ``incremental`` controls delta repair when the prepared dataset has
        pending mutations logged by :meth:`PreparedDataset.apply_delta`:
        ``None`` lets the cost model choose between replaying the delta log
        and a full recompute, ``True`` forces repair (an error when no
        repairable state exists or the algorithm is pinned — pinned mode is
        the bit-for-bit parity contract and never repairs), ``False``
        forces a full plan.
        """
        if incremental and algorithm is not None:
            raise InvalidParameterError(
                "incremental=True conflicts with a pinned algorithm: pinned "
                "plans guarantee direct-call parity and never delta-repair"
            )
        if workers is not None and workers < 1:
            raise InvalidParameterError(f"workers must be >= 1, got {workers}")
        if container not in ("subset", "list"):
            raise InvalidParameterError(
                f"container must be 'subset' or 'list', got {container!r}"
            )
        if index_backend not in (None, "map", "flat"):
            raise InvalidParameterError(
                f"index_backend must be 'map' or 'flat', got {index_backend!r}"
            )
        if parallel_strategy not in (None, "prefix", "even"):
            raise InvalidParameterError(
                "parallel_strategy must be 'prefix' or 'even', "
                f"got {parallel_strategy!r}"
            )
        options = tuple(sorted((host_options or {}).items()))
        if algorithm is not None:
            return self._pinned(
                prepared,
                algorithm,
                sigma,
                container=container,
                pivot_strategy=pivot_strategy,
                memoize=memoize,
                index_backend=index_backend,
                workers=workers,
                parallel_strategy=parallel_strategy,
                host_options=options,
            )
        return self._adaptive(
            prepared,
            sigma,
            container=container,
            pivot_strategy=pivot_strategy,
            memoize=memoize,
            index_backend=index_backend,
            workers=workers,
            parallel_strategy=parallel_strategy,
            incremental=incremental,
            host_options=options,
            counter=counter,
        )

    # -- pinned mode --------------------------------------------------------

    def _pinned(
        self,
        prepared: PreparedDataset,
        algorithm: str,
        sigma: int | None,
        *,
        container: str,
        pivot_strategy: str,
        memoize: bool,
        index_backend: str | None,
        workers: int | None,
        parallel_strategy: str | None,
        host_options: tuple[tuple[str, object], ...],
    ) -> Plan:
        key = algorithm.lower()
        if key not in available_algorithms():
            raise UnknownAlgorithmError(
                f"unknown algorithm {algorithm!r}; available: {available_algorithms()}"
            )
        boosted = key.endswith("-subset")
        host = key.removesuffix("-subset") if boosted else key
        if boosted:
            d = prepared.dimensionality
            if d < 2:
                # The boost falls back to the plain host below d=2; no σ to
                # resolve (default_threshold is undefined there).
                resolved = sigma
            else:
                resolved = sigma if sigma is not None else default_threshold(d)
                validate_threshold(resolved, d)
        else:
            if sigma is not None:
                raise InvalidParameterError(
                    f"sigma is only meaningful for '-subset' algorithms, got {key!r}"
                )
            resolved = None
        resolved_workers = workers if workers is not None else 1
        reasons = [f"algorithm pinned by caller: {key}"]
        strategy, prefix_size, growth = self._resolve_strategy(
            resolved_workers, parallel_strategy, _PINNED_PREFIX, _PINNED_GROWTH
        )
        if resolved_workers > 1:
            reasons.append(
                f"workers={resolved_workers} pinned by caller: "
                f"{strategy} block-parallel execution"
            )
        return Plan(
            algorithm=host,
            boosted=boosted,
            sigma=resolved,
            container=container,
            pivot_strategy=pivot_strategy,
            memoize=memoize,
            # Pinned plans keep the direct-call defaults unless the caller
            # asks otherwise: map index, sequential execution — the mode
            # with bit-for-bit counter parity versus get_algorithm calls.
            # Parallel knobs (prefix size, growth) use fixed defaults so
            # pinned plans stay a pure function of the caller's arguments.
            index_backend=index_backend if index_backend is not None else "map",
            workers=resolved_workers,
            parallel_strategy=strategy,
            prefix_size=prefix_size,
            block_growth=growth,
            adaptive=False,
            host_options=host_options,
            reasons=tuple(reasons),
        )

    @staticmethod
    def _resolve_strategy(
        workers: int,
        parallel_strategy: str | None,
        prefix_size: int,
        growth: float,
    ) -> tuple[str, int, float]:
        """Normalise the parallel knobs for a resolved worker count."""
        if workers <= 1:
            return "none", 0, 1.0
        strategy = parallel_strategy if parallel_strategy is not None else "prefix"
        if strategy == "even":
            # The legacy PR 5 split: even row ranges, no pruning exchange.
            return "even", 0, 1.0
        return "prefix", prefix_size, growth

    # -- adaptive mode ------------------------------------------------------

    def _adaptive(
        self,
        prepared: PreparedDataset,
        sigma: int | None,
        *,
        container: str,
        pivot_strategy: str,
        memoize: bool,
        index_backend: str | None,
        workers: int | None,
        parallel_strategy: str | None,
        incremental: bool | None,
        host_options: tuple[tuple[str, object], ...],
        counter: DominanceCounter | None,
    ) -> Plan:
        stats = prepared.statistics(counter)
        signals = (
            ("n", float(stats.cardinality)),
            ("d", float(stats.dimensionality)),
            ("correlation", stats.correlation),
            ("expected_skyline", stats.expected_skyline),
        )
        # The cost-model inputs this decision is weighed against, recorded
        # on the plan so EXPLAIN ANALYZE can line estimates up with
        # post-execution actuals.  Pinned plans never consult these.
        estimates = (
            ("small_n_threshold", float(_SMALL_N)),
            ("high_d_threshold", float(_HIGH_D)),
            ("correlated_cutoff", _CORRELATED_CUTOFF),
            ("flat_n_threshold", float(_FLAT_N)),
            ("flat_d_threshold", float(_FLAT_D)),
            ("parallel_n_threshold", float(_PARALLEL_N)),
            ("repair_op_cost", _REPAIR_OP_COST),
        )
        reasons: list[str] = []

        delta = self._consider_incremental(
            prepared, stats, incremental, index_backend, signals, estimates, reasons
        )
        if isinstance(delta, Plan):
            return delta
        pending, fraction, repair_cost, recompute_cost = delta

        host, boosted = self._select_host(stats, reasons)
        resolved_sigma: int | None = None
        if boosted:
            resolved_sigma = self._select_sigma(prepared, host, sigma, reasons)
        backend = self._select_backend(
            stats, boosted, container, index_backend, reasons
        )
        resolved_workers = self._select_workers(stats, workers, reasons)
        strategy, prefix_size, growth = self._select_parallel(
            stats, resolved_workers, parallel_strategy, reasons
        )

        return Plan(
            algorithm=host,
            boosted=boosted,
            sigma=resolved_sigma,
            container=container,
            pivot_strategy=pivot_strategy,
            memoize=memoize,
            index_backend=backend,
            workers=resolved_workers,
            parallel_strategy=strategy,
            prefix_size=prefix_size,
            block_growth=growth,
            adaptive=True,
            pending_mutations=pending,
            delta_fraction=fraction,
            repair_cost=repair_cost,
            recompute_cost=recompute_cost,
            estimates=estimates,
            host_options=host_options,
            signals=signals,
            reasons=tuple(reasons),
        )

    def _consider_incremental(
        self,
        prepared: PreparedDataset,
        stats: DatasetStatistics,
        incremental: bool | None,
        index_backend: str | None,
        signals: tuple[tuple[str, float], ...],
        estimates: tuple[tuple[str, float], ...],
        reasons: list[str],
    ) -> "Plan | tuple[int, float, float, float]":
        """Decide repair vs recompute for a pending delta.

        Returns the incremental :class:`Plan` when repair wins (or is
        forced), else the ``(pending, fraction, repair_cost,
        recompute_cost)`` tuple the full plan carries so ``explain`` can
        show why repair lost.  A clean dataset yields all zeros.
        """
        state = prepared.delta_state()
        if state is None:
            if incremental:
                raise InvalidParameterError(
                    "incremental=True but the prepared dataset has no "
                    "pending delta covered by a noted skyline; run a full "
                    "query, then apply_delta, then replan"
                )
            return (0, 0.0, 0.0, 0.0)
        n = stats.cardinality
        d = stats.dimensionality
        # Replay charges ~_REPAIR_OP_COST tests per logged op; a cold
        # stream additionally pays the O(n * anchors) bootstrap mask pass.
        # Recompute must re-scan everything: n * d is the scale of the
        # Merge pass plus the boosted scan's residual tests.
        repair_cost = state.pending_ops * _REPAIR_OP_COST + (
            0.0 if state.stream_ready else float(n)
        )
        recompute_cost = float(n) * float(d)
        if incremental is False:
            reasons.append(
                f"incremental=False pinned by caller: recomputing despite "
                f"{state.pending_ops} pending ops"
            )
            return (state.pending_ops, state.fraction, repair_cost, recompute_cost)
        if incremental is None and repair_cost >= recompute_cost:
            reasons.append(
                f"delta repair loses the cost model (est {repair_cost:g} "
                f">= {recompute_cost:g} tests): full recompute"
            )
            return (state.pending_ops, state.fraction, repair_cost, recompute_cost)
        if incremental:
            reasons.append("incremental repair pinned by caller")
        else:
            reasons.append(
                f"{state.pending_ops} pending ops over {state.batches} "
                f"batch(es): delta repair wins the cost model "
                f"(est {repair_cost:g} < {recompute_cost:g} tests)"
            )
        reasons.append(
            "replay stream "
            + ("is warm" if state.stream_ready else "bootstraps from the noted skyline")
        )
        backend = index_backend
        if backend is None:
            backend = "flat" if (n >= _FLAT_N or d >= _FLAT_D) else "map"
        return Plan(
            algorithm="incremental-repair",
            boosted=False,
            sigma=None,
            index_backend=backend,
            workers=1,
            adaptive=True,
            incremental=True,
            pending_mutations=state.pending_ops,
            delta_fraction=state.fraction,
            repair_cost=repair_cost,
            recompute_cost=recompute_cost,
            estimates=estimates,
            signals=signals,
            reasons=tuple(reasons),
        )

    @staticmethod
    def _select_host(
        stats: DatasetStatistics, reasons: list[str]
    ) -> tuple[str, bool]:
        if stats.dimensionality < 2:
            reasons.append("d < 2: no non-trivial subspaces, boost undefined")
            return "sfs", False
        if stats.correlation >= _CORRELATED_CUTOFF:
            reasons.append(
                f"correlation {stats.correlation:.2f} >= {_CORRELATED_CUTOFF}: "
                "correlated regime, SaLSa's stop point ends the scan early"
            )
            return "salsa", False
        if stats.cardinality < _SMALL_N:
            reasons.append(
                f"n={stats.cardinality} < {_SMALL_N}: "
                "input too small to repay Merge preprocessing"
            )
            return "sfs", False
        if (
            stats.dimensionality >= _HIGH_D
            or stats.correlation <= _ANTI_CORRELATED_CUTOFF
        ):
            reasons.append(
                f"d={stats.dimensionality}, correlation {stats.correlation:.2f}: "
                "large skyline expected, boosted SDI's indexed prefix tests win"
            )
            return "sdi", True
        reasons.append(
            "moderate d and independent dimensions: boosted entropy-sorted scan"
        )
        return "sfs", True

    @staticmethod
    def _select_backend(
        stats: DatasetStatistics,
        boosted: bool,
        container: str,
        index_backend: str | None,
        reasons: list[str],
    ) -> str:
        if index_backend is not None:
            if boosted and container == "subset":
                reasons.append(f"index backend {index_backend!r} pinned by caller")
            return index_backend
        if not boosted or container != "subset":
            # No subset index participates; the field is inert.
            return "map"
        if stats.cardinality >= _FLAT_N or stats.dimensionality >= _FLAT_D:
            reasons.append(
                f"n={stats.cardinality}, d={stats.dimensionality}: at or past "
                f"the flat-index thresholds (n>={_FLAT_N} or d>={_FLAT_D}), "
                "the vectorised superset filter beats per-node map probes"
            )
            return "flat"
        reasons.append(
            f"n={stats.cardinality} < {_FLAT_N} and d={stats.dimensionality} "
            f"< {_FLAT_D}: candidate sets too small to amortise the flat "
            "filter, keeping the map index"
        )
        return "map"

    @staticmethod
    def _select_workers(
        stats: DatasetStatistics, workers: int | None, reasons: list[str]
    ) -> int:
        if workers is not None:
            if workers > 1:
                reasons.append(f"workers={workers} pinned by caller")
            return workers
        if stats.cardinality >= _PARALLEL_N:
            # Imported lazily: the planner must not drag multiprocessing
            # into the import graph of sequential-only sessions.
            from repro.extensions.parallel import default_workers

            by_size = max(1, stats.cardinality // _MIN_BLOCK_ROWS)
            chosen = min(default_workers(), by_size)
            if chosen > 1:
                reasons.append(
                    f"n={stats.cardinality} >= {_PARALLEL_N}: block-parallel "
                    f"execution across {chosen} workers "
                    f"(cpus={default_workers()}, capped so blocks keep "
                    f">= {_MIN_BLOCK_ROWS} rows) repays dispatch and the "
                    "union merge"
                )
            return chosen
        return 1

    def _select_parallel(
        self,
        stats: DatasetStatistics,
        workers: int,
        parallel_strategy: str | None,
        reasons: list[str],
    ) -> tuple[str, int, float]:
        """Strategy, prefix size and block growth for ``workers`` blocks.

        The prefix grows with the cube root of the expected skyline —
        enough extra pruning points to keep coverage on skyline-heavy data
        without taxing every survivor with a long filter pass.  Block
        growth rises as the expected skyline *fraction* falls: a strong
        prefix clears most of the late (sort-order tail) blocks, so they
        can be larger without unbalancing the per-block scan work.
        """
        if workers <= 1:
            return "none", 0, 1.0
        if parallel_strategy == "even":
            reasons.append("parallel strategy 'even' pinned by caller")
            return "even", 0, 1.0
        prefix_size = min(
            _MAX_PREFIX,
            max(_MIN_PREFIX, int(round(stats.expected_skyline ** (1.0 / 3.0)))),
        )
        growth = round(
            1.0 + max(0.0, min(1.0, 1.0 - 8.0 * stats.skyline_fraction)), 2
        )
        reasons.append(
            f"prefix exchange: {prefix_size} shared survivors filter every "
            f"block before its local scan; sort-order blocks grow x{growth:g} "
            f"(expected skyline {stats.expected_skyline:.0f})"
        )
        return "prefix", prefix_size, growth

    def _select_sigma(
        self,
        prepared: PreparedDataset,
        host: str,
        sigma: int | None,
        reasons: list[str],
    ) -> int:
        d = prepared.dimensionality
        if sigma is not None:
            validate_threshold(sigma, d)
            reasons.append(f"σ={sigma} pinned by caller")
            return sigma
        if self.autotune:
            # Imported lazily: autotune drags in the full boost pipeline.
            from repro.algorithms.registry import get_algorithm
            from repro.core.autotune import tune_sigma

            host_algorithm = get_algorithm(host)
            choice = tune_sigma(
                prepared.dataset,
                host_algorithm,  # type: ignore[arg-type]
                sample_size=self.sample_size,
                seed=self.seed,
            )
            reasons.append(
                f"σ={choice.sigma} autotuned on a {choice.sample_size}-row sample "
                f"(seed={self.seed})"
            )
            return choice.sigma
        resolved = default_threshold(d)
        reasons.append(f"σ={resolved} from the paper's round(d/3) heuristic")
        return resolved
