"""``ExecutionContext`` — session state threaded through engine runs.

One context owns the state that repeated queries amortize: the registry of
:class:`~repro.engine.prepared.PreparedDataset` objects (keyed by dataset
identity, FIFO-bounded), the session-wide aggregate
:class:`~repro.stats.counters.DominanceCounter`, and the lazily created
PR-2 :class:`~repro.extensions.parallel.SkylineWorkerPool` for
block-parallel plans.  The engine asks the context for a fresh per-run
counter, executes, then records the run back so the session totals — tests,
index traffic, prepared-cache hit rates — accumulate in one place.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.dataset import Dataset, as_dataset
from repro.engine.prepared import PreparedDataset
from repro.errors import InvalidParameterError
from repro.obs.events import NULL_EVENT_LOG, EventLogLike
from repro.obs.histogram import LogHistogram
from repro.obs.trace import NULL_TRACER, TracerLike
from repro.stats.counters import DominanceCounter

if TYPE_CHECKING:
    from repro.extensions.parallel import SkylineWorkerPool

__all__ = ["ExecutionContext"]

#: Prepared datasets kept per context before FIFO eviction.  Each prepared
#: dataset pins its source array plus O(n) caches, so the registry is
#: deliberately small — sessions typically hammer one or two datasets.
_MAX_PREPARED = 8


class ExecutionContext:
    """Holds and hands out the state one skyline session shares.

    Parameters
    ----------
    max_prepared:
        Distinct datasets kept prepared before FIFO eviction.
    workers:
        Default worker count for the lazily created process pool.
    tracer:
        The session's :class:`~repro.obs.trace.Tracer`; defaults to the
        no-op :data:`~repro.obs.trace.NULL_TRACER`, which keeps execution
        bit-identical and allocation-free.  The engine activates this
        tracer around every ``execute`` and drains it into
        ``SkylineResult.trace``.
    events:
        The session's :class:`~repro.obs.events.EventLog`; defaults to the
        no-op :data:`~repro.obs.events.NULL_EVENT_LOG`.  The engine
        activates it around every ``execute``/``apply_delta`` and emits
        query/plan/delta lifecycle events into it; deep layers (prepared
        caches, the worker pool) emit through the ambient
        :func:`~repro.obs.events.current_event_log`.

    Attributes
    ----------
    counter:
        Session-wide aggregate counter; every recorded run's tallies are
        absorbed into it.
    histograms:
        Session-wide :class:`~repro.obs.histogram.LogHistogram` per
        observed metric (``query.wall_s``, ``query.dominance_tests``,
        ``query.skyline_size``), fed by :meth:`observe` on every engine
        execution — the tail-latency view of the session.
    """

    def __init__(
        self,
        max_prepared: int = _MAX_PREPARED,
        workers: int | None = None,
        tracer: TracerLike = NULL_TRACER,
        event_log: EventLogLike = NULL_EVENT_LOG,
    ) -> None:
        if max_prepared < 1:
            raise InvalidParameterError(
                f"max_prepared must be >= 1, got {max_prepared}"
            )
        self.counter = DominanceCounter()
        self.tracer = tracer
        self.events = event_log
        self.histograms: dict[str, LogHistogram] = {}
        self.runs_recorded = 0
        self.deltas_recorded = 0
        self._max_prepared = max_prepared
        self._workers = workers
        self._prepared: dict[int, PreparedDataset] = {}
        self._pool: "SkylineWorkerPool | None" = None
        self._owns_pool = False

    # -- prepared-dataset registry ------------------------------------------

    def prepare(self, data: Dataset | PreparedDataset | np.ndarray) -> PreparedDataset:
        """The :class:`PreparedDataset` for ``data``, preparing on first use.

        Keyed by the identity of the dataset's value array (datasets are
        immutable), so repeated calls with the same dataset — or with the
        prepared object itself — return the same caches.  The registry
        holds strong references; evicted entries simply lose their caches.
        """
        if isinstance(data, PreparedDataset):
            return data
        dataset = as_dataset(data)
        key = id(dataset.values)
        prepared = self._prepared.get(key)
        if prepared is not None:
            return prepared
        prepared = PreparedDataset(dataset)
        while len(self._prepared) >= self._max_prepared:
            del self._prepared[next(iter(self._prepared))]
        self._prepared[key] = prepared
        return prepared

    def rebind(self, prepared: PreparedDataset) -> None:
        """Register ``prepared`` under its post-mutation value array.

        The registry is keyed by value-array identity; after
        :meth:`PreparedDataset.apply_delta` the mutated object wraps a new
        array the registry has never seen.  Rebinding registers the new
        key *and keeps the old keys as aliases* to the same object: a
        caller still holding the pre-delta ``Dataset`` handle addresses
        the logical dataset it mutated, not a stale snapshot — executing
        with it must find the repaired caches, not silently re-prepare
        the old array.
        """
        key = id(prepared.dataset.values)
        if self._prepared.get(key) is prepared:
            return
        while len(self._prepared) >= self._max_prepared:
            evict = next(
                (k for k, v in self._prepared.items() if v is not prepared),
                None,
            )
            if evict is None:
                break
            del self._prepared[evict]
        self._prepared[key] = prepared

    @property
    def prepared_count(self) -> int:
        """Number of datasets currently held prepared."""
        return len(self._prepared)

    # -- counters -----------------------------------------------------------

    def run_counter(self, counter: DominanceCounter | None = None) -> DominanceCounter:
        """The per-run counter: the caller's if given, else a fresh one."""
        return counter if counter is not None else DominanceCounter()

    def record(self, counter: DominanceCounter) -> None:
        """Absorb one run's tallies into the session aggregate."""
        self.counter.absorb(counter)
        self.runs_recorded += 1

    def record_delta(self, counter: DominanceCounter) -> None:
        """Absorb one mutation's tallies; counted apart from query runs."""
        self.counter.absorb(counter)
        self.deltas_recorded += 1

    # -- histograms ---------------------------------------------------------

    def observe(self, name: str, value: float) -> None:
        """Add one sample to the session histogram named ``name``.

        Histograms are created on first observation; like the aggregate
        counter they accumulate for the context's whole lifetime, so the
        p99 they report covers every query of the session.
        """
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = LogHistogram()
        histogram.add(value)

    def histogram(self, name: str) -> LogHistogram | None:
        """The session histogram named ``name``, or ``None`` if unobserved."""
        return self.histograms.get(name)

    # -- worker pool --------------------------------------------------------

    @property
    def pool(self) -> "SkylineWorkerPool":
        """The context's process pool, created lazily on first access.

        Uses the process-wide shared pool (so contexts compose with other
        pool users) unless a worker count was pinned at construction, in
        which case the context owns a private pool and closes it.
        """
        if self._pool is None:
            from repro.extensions.parallel import SkylineWorkerPool, get_pool

            if self._workers is None:
                self._pool = get_pool()
            else:
                self._pool = SkylineWorkerPool(self._workers)
                self._owns_pool = True
        return self._pool

    def pool_stats(self) -> dict[str, int]:
        """Reuse stats of the context's pool; empty if none was created.

        Read-only observability accessor (used by the CLI ``--metrics``
        dump): it never triggers lazy pool creation.
        """
        if self._pool is None:
            return {}
        return dict(self._pool.stats)

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Release the prepared registry and any privately owned pool."""
        self._prepared.clear()
        if self._pool is not None and self._owns_pool:
            self._pool.close()
        self._pool = None
        self._owns_pool = False

    def __enter__(self) -> "ExecutionContext":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ExecutionContext(prepared={self.prepared_count}, "
            f"runs={self.runs_recorded}, tests={self.counter.tests})"
        )
