"""EXPLAIN ANALYZE — planner estimates lined up against measured actuals.

:meth:`Plan.explain` shows what the planner *decided* and why;
:func:`analyze` shows how well its cost model *predicted* the execution:
the estimator's skyline-size prediction versus the returned skyline, the
repair/recompute dominance-test estimates versus the charged tests, and —
when the result carries a trace — the per-phase actuals the estimates must
explain.  Each row's misestimation ratio (``actual / estimated``) doubles
as a planner-accuracy metric (:meth:`PlanAnalysis.accuracy_metrics`), so a
long-running session can watch its cost model drift.

The planner costs in dominance tests, not seconds (the paper's primary
metric), so wall time appears as an actual-only row: it anchors the DT
rows to observed latency without pretending the model predicts seconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.engine.plan import Plan
from repro.errors import InvalidParameterError
from repro.obs.trace import PhaseStats, aggregate_phases

if TYPE_CHECKING:
    from repro.algorithms.base import SkylineResult

__all__ = ["AnalyzedRow", "PlanAnalysis", "analyze"]


@dataclass(frozen=True)
class AnalyzedRow:
    """One estimate-vs-actual line of an EXPLAIN ANALYZE report."""

    metric: str
    estimated: float | None
    actual: float | None
    unit: str = ""

    @property
    def ratio(self) -> float | None:
        """``actual / estimated`` — the misestimation ratio (1.0 = perfect).

        ``None`` when either side is missing or the estimate is zero.
        """
        if self.estimated is None or self.actual is None or self.estimated == 0:
            return None
        return self.actual / self.estimated


@dataclass(frozen=True)
class PlanAnalysis:
    """The full EXPLAIN ANALYZE report of one executed plan."""

    plan: Plan
    rows: tuple[AnalyzedRow, ...]
    phases: tuple[PhaseStats, ...]

    def accuracy_metrics(self, prefix: str = "planner.") -> dict[str, float]:
        """Misestimation ratios as flat metrics (``planner.*_ratio``).

        Feed these to :meth:`MetricsRegistry.record_many` so a session's
        metrics dump carries the cost model's accuracy next to its
        outputs.
        """
        return {
            f"{prefix}{row.metric}_ratio": ratio
            for row in self.rows
            if (ratio := row.ratio) is not None
        }

    def render(self) -> str:
        """The report as an aligned monospace table plus phase actuals."""
        mode = "adaptive" if self.plan.adaptive else "pinned"
        lines = [f"EXPLAIN ANALYZE: {self.plan.label}  [{mode}]"]
        header = f"  {'metric':<28} {'estimated':>14} {'actual':>14} {'ratio':>8}"
        lines.append(header)
        lines.append("  " + "-" * (len(header) - 2))
        for row in self.rows:
            estimated = f"{row.estimated:.4g}" if row.estimated is not None else "-"
            actual = f"{row.actual:.4g}" if row.actual is not None else "-"
            ratio = f"{row.ratio:.2f}x" if row.ratio is not None else "-"
            metric = f"{row.metric} [{row.unit}]" if row.unit else row.metric
            lines.append(f"  {metric:<28} {estimated:>14} {actual:>14} {ratio:>8}")
        if self.plan.estimates:
            rendered = ", ".join(
                f"{name}={value:g}" for name, value in self.plan.estimates
            )
            lines.append(f"  cost-model inputs: {rendered}")
        if self.phases:
            lines.append("  phases (actual):")
            for phase in self.phases:
                delta = (
                    f"  ΔDT {phase.dominance_tests:.0f}"
                    if phase.dominance_tests
                    else ""
                )
                indent = "  " * phase.depth
                lines.append(
                    f"    {indent}{phase.name:<24} {phase.wall_s * 1e3:10.3f} ms"
                    f"{delta}"
                )
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def analyze(result: "SkylineResult") -> PlanAnalysis:
    """The EXPLAIN ANALYZE report for an engine-executed ``result``.

    Requires ``result.plan`` (every :meth:`SkylineEngine.execute` result
    has one); the phase section additionally needs ``result.trace`` (a
    live tracer on the engine's context), and estimate rows need the
    signals adaptive planning records — pinned plans, which by contract
    never consult the estimator, produce actual-only rows.
    """
    plan = result.plan
    if plan is None:
        raise InvalidParameterError(
            "result carries no plan to analyze — execute through "
            "SkylineEngine (direct algorithm calls are plan-less)"
        )
    signals = dict(plan.signals)
    rows: list[AnalyzedRow] = []

    expected_skyline = signals.get("expected_skyline")
    rows.append(
        AnalyzedRow(
            metric="skyline_size",
            estimated=expected_skyline,
            actual=float(result.size),
            unit="points",
        )
    )

    # The planner's dominance-test scale: the repair estimate for
    # incremental plans, else the n*d recompute scale it weighs full scans
    # by (available whenever adaptive signals were recorded).
    estimated_tests: float | None = None
    if plan.incremental:
        estimated_tests = plan.repair_cost
    elif plan.pending_mutations:
        estimated_tests = plan.recompute_cost
    elif "n" in signals and "d" in signals:
        estimated_tests = signals["n"] * signals["d"]
    rows.append(
        AnalyzedRow(
            metric="dominance_tests",
            estimated=estimated_tests,
            actual=float(result.dominance_tests),
            unit="tests",
        )
    )

    phases: tuple[PhaseStats, ...] = ()
    if result.trace is not None:
        phases = tuple(aggregate_phases(result.trace))

    if plan.incremental:
        # Per-phase accountability: the repair estimate against the tests
        # the engine.repair phase actually charged (when traced).
        repair_actual = next(
            (
                phase.dominance_tests
                for phase in phases
                if phase.name == "engine.repair"
            ),
            None,
        )
        rows.append(
            AnalyzedRow(
                metric="repair_cost",
                estimated=plan.repair_cost,
                actual=repair_actual,
                unit="tests",
            )
        )
    elif plan.pending_mutations:
        rows.append(
            AnalyzedRow(
                metric="repair_cost_rejected",
                estimated=plan.repair_cost,
                actual=None,
                unit="tests",
            )
        )

    rows.append(
        AnalyzedRow(
            metric="wall_time",
            estimated=None,
            actual=result.elapsed_seconds,
            unit="s",
        )
    )

    return PlanAnalysis(plan=plan, rows=tuple(rows), phases=phases)
