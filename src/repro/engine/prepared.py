"""``PreparedDataset`` — one-time normalization plus reusable query caches.

The ROADMAP's target workload is heavy repeated traffic over the same
datasets: many skyline queries, over varying subspaces and preference
directions, against data that changes rarely.  Every expensive artefact the
stack computes per query — the Merge pass (pivots + per-point maximum
dominating subspaces), the hosts' sort orders, projected subspace views and
the estimator statistics the planner keys on — is a pure function of
``(values, dims, directions, sigma)``, so a session that prepares the
dataset once can serve each subsequent query from cache.

Cache accounting is explicit: every lookup records a hit or a miss on the
caller's :class:`~repro.stats.counters.DominanceCounter`
(``prepared_cache_hits`` / ``prepared_cache_misses``), so the warm-path
saving is observable in the same place the paper's dominance-test metric
lives.  Invalidation is explicit too: :meth:`PreparedDataset.invalidate`
drops every artefact and bumps :attr:`PreparedDataset.version`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, TypeVar

import numpy as np

from repro.core.merge import MergeResult, merge
from repro.core.stability import default_threshold, validate_threshold
from repro.dataset import Dataset, as_dataset
from repro.obs.trace import current_tracer
from repro.stats.counters import DominanceCounter
from repro.stats.estimate import (
    correlation_signal,
    expected_skyline_size,
    expected_skyline_size_asymptotic,
)

if TYPE_CHECKING:
    from collections.abc import Sequence

__all__ = ["DatasetStatistics", "PreparedDataset"]

_T = TypeVar("_T")

#: Above this cardinality the exact harmonic-number dynamic program for the
#: expected skyline size is replaced by its closed-form asymptotic — the DP
#: is O(d·n) in pure Python and preparation must stay cheap.
_EXACT_ESTIMATE_LIMIT = 50_000

#: Entries kept per artefact cache before FIFO eviction.  Each Merge result
#: or sort order is O(n), so the caps bound prepared memory at a small
#: multiple of the dataset itself.
_MAX_ENTRIES = 32


@dataclass(frozen=True)
class DatasetStatistics:
    """Estimator signals the planner consumes, computed once per dataset.

    Attributes
    ----------
    cardinality, dimensionality:
        The dataset shape ``(n, d)``.
    correlation:
        Mean pairwise Pearson correlation between dimensions
        (:func:`~repro.stats.estimate.correlation_signal`): positive for
        correlated regimes, negative for anti-correlated.
    expected_skyline:
        Expected skyline size under uniform independence (exact harmonic
        number for small ``n``, closed-form asymptotic above
        ``50_000`` rows).
    """

    cardinality: int
    dimensionality: int
    correlation: float
    expected_skyline: float

    @property
    def skyline_fraction(self) -> float:
        """Expected skyline size as a fraction of the dataset."""
        return self.expected_skyline / self.cardinality


class _FifoCache(dict[object, object]):
    """A dict with FIFO eviction once ``max_entries`` is exceeded."""

    def __init__(self, max_entries: int = _MAX_ENTRIES) -> None:
        super().__init__()
        self.max_entries = max_entries

    def insert(self, key: object, value: object) -> None:
        while len(self) >= self.max_entries:
            del self[next(iter(self))]
        self[key] = value


class PreparedDataset:
    """A dataset normalized once, with caches for everything queries reuse.

    Parameters
    ----------
    data:
        The dataset (or raw array) to prepare.  The wrapped
        :class:`~repro.dataset.Dataset` is immutable; ``invalidate`` exists
        for callers that rebind :attr:`dataset` semantics externally (e.g.
        a registry slot reused for fresh data).

    Notes
    -----
    All cache lookups take an optional counter and record
    ``prepared_cache_hits`` / ``prepared_cache_misses`` on it.  A hit never
    performs dominance tests; a miss charges its computation's tests on the
    same counter, exactly as the cold, unprepared code path would.
    """

    def __init__(self, data: Dataset | np.ndarray) -> None:
        self.dataset = as_dataset(data)
        self.version = 0
        self._column_major: np.ndarray | None = None
        self._statistics: DatasetStatistics | None = None
        self._merge_cache = _FifoCache()
        self._sort_caches = _FifoCache()
        self._view_cache = _FifoCache()
        self._artefacts = _FifoCache()

    # -- shape conveniences -------------------------------------------------

    @property
    def cardinality(self) -> int:
        """Number of points ``N``."""
        return self.dataset.cardinality

    @property
    def dimensionality(self) -> int:
        """Number of dimensions ``d``."""
        return self.dataset.dimensionality

    @property
    def values(self) -> np.ndarray:
        """The row-major ``(n, d)`` coordinate array (read-only)."""
        return self.dataset.values

    @property
    def column_major(self) -> np.ndarray:
        """A Fortran-ordered (column-major) copy of the coordinates.

        Built lazily on first access: per-dimension consumers (SDI's sorted
        indexes, the estimator's column statistics) read whole columns, and
        a contiguous column avoids a strided gather per access.
        """
        if self._column_major is None:
            column_major = np.asfortranarray(self.dataset.values)
            column_major.setflags(write=False)
            self._column_major = column_major
        return self._column_major

    # -- cached artefacts ---------------------------------------------------

    def statistics(self, counter: DominanceCounter | None = None) -> DatasetStatistics:
        """The planner's estimator signals, computed once and cached."""
        if self._statistics is not None:
            self._record(counter, hit=True)
            return self._statistics
        self._record(counter, hit=False)
        n, d = self.cardinality, self.dimensionality
        if n <= _EXACT_ESTIMATE_LIMIT:
            expected = expected_skyline_size(n, d)
        else:
            expected = expected_skyline_size_asymptotic(n, d)
        self._statistics = DatasetStatistics(
            cardinality=n,
            dimensionality=d,
            correlation=correlation_signal(self.column_major),
            expected_skyline=min(float(n), expected),
        )
        return self._statistics

    def merged(
        self,
        sigma: int | None = None,
        pivot_strategy: str = "euclidean",
        counter: DominanceCounter | None = None,
    ) -> MergeResult:
        """The Merge pass (Algorithm 1) for ``(sigma, pivot_strategy)``.

        A miss runs Merge with its dominance tests charged on ``counter``
        (identical accounting to the cold path); a hit returns the cached
        :class:`~repro.core.merge.MergeResult` and charges nothing.
        """
        d = self.dimensionality
        if sigma is None:
            sigma = default_threshold(d)
        validate_threshold(sigma, d)
        key = (sigma, pivot_strategy)
        cached = self._merge_cache.get(key)
        if cached is not None:
            self._record(counter, hit=True)
            tracer = current_tracer()
            if tracer.enabled:
                # The warm path skips Merge entirely; leave a zero-cost
                # marker so traces distinguish "Merge reused" from a run
                # that never needed Merge.
                tracer.record(
                    "merge.cached",
                    0.0,
                    sigma=sigma,
                    pivots=len(cached.pivot_ids),  # type: ignore[attr-defined]
                )
            return cached  # type: ignore[return-value]
        self._record(counter, hit=False)
        run_counter = counter if counter is not None else DominanceCounter()
        result = merge(self.dataset, sigma, run_counter, pivot_strategy=pivot_strategy)
        self._merge_cache.insert(key, result)
        return result

    def sort_cache(self, key: str) -> dict[str, object]:
        """The mutable sort-phase cache private to one scan configuration.

        ``key`` must identify the host configuration *and* the id set it
        scans (e.g. ``"sfs|boosted|σ2|euclidean"``) — hosts cache their
        computed scan order in the returned mapping, so two configurations
        sharing a mapping would replay each other's orders.
        """
        cached = self._sort_caches.get(key)
        if cached is not None:
            return cached  # type: ignore[return-value]
        fresh: dict[str, object] = {}
        self._sort_caches.insert(key, fresh)
        return fresh

    def view(
        self,
        dims: "Sequence[int]",
        maximize: "Sequence[int]" = (),
        counter: DominanceCounter | None = None,
    ) -> "PreparedDataset":
        """A prepared projection onto ``dims`` with ``maximize`` flipped.

        ``dims`` are original column indices in preference order;
        ``maximize`` lists the subset of ``dims`` whose direction is
        max-is-better (each flipped via the monotone ``max(col) - col``,
        matching :meth:`repro.dataset.Dataset.minimizing`).  The view is
        itself a :class:`PreparedDataset`, so per-subspace Merge results
        and sort orders are cached independently and reused across repeated
        queries over the same subspace.
        """
        dims_key = tuple(int(dim) for dim in dims)
        flip_key = tuple(sorted(int(dim) for dim in maximize))
        if not set(flip_key) <= set(dims_key):
            raise ValueError(f"maximize dims {flip_key} not all in dims {dims_key}")
        key = (dims_key, flip_key)
        cached = self._view_cache.get(key)
        if cached is not None:
            self._record(counter, hit=True)
            return cached  # type: ignore[return-value]
        self._record(counter, hit=False)
        projected = self.dataset.values[:, dims_key].copy()
        for local_dim, original_dim in enumerate(dims_key):
            if original_dim in flip_key:
                column = projected[:, local_dim]
                projected[:, local_dim] = column.max() - column
        view = PreparedDataset(
            Dataset(
                projected,
                name=f"{self.dataset.name}[view:{dims_key}]",
                kind=self.dataset.kind,
            )
        )
        self._view_cache.insert(key, view)
        return view

    def artefact(
        self,
        key: object,
        compute: Callable[[], _T],
        counter: DominanceCounter | None = None,
    ) -> _T:
        """Generic cached artefact (e.g. the skyband anchor masks).

        ``compute`` runs on a miss with its cost charged wherever it
        charges it; the result is cached under ``key`` until
        :meth:`invalidate`.
        """
        cached = self._artefacts.get(key)
        if cached is not None:
            self._record(counter, hit=True)
            return cached  # type: ignore[return-value]
        self._record(counter, hit=False)
        value = compute()
        self._artefacts.insert(key, value)
        return value

    # -- lifecycle ----------------------------------------------------------

    def invalidate(self) -> None:
        """Drop every cached artefact and bump :attr:`version`.

        Cached views are invalidated recursively — their artefacts derive
        from this dataset's values.
        """
        for view in self._view_cache.values():
            view.invalidate()  # type: ignore[attr-defined]
        self._column_major = None
        self._statistics = None
        self._merge_cache.clear()
        self._sort_caches.clear()
        self._view_cache.clear()
        self._artefacts.clear()
        self.version += 1

    def cache_info(self) -> dict[str, int]:
        """Entry counts per cache — observability for tests and tuning."""
        return {
            "merge": len(self._merge_cache),
            "sort": len(self._sort_caches),
            "views": len(self._view_cache),
            "artefacts": len(self._artefacts),
            "statistics": int(self._statistics is not None),
            "version": self.version,
        }

    @staticmethod
    def _record(counter: DominanceCounter | None, hit: bool) -> None:
        if counter is None:
            return
        if hit:
            counter.add_prepared_hit()
        else:
            counter.add_prepared_miss()

    def __repr__(self) -> str:
        return (
            f"PreparedDataset({self.dataset.name!r}, n={self.cardinality}, "
            f"d={self.dimensionality}, version={self.version})"
        )
