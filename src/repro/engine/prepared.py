"""``PreparedDataset`` — one-time normalization plus reusable query caches.

The ROADMAP's target workload is heavy repeated traffic over the same
datasets: many skyline queries, over varying subspaces and preference
directions, against data that changes rarely.  Every expensive artefact the
stack computes per query — the Merge pass (pivots + per-point maximum
dominating subspaces), the hosts' sort orders, projected subspace views and
the estimator statistics the planner keys on — is a pure function of
``(values, dims, directions, sigma)``, so a session that prepares the
dataset once can serve each subsequent query from cache.

Cache accounting is explicit: every lookup records a hit or a miss on the
caller's :class:`~repro.stats.counters.DominanceCounter`
(``prepared_cache_hits`` / ``prepared_cache_misses``), so the warm-path
saving is observable in the same place the paper's dominance-test metric
lives.  Invalidation is explicit too: :meth:`PreparedDataset.invalidate`
drops every artefact and bumps :attr:`PreparedDataset.version`.

Mutation is a first-class event: :meth:`PreparedDataset.apply_delta`
applies an insert/delete batch and — when the delta is small enough —
*suffix-repairs* the cached artefacts instead of dropping them: Merge
results keep their pivots and classify the inserts (see
:mod:`repro.engine.delta`), unflipped subspace views repair recursively,
and key-decomposable sort orders are tagged for a lazy bit-identical
repair at the next scan.  Every delta bumps :attr:`version` exactly once.
The skyline itself repairs lazily: after a full query the engine *notes*
the result (:meth:`note_skyline`); when the planner later chooses an
incremental plan, :meth:`repair_skyline` replays the logged delta batches
through a columnar :class:`~repro.extensions.streaming.StreamingSkyline`
bootstrapped from the noted skyline — no batch recomputation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, TypeVar

import numpy as np

from repro.core.merge import MergeResult, merge
from repro.core.stability import default_threshold, validate_threshold
from repro.dataset import Dataset, as_dataset
from repro.engine.delta import (
    DeltaReport,
    DeltaState,
    absorb_since,
    normalize_delta,
    repair_merge_result,
)
from repro.errors import InvalidParameterError
from repro.obs.events import current_event_log
from repro.obs.trace import current_tracer
from repro.stats.counters import DominanceCounter
from repro.stats.estimate import (
    correlation_signal,
    expected_skyline_size,
    expected_skyline_size_asymptotic,
)

if TYPE_CHECKING:
    from collections.abc import Sequence

    from repro.extensions.streaming import StreamingSkyline

__all__ = ["DatasetStatistics", "PreparedDataset"]

_T = TypeVar("_T")

#: Above this cardinality the exact harmonic-number dynamic program for the
#: expected skyline size is replaced by its closed-form asymptotic — the DP
#: is O(d·n) in pure Python and preparation must stay cheap.
_EXACT_ESTIMATE_LIMIT = 50_000

#: Entries kept per artefact cache before FIFO eviction.  Each Merge result
#: or sort order is O(n), so the caps bound prepared memory at a small
#: multiple of the dataset itself.
_MAX_ENTRIES = 32

#: Default repair threshold: a delta touching more than this fraction of
#: the dataset falls back to a full invalidate-and-recompute — suffix
#: repair replays every operation through the streaming structure, so its
#: advantage over one batch run erodes as the delta grows.
_REPAIR_THRESHOLD = 0.05

#: Anchor count of the lazily built replay stream.  Matches the streaming
#: default: enough subspace partitioning to keep probe candidate sets
#: small without making per-arrival mask computation noticeable.
_STREAM_ANCHORS = 8

#: Sort-cache entry keys that permit lazy suffix repair.  Entries carrying
#: anything else (SaLSa's scan state, SDI's per-dimension orders, LESS's
#: helper-free order) hold derived state the repair cannot reproduce and
#: are dropped whole.
_REPAIRABLE_SORT_KEYS = frozenset({"order", "keys", "ties"})


@dataclass(frozen=True)
class DatasetStatistics:
    """Estimator signals the planner consumes, computed once per dataset.

    Attributes
    ----------
    cardinality, dimensionality:
        The dataset shape ``(n, d)``.
    correlation:
        Mean pairwise Pearson correlation between dimensions
        (:func:`~repro.stats.estimate.correlation_signal`): positive for
        correlated regimes, negative for anti-correlated.
    expected_skyline:
        Expected skyline size under uniform independence (exact harmonic
        number for small ``n``, closed-form asymptotic above
        ``50_000`` rows).
    """

    cardinality: int
    dimensionality: int
    correlation: float
    expected_skyline: float

    @property
    def skyline_fraction(self) -> float:
        """Expected skyline size as a fraction of the dataset."""
        return self.expected_skyline / self.cardinality


class _FifoCache(dict[object, object]):
    """A dict with FIFO eviction once ``max_entries`` is exceeded."""

    def __init__(self, max_entries: int = _MAX_ENTRIES) -> None:
        super().__init__()
        self.max_entries = max_entries

    def insert(self, key: object, value: object) -> None:
        while len(self) >= self.max_entries:
            del self[next(iter(self))]
        self[key] = value


class PreparedDataset:
    """A dataset normalized once, with caches for everything queries reuse.

    Parameters
    ----------
    data:
        The dataset (or raw array) to prepare.  The wrapped
        :class:`~repro.dataset.Dataset` is immutable; ``invalidate`` exists
        for callers that rebind :attr:`dataset` semantics externally (e.g.
        a registry slot reused for fresh data).

    Notes
    -----
    All cache lookups take an optional counter and record
    ``prepared_cache_hits`` / ``prepared_cache_misses`` on it.  A hit never
    performs dominance tests; a miss charges its computation's tests on the
    same counter, exactly as the cold, unprepared code path would.
    """

    def __init__(
        self,
        data: Dataset | np.ndarray,
        repair_threshold: float = _REPAIR_THRESHOLD,
    ) -> None:
        if not 0.0 <= repair_threshold <= 1.0:
            raise InvalidParameterError(
                f"repair_threshold must be in [0, 1], got {repair_threshold}"
            )
        self.dataset = as_dataset(data)
        self.version = 0
        self.repair_threshold = repair_threshold
        self._column_major: np.ndarray | None = None
        self._statistics: DatasetStatistics | None = None
        self._merge_cache = _FifoCache()
        self._sort_caches = _FifoCache()
        self._view_cache = _FifoCache()
        self._artefacts = _FifoCache()
        # Mutation state (see `apply_delta` / `note_skyline`): the noted
        # skyline is self-validating — it stores the Dataset it was
        # computed against, so it cannot silently outlive the data.
        self._base_dataset: Dataset | None = None
        self._base_skyline: np.ndarray | None = None
        self._pending: list[tuple[np.ndarray, np.ndarray]] = []
        self._pending_ops = 0
        self._row_map: np.ndarray | None = None
        self._next_stream_id = 0
        self._stream: "StreamingSkyline | None" = None

    # -- shape conveniences -------------------------------------------------

    @property
    def cardinality(self) -> int:
        """Number of points ``N``."""
        return self.dataset.cardinality

    @property
    def dimensionality(self) -> int:
        """Number of dimensions ``d``."""
        return self.dataset.dimensionality

    @property
    def values(self) -> np.ndarray:
        """The row-major ``(n, d)`` coordinate array (read-only)."""
        return self.dataset.values

    @property
    def column_major(self) -> np.ndarray:
        """A Fortran-ordered (column-major) copy of the coordinates.

        Built lazily on first access: per-dimension consumers (SDI's sorted
        indexes, the estimator's column statistics) read whole columns, and
        a contiguous column avoids a strided gather per access.
        """
        if self._column_major is None:
            column_major = np.asfortranarray(self.dataset.values)
            column_major.setflags(write=False)
            self._column_major = column_major
        return self._column_major

    # -- cached artefacts ---------------------------------------------------

    def statistics(self, counter: DominanceCounter | None = None) -> DatasetStatistics:
        """The planner's estimator signals, computed once and cached."""
        if self._statistics is not None:
            self._record(counter, hit=True)
            return self._statistics
        self._record(counter, hit=False)
        n, d = self.cardinality, self.dimensionality
        if n <= _EXACT_ESTIMATE_LIMIT:
            expected = expected_skyline_size(n, d)
        else:
            expected = expected_skyline_size_asymptotic(n, d)
        self._statistics = DatasetStatistics(
            cardinality=n,
            dimensionality=d,
            correlation=correlation_signal(self.column_major),
            expected_skyline=min(float(n), expected),
        )
        return self._statistics

    def merged(
        self,
        sigma: int | None = None,
        pivot_strategy: str = "euclidean",
        counter: DominanceCounter | None = None,
    ) -> MergeResult:
        """The Merge pass (Algorithm 1) for ``(sigma, pivot_strategy)``.

        A miss runs Merge with its dominance tests charged on ``counter``
        (identical accounting to the cold path); a hit returns the cached
        :class:`~repro.core.merge.MergeResult` and charges nothing.
        """
        d = self.dimensionality
        if sigma is None:
            sigma = default_threshold(d)
        validate_threshold(sigma, d)
        key = (sigma, pivot_strategy)
        cached = self._merge_cache.get(key)
        if cached is not None:
            self._record(counter, hit=True)
            tracer = current_tracer()
            if tracer.enabled:
                # The warm path skips Merge entirely; leave a zero-cost
                # marker so traces distinguish "Merge reused" from a run
                # that never needed Merge.
                tracer.record(
                    "merge.cached",
                    0.0,
                    sigma=sigma,
                    pivots=len(cached.pivot_ids),  # type: ignore[attr-defined]
                )
            return cached  # type: ignore[return-value]
        self._record(counter, hit=False)
        run_counter = counter if counter is not None else DominanceCounter()
        result = merge(self.dataset, sigma, run_counter, pivot_strategy=pivot_strategy)
        self._merge_cache.insert(key, result)
        return result

    def sort_cache(self, key: str) -> dict[str, object]:
        """The mutable sort-phase cache private to one scan configuration.

        ``key`` must identify the host configuration *and* the id set it
        scans (e.g. ``"sfs|boosted|σ2|euclidean"``) — hosts cache their
        computed scan order in the returned mapping, so two configurations
        sharing a mapping would replay each other's orders.
        """
        cached = self._sort_caches.get(key)
        if cached is not None:
            return cached  # type: ignore[return-value]
        fresh: dict[str, object] = {}
        self._sort_caches.insert(key, fresh)
        return fresh

    def view(
        self,
        dims: "Sequence[int]",
        maximize: "Sequence[int]" = (),
        counter: DominanceCounter | None = None,
    ) -> "PreparedDataset":
        """A prepared projection onto ``dims`` with ``maximize`` flipped.

        ``dims`` are original column indices in preference order;
        ``maximize`` lists the subset of ``dims`` whose direction is
        max-is-better (each flipped via the monotone ``max(col) - col``,
        matching :meth:`repro.dataset.Dataset.minimizing`).  The view is
        itself a :class:`PreparedDataset`, so per-subspace Merge results
        and sort orders are cached independently and reused across repeated
        queries over the same subspace.
        """
        dims_key = tuple(int(dim) for dim in dims)
        flip_key = tuple(sorted(int(dim) for dim in maximize))
        if not set(flip_key) <= set(dims_key):
            raise ValueError(f"maximize dims {flip_key} not all in dims {dims_key}")
        key = (dims_key, flip_key)
        cached = self._view_cache.get(key)
        if cached is not None:
            self._record(counter, hit=True)
            return cached  # type: ignore[return-value]
        self._record(counter, hit=False)
        projected = self.dataset.values[:, dims_key].copy()
        for local_dim, original_dim in enumerate(dims_key):
            if original_dim in flip_key:
                column = projected[:, local_dim]
                projected[:, local_dim] = column.max() - column
        view = PreparedDataset(
            Dataset(
                projected,
                name=f"{self.dataset.name}[view:{dims_key}]",
                kind=self.dataset.kind,
            ),
            repair_threshold=self.repair_threshold,
        )
        self._view_cache.insert(key, view)
        return view

    def artefact(
        self,
        key: object,
        compute: Callable[[], _T],
        counter: DominanceCounter | None = None,
    ) -> _T:
        """Generic cached artefact (e.g. the skyband anchor masks).

        ``compute`` runs on a miss with its cost charged wherever it
        charges it; the result is cached under ``key`` until
        :meth:`invalidate`.
        """
        cached = self._artefacts.get(key)
        if cached is not None:
            self._record(counter, hit=True)
            return cached  # type: ignore[return-value]
        self._record(counter, hit=False)
        value = compute()
        self._artefacts.insert(key, value)
        return value

    # -- mutation -----------------------------------------------------------

    def apply_delta(
        self,
        inserts: "np.ndarray | Sequence[Sequence[float]] | None" = None,
        deletes: "np.ndarray | Sequence[int] | None" = None,
        counter: DominanceCounter | None = None,
        mode: str | None = None,
    ) -> DeltaReport:
        """Apply an insert/delete batch, repairing caches when it is small.

        ``deletes`` are row ids of the *current* dataset; surviving rows
        close ranks in order and ``inserts`` append after them, so the new
        id of surviving row ``i`` is ``i - |{deleted < i}|`` and insert
        ``j`` becomes row ``n - |deletes| + j``.

        ``mode=None`` repairs when the delta fraction is at most
        :attr:`repair_threshold` and recomputes otherwise; ``"repair"`` and
        ``"recompute"`` force the path.  The repair path suffix-repairs
        cached Merge results and unflipped views, tags key-decomposable
        sort orders for lazy repair, drops everything else, logs the delta
        for :meth:`repair_skyline` and bumps :attr:`version` exactly once
        (the recompute path bumps through :meth:`invalidate`).  Repair
        dominance tests (insert-vs-pivot classification, view recursion)
        are charged on ``counter``.
        """
        if mode not in (None, "repair", "recompute"):
            raise InvalidParameterError(
                f"mode must be None, 'repair' or 'recompute', got {mode!r}"
            )
        old = self.dataset
        ins, dels = normalize_delta(old.values, inserts, deletes)
        inserted, deleted = int(ins.shape[0]), int(dels.size)
        if inserted == 0 and deleted == 0:
            return DeltaReport(
                mode="noop", inserted=0, deleted=0, fraction=0.0, version=self.version
            )
        if old.cardinality - deleted + inserted == 0:
            raise InvalidParameterError("delta would empty the dataset")
        fraction = (inserted + deleted) / old.cardinality
        kept = (
            np.delete(old.values, dels, axis=0) if deleted else old.values
        )
        new_values = np.vstack([kept, ins]) if inserted else np.array(kept, copy=True)
        new_dataset = Dataset(new_values, name=old.name, kind=old.kind)

        repair = mode == "repair" or (
            mode is None and fraction <= self.repair_threshold
        )
        if not repair:
            self.dataset = new_dataset
            self._forget_mutation_state()
            self.invalidate()
            return DeltaReport(
                mode="recompute",
                inserted=inserted,
                deleted=deleted,
                fraction=fraction,
                version=self.version,
            )

        run_counter = counter if counter is not None else DominanceCounter()
        tracer = current_tracer()
        with tracer.span(
            "prepared.delta",
            counter=run_counter,
            inserted=inserted,
            deleted=deleted,
            n=new_dataset.cardinality,
        ):
            merge_repaired, merge_dropped = self._repair_merge_entries(
                old.values, ins, dels, run_counter
            )
            sort_tagged, sort_dropped = self._tag_sort_caches(
                old.values, new_values, dels
            )
            views_repaired, views_dropped = self._repair_views(
                ins, dels, run_counter
            )
            self._artefacts.clear()
            self._statistics = None
            self._column_major = None
            if self._base_skyline is not None:
                # Log the batch in stream-id coordinates so repair_skyline
                # can replay it regardless of how row ids shifted since.
                row_map = self._ensure_row_map()
                deleted_stream_ids = row_map[dels]
                fresh = np.arange(
                    self._next_stream_id,
                    self._next_stream_id + inserted,
                    dtype=np.int64,
                )
                self._row_map = np.concatenate(
                    [np.delete(row_map, dels), fresh]
                )
                self._next_stream_id += inserted
                self._pending.append((ins, deleted_stream_ids))
                self._pending_ops += inserted + deleted
            self.dataset = new_dataset
            self.version += 1
        return DeltaReport(
            mode="repair",
            inserted=inserted,
            deleted=deleted,
            fraction=fraction,
            version=self.version,
            merge_repaired=merge_repaired,
            merge_dropped=merge_dropped,
            views_repaired=views_repaired,
            views_dropped=views_dropped,
            sort_tagged=sort_tagged,
            sort_dropped=sort_dropped,
        )

    def note_skyline(self, indices: "np.ndarray | Sequence[int]") -> None:
        """Record a full-dataset skyline as the delta-repair base.

        Called by the engine after every sequential or parallel full
        execution.  Rebasing clears the pending delta log (the result
        already reflects the mutated data) and drops a stale replay
        stream; a note that matches the current base is a no-op, so warm
        repair streams survive repeated queries.
        """
        ids = np.asarray(indices, dtype=np.intp)
        if (
            not self._pending
            and self._base_dataset is self.dataset
            and self._base_skyline is not None
            and np.array_equal(self._base_skyline, ids)
        ):
            return
        self._base_dataset = self.dataset
        self._base_skyline = ids.copy()
        self._pending = []
        self._pending_ops = 0
        self._row_map = None
        self._next_stream_id = self.cardinality
        self._stream = None

    def delta_state(self) -> DeltaState | None:
        """Pending-mutation summary for the planner; ``None`` when clean."""
        if self._base_skyline is None or not self._pending:
            return None
        return DeltaState(
            pending_ops=self._pending_ops,
            batches=len(self._pending),
            fraction=self._pending_ops / max(1, self.cardinality),
            covered=True,
            stream_ready=self._stream is not None,
        )

    def repair_skyline(
        self,
        counter: DominanceCounter | None = None,
        index_backend: str = "map",
    ) -> list[int]:
        """Replay the pending delta log; return the current skyline ids.

        Bootstraps a columnar
        :class:`~repro.extensions.streaming.StreamingSkyline` from the
        noted base skyline on first use (one vectorised anchor-mask pass —
        no batch skyline run), replays each logged batch (deletes first,
        then inserts), and maps the stream's skyline back to current row
        ids.  The stream's dominance tests accrued during this call are
        charged on ``counter``; afterwards the state is rebased so the
        stream stays warm for the next delta.
        """
        if self._base_skyline is None or self._base_dataset is None:
            raise InvalidParameterError(
                "no noted skyline to repair from; run a full query first"
            )
        run_counter = counter if counter is not None else DominanceCounter()
        stream = self._stream
        if stream is None:
            # Imported lazily: extensions import the engine package.
            from repro.extensions.streaming import StreamingSkyline

            stream = StreamingSkyline.from_dataset(
                self._base_dataset,
                anchors=_STREAM_ANCHORS,
                backend=index_backend,
                skyline_ids=self._base_skyline,
            )
            self._stream = stream
        before = stream.counter.snapshot()
        for batch_inserts, batch_deletes in self._pending:
            if batch_deletes.size:
                stream.delete_many(batch_deletes)
            if batch_inserts.shape[0]:
                stream.insert_many(batch_inserts)
        absorb_since(run_counter, stream.counter, before)
        row_map = self._ensure_row_map()
        stream_skyline = np.asarray(stream.skyline_ids(), dtype=np.int64)
        rows = np.searchsorted(row_map, stream_skyline).astype(np.intp)
        self._base_dataset = self.dataset
        self._base_skyline = rows.copy()
        self._pending = []
        self._pending_ops = 0
        return rows.tolist()

    def _repair_merge_entries(
        self,
        old_values: np.ndarray,
        ins: np.ndarray,
        dels: np.ndarray,
        counter: DominanceCounter,
    ) -> tuple[int, int]:
        repaired = dropped = 0
        for key in list(self._merge_cache):
            fixed = repair_merge_result(
                self._merge_cache[key],  # type: ignore[arg-type]
                old_values,
                ins,
                dels,
                counter,
            )
            if fixed is None:
                del self._merge_cache[key]  # noqa: RPR008 — apply_delta (sole caller) bumps version once for the whole delta
                dropped += 1
            else:
                self._merge_cache[key] = fixed  # noqa: RPR008 — apply_delta (sole caller) bumps version once for the whole delta
                repaired += 1
        return repaired, dropped

    def _tag_sort_caches(
        self,
        old_values: np.ndarray,
        new_values: np.ndarray,
        dels: np.ndarray,
    ) -> tuple[int, int]:
        # Sort keys are computed against the dataset's minimum corner; if
        # the delta moves the corner every cached key is stale, so the
        # caches are dropped rather than tagged.
        corner_stable = bool(
            np.array_equal(old_values.min(axis=0), new_values.min(axis=0))
        )
        tagged = dropped = 0
        new_from = old_values.shape[0] - int(dels.size)
        for key in list(self._sort_caches):
            entry = self._sort_caches[key]
            if (
                corner_stable
                and isinstance(entry, dict)
                and entry.keys() <= _REPAIRABLE_SORT_KEYS
                and "order" in entry
                and "keys" in entry
            ):
                # Consumed (and popped) by `cached_sort_order` at the next
                # scan; an entry already carrying an unconsumed tag fails
                # the keyset check above and is dropped instead of stacking.
                entry["pending_delta"] = (dels.copy(), new_from)
                tagged += 1
            else:
                del self._sort_caches[key]  # noqa: RPR008 — apply_delta (sole caller) bumps version once for the whole delta
                dropped += 1
        return tagged, dropped

    def _repair_views(
        self,
        ins: np.ndarray,
        dels: np.ndarray,
        counter: DominanceCounter,
    ) -> tuple[int, int]:
        repaired = dropped = 0
        for key in list(self._view_cache):
            dims_key, flip_key = key  # type: ignore[misc]
            view = self._view_cache[key]
            if flip_key:
                # Flipped columns were rebased on their pre-delta maxima;
                # a delta can move those, so the projection is rebuilt.
                view.invalidate()  # type: ignore[attr-defined]
                del self._view_cache[key]
                dropped += 1
                continue
            view.apply_delta(  # type: ignore[attr-defined]
                inserts=ins[:, dims_key],
                deletes=dels,
                counter=counter,
                mode="repair",
            )
            repaired += 1
        return repaired, dropped

    def _ensure_row_map(self) -> np.ndarray:
        if self._row_map is None:
            self._row_map = np.arange(self.cardinality, dtype=np.int64)
        return self._row_map

    def _forget_mutation_state(self) -> None:
        self._base_dataset = None
        self._base_skyline = None
        self._pending = []
        self._pending_ops = 0
        self._row_map = None
        self._next_stream_id = 0
        self._stream = None

    # -- lifecycle ----------------------------------------------------------

    def invalidate(self) -> None:
        """Drop every cached artefact and bump :attr:`version`.

        Cached views are invalidated recursively — their artefacts derive
        from this dataset's values.  The noted delta-repair skyline is
        forgotten too: an explicit invalidation signals that the data
        changed through a side door no delta log covers.
        """
        events = current_event_log()
        if events.enabled:
            dropped = self.cache_info()
            events.emit(
                "cache.invalidate",
                dataset=self.dataset.name,
                version=self.version + 1,
                merge=dropped["merge"],
                sort=dropped["sort"],
                views=dropped["views"],
                artefacts=dropped["artefacts"],
            )
        for view in self._view_cache.values():
            view.invalidate()  # type: ignore[attr-defined]
        self._column_major = None
        self._statistics = None
        self._merge_cache.clear()
        self._sort_caches.clear()
        self._view_cache.clear()
        self._artefacts.clear()
        self._forget_mutation_state()
        self.version += 1

    def cache_info(self) -> dict[str, int]:
        """Entry counts per cache — observability for tests and tuning."""
        return {
            "merge": len(self._merge_cache),
            "sort": len(self._sort_caches),
            "views": len(self._view_cache),
            "artefacts": len(self._artefacts),
            "statistics": int(self._statistics is not None),
            "version": self.version,
        }

    @staticmethod
    def _record(counter: DominanceCounter | None, hit: bool) -> None:
        if counter is None:
            return
        if hit:
            counter.add_prepared_hit()
        else:
            counter.add_prepared_miss()

    def __repr__(self) -> str:
        return (
            f"PreparedDataset({self.dataset.name!r}, n={self.cardinality}, "
            f"d={self.dimensionality}, version={self.version})"
        )
