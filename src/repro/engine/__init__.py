"""The planned, session-oriented execution layer.

``prepare -> plan -> execute -> report``: a
:class:`~repro.engine.prepared.PreparedDataset` normalizes a dataset once
and caches Merge results, sort orders, subspace views and estimator
statistics; a :class:`~repro.engine.planner.Planner` turns those statistics
into an inspectable :class:`~repro.engine.plan.Plan`; a
:class:`~repro.engine.engine.SkylineEngine` executes plans with session
state from an :class:`~repro.engine.context.ExecutionContext`.  Every
high-level entry point (``SkylineQuery``, the CLI, the bench runner, the
extensions) routes through this layer; the low-level algorithm APIs remain
as thin wrappers.
"""

from repro.engine.context import ExecutionContext
from repro.engine.engine import SkylineEngine
from repro.engine.plan import Plan
from repro.engine.planner import Planner
from repro.engine.prepared import DatasetStatistics, PreparedDataset

__all__ = [
    "DatasetStatistics",
    "ExecutionContext",
    "Plan",
    "Planner",
    "PreparedDataset",
    "SkylineEngine",
]
