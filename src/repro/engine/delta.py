"""Delta-repair primitives behind :meth:`PreparedDataset.apply_delta`.

The paper's Section 7 names "adapting the proposed method to updating
data" as its open direction; this module supplies the pieces that make a
mutation a *repairable* event instead of a cache-destroying one:

- :func:`normalize_delta` — validate and canonicalise an insert block and
  a delete id set against the current dataset shape;
- :func:`remap_ids` — translate pre-delta row ids into post-delta ids
  (deleted rows close ranks; appended inserts take the tail ids);
- :func:`repair_merge_result` — suffix-repair a cached
  :class:`~repro.core.merge.MergeResult`: the pivot set is kept fixed, so
  Lemma 4.3/5.1 mask semantics survive, deleted points drop out of the
  remaining/duplicate sets and each insert is classified against every
  pivot (one dominance test per pair, charged normally).  Returns ``None``
  when the entry cannot be repaired (a pivot was deleted, or an insert
  dominates a pivot) — the caller drops it and the next query re-merges.

A repaired ``MergeResult`` computes the **same skyline** as a cold Merge
over the mutated dataset, but is not bit-identical to one: pivot selection
depends on global minima, so a cold run may pick different pivots and
charge a different test count.  The engine's equivalence contract is
scoped to cold contexts, and the bench gate asserts identical skyline ids,
not identical pivots.

:class:`DeltaReport` is what ``apply_delta`` returns (what happened, to
which caches); :class:`DeltaState` is what the planner reads (how much is
pending, whether a noted skyline covers it).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.merge import MergeResult
from repro.dominance import dominating_subspaces
from repro.errors import DimensionMismatchError, InvalidParameterError
from repro.stats.counters import DominanceCounter
from repro.structures import bitset

__all__ = [
    "DeltaReport",
    "DeltaState",
    "absorb_since",
    "normalize_delta",
    "remap_ids",
    "repair_merge_result",
]


@dataclass(frozen=True)
class DeltaReport:
    """Outcome of one :meth:`PreparedDataset.apply_delta` call.

    Attributes
    ----------
    mode:
        ``"repair"`` (caches suffix-repaired, delta logged), ``"recompute"``
        (full invalidate — delta too large or forced) or ``"noop"``.
    inserted, deleted:
        Row counts of the applied delta.
    fraction:
        ``(inserted + deleted) / n_before`` — the repair-threshold input.
    version:
        The prepared dataset's version after the call.
    merge_repaired, merge_dropped:
        Cached Merge results suffix-repaired vs dropped as unrepairable.
    views_repaired, views_dropped:
        Cached subspace views delta-repaired recursively vs dropped
        (direction-flipped views depend on column maxima and are dropped).
    sort_tagged, sort_dropped:
        Sort caches tagged for lazy suffix repair at the next scan vs
        dropped (entries without key arrays, or a min-corner change).
    """

    mode: str
    inserted: int
    deleted: int
    fraction: float
    version: int
    merge_repaired: int = 0
    merge_dropped: int = 0
    views_repaired: int = 0
    views_dropped: int = 0
    sort_tagged: int = 0
    sort_dropped: int = 0


@dataclass(frozen=True)
class DeltaState:
    """The planner's view of a prepared dataset's pending mutations.

    Attributes
    ----------
    pending_ops:
        Total inserted + deleted rows logged since the last noted skyline.
    batches:
        Number of ``apply_delta`` calls those operations arrived in.
    fraction:
        ``pending_ops`` over the current cardinality.
    covered:
        True when a noted full skyline exists to repair from (always true
        for states surfaced by ``delta_state`` — kept explicit for the
        planner's cost-model signals).
    stream_ready:
        True when the replay stream is already bootstrapped, so repair
        skips the O(n·anchors) warm start.
    """

    pending_ops: int
    batches: int
    fraction: float
    covered: bool
    stream_ready: bool


def normalize_delta(
    values: np.ndarray,
    inserts: "np.ndarray | list[list[float]] | None",
    deletes: "np.ndarray | list[int] | None",
) -> tuple[np.ndarray, np.ndarray]:
    """Validate a delta against ``values``; return ``(ins_block, del_ids)``.

    ``ins_block`` is a ``(k, d)`` float64 block (possibly ``k == 0``);
    ``del_ids`` is a sorted, duplicate-free ``intp`` array of in-range row
    ids of the *current* dataset.
    """
    n, d = values.shape
    if inserts is None:
        ins = np.empty((0, d), dtype=np.float64)
    else:
        ins = np.asarray(inserts, dtype=np.float64)
        if ins.ndim == 1 and ins.shape[0] == d:
            ins = ins[None, :]
        if ins.ndim != 2 or ins.shape[1] != d:
            raise DimensionMismatchError(
                f"inserts must be a (k, {d}) block, got shape {ins.shape}"
            )
        if not np.isfinite(ins).all():
            raise InvalidParameterError("inserts contain NaN or infinite values")
    if deletes is None:
        dels = np.empty(0, dtype=np.intp)
    else:
        dels = np.asarray(deletes, dtype=np.intp).ravel()
        if dels.size:
            unique = np.unique(dels)
            if unique.size != dels.size:
                raise InvalidParameterError("deletes contain duplicate row ids")
            if unique[0] < 0 or unique[-1] >= n:
                raise InvalidParameterError(
                    f"deletes out of range for cardinality {n}: "
                    f"[{int(unique[0])}, {int(unique[-1])}]"
                )
            dels = unique
    return ins, dels


def remap_ids(ids: np.ndarray, deletes: np.ndarray) -> np.ndarray:
    """Translate pre-delta row ids to post-delta ids (none may be deleted)."""
    if deletes.size == 0:
        return ids
    return ids - np.searchsorted(deletes, ids)


def repair_merge_result(
    result: MergeResult,
    old_values: np.ndarray,
    inserts: np.ndarray,
    deletes: np.ndarray,
    counter: DominanceCounter,
) -> MergeResult | None:
    """Suffix-repair one cached Merge result, or ``None`` if unrepairable.

    Keeps the pivot set fixed: every surviving mask stays a union of
    dominating subspaces against the same anchors, so the boosted scan's
    Lemma 5.1 superset queries remain sound.  Each insert is classified
    against every pivot exactly as the Merge loop would classify a point
    that outlived every extraction — one charged test per (insert, pivot)
    pair — and joins ``remaining_ids`` with the unioned mask, the
    duplicate set (coordinate-equal to a pivot) or the pruned set.
    """
    pivots = np.asarray(result.pivot_ids, dtype=np.intp)
    if deletes.size and bool(np.isin(pivots, deletes).any()):
        return None  # a pivot left the dataset; pruning evidence is gone
    k = int(inserts.shape[0])
    survivors = np.ones(k, dtype=bool)
    duplicate_inserts = np.zeros(k, dtype=bool)
    insert_masks = np.zeros(k, dtype=np.int64)
    for pivot_id in pivots.tolist():
        pivot_row = old_values[pivot_id]
        if k == 0:
            continue
        subs = dominating_subspaces(inserts, pivot_row, counter)
        weakly_below = np.all(inserts <= pivot_row, axis=1)
        if bool((weakly_below & (subs != 0)).any()):
            return None  # an insert dominates this pivot
        equal = np.all(inserts == pivot_row, axis=1)
        duplicate_inserts |= equal
        survivors &= ~((subs == 0) | equal)
        insert_masks = bitset.union(insert_masks, subs)

    keep = (
        ~np.isin(result.remaining_ids, deletes)
        if deletes.size
        else np.ones(result.remaining_ids.shape[0], dtype=bool)
    )
    base = old_values.shape[0] - int(deletes.size)
    new_ids = base + np.flatnonzero(survivors)
    remaining = np.concatenate(
        [remap_ids(result.remaining_ids[keep], deletes), new_ids]
    ).astype(np.intp)
    masks = np.concatenate([result.masks[keep], insert_masks[survivors]]).astype(
        np.int64
    )
    delete_set = set(deletes.tolist())
    kept_duplicates = np.asarray(
        [i for i in result.duplicate_skyline_ids if i not in delete_set],
        dtype=np.intp,
    )
    duplicates = [
        *(int(i) for i in remap_ids(kept_duplicates, deletes)),
        *(int(base + i) for i in np.flatnonzero(duplicate_inserts)),
    ]
    metadata = dict(result.metadata)
    metadata["delta_repaired"] = True
    metadata["cardinality"] = base + k
    return MergeResult(
        pivot_ids=[int(i) for i in remap_ids(pivots, deletes)],
        duplicate_skyline_ids=duplicates,
        remaining_ids=remaining,
        masks=masks,
        iterations=result.iterations,
        final_stability=result.final_stability,
        exhausted=remaining.size == 0,
        metadata=metadata,
    )


def absorb_since(
    target: DominanceCounter,
    current: DominanceCounter,
    since: DominanceCounter,
) -> None:
    """Fold ``current - since`` into ``target`` (replay-stream accounting).

    The replay stream owns a lifetime counter; each repair charges only the
    tallies accrued during that repair onto the caller's counter.
    """
    target.tests += current.tests - since.tests
    target.index_queries += current.index_queries - since.index_queries
    target.index_nodes_visited += (
        current.index_nodes_visited - since.index_nodes_visited
    )
    target.index_cache_hits += current.index_cache_hits - since.index_cache_hits
    target.index_cache_misses += (
        current.index_cache_misses - since.index_cache_misses
    )
    target.index_cache_invalidations += (
        current.index_cache_invalidations - since.index_cache_invalidations
    )
    target.prepared_cache_hits += (
        current.prepared_cache_hits - since.prepared_cache_hits
    )
    target.prepared_cache_misses += (
        current.prepared_cache_misses - since.prepared_cache_misses
    )
    for key, value in current.extras.items():
        delta = value - since.extras.get(key, 0.0)
        if delta:
            target.extras[key] = target.extras.get(key, 0.0) + delta
