"""``SkylineEngine`` — the planned execution façade for every entry point.

The engine ties the layer stack together: *prepare* the dataset once
(:class:`~repro.engine.prepared.PreparedDataset`), *plan* each query
(:class:`~repro.engine.planner.Planner`), *execute* through the shared
boost wiring (:func:`~repro.core.boost.run_boosted_scan`) with session
state from :class:`~repro.engine.context.ExecutionContext`, and *report* a
standard :class:`~repro.algorithms.base.SkylineResult` carrying both the
full counter and the chosen :class:`~repro.engine.plan.Plan`.

Equivalence contract: a pinned plan executed on a cold context performs the
exact sequence of dominance tests the direct
:func:`~repro.algorithms.registry.get_algorithm` call performs — same
skyline ids, same charged test count.  Warm executions reuse prepared
artefacts (Merge results, sort orders); the skyline is unchanged and the
saving is visible as ``prepared_cache_hits`` on the counter.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import replace

import numpy as np

from repro.algorithms.base import SkylineResult, run_timed
from repro.algorithms.registry import get_algorithm
from repro.core.boost import BoostableHost, run_boosted_scan, run_unboosted_scan
from repro.dataset import Dataset, as_dataset
from repro.engine.context import ExecutionContext
from repro.engine.delta import DeltaReport
from repro.engine.plan import Plan
from repro.engine.planner import Planner
from repro.engine.prepared import PreparedDataset
from repro.stats.counters import DominanceCounter

__all__ = ["SkylineEngine"]


class SkylineEngine:
    """Plans and executes skyline queries over prepared datasets.

    Parameters
    ----------
    context:
        Session state (prepared registry, aggregate counter, worker pool);
        a private one is created when omitted.
    planner:
        The plan selector; defaults to a non-autotuning :class:`Planner`.

    >>> from repro.data import generate
    >>> engine = SkylineEngine()
    >>> result = engine.execute(generate("UI", n=400, d=4, seed=1), "sfs-subset")
    >>> result.algorithm
    'sfs-subset'
    >>> result.plan.boosted
    True
    """

    def __init__(
        self,
        context: ExecutionContext | None = None,
        planner: Planner | None = None,
    ) -> None:
        self.context = context if context is not None else ExecutionContext()
        self.planner = planner if planner is not None else Planner()

    def prepare(
        self, data: Dataset | PreparedDataset | np.ndarray
    ) -> PreparedDataset:
        """Prepare (or fetch the prepared form of) ``data``."""
        return self.context.prepare(data)

    def plan(
        self,
        data: Dataset | PreparedDataset | np.ndarray,
        algorithm: str | None = None,
        sigma: int | None = None,
        **options: object,
    ) -> Plan:
        """Plan a query without executing it (``EXPLAIN`` mode)."""
        prepared = self.prepare(data)
        return self.planner.plan(prepared, algorithm, sigma, **options)  # type: ignore[arg-type]

    def execute(
        self,
        data: Dataset | PreparedDataset | np.ndarray,
        algorithm: str | None = None,
        sigma: int | None = None,
        counter: DominanceCounter | None = None,
        *,
        plan: Plan | None = None,
        container: str = "subset",
        pivot_strategy: str = "euclidean",
        memoize: bool = True,
        index_backend: str | None = None,
        workers: int | None = None,
        parallel_strategy: str | None = None,
        incremental: bool | None = None,
        host_options: Mapping[str, object] | None = None,
    ) -> SkylineResult:
        """Plan (unless ``plan`` is given) and execute one skyline query.

        ``algorithm=None`` selects adaptively from dataset statistics; a
        registry name pins the exact direct-call wiring.  ``index_backend``
        and ``workers`` default to ``None`` — "planner decides": pinned
        plans keep the direct-call wiring (map index, sequential), adaptive
        plans choose from the dataset statistics.  ``parallel_strategy``
        pins the block-parallel mode for ``workers > 1`` (``"prefix"`` is
        the prune-aware default, ``"even"`` the legacy split).
        ``incremental`` steers delta repair after :meth:`apply_delta`:
        ``None`` lets the cost model decide, ``True``/``False`` force
        repair/recompute (repair requires an adaptive plan).  The returned
        result's ``counter`` is the per-run counter (the caller's, if
        provided) and ``result.plan`` is the executed plan; the run is
        also absorbed into ``context.counter``.  Every full execution
        notes its skyline on the prepared dataset as the next repair base.
        """
        tracer = self.context.tracer
        events = self.context.events
        run_counter = self.context.run_counter(counter)
        with tracer.activate(), events.activate():
            with tracer.span("prepare", counter=run_counter):
                prepared = self.prepare(data)
            if events.enabled:
                events.emit(
                    "query.start",
                    dataset=prepared.dataset.name,
                    n=prepared.cardinality,
                    d=prepared.dimensionality,
                    algorithm=algorithm if algorithm is not None else "auto",
                )
            if plan is None:
                with tracer.span("plan", counter=run_counter) as plan_span:
                    plan = self.planner.plan(
                        prepared,
                        algorithm,
                        sigma,
                        container=container,
                        pivot_strategy=pivot_strategy,
                        memoize=memoize,
                        index_backend=index_backend,
                        workers=workers,
                        parallel_strategy=parallel_strategy,
                        incremental=incremental,
                        host_options=host_options,
                        counter=run_counter,
                    )
                    plan_span.set(label=plan.label)

            executed: Plan = plan
            if events.enabled:
                events.emit(
                    "plan.chosen",
                    label=executed.label,
                    adaptive=executed.adaptive,
                    incremental=executed.incremental,
                    index_backend=executed.index_backend,
                    workers=executed.workers,
                    parallel_strategy=executed.parallel_strategy,
                )

            def body(dataset: Dataset, body_counter: DominanceCounter) -> list[int]:
                with tracer.span(
                    "execute",
                    counter=body_counter,
                    algorithm=executed.label,
                    sigma=executed.sigma,
                    boosted=executed.boosted,
                    workers=executed.workers,
                    n=dataset.cardinality,
                    d=dataset.dimensionality,
                ):
                    return self._run_plan(prepared, executed, dataset, body_counter)

            result = run_timed(executed.label, prepared.dataset, run_counter, body)
            # Every execution ends with the current full skyline in hand;
            # noting it gives the next apply_delta a repair base.  After an
            # incremental run this matches the rebased stream state, so the
            # note is a no-op that keeps the replay stream warm.
            prepared.note_skyline(result.indices)
            if events.enabled:
                events.emit(
                    "query.finish",
                    label=executed.label,
                    wall_s=result.elapsed_seconds,
                    dominance_tests=int(result.dominance_tests),
                    skyline_size=result.size,
                )
        result = replace(result, plan=executed, trace=tracer.drain())
        self.context.record(run_counter)
        # Session tail-latency accounting: every execution feeds the
        # context histograms (observation-only — three adds per query).
        self.context.observe("query.wall_s", result.elapsed_seconds)
        self.context.observe("query.dominance_tests", float(result.dominance_tests))
        self.context.observe("query.skyline_size", float(result.size))
        return result

    def apply_delta(
        self,
        data: Dataset | PreparedDataset | np.ndarray,
        inserts: "np.ndarray | list[list[float]] | None" = None,
        deletes: "np.ndarray | list[int] | None" = None,
        counter: DominanceCounter | None = None,
        *,
        mode: str | None = None,
    ) -> "DeltaReport":
        """Mutate ``data``'s prepared form through the engine.

        Delegates to :meth:`PreparedDataset.apply_delta` and re-keys the
        context's prepared registry to the mutated value array, so the next
        ``execute(prepared.dataset)`` — or ``execute`` with the prepared
        object itself — finds the repaired caches instead of preparing the
        stale pre-delta array from scratch.
        """
        events = self.context.events
        run_counter = self.context.run_counter(counter)
        with self.context.tracer.activate(), events.activate():
            prepared = self.prepare(data)
            report = prepared.apply_delta(
                inserts, deletes, counter=run_counter, mode=mode
            )
            if events.enabled:
                events.emit(
                    "delta.apply",
                    dataset=prepared.dataset.name,
                    mode=report.mode,
                    inserted=report.inserted,
                    deleted=report.deleted,
                    version=report.version,
                )
        self.context.rebind(prepared)
        self.context.record_delta(run_counter)
        return report

    # -- plan execution -----------------------------------------------------

    def _run_plan(
        self,
        prepared: PreparedDataset,
        plan: Plan,
        dataset: Dataset,
        counter: DominanceCounter,
    ) -> list[int]:
        if plan.incremental:
            events = self.context.events
            if events.enabled:
                events.emit(
                    "delta.repair",
                    dataset=prepared.dataset.name,
                    pending=plan.pending_mutations,
                    backend=plan.index_backend,
                )
            with self.context.tracer.span(
                "engine.repair",
                counter=counter,
                pending=plan.pending_mutations,
                backend=plan.index_backend,
            ):
                return prepared.repair_skyline(
                    counter, index_backend=plan.index_backend
                )
        if plan.workers > 1:
            # Block-parallel path: lazy import keeps engine -> extensions
            # off the module import graph (extensions import the engine).
            from repro.core.prefix import monotone_order
            from repro.extensions.parallel import parallel_skyline

            order = None
            if plan.parallel_strategy == "prefix":
                # The monotone scan order is a pure function of the
                # values; prepared sessions compute it once and reuse it
                # across every parallel query (and the worker pool keys
                # its shared order segment off the same array identity).
                order = prepared.artefact(
                    ("parallel", "monotone-order"),
                    lambda: monotone_order(dataset.values),
                    counter,
                )
            indices = parallel_skyline(
                dataset,
                workers=plan.workers,
                algorithm=plan.label,
                # Boosted plans also merge the union of local skylines
                # through the boosted wiring, so the merge phase shares
                # the plan's subset-index backend (a flat plan funnels
                # every block's survivors through one flat index).
                merge_algorithm=plan.label if plan.boosted else "sfs",
                counter=counter,
                pool=self.context.pool,
                index_backend=plan.index_backend,
                partition="sorted" if plan.parallel_strategy == "prefix" else "even",
                prefix_size=plan.prefix_size,
                block_growth=plan.block_growth,
                order=order,
            )
            return [int(i) for i in indices]

        host = get_algorithm(plan.algorithm, **dict(plan.host_options))  # type: ignore[arg-type]
        sort_cache = prepared.sort_cache(plan.sort_cache_key)
        if plan.boosted:
            merged = (
                prepared.merged(plan.sigma, plan.pivot_strategy, counter)
                if dataset.dimensionality >= 2
                else None
            )
            return run_boosted_scan(
                dataset,
                host,  # type: ignore[arg-type]
                counter,
                sigma=plan.sigma,
                container=plan.container,
                pivot_strategy=plan.pivot_strategy,
                memoize=plan.memoize,
                merged=merged,
                sort_cache=sort_cache,
                index_backend=plan.index_backend,
            )
        if isinstance(host, BoostableHost):
            return run_unboosted_scan(dataset, host, counter, sort_cache)
        # Non-phase algorithms (BNL, BBS, D&C, ...) have no cacheable sort
        # phase; run their private body under the engine's timer.
        return host._run(dataset, counter)  # noqa: SLF001 — engine is the sanctioned caller of algorithm bodies

    def close(self) -> None:
        """Release the context's session state."""
        self.context.close()

    def __enter__(self) -> "SkylineEngine":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"SkylineEngine(context={self.context!r})"
