"""Invariant-aware static analysis and correctness gate for the skyline stack.

Two layers, one exit code:

- **Static lint** (:mod:`repro.analysis.lint` / :mod:`repro.analysis.rules`)
  — repo-specific rules RPR001–RPR012 enforcing the conventions the
  reproduction's *numbers* depend on: counted dominance tests, centralized
  bitmask manipulation, registry hygiene, loop-hoisted scalar conversions,
  plus the interprocedural dataflow rules (cache-invalidation coherence,
  worker-shared-state safety, counter-threading) built on the
  whole-program model in :mod:`repro.analysis.symbols` /
  :mod:`repro.analysis.callgraph` / :mod:`repro.analysis.mutation`.
  Accepted pre-existing findings live in a fingerprinted baseline
  (:mod:`repro.analysis.baseline`).
- **Runtime contracts** (:mod:`repro.analysis.contracts` /
  :mod:`repro.analysis.differential`) — seeded end-to-end verification of
  Lemma 5.1 and Algorithm 1, plus differential testing of every registered
  algorithm against an independent brute-force oracle.

Run the whole gate with ``python -m repro.analysis --strict src/repro``;
see ``docs/ANALYSIS.md`` for the rule catalogue.
"""

from __future__ import annotations

from repro.analysis.contracts import (
    CheckedSubsetContainer,
    ContractViolation,
    run_contract_checks,
    verify_index_superset_filter,
    verify_merge_masks,
)
from repro.analysis.differential import (
    Divergence,
    differential_findings,
    minimize_counterexample,
    oracle_skyline,
    run_differential,
)
from repro.analysis.baseline import (
    Baseline,
    BaselineEntry,
    fingerprint_findings,
    load_baseline,
    write_baseline,
)
from repro.analysis.callgraph import CallGraph, build_call_graph
from repro.analysis.lint import lint_paths
from repro.analysis.mutation import MutationSummary, summarize_mutations
from repro.analysis.project import Project, build_project
from repro.analysis.report import Finding, Severity
from repro.analysis.rules import ALL_RULES, ProjectRule, rule_codes
from repro.analysis.symbols import SymbolTable, build_symbol_table

__all__ = [
    "ALL_RULES",
    "Baseline",
    "BaselineEntry",
    "CallGraph",
    "CheckedSubsetContainer",
    "ContractViolation",
    "Divergence",
    "Finding",
    "MutationSummary",
    "Project",
    "ProjectRule",
    "Severity",
    "SymbolTable",
    "build_call_graph",
    "build_project",
    "build_symbol_table",
    "differential_findings",
    "fingerprint_findings",
    "lint_paths",
    "load_baseline",
    "minimize_counterexample",
    "oracle_skyline",
    "rule_codes",
    "run_contract_checks",
    "run_differential",
    "summarize_mutations",
    "verify_index_superset_filter",
    "verify_merge_masks",
]
