"""Invariant-aware static analysis and correctness gate for the skyline stack.

Two layers, one exit code:

- **Static lint** (:mod:`repro.analysis.lint` / :mod:`repro.analysis.rules`)
  — repo-specific AST rules RPR001–RPR004 enforcing the conventions the
  reproduction's *numbers* depend on: counted dominance tests, centralized
  bitmask manipulation, registry hygiene, loop-hoisted scalar conversions.
- **Runtime contracts** (:mod:`repro.analysis.contracts` /
  :mod:`repro.analysis.differential`) — seeded end-to-end verification of
  Lemma 5.1 and Algorithm 1, plus differential testing of every registered
  algorithm against an independent brute-force oracle.

Run the whole gate with ``python -m repro.analysis --strict src/repro``;
see ``docs/ANALYSIS.md`` for the rule catalogue.
"""

from __future__ import annotations

from repro.analysis.contracts import (
    CheckedSubsetContainer,
    ContractViolation,
    run_contract_checks,
    verify_index_superset_filter,
    verify_merge_masks,
)
from repro.analysis.differential import (
    Divergence,
    differential_findings,
    minimize_counterexample,
    oracle_skyline,
    run_differential,
)
from repro.analysis.lint import lint_paths
from repro.analysis.report import Finding, Severity
from repro.analysis.rules import ALL_RULES, rule_codes

__all__ = [
    "ALL_RULES",
    "CheckedSubsetContainer",
    "ContractViolation",
    "Divergence",
    "Finding",
    "Severity",
    "differential_findings",
    "lint_paths",
    "minimize_counterexample",
    "oracle_skyline",
    "rule_codes",
    "run_contract_checks",
    "run_differential",
    "verify_index_superset_filter",
    "verify_merge_masks",
]
