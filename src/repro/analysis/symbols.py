"""Project-wide symbol table and import graph for the dataflow rules.

:mod:`repro.analysis.lint` hands each rule one parsed module at a time,
which is enough for syntactic conventions (RPR001–RPR007) but not for the
interprocedural rules: counter-threading (RPR010) must follow calls across
modules, and worker-safety (RPR009) must close over everything a worker
entrypoint can transitively reach.  This module builds the whole-program
view those rules share:

- every function and method in the analyzed tree, with its enclosing
  class, parameter names and a stable qualified name
  (``path/to/mod.py::Class.method``);
- a bare-name lookup table (``by_name``) — the conservative resolution
  unit: a call to ``compute`` may dispatch to *any* known ``compute``;
- the module import graph over the analyzed files, restricted to
  project-internal edges (``repro.*``).

The table is a pure function of the parsed modules; building it walks each
AST once, so whole-tree construction stays well under the analysis
wall-clock budget.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.analysis.lint import ModuleInfo

__all__ = ["FunctionInfo", "ClassInfo", "SymbolTable", "build_symbol_table", "module_dotted_name"]


@dataclass(frozen=True)
class FunctionInfo:
    """One function or method definition in the analyzed tree."""

    qualname: str
    name: str
    module: ModuleInfo = field(compare=False, repr=False)
    node: ast.FunctionDef | ast.AsyncFunctionDef = field(compare=False, repr=False)
    cls_name: str | None
    params: tuple[str, ...]
    lineno: int

    @property
    def is_method(self) -> bool:
        return self.cls_name is not None


@dataclass(frozen=True)
class ClassInfo:
    """One class definition with its directly defined methods."""

    name: str
    module: ModuleInfo = field(compare=False, repr=False)
    node: ast.ClassDef = field(compare=False, repr=False)
    methods: tuple[FunctionInfo, ...]
    base_names: tuple[str, ...]


@dataclass(frozen=True)
class SymbolTable:
    """The whole-program view shared by the interprocedural rules.

    Attributes
    ----------
    modules:
        Every analyzed module, in discovery order.
    functions:
        Every function and method, including nested functions.
    classes:
        Every class, with the methods defined directly in its body.
    by_name:
        Bare name → all functions carrying it.  This is the conservative
        dynamic-dispatch model: an attribute call ``x.compute(...)``
        resolves to every known ``compute``.
    init_by_class:
        Class name → its ``__init__`` (when defined), so constructor
        calls (``SubsetBoost(...)``) resolve through the call graph.
    import_graph:
        Module dotted name → project-internal modules it imports.
    """

    modules: tuple[ModuleInfo, ...]
    functions: tuple[FunctionInfo, ...]
    classes: tuple[ClassInfo, ...]
    by_name: dict[str, tuple[FunctionInfo, ...]]
    init_by_class: dict[str, FunctionInfo]
    import_graph: dict[str, frozenset[str]]

    def resolve(self, name: str) -> tuple[FunctionInfo, ...]:
        """All functions a bare call name may dispatch to (possibly none)."""
        direct = self.by_name.get(name, ())
        init = self.init_by_class.get(name)
        if init is not None and init not in direct:
            return direct + (init,)
        return direct


def module_dotted_name(module: ModuleInfo) -> str:
    """A dotted module name derived from the display path.

    ``src/repro/core/container.py`` → ``repro.core.container``; paths not
    under a recognizable package root fall back to the stem-joined path so
    fixture trees still get unique, stable names.
    """
    parts = list(module.path.with_suffix("").parts)
    if "repro" in parts:
        parts = parts[parts.index("repro"):]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1] or parts
    return ".".join(parts)


def _param_names(node: ast.FunctionDef | ast.AsyncFunctionDef) -> tuple[str, ...]:
    args = node.args
    names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    if args.vararg is not None:
        names.append(args.vararg.arg)
    if args.kwarg is not None:
        names.append(args.kwarg.arg)
    return tuple(names)


def _imported_modules(tree: ast.Module) -> frozenset[str]:
    """Project-internal modules imported anywhere in ``tree``."""
    found: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.split(".")[0] == "repro":
                    found.add(alias.name)
        elif isinstance(node, ast.ImportFrom):
            if node.module and node.module.split(".")[0] == "repro":
                found.add(node.module)
    return frozenset(found)


def _collect_functions(
    module: ModuleInfo,
) -> tuple[list[FunctionInfo], list[ClassInfo]]:
    functions: list[FunctionInfo] = []
    classes: list[ClassInfo] = []

    def add_function(
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        cls_name: str | None,
        prefix: str,
    ) -> FunctionInfo:
        info = FunctionInfo(
            qualname=f"{module.display_path}::{prefix}{node.name}",
            name=node.name,
            module=module,
            node=node,
            cls_name=cls_name,
            params=_param_names(node),
            lineno=node.lineno,
        )
        functions.append(info)
        # Functions nested inside this one are plain functions (their
        # closure is the enclosing function), never methods of a class.
        visit(node.body, None, f"{prefix}{node.name}.")
        return info

    def add_class(node: ast.ClassDef, prefix: str) -> None:
        own: list[FunctionInfo] = []
        body_prefix = f"{prefix}{node.name}."
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                own.append(add_function(stmt, node.name, body_prefix))
            elif isinstance(stmt, ast.ClassDef):
                add_class(stmt, body_prefix)
            else:
                visit([stmt], node.name, body_prefix)
        classes.append(
            ClassInfo(
                name=node.name,
                module=module,
                node=node,
                methods=tuple(own),
                base_names=tuple(
                    base.id for base in node.bases if isinstance(base, ast.Name)
                ),
            )
        )

    def visit(
        stmts: Iterable[ast.AST], cls_name: str | None, prefix: str
    ) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                add_function(stmt, cls_name, prefix)
            elif isinstance(stmt, ast.ClassDef):
                add_class(stmt, prefix)
            else:
                visit(ast.iter_child_nodes(stmt), cls_name, prefix)

    visit(module.tree.body, None, "")
    return functions, classes


def build_symbol_table(modules: Iterable[ModuleInfo]) -> SymbolTable:
    """Build the :class:`SymbolTable` over ``modules`` in one AST pass each."""
    module_list: Sequence[ModuleInfo] = tuple(modules)
    all_functions: list[FunctionInfo] = []
    all_classes: list[ClassInfo] = []
    import_graph: dict[str, frozenset[str]] = {}
    for module in module_list:
        functions, classes = _collect_functions(module)
        all_functions.extend(functions)
        all_classes.extend(classes)
        import_graph[module_dotted_name(module)] = _imported_modules(module.tree)

    by_name: dict[str, list[FunctionInfo]] = {}
    for fn in all_functions:
        by_name.setdefault(fn.name, []).append(fn)

    init_by_class: dict[str, FunctionInfo] = {}
    for cls in all_classes:
        for method in cls.methods:
            if method.name == "__init__":
                init_by_class[cls.name] = method
                break

    return SymbolTable(
        modules=tuple(module_list),
        functions=tuple(all_functions),
        classes=tuple(all_classes),
        by_name={name: tuple(fns) for name, fns in by_name.items()},
        init_by_class=init_by_class,
        import_graph=import_graph,
    )
