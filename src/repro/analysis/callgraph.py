"""A conservative, name-based call graph over the analyzed project.

Precision model
---------------
Resolution is **by bare name**: a call ``f(x)`` or ``obj.f(x)`` dispatches
to *every* known function or method named ``f`` (plus ``C.__init__`` for a
constructor call ``C(...)``).  This deliberately over-approximates dynamic
dispatch — the registry and engine façades hand out algorithm objects whose
concrete type no static analysis here can pin down, so the safe answer to
"what can ``algorithm.compute(...)`` reach?" is "any ``compute`` in the
tree".  The consequences the rules must live with:

- reachability sets err large, never small: a function reported *not* to
  reach a dominance kernel truly cannot (under the model's assumption that
  all calls stay inside the analyzed tree);
- findings derived from reachability (RPR009/RPR010) can be false
  positives on shared method names, which is what the justified-baseline
  workflow exists to absorb.

Calls to names with no known definition (numpy, stdlib) resolve to
nothing and simply terminate the walk along that edge.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable

from repro.analysis.symbols import FunctionInfo, SymbolTable

__all__ = ["CallSite", "CallGraph", "build_call_graph"]


@dataclass(frozen=True)
class CallSite:
    """One call expression inside a function body."""

    name: str
    lineno: int
    node: ast.Call = field(compare=False, repr=False)


def _called_name(func: ast.expr) -> str | None:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _collect_calls(fn: FunctionInfo) -> tuple[CallSite, ...]:
    sites = []
    for node in ast.walk(fn.node):
        if isinstance(node, ast.Call):
            name = _called_name(node.func)
            if name is not None:
                sites.append(CallSite(name=name, lineno=node.lineno, node=node))
    return tuple(sites)


class CallGraph:
    """Forward and reverse call edges keyed by function qualname."""

    def __init__(self, table: SymbolTable) -> None:
        self.table = table
        self.calls: dict[str, tuple[CallSite, ...]] = {}
        self.edges: dict[str, frozenset[str]] = {}
        self._by_qualname = {fn.qualname: fn for fn in table.functions}
        reverse: dict[str, set[str]] = {fn.qualname: set() for fn in table.functions}
        for fn in table.functions:
            sites = _collect_calls(fn)
            self.calls[fn.qualname] = sites
            targets: set[str] = set()
            for site in sites:
                for callee in table.resolve(site.name):
                    targets.add(callee.qualname)
                    reverse[callee.qualname].add(fn.qualname)
            targets.discard(fn.qualname)
            self.edges[fn.qualname] = frozenset(targets)
        self.reverse_edges: dict[str, frozenset[str]] = {
            qual: frozenset(callers) for qual, callers in reverse.items()
        }

    def function(self, qualname: str) -> FunctionInfo:
        return self._by_qualname[qualname]

    def reachable_from(self, roots: Iterable[str]) -> set[str]:
        """Qualnames transitively callable from ``roots`` (roots included)."""
        seen: set[str] = set()
        stack = [r for r in roots if r in self.edges]
        while stack:
            qual = stack.pop()
            if qual in seen:
                continue
            seen.add(qual)
            stack.extend(self.edges[qual] - seen)
        return seen

    def reaching(self, call_names: set[str]) -> set[str]:
        """Qualnames that transitively *make* a call to any of ``call_names``.

        A function whose body contains a call to one of the names is a
        direct member; everything that can reach a member through the call
        graph joins the set.  The kernel implementations themselves are not
        members by virtue of their name — only call sites count.
        """
        seen: set[str] = set()
        stack = [
            qual
            for qual, sites in self.calls.items()
            if any(site.name in call_names for site in sites)
        ]
        while stack:
            qual = stack.pop()
            if qual in seen:
                continue
            seen.add(qual)
            stack.extend(self.reverse_edges.get(qual, frozenset()) - seen)
        return seen


def build_call_graph(table: SymbolTable) -> CallGraph:
    """Build the conservative call graph for ``table``."""
    return CallGraph(table)
