"""Repo-specific lint rules (RPR001–RPR007).

Each rule encodes one of the conventions the subset-skyline reproduction
depends on for *correctness of its reported numbers*, not just style:

- **RPR001** — every dominance-kernel call must thread a
  ``DominanceCounter``, or EXPERIMENTS.md's mean-DT numbers silently
  undercount.
- **RPR002** — subspace bitmasks may only be manipulated through
  :mod:`repro.structures.bitset` / :mod:`repro.core.subspace`; ad-hoc
  bit surgery is how Lemma 4.2/4.3/5.1 soundness quietly breaks.
- **RPR003** — every module in ``algorithms/`` defines exactly one
  algorithm and exports ``__all__``, keeping the registry auditable.
- **RPR004** — no per-element ``float(arr[i])`` conversions inside
  per-point loops; convert once outside the loop (``.tolist()``).
- **RPR005** — no direct ``SubsetBoost(...)`` construction outside
  ``core/`` and ``engine/``; hand-wired boosts bypass the engine's
  prepared caches and planner, recreating the duplication the engine
  refactor removed.
- **RPR006** — no raw ``time.perf_counter()`` / ``time.process_time()``
  calls outside ``obs/`` and ``algorithms/base.py``; ad-hoc clocks define
  "elapsed" differently per call site, so measurements flow through
  :mod:`repro.obs.clock` and the tracer instead.
- **RPR007** — no direct ``SkylineIndex(...)`` / ``FlatSubsetIndex(...)``
  construction outside ``core/`` and ``engine/``; the container
  (``SubsetContainer(backend=...)``) is the sanctioned switch point, so a
  hand-built index silently pins one backend and skips the fused
  candidate path and its accounting.

Rules are pure functions of a parsed module; suppression is line-level
``# noqa: RPRxxx`` (see :mod:`repro.analysis.lint`).
"""

from __future__ import annotations

import ast
import re
from abc import ABC, abstractmethod
from typing import Iterable, Iterator, Sequence

from repro.analysis.lint import ModuleInfo
from repro.analysis.report import Finding, Severity

_MASKY_NAME = re.compile(r"mask|subspace", re.IGNORECASE)

#: Dominance-kernel functions and the positional index of their counter.
_COUNTED_KERNELS: dict[str, int] = {
    "dominates": 2,
    "weakly_dominates": 2,
    "incomparable": 2,
    "dominating_subspace": 2,
    "dominating_subspaces": 2,
    "first_dominator": 2,
    "first_dominator_prefix": 4,
    "maximum_dominating_subspace": 2,
}

_BITWISE_BINOPS = (ast.BitOr, ast.BitAnd, ast.BitXor, ast.LShift, ast.RShift)


class Rule(ABC):
    """One lint rule: a code, a severity and an AST check."""

    code: str
    name: str
    severity: Severity
    description: str
    #: Posix path suffixes exempt from this rule (the modules that *own*
    #: the convention the rule enforces elsewhere).
    allowlist: tuple[str, ...] = ()

    @abstractmethod
    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        """Yield findings for ``module`` (already allowlist-filtered)."""

    def applies_to(self, module: ModuleInfo) -> bool:
        path = module.path.resolve().as_posix()
        return not any(path.endswith(suffix) for suffix in self.allowlist)

    def finding(self, module: ModuleInfo, line: int, message: str) -> Finding:
        return Finding(
            rule=self.code,
            path=module.display_path,
            line=line,
            message=message,
            severity=self.severity,
            snippet=module.line(line),
        )


def _called_name(func: ast.expr) -> str | None:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


class UncountedDominance(Rule):
    """RPR001: dominance-kernel calls must thread a ``counter``."""

    code = "RPR001"
    name = "uncounted-dominance"
    severity = Severity.ERROR
    description = (
        "call to a dominance kernel without a DominanceCounter argument; "
        "pass `counter` (or a scratch counter) so mean-DT accounting stays exact"
    )
    allowlist = ("repro/dominance.py",)

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if not self.applies_to(module):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            called = _called_name(node.func)
            if called not in _COUNTED_KERNELS:
                continue
            counter_index = _COUNTED_KERNELS[called]
            if len(node.args) > counter_index:
                continue
            if any(kw.arg == "counter" for kw in node.keywords):
                continue
            yield self.finding(
                module,
                node.lineno,
                f"`{called}` called without a counter — dominance tests "
                "performed here are invisible to the DT metric",
            )


def _smells_like_mask(expr: ast.expr) -> bool:
    for node in ast.walk(expr):
        if isinstance(node, ast.Name) and _MASKY_NAME.search(node.id):
            return True
        if isinstance(node, ast.Attribute) and _MASKY_NAME.search(node.attr):
            return True
    return False


class RawBitmaskSurgery(Rule):
    """RPR002: bitwise ops on subspace masks outside the bitset modules."""

    code = "RPR002"
    name = "raw-bitmask-surgery"
    severity = Severity.ERROR
    description = (
        "bitwise operator applied to a subspace mask outside "
        "repro.structures.bitset / repro.core.subspace; use the bitset "
        "helpers so subset/superset semantics stay in one audited place"
    )
    allowlist = ("repro/structures/bitset.py", "repro/core/subspace.py")

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if not self.applies_to(module):
            return
        reported: set[int] = set()
        for node in ast.walk(module.tree):
            operands: list[ast.expr]
            if isinstance(node, ast.BinOp) and isinstance(node.op, _BITWISE_BINOPS):
                operands = [node.left, node.right]
                op_name = type(node.op).__name__
            elif isinstance(node, ast.AugAssign) and isinstance(
                node.op, _BITWISE_BINOPS
            ):
                operands = [node.target, node.value]
                op_name = type(node.op).__name__
            elif isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.Invert):
                operands = [node.operand]
                op_name = "Invert"
            else:
                continue
            if node.lineno in reported:
                continue
            if any(_smells_like_mask(operand) for operand in operands):
                reported.add(node.lineno)
                yield self.finding(
                    module,
                    node.lineno,
                    f"raw bitwise {op_name} on a subspace mask — route it "
                    "through repro.structures.bitset",
                )


def _algorithm_classes(tree: ast.Module) -> list[ast.ClassDef]:
    """Classes declaring a class-level ``name = "<str>"`` attribute."""
    found = []
    for node in tree.body:
        if not isinstance(node, ast.ClassDef):
            continue
        for stmt in node.body:
            target: ast.expr | None = None
            value: ast.expr | None = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target, value = stmt.targets[0], stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                target, value = stmt.target, stmt.value
            if (
                isinstance(target, ast.Name)
                and target.id == "name"
                and isinstance(value, ast.Constant)
                and isinstance(value.value, str)
            ):
                found.append(node)
                break
    return found


def _exported_names(tree: ast.Module) -> list[str] | None:
    """The module's ``__all__`` as a list of strings, or None if absent."""
    for node in tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if not any(
            isinstance(t, ast.Name) and t.id == "__all__" for t in targets
        ):
            continue
        if isinstance(value, (ast.List, ast.Tuple)):
            return [
                elt.value
                for elt in value.elts
                if isinstance(elt, ast.Constant) and isinstance(elt.value, str)
            ]
        return []
    return None


class RegistryHygiene(Rule):
    """RPR003: algorithm modules export ``__all__`` and one algorithm each."""

    code = "RPR003"
    name = "registry-hygiene"
    severity = Severity.ERROR
    description = (
        "modules under algorithms/ must export __all__ and define exactly "
        "one algorithm class (a class with a class-level `name` attribute), "
        "keeping the registry a complete audit of what can run"
    )
    allowlist = (
        "repro/algorithms/__init__.py",
        "repro/algorithms/base.py",
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if module.path.parent.name != "algorithms":
            return
        if not self.applies_to(module):
            return
        exported = _exported_names(module.tree)
        if exported is None:
            yield self.finding(
                module, 1, "algorithm module does not export __all__"
            )
        classes = _algorithm_classes(module.tree)
        for extra in classes[1:]:
            yield self.finding(
                module,
                extra.lineno,
                f"module defines {len(classes)} algorithm classes; the "
                "registry convention is one per module "
                f"(`{classes[0].name}` already defined)",
            )
        if exported is not None:
            for cls in classes:
                if cls.name not in exported:
                    yield self.finding(
                        module,
                        cls.lineno,
                        f"algorithm class `{cls.name}` is missing from __all__",
                    )


class NumpyScalarLeak(Rule):
    """RPR004: per-element ``float(arr[i])`` conversions inside loops."""

    code = "RPR004"
    name = "numpy-scalar-leak"
    severity = Severity.WARNING
    description = (
        "float(array[index]) inside a per-point loop boxes one numpy scalar "
        "per iteration; hoist the conversion (e.g. `.tolist()`) out of the "
        "hot loop"
    )
    allowlist = ()

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if not self.applies_to(module):
            return
        seen: set[int] = set()
        for loop in ast.walk(module.tree):
            if not isinstance(loop, (ast.For, ast.While)):
                continue
            for node in ast.walk(loop):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "float"
                    and len(node.args) == 1
                    and isinstance(node.args[0], ast.Subscript)
                    and node.lineno not in seen
                ):
                    seen.add(node.lineno)
                    yield self.finding(
                        module,
                        node.lineno,
                        "float() of a subscript inside a loop — convert the "
                        "whole array once before the loop",
                    )


class HandWiredBoost(Rule):
    """RPR005: direct ``SubsetBoost`` construction outside core/ and engine/."""

    code = "RPR005"
    name = "hand-wired-boost"
    severity = Severity.ERROR
    description = (
        "direct SubsetBoost(...) construction outside core/ and engine/; "
        "route the query through repro.engine.SkylineEngine (or the "
        "registry) so prepared caches, planning and counters stay wired — "
        "suppress deliberate low-level wiring with `# noqa: RPR005`"
    )

    def applies_to(self, module: ModuleInfo) -> bool:
        path = module.path.resolve().as_posix()
        if "/repro/core/" in path or "/repro/engine/" in path:
            return False
        return super().applies_to(module)

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if not self.applies_to(module):
            return
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and _called_name(node.func) == "SubsetBoost"
            ):
                yield self.finding(
                    module,
                    node.lineno,
                    "SubsetBoost constructed directly — execute through "
                    "repro.engine.SkylineEngine so Merge results and sort "
                    "orders come from the prepared caches",
                )


#: Index classes RPR007 polices: both subset-index backends.
_INDEX_CLASSES = ("SkylineIndex", "FlatSubsetIndex")


class HandBuiltIndex(Rule):
    """RPR007: direct subset-index construction outside core/ and engine/."""

    code = "RPR007"
    name = "hand-built-index"
    severity = Severity.ERROR
    description = (
        "direct SkylineIndex(...)/FlatSubsetIndex(...) construction outside "
        "core/ and engine/; go through SubsetContainer(backend=...) (or the "
        "engine) so the backend switch, fused candidate gather and index "
        "accounting stay wired — suppress deliberate low-level wiring with "
        "`# noqa: RPR007`"
    )

    def applies_to(self, module: ModuleInfo) -> bool:
        path = module.path.resolve().as_posix()
        if "/repro/core/" in path or "/repro/engine/" in path:
            return False
        return super().applies_to(module)

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if not self.applies_to(module):
            return
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and _called_name(node.func) in _INDEX_CLASSES
            ):
                yield self.finding(
                    module,
                    node.lineno,
                    f"`{_called_name(node.func)}` constructed directly — use "
                    "SubsetContainer(backend=...) so map/flat selection stays "
                    "a one-line switch",
                )


#: Raw-clock callables RPR006 polices.  ``time.monotonic``/``time.time``
#: are deliberately excluded: they appear in wall-clock *scheduling* code
#: (pool timeouts), not in measurements.
_RAW_CLOCKS = ("perf_counter", "process_time")


class RawClockRead(Rule):
    """RPR006: raw clock reads outside ``obs/`` and ``algorithms/base.py``."""

    code = "RPR006"
    name = "raw-clock-read"
    severity = Severity.ERROR
    description = (
        "time.perf_counter()/process_time() called outside repro.obs and "
        "algorithms/base.py; use repro.obs.clock.timed()/Stopwatch (or a "
        "tracer span) so every measurement shares one definition of "
        "'elapsed' — suppress deliberate raw reads with `# noqa: RPR006`"
    )
    allowlist = ("repro/algorithms/base.py",)

    def applies_to(self, module: ModuleInfo) -> bool:
        path = module.path.resolve().as_posix()
        if "/repro/obs/" in path:
            return False
        return super().applies_to(module)

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if not self.applies_to(module):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            called = _called_name(node.func)
            if called not in _RAW_CLOCKS:
                continue
            yield self.finding(
                module,
                node.lineno,
                f"raw `{called}()` read — time through "
                "repro.obs.clock.timed()/Stopwatch or a tracer span so the "
                "phase breakdown and the headline numbers agree",
            )


ALL_RULES: tuple[Rule, ...] = (
    UncountedDominance(),
    RawBitmaskSurgery(),
    RegistryHygiene(),
    NumpyScalarLeak(),
    HandWiredBoost(),
    RawClockRead(),
    HandBuiltIndex(),
)


def rule_codes() -> list[str]:
    """All registered rule codes, sorted."""
    return sorted(rule.code for rule in ALL_RULES)


def active_rules(select: Iterable[str] | None = None) -> Sequence[Rule]:
    """The rules to run: all of them, or the ``select``-ed codes."""
    if select is None:
        return ALL_RULES
    wanted = {code.strip().upper() for code in select}
    unknown = wanted - {rule.code for rule in ALL_RULES}
    if unknown:
        raise ValueError(
            f"unknown rule code(s): {sorted(unknown)}; known: {rule_codes()}"
        )
    return tuple(rule for rule in ALL_RULES if rule.code in wanted)
