"""Repo-specific lint rules (RPR001–RPR012).

Each rule encodes one of the conventions the subset-skyline reproduction
depends on for *correctness of its reported numbers*, not just style:

- **RPR001** — every dominance-kernel call must thread a
  ``DominanceCounter``, or EXPERIMENTS.md's mean-DT numbers silently
  undercount.
- **RPR002** — subspace bitmasks may only be manipulated through
  :mod:`repro.structures.bitset` / :mod:`repro.core.subspace`; ad-hoc
  bit surgery is how Lemma 4.2/4.3/5.1 soundness quietly breaks.
- **RPR003** — every module in ``algorithms/`` defines exactly one
  algorithm and exports ``__all__``, keeping the registry auditable.
- **RPR004** — no per-element ``float(arr[i])`` conversions inside
  per-point loops; convert once outside the loop (``.tolist()``).
- **RPR005** — no direct ``SubsetBoost(...)`` construction outside
  ``core/`` and ``engine/``; hand-wired boosts bypass the engine's
  prepared caches and planner, recreating the duplication the engine
  refactor removed.
- **RPR006** — no raw ``time.perf_counter()`` / ``time.process_time()``
  calls outside ``obs/`` and ``algorithms/base.py``; ad-hoc clocks define
  "elapsed" differently per call site, so measurements flow through
  :mod:`repro.obs.clock` and the tracer instead.
- **RPR007** — no direct ``SkylineIndex(...)`` / ``FlatSubsetIndex(...)``
  construction outside ``core/`` and ``engine/``; the container
  (``SubsetContainer(backend=...)``) is the sanctioned switch point, so a
  hand-built index silently pins one backend and skips the fused
  candidate path and its accounting.

RPR008–RPR010 are *project* rules (:class:`ProjectRule`): they run over
the whole-program model from :mod:`repro.analysis.project` — symbol
table, conservative call graph and per-function mutation summaries —
instead of one module at a time:

- **RPR008** — cache-invalidation coherence: a method of a versioned
  class that mutates a memo-backing attribute must bump the
  generation/version or invalidate.
- **RPR009** — worker-shared-state safety: code reachable from a pool
  submission must not mutate closed-over or global state.
- **RPR010** — interprocedural counter-threading: code that transitively
  reaches a dominance kernel must thread the caller's counter, never a
  throwaway one (RPR001's invariant, lifted across call boundaries).
- **RPR011** — noqa hygiene: suppressions carry justifications and may
  not go stale (engine-implemented; see :mod:`repro.analysis.lint`).
- **RPR012** — no swallowed exceptions: bare ``except:`` and
  ``except Exception: pass`` hide worker failures.

Rules are pure functions of a parsed module (or project); suppression is
line-level ``# noqa: RPRxxx`` (see :mod:`repro.analysis.lint`).
"""

from __future__ import annotations

import ast
import re
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

from repro.analysis.lint import ModuleInfo
from repro.analysis.report import Finding, Severity

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.project import Project

_MASKY_NAME = re.compile(r"mask|subspace", re.IGNORECASE)

#: Dominance-kernel functions and the positional index of their counter.
_COUNTED_KERNELS: dict[str, int] = {
    "dominates": 2,
    "weakly_dominates": 2,
    "incomparable": 2,
    "dominating_subspace": 2,
    "dominating_subspaces": 2,
    "first_dominator": 2,
    "first_dominator_prefix": 4,
    "maximum_dominating_subspace": 2,
}

_BITWISE_BINOPS = (ast.BitOr, ast.BitAnd, ast.BitXor, ast.LShift, ast.RShift)


class Rule(ABC):
    """One lint rule: a code, a severity and an AST check."""

    code: str
    name: str
    severity: Severity
    description: str
    #: Posix path suffixes exempt from this rule (the modules that *own*
    #: the convention the rule enforces elsewhere).
    allowlist: tuple[str, ...] = ()
    #: True for rules the engine itself implements after the rule pass
    #: (their ``check`` is a no-op registration stub).
    engine_level: bool = False

    @abstractmethod
    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        """Yield findings for ``module`` (already allowlist-filtered)."""

    def applies_to(self, module: ModuleInfo) -> bool:
        path = module.path.resolve().as_posix()
        return not any(path.endswith(suffix) for suffix in self.allowlist)

    def finding(self, module: ModuleInfo, line: int, message: str) -> Finding:
        return Finding(
            rule=self.code,
            path=module.display_path,
            line=line,
            message=message,
            severity=self.severity,
            snippet=module.line(line),
        )


def _called_name(func: ast.expr) -> str | None:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


class UncountedDominance(Rule):
    """RPR001: dominance-kernel calls must thread a ``counter``."""

    code = "RPR001"
    name = "uncounted-dominance"
    severity = Severity.ERROR
    description = (
        "call to a dominance kernel without a DominanceCounter argument; "
        "pass `counter` (or a scratch counter) so mean-DT accounting stays exact"
    )
    allowlist = ("repro/dominance.py",)

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if not self.applies_to(module):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            called = _called_name(node.func)
            if called not in _COUNTED_KERNELS:
                continue
            counter_index = _COUNTED_KERNELS[called]
            if len(node.args) > counter_index:
                continue
            if any(kw.arg == "counter" for kw in node.keywords):
                continue
            yield self.finding(
                module,
                node.lineno,
                f"`{called}` called without a counter — dominance tests "
                "performed here are invisible to the DT metric",
            )


def _smells_like_mask(expr: ast.expr) -> bool:
    for node in ast.walk(expr):
        if isinstance(node, ast.Name) and _MASKY_NAME.search(node.id):
            return True
        if isinstance(node, ast.Attribute) and _MASKY_NAME.search(node.attr):
            return True
    return False


class RawBitmaskSurgery(Rule):
    """RPR002: bitwise ops on subspace masks outside the bitset modules."""

    code = "RPR002"
    name = "raw-bitmask-surgery"
    severity = Severity.ERROR
    description = (
        "bitwise operator applied to a subspace mask outside "
        "repro.structures.bitset / repro.core.subspace; use the bitset "
        "helpers so subset/superset semantics stay in one audited place"
    )
    allowlist = ("repro/structures/bitset.py", "repro/core/subspace.py")

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if not self.applies_to(module):
            return
        reported: set[int] = set()
        for node in ast.walk(module.tree):
            operands: list[ast.expr]
            if isinstance(node, ast.BinOp) and isinstance(node.op, _BITWISE_BINOPS):
                operands = [node.left, node.right]
                op_name = type(node.op).__name__
            elif isinstance(node, ast.AugAssign) and isinstance(
                node.op, _BITWISE_BINOPS
            ):
                operands = [node.target, node.value]
                op_name = type(node.op).__name__
            elif isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.Invert):
                operands = [node.operand]
                op_name = "Invert"
            else:
                continue
            if node.lineno in reported:
                continue
            if any(_smells_like_mask(operand) for operand in operands):
                reported.add(node.lineno)
                yield self.finding(
                    module,
                    node.lineno,
                    f"raw bitwise {op_name} on a subspace mask — route it "
                    "through repro.structures.bitset",
                )


def _algorithm_classes(tree: ast.Module) -> list[ast.ClassDef]:
    """Classes declaring a class-level ``name = "<str>"`` attribute."""
    found = []
    for node in tree.body:
        if not isinstance(node, ast.ClassDef):
            continue
        for stmt in node.body:
            target: ast.expr | None = None
            value: ast.expr | None = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target, value = stmt.targets[0], stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                target, value = stmt.target, stmt.value
            if (
                isinstance(target, ast.Name)
                and target.id == "name"
                and isinstance(value, ast.Constant)
                and isinstance(value.value, str)
            ):
                found.append(node)
                break
    return found


def _exported_names(tree: ast.Module) -> list[str] | None:
    """The module's ``__all__`` as a list of strings, or None if absent."""
    for node in tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if not any(
            isinstance(t, ast.Name) and t.id == "__all__" for t in targets
        ):
            continue
        if isinstance(value, (ast.List, ast.Tuple)):
            return [
                elt.value
                for elt in value.elts
                if isinstance(elt, ast.Constant) and isinstance(elt.value, str)
            ]
        return []
    return None


class RegistryHygiene(Rule):
    """RPR003: algorithm modules export ``__all__`` and one algorithm each."""

    code = "RPR003"
    name = "registry-hygiene"
    severity = Severity.ERROR
    description = (
        "modules under algorithms/ must export __all__ and define exactly "
        "one algorithm class (a class with a class-level `name` attribute), "
        "keeping the registry a complete audit of what can run"
    )
    allowlist = (
        "repro/algorithms/__init__.py",
        "repro/algorithms/base.py",
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if module.path.parent.name != "algorithms":
            return
        if not self.applies_to(module):
            return
        exported = _exported_names(module.tree)
        if exported is None:
            yield self.finding(
                module, 1, "algorithm module does not export __all__"
            )
        classes = _algorithm_classes(module.tree)
        for extra in classes[1:]:
            yield self.finding(
                module,
                extra.lineno,
                f"module defines {len(classes)} algorithm classes; the "
                "registry convention is one per module "
                f"(`{classes[0].name}` already defined)",
            )
        if exported is not None:
            for cls in classes:
                if cls.name not in exported:
                    yield self.finding(
                        module,
                        cls.lineno,
                        f"algorithm class `{cls.name}` is missing from __all__",
                    )


class NumpyScalarLeak(Rule):
    """RPR004: per-element ``float(arr[i])`` conversions inside loops."""

    code = "RPR004"
    name = "numpy-scalar-leak"
    severity = Severity.WARNING
    description = (
        "float(array[index]) inside a per-point loop boxes one numpy scalar "
        "per iteration; hoist the conversion (e.g. `.tolist()`) out of the "
        "hot loop"
    )
    allowlist = ()

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if not self.applies_to(module):
            return
        seen: set[int] = set()
        for loop in ast.walk(module.tree):
            if not isinstance(loop, (ast.For, ast.While)):
                continue
            for node in ast.walk(loop):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "float"
                    and len(node.args) == 1
                    and isinstance(node.args[0], ast.Subscript)
                    and node.lineno not in seen
                ):
                    seen.add(node.lineno)
                    yield self.finding(
                        module,
                        node.lineno,
                        "float() of a subscript inside a loop — convert the "
                        "whole array once before the loop",
                    )


class HandWiredBoost(Rule):
    """RPR005: direct ``SubsetBoost`` construction outside core/ and engine/."""

    code = "RPR005"
    name = "hand-wired-boost"
    severity = Severity.ERROR
    description = (
        "direct SubsetBoost(...) construction outside core/ and engine/; "
        "route the query through repro.engine.SkylineEngine (or the "
        "registry) so prepared caches, planning and counters stay wired — "
        "suppress deliberate low-level wiring with `# noqa: RPR005`"
    )

    def applies_to(self, module: ModuleInfo) -> bool:
        path = module.path.resolve().as_posix()
        if "/repro/core/" in path or "/repro/engine/" in path:
            return False
        return super().applies_to(module)

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if not self.applies_to(module):
            return
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and _called_name(node.func) == "SubsetBoost"
            ):
                yield self.finding(
                    module,
                    node.lineno,
                    "SubsetBoost constructed directly — execute through "
                    "repro.engine.SkylineEngine so Merge results and sort "
                    "orders come from the prepared caches",
                )


#: Index classes RPR007 polices: both subset-index backends.
_INDEX_CLASSES = ("SkylineIndex", "FlatSubsetIndex")


class HandBuiltIndex(Rule):
    """RPR007: direct subset-index construction outside core/ and engine/."""

    code = "RPR007"
    name = "hand-built-index"
    severity = Severity.ERROR
    description = (
        "direct SkylineIndex(...)/FlatSubsetIndex(...) construction outside "
        "core/ and engine/; go through SubsetContainer(backend=...) (or the "
        "engine) so the backend switch, fused candidate gather and index "
        "accounting stay wired — suppress deliberate low-level wiring with "
        "`# noqa: RPR007`"
    )

    def applies_to(self, module: ModuleInfo) -> bool:
        path = module.path.resolve().as_posix()
        if "/repro/core/" in path or "/repro/engine/" in path:
            return False
        return super().applies_to(module)

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if not self.applies_to(module):
            return
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and _called_name(node.func) in _INDEX_CLASSES
            ):
                yield self.finding(
                    module,
                    node.lineno,
                    f"`{_called_name(node.func)}` constructed directly — use "
                    "SubsetContainer(backend=...) so map/flat selection stays "
                    "a one-line switch",
                )


#: Raw-clock callables RPR006 polices.  ``time.monotonic``/``time.time``
#: are deliberately excluded: they appear in wall-clock *scheduling* code
#: (pool timeouts), not in measurements.
_RAW_CLOCKS = ("perf_counter", "process_time")


class RawClockRead(Rule):
    """RPR006: raw clock reads outside ``obs/`` and ``algorithms/base.py``."""

    code = "RPR006"
    name = "raw-clock-read"
    severity = Severity.ERROR
    description = (
        "time.perf_counter()/process_time() called outside repro.obs and "
        "algorithms/base.py; use repro.obs.clock.timed()/Stopwatch (or a "
        "tracer span) so every measurement shares one definition of "
        "'elapsed' — suppress deliberate raw reads with `# noqa: RPR006`"
    )
    allowlist = ("repro/algorithms/base.py",)

    def applies_to(self, module: ModuleInfo) -> bool:
        path = module.path.resolve().as_posix()
        if "/repro/obs/" in path:
            return False
        return super().applies_to(module)

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if not self.applies_to(module):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            called = _called_name(node.func)
            if called not in _RAW_CLOCKS:
                continue
            yield self.finding(
                module,
                node.lineno,
                f"raw `{called}()` read — time through "
                "repro.obs.clock.timed()/Stopwatch or a tracer span so the "
                "phase breakdown and the headline numbers agree",
            )


class ProjectRule(Rule):
    """A rule over the whole-program :class:`~repro.analysis.project.Project`.

    Project rules see every module at once (symbol table, call graph,
    mutation summaries) instead of one file at a time.  ``check`` is a
    no-op; the engine calls :meth:`check_project` after parsing the whole
    tree.  Findings still anchor to a module line, so line-level
    ``# noqa`` suppression works unchanged.
    """

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        return iter(())

    @abstractmethod
    def check_project(self, project: "Project") -> Iterator[Finding]:
        """Yield findings over the whole-program model."""


#: ``self`` attributes that back memoized structures: caches, memo tables,
#: put-logs, gathered blocks, artefact slots, statistics tables.
_MEMO_ATTR = re.compile(
    r"cache|memo|_log\b|_log_|artefact|artifact|block|statistic|column_major",
    re.IGNORECASE,
)
#: Attributes/methods that carry change-versioning for those structures.
_VERSION_ATTR = re.compile(r"generation|version|epoch", re.IGNORECASE)
#: Method names exempt from RPR008: construction and the invalidation
#: machinery itself.
_CACHE_EXEMPT_METHOD = re.compile(
    r"^(__init__|__new__|__post_init__)$|invalidate|clear|reset"
)
#: Call-write verbs that *shrink* a structure — emptying a cache is the
#: invalidation, not a coherence hazard.
_SHRINKING_VERBS = frozenset({"clear", "pop", "popitem", "remove", "discard"})


class CacheCoherence(ProjectRule):
    """RPR008: memo-backing writes must bump a version or invalidate."""

    code = "RPR008"
    name = "cache-coherence"
    severity = Severity.ERROR
    description = (
        "a method of a versioned class mutates an attribute that backs a "
        "memoized structure (cache/memo/put-log/block/statistics slot) "
        "without bumping the generation/version or calling invalidate(); "
        "stale caches silently desynchronize query results from stored "
        "state (guarded get-then-fill memoization is recognized and exempt)"
    )

    def check_project(self, project: "Project") -> Iterator[Finding]:
        for cls in project.table.classes:
            if not self.applies_to(cls.module):
                continue
            summaries = [
                project.mutations[m.qualname]
                for m in cls.methods
                if m.qualname in project.mutations
            ]
            if not self._is_versioned(cls, summaries):
                continue
            for method, summary in zip(cls.methods, summaries):
                if _CACHE_EXEMPT_METHOD.search(method.name):
                    continue
                if _VERSION_ATTR.search(method.name):
                    continue
                yield from self._check_method(cls.module, method, summary)

    @staticmethod
    def _is_versioned(cls, summaries) -> bool:
        for method in cls.methods:
            if _VERSION_ATTR.search(method.name) or "invalidate" in method.name:
                return True
        for summary in summaries:
            for write in summary.self_writes():
                if _VERSION_ATTR.search(write.attr):
                    return True
        return False

    def _check_method(self, module, method, summary) -> Iterator[Finding]:
        memo_writes = [
            w
            for w in summary.self_writes()
            if w.attr
            and _MEMO_ATTR.search(w.attr)
            and not _VERSION_ATTR.search(w.attr)
        ]
        if not memo_writes:
            return
        bumps_version = any(
            _VERSION_ATTR.search(w.attr) for w in summary.self_writes()
        )
        calls_invalidate = self._calls_invalidate(method)
        clears_memo = any(w.via in _SHRINKING_VERBS for w in memo_writes)
        if bumps_version or calls_invalidate or clears_memo:
            return
        guarded = summary.reads_get_of | summary.guard_read_attrs
        for write in memo_writes:
            if write.attr in guarded:
                # get-then-fill memoization: the cache is consulted before
                # it is written, so the write is the memo filling itself.
                continue
            yield self.finding(
                module,
                write.lineno,
                f"`{method.name}` writes memo-backing attribute "
                f"`self.{write.attr}` without bumping a generation/version "
                "or calling invalidate() — downstream cached views go stale",
            )

    @staticmethod
    def _calls_invalidate(method) -> bool:
        for node in ast.walk(method.node):
            if isinstance(node, ast.Call):
                called = _called_name(node.func)
                if called is not None and "invalidate" in called:
                    return True
        return False


#: Worker-submission methods on pool/executor objects.
_SUBMIT_METHODS = frozenset(
    {
        "map",
        "map_async",
        "imap",
        "imap_unordered",
        "starmap",
        "starmap_async",
        "apply",
        "apply_async",
        "submit",
    }
)
_POOLY_NAME = re.compile(r"pool|executor", re.IGNORECASE)


def _smells_like_pool(expr: ast.expr) -> bool:
    for node in ast.walk(expr):
        if isinstance(node, ast.Name) and _POOLY_NAME.search(node.id):
            return True
        if isinstance(node, ast.Attribute) and _POOLY_NAME.search(node.attr):
            return True
        if isinstance(node, ast.Call):
            called = _called_name(node.func)
            if called is not None and _POOLY_NAME.search(called):
                return True
    return False


class WorkerSharedState(ProjectRule):
    """RPR009: worker-submitted code must not mutate shared engine state."""

    code = "RPR009"
    name = "worker-shared-state"
    severity = Severity.ERROR
    description = (
        "a function submitted to a worker pool (pool.map/submit/Process "
        "target) transitively mutates closed-over or global state; workers "
        "run in other processes/threads, so such writes race or silently "
        "vanish — merge results through DominanceCounter.absorb() or "
        "returned survivor lists instead"
    )

    def check_project(self, project: "Project") -> Iterator[Finding]:
        roots: dict[str, tuple] = {}
        for fn in project.table.functions:
            for site in project.graph.calls[fn.qualname]:
                worker_name = self._submitted_callable(site.node)
                if worker_name is None:
                    continue
                for target in project.table.resolve(worker_name):
                    roots.setdefault(
                        target.qualname, (fn.module.display_path, site.lineno)
                    )
        if not roots:
            return
        reachable = project.graph.reachable_from(roots)
        seen: set[tuple[str, int, str]] = set()
        for qualname in sorted(reachable):
            summary = project.mutations[qualname]
            fn = summary.function
            if not self.applies_to(fn.module):
                continue
            for write in summary.shared_writes():
                if self._is_enclosing_local(project, qualname, write.root):
                    # A closure mutating its enclosing function's locals
                    # stays inside one worker call frame — not shared.
                    continue
                slot = f"{write.root}.{write.attr}" if write.attr else write.root
                key = (fn.qualname, write.lineno, slot)
                if key in seen:
                    continue
                seen.add(key)
                yield self.finding(
                    fn.module,
                    write.lineno,
                    f"`{fn.name}` runs on worker paths but mutates shared "
                    f"state `{slot}` — return results and merge via "
                    "DominanceCounter.absorb()/survivor lists",
                )
            for name, lineno in summary.global_writes:
                key = (fn.qualname, lineno, f"global {name}")
                if key in seen:
                    continue
                seen.add(key)
                yield self.finding(
                    fn.module,
                    lineno,
                    f"`{fn.name}` runs on worker paths but rebinds global "
                    f"`{name}` — worker-side global state does not propagate "
                    "back to the parent",
                )

    @staticmethod
    def _is_enclosing_local(project: "Project", qualname: str, root: str) -> bool:
        """True when ``root`` is a local of a function enclosing ``qualname``."""
        module_part, _, dotted = qualname.partition("::")
        parts = dotted.split(".")
        while len(parts) > 1:
            parts = parts[:-1]
            parent = project.mutations.get(f"{module_part}::{'.'.join(parts)}")
            if parent is not None and root in parent.local_names:
                return True
        return False

    @staticmethod
    def _submitted_callable(call: ast.Call) -> str | None:
        func = call.func
        called = _called_name(func)
        if (
            isinstance(func, ast.Attribute)
            and called in _SUBMIT_METHODS
            and _smells_like_pool(func.value)
        ):
            if call.args:
                worker = call.args[0]
                return _called_name(worker) or (
                    worker.id if isinstance(worker, ast.Name) else None
                )
            return None
        if called in ("Process", "Thread"):
            for kw in call.keywords:
                if kw.arg == "target":
                    target = kw.value
                    if isinstance(target, ast.Name):
                        return target.id
                    if isinstance(target, ast.Attribute):
                        return target.attr
        return None


class CounterThreading(ProjectRule):
    """RPR010: kernel-reaching code must thread a counter, not mint one."""

    code = "RPR010"
    name = "counter-threading"
    severity = Severity.ERROR
    description = (
        "a function that transitively reaches a dominance kernel constructs "
        "a throwaway DominanceCounter instead of accepting and forwarding "
        "the caller's; tests recorded on the fresh counter never reach the "
        "DT metric, so EXPERIMENTS.md numbers silently undercount "
        "(conditional defaults `c if c is not None else DominanceCounter()` "
        "and counters that escape — returned, stored, absorbed, read — are "
        "recognized and exempt)"
    )
    allowlist = ("repro/stats/counters.py",)

    def check_project(self, project: "Project") -> Iterator[Finding]:
        reaching = project.graph.reaching(set(_COUNTED_KERNELS))
        for qualname in sorted(reaching):
            fn = project.graph.function(qualname)
            if not self.applies_to(fn.module):
                continue
            yield from self._check_function(fn)

    def _check_function(self, fn) -> Iterator[Finding]:
        parents: dict[ast.AST, ast.AST] = {}
        for node in ast.walk(fn.node):
            for child in ast.iter_child_nodes(node):
                parents[child] = node
        for node in ast.walk(fn.node):
            if not (
                isinstance(node, ast.Call)
                and _called_name(node.func) == "DominanceCounter"
            ):
                continue
            if self._is_conditional_default(node, parents):
                continue
            if self._escapes(node, parents, fn):
                continue
            yield self.finding(
                fn.module,
                node.lineno,
                f"`{fn.name}` reaches dominance kernels but constructs a "
                "fresh DominanceCounter whose tests are discarded — accept "
                "a `counter` parameter and forward it",
            )

    @staticmethod
    def _is_conditional_default(node: ast.AST, parents: dict) -> bool:
        cursor = parents.get(node)
        while cursor is not None and not isinstance(cursor, ast.stmt):
            if isinstance(cursor, (ast.IfExp, ast.BoolOp)):
                return True
            cursor = parents.get(cursor)
        return False

    def _escapes(self, node: ast.Call, parents: dict, fn) -> bool:
        stmt = node
        while stmt in parents and not isinstance(stmt, ast.stmt):
            stmt = parents[stmt]
        if isinstance(stmt, (ast.Return, ast.Expr)) and isinstance(
            getattr(stmt, "value", None), (ast.Yield, ast.YieldFrom)
        ):
            return True
        if isinstance(stmt, ast.Return):
            return True
        bound: str | None = None
        if isinstance(stmt, ast.Assign) and stmt.value is node:
            if len(stmt.targets) == 1 and isinstance(stmt.targets[0], ast.Name):
                bound = stmt.targets[0].id
            elif len(stmt.targets) == 1 and isinstance(
                stmt.targets[0], (ast.Attribute, ast.Subscript)
            ):
                # Stored into an attribute/slot: outlives the call frame.
                return True
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is node:
            if isinstance(stmt.target, ast.Name):
                bound = stmt.target.id
            elif isinstance(stmt.target, (ast.Attribute, ast.Subscript)):
                return True
        if bound is None:
            # Inline construction (kernel(p, q, DominanceCounter()) or a
            # bare expression): nothing can ever read the recorded tests.
            return False
        if bound in fn.params:
            # Rebinding a parameter is the `if counter is None:` default
            # idiom — the caller opted out of accounting explicitly.
            return True
        return self._name_escapes(bound, fn)

    @staticmethod
    def _name_escapes(name: str, fn) -> bool:
        for node in ast.walk(fn.node):
            if isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
                value = node.value
                if value is not None and any(
                    isinstance(sub, ast.Name) and sub.id == name
                    for sub in ast.walk(value)
                ):
                    return True
            elif isinstance(node, ast.Attribute) and (
                isinstance(node.value, ast.Name) and node.value.id == name
            ):
                # Any attribute read (.tests, .as_dict(), .absorb) means the
                # recorded counts are observed somewhere.
                return True
            elif isinstance(node, ast.Assign):
                if any(
                    isinstance(t, (ast.Attribute, ast.Subscript))
                    for t in node.targets
                ) and any(
                    isinstance(sub, ast.Name) and sub.id == name
                    for sub in ast.walk(node.value)
                ):
                    return True
            elif isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Attribute) and func.attr == "absorb":
                    if any(
                        isinstance(sub, ast.Name) and sub.id == name
                        for arg in node.args
                        for sub in ast.walk(arg)
                    ):
                        return True
        return False


class NoqaHygiene(Rule):
    """RPR011: suppressions must be justified and must still suppress.

    Implemented by the lint engine (it needs the post-run finding/usage
    map); registered here so the code shows up in the catalogue,
    ``--select``, ``--explain`` and the fixture suite.
    """

    code = "RPR011"
    name = "noqa-hygiene"
    severity = Severity.ERROR
    description = (
        "every `# noqa: RPRxxx` must carry a justification after the codes "
        "(`# noqa: RPR007 — bare index is deliberate: ...`), and a "
        "suppression whose rule no longer fires on that line is stale and "
        "must be deleted; unexplained or dead suppressions are exactly the "
        "blanket holes the gate exists to close"
    )
    #: Checked by the engine after all selected rules have run.
    engine_level = True

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        return iter(())


class SwallowedException(Rule):
    """RPR012: no bare/blanket exception swallowing."""

    code = "RPR012"
    name = "swallowed-exception"
    severity = Severity.ERROR
    description = (
        "bare `except:` or `except Exception: pass` hides worker failures "
        "and contract violations — catch the narrowest type that the "
        "recovery actually handles, and at minimum record the failure"
    )

    _BROAD = ("Exception", "BaseException")

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if not self.applies_to(module):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    module,
                    node.lineno,
                    "bare `except:` swallows everything including "
                    "KeyboardInterrupt — name the exception type",
                )
                continue
            caught = _called_name(node.type) or (
                node.type.id if isinstance(node.type, ast.Name) else None
            )
            if caught in self._BROAD and self._body_is_noop(node.body):
                yield self.finding(
                    module,
                    node.lineno,
                    f"`except {caught}: pass` silently discards the failure "
                    "— handle it, log it, or catch something narrower",
                )

    @staticmethod
    def _body_is_noop(body: list[ast.stmt]) -> bool:
        for stmt in body:
            if isinstance(stmt, ast.Pass) or isinstance(stmt, ast.Continue):
                continue
            if (
                isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Constant)
                and stmt.value.value is ...
            ):
                continue
            return False
        return True


ALL_RULES: tuple[Rule, ...] = (
    UncountedDominance(),
    RawBitmaskSurgery(),
    RegistryHygiene(),
    NumpyScalarLeak(),
    HandWiredBoost(),
    RawClockRead(),
    HandBuiltIndex(),
    CacheCoherence(),
    WorkerSharedState(),
    CounterThreading(),
    NoqaHygiene(),
    SwallowedException(),
)


def rule_codes() -> list[str]:
    """All registered rule codes, sorted."""
    return sorted(rule.code for rule in ALL_RULES)


def active_rules(select: Iterable[str] | None = None) -> Sequence[Rule]:
    """The rules to run: all of them, or the ``select``-ed codes."""
    if select is None:
        return ALL_RULES
    wanted = {code.strip().upper() for code in select}
    unknown = wanted - {rule.code for rule in ALL_RULES}
    if unknown:
        raise ValueError(
            f"unknown rule code(s): {sorted(unknown)}; known: {rule_codes()}"
        )
    return tuple(rule for rule in ALL_RULES if rule.code in wanted)
