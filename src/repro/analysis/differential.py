"""Differential testing: every registered algorithm vs an independent oracle.

The registry promises that every name in
:func:`repro.algorithms.registry.available_algorithms` computes the exact
skyline.  This harness checks that promise the only way that scales with
the registry: run them all on seeded independent / correlated /
anti-correlated datasets and diff against a brute-force oracle that shares
no code with the library's dominance kernels.

On divergence the harness *minimizes* the counterexample with a greedy
delta-debugging pass (drop chunks of rows while the divergence persists),
so a failure report shows a handful of points rather than a 100-row dump.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.algorithms.registry import available_algorithms, get_algorithm
from repro.analysis.report import Finding, Severity
from repro.data import generate


@dataclass(frozen=True)
class Divergence:
    """One algorithm disagreeing with the oracle on one dataset."""

    algorithm: str
    kind: str
    n: int
    d: int
    seed: int
    missing: tuple[int, ...]
    extra: tuple[int, ...]
    minimized_rows: tuple[tuple[float, ...], ...] = field(default=())

    def describe(self) -> str:
        parts = [
            f"{self.algorithm} diverges from the oracle on "
            f"{self.kind} (n={self.n}, d={self.d}, seed={self.seed}):"
        ]
        if self.missing:
            parts.append(f" misses skyline ids {list(self.missing)}")
        if self.extra:
            parts.append(f" reports non-skyline ids {list(self.extra)}")
        if self.minimized_rows:
            rows = "; ".join(
                "(" + ", ".join(f"{v:.4g}" for v in row) + ")"
                for row in self.minimized_rows
            )
            parts.append(f" — minimized to {len(self.minimized_rows)} rows: {rows}")
        return "".join(parts)


def oracle_skyline(values: np.ndarray) -> list[int]:
    """Brute-force skyline ids, independent of every library kernel."""
    values = np.asarray(values, dtype=np.float64)
    n = values.shape[0]
    result: list[int] = []
    for i in range(n):
        le = np.all(values <= values[i], axis=1)
        lt = np.any(values < values[i], axis=1)
        dominators = le & lt
        dominators[i] = False
        if not bool(dominators.any()):
            result.append(i)
    return result


def _algorithm_skyline(name: str, values: np.ndarray) -> list[int]:
    result = get_algorithm(name).compute(values)
    return [int(i) for i in result.indices]


def _diverges(name: str, values: np.ndarray) -> bool:
    try:
        return sorted(_algorithm_skyline(name, values)) != oracle_skyline(values)
    except Exception:
        # A crash is a divergence too: the minimizer can shrink it.
        return True


def minimize_counterexample(
    name: str, values: np.ndarray, max_rounds: int = 12
) -> np.ndarray:
    """Greedy ddmin over rows: smallest dataset still showing the divergence.

    Repeatedly tries to delete contiguous chunks (halving the chunk size
    down to single rows); keeps any deletion that preserves the
    divergence.  Bounded by ``max_rounds`` full sweeps for predictability.
    """
    current = np.asarray(values, dtype=np.float64)
    for _ in range(max_rounds):
        n = current.shape[0]
        if n <= 2:
            break
        shrunk = False
        chunk = max(n // 2, 1)
        while chunk >= 1:
            start = 0
            while start < current.shape[0] and current.shape[0] > 2:
                candidate = np.delete(
                    current, slice(start, start + chunk), axis=0
                )
                if candidate.shape[0] >= 1 and _diverges(name, candidate):
                    current = candidate
                    shrunk = True
                else:
                    start += chunk
            chunk //= 2
        if not shrunk:
            break
    return current


def run_differential(
    algorithms: tuple[str, ...] | None = None,
    kinds: tuple[str, ...] = ("UI", "CO", "AC"),
    n: int = 96,
    d: int = 4,
    seeds: tuple[int, ...] = (5,),
    minimize: bool = True,
) -> list[Divergence]:
    """Cross-validate registered algorithms against the oracle.

    Parameters
    ----------
    algorithms:
        Registry names to check (default: every registered algorithm).
    kinds, n, d, seeds:
        The seeded dataset matrix.
    minimize:
        Shrink each divergent dataset to a minimal counterexample.
    """
    names = algorithms if algorithms is not None else tuple(available_algorithms())
    failures: list[Divergence] = []
    for kind in kinds:
        for seed in seeds:
            values = generate(kind, n=n, d=d, seed=seed).values
            expected = oracle_skyline(values)
            for name in names:
                got = sorted(_algorithm_skyline(name, values))
                if got == expected:
                    continue
                missing = tuple(sorted(set(expected) - set(got)))
                extra = tuple(sorted(set(got) - set(expected)))
                minimized: tuple[tuple[float, ...], ...] = ()
                if minimize:
                    small = minimize_counterexample(name, values)
                    minimized = tuple(tuple(float(v) for v in row) for row in small)
                failures.append(
                    Divergence(
                        algorithm=name,
                        kind=kind,
                        n=n,
                        d=d,
                        seed=seed,
                        missing=missing,
                        extra=extra,
                        minimized_rows=minimized,
                    )
                )
    return failures


def differential_findings(**kwargs: object) -> list[Finding]:
    """:func:`run_differential` wrapped as gate findings for the CLI."""
    return [
        Finding(
            rule="differential",
            path=f"registry:{divergence.algorithm}",
            line=0,
            message=divergence.describe(),
            severity=Severity.ERROR,
        )
        for divergence in run_differential(**kwargs)  # type: ignore[arg-type]
    ]
