"""Fingerprinted finding baseline: pre-existing debt, tracked explicitly.

When a new rule lands it may fire on code that predates it.  Rather than
blanket-suppressing (or blocking the rule on a full cleanup), accepted
findings are recorded in ``analysis-baseline.json`` with a *reason* each,
and the gate fails only on findings **not** in the baseline — new debt is
impossible to add silently, old debt stays visible and justified.

Fingerprints are content-addressed, not line-addressed: the SHA-1 of
``rule | path | normalized offending line | occurrence index`` survives
unrelated edits that shift line numbers, and the occurrence index keeps
two identical offending lines in one file distinct.  Renaming a file or
editing the offending line itself invalidates the fingerprint on purpose
— the code changed, so the justification must be re-earned.

Baseline entries are *demanding*:

- an entry whose ``reason`` is empty or still the ``FIXME`` placeholder
  does not suppress its finding (the finding is reported with a pointer
  to the baseline file) — regenerating the baseline is never enough, a
  human has to write down why the debt is acceptable;
- an entry that no longer matches any finding is *stale* and reported as
  a warning (so ``--strict`` fails until ``make analyze-baseline`` prunes
  it).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.report import Finding, Severity

__all__ = [
    "BaselineEntry",
    "Baseline",
    "BaselineResult",
    "fingerprint_findings",
    "load_baseline",
    "write_baseline",
    "UNJUSTIFIED_PLACEHOLDER",
]

#: Reason new entries get on ``--write-baseline``; fails the gate until a
#: human replaces it.
UNJUSTIFIED_PLACEHOLDER = "FIXME: justify this accepted finding"

_FORMAT_VERSION = 1


@dataclass(frozen=True)
class BaselineEntry:
    """One accepted finding: fingerprint, locator context and the reason."""

    fingerprint: str
    rule: str
    path: str
    snippet: str
    reason: str

    @property
    def justified(self) -> bool:
        reason = self.reason.strip()
        return bool(reason) and not reason.upper().startswith("FIXME")


@dataclass(frozen=True)
class BaselineResult:
    """Outcome of applying a baseline to a finding set.

    ``reported`` is what the gate should act on: genuinely new findings,
    findings matched only by unjustified entries (annotated), and one
    warning per stale entry.
    """

    new: tuple[Finding, ...]
    suppressed: tuple[tuple[Finding, BaselineEntry], ...]
    unjustified: tuple[Finding, ...]
    stale: tuple[BaselineEntry, ...]

    @property
    def reported(self) -> list[Finding]:
        out = list(self.new) + list(self.unjustified)
        for entry in self.stale:
            out.append(
                Finding(
                    rule="RPR011",
                    path=entry.path,
                    line=0,
                    message=(
                        f"stale baseline entry {entry.fingerprint} ({entry.rule}) "
                        "no longer matches any finding — prune it with "
                        "`make analyze-baseline`"
                    ),
                    severity=Severity.WARNING,
                    snippet=entry.snippet,
                )
            )
        return out


def _normalize(snippet: str) -> str:
    return " ".join(snippet.split())


def fingerprint_findings(
    findings: Iterable[Finding],
) -> list[tuple[Finding, str]]:
    """Pair each finding with its content-addressed fingerprint.

    The occurrence index is assigned in (path, line, rule) order, so two
    identical offending lines fingerprint differently but stably.
    """
    counts: dict[tuple[str, str, str], int] = {}
    out: list[tuple[Finding, str]] = []
    ordered = sorted(findings, key=lambda f: (f.path, f.line, f.rule))
    for finding in ordered:
        normalized = _normalize(finding.snippet)
        key = (finding.rule, finding.path, normalized)
        index = counts.get(key, 0)
        counts[key] = index + 1
        digest = hashlib.sha1(
            f"{finding.rule}|{finding.path}|{normalized}|{index}".encode("utf-8")
        ).hexdigest()[:16]
        out.append((finding, digest))
    return out


@dataclass(frozen=True)
class Baseline:
    """A loaded baseline file: fingerprint → entry."""

    entries: dict[str, BaselineEntry]
    path: Path | None = None

    def apply(self, findings: Sequence[Finding]) -> BaselineResult:
        """Split ``findings`` into new / suppressed / unjustified + stale."""
        new: list[Finding] = []
        suppressed: list[tuple[Finding, BaselineEntry]] = []
        unjustified: list[Finding] = []
        matched: set[str] = set()
        for finding, digest in fingerprint_findings(findings):
            entry = self.entries.get(digest)
            if entry is None:
                new.append(finding)
                continue
            matched.add(digest)
            if entry.justified:
                suppressed.append((finding, entry))
            else:
                unjustified.append(
                    Finding(
                        rule=finding.rule,
                        path=finding.path,
                        line=finding.line,
                        message=finding.message
                        + f" [baselined as {digest} without justification — "
                        "write a reason in the baseline file]",
                        severity=finding.severity,
                        snippet=finding.snippet,
                    )
                )
        stale = tuple(
            entry
            for digest, entry in sorted(self.entries.items())
            if digest not in matched
        )
        return BaselineResult(
            new=tuple(new),
            suppressed=tuple(suppressed),
            unjustified=tuple(unjustified),
            stale=stale,
        )


def load_baseline(path: Path) -> Baseline:
    """Load ``path`` as a :class:`Baseline` (``ValueError`` on bad shape)."""
    payload = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(payload, dict) or payload.get("version") != _FORMAT_VERSION:
        raise ValueError(
            f"{path}: expected a baseline object with version {_FORMAT_VERSION}"
        )
    entries: dict[str, BaselineEntry] = {}
    for raw in payload.get("entries", []):
        entry = BaselineEntry(
            fingerprint=str(raw["fingerprint"]),
            rule=str(raw["rule"]),
            path=str(raw["path"]),
            snippet=str(raw.get("snippet", "")),
            reason=str(raw.get("reason", "")),
        )
        entries[entry.fingerprint] = entry
    return Baseline(entries=entries, path=path)


def write_baseline(
    path: Path,
    findings: Sequence[Finding],
    previous: Baseline | None = None,
) -> Baseline:
    """Write a baseline accepting exactly ``findings``.

    Reasons survive regeneration by fingerprint: an entry whose code did
    not change keeps its justification, a genuinely new entry gets the
    ``FIXME`` placeholder (which keeps failing the gate until replaced).
    """
    old = previous.entries if previous is not None else {}
    entries = []
    for finding, digest in fingerprint_findings(findings):
        kept = old.get(digest)
        entries.append(
            BaselineEntry(
                fingerprint=digest,
                rule=finding.rule,
                path=finding.path,
                snippet=_normalize(finding.snippet),
                reason=kept.reason if kept is not None else UNJUSTIFIED_PLACEHOLDER,
            )
        )
    entries.sort(key=lambda e: (e.path, e.rule, e.fingerprint))
    payload = {
        "version": _FORMAT_VERSION,
        "entries": [
            {
                "fingerprint": e.fingerprint,
                "rule": e.rule,
                "path": e.path,
                "snippet": e.snippet,
                "reason": e.reason,
            }
            for e in entries
        ],
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return Baseline(entries={e.fingerprint: e for e in entries}, path=path)
