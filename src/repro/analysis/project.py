"""The whole-program model handed to :class:`~repro.analysis.rules.ProjectRule`.

Bundles the three interprocedural views — symbol table, call graph and
per-function mutation summaries — built once per analysis run and shared
by every project-level rule (RPR008–RPR010).  Construction is a single
AST pass per module plus one graph pass, so the full ``src/repro`` tree
builds in well under a second.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.analysis.callgraph import CallGraph, build_call_graph
from repro.analysis.lint import ModuleInfo
from repro.analysis.mutation import MutationSummary, summarize_mutations
from repro.analysis.symbols import SymbolTable, build_symbol_table

__all__ = ["Project", "build_project"]


@dataclass(frozen=True)
class Project:
    """Parsed modules plus the derived interprocedural views."""

    modules: tuple[ModuleInfo, ...]
    table: SymbolTable
    graph: CallGraph
    mutations: dict[str, MutationSummary] = field(repr=False)

    def mutation(self, qualname: str) -> MutationSummary:
        return self.mutations[qualname]


def build_project(modules: Iterable[ModuleInfo]) -> Project:
    """Build the :class:`Project` model over already-parsed modules."""
    module_tuple = tuple(modules)
    table = build_symbol_table(module_tuple)
    graph = build_call_graph(table)
    mutations = {fn.qualname: summarize_mutations(fn) for fn in table.functions}
    return Project(
        modules=module_tuple, table=table, graph=graph, mutations=mutations
    )
