"""Per-function mutation and purity inference.

For each function body this module answers, syntactically: *which names
does it rebind locally, which attributes does it write (including writes
through subscripts, ``self._x[...] = ...``), and which of those writes
land on state the function does not own?*  The interprocedural rules
consume the summaries:

- RPR008 (cache coherence) asks which ``self.*`` attributes a method
  mutates and whether the same method bumps a version or invalidates;
- RPR009 (worker safety) asks whether a worker-reachable function writes
  through a *non-local* root — closed-over or global state that other
  workers or the parent share.

The model is flow-insensitive and syntactic: a write anywhere in the body
counts, mutating *calls* (``x.append(...)``, ``x.update(...)``) count as
writes to ``x``, and ownership is "the root name is bound locally"
(parameter, assignment, loop target, …).  ``global``/``nonlocal``
declarations remove a name from the local set.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.symbols import FunctionInfo

__all__ = ["AttributeWrite", "MutationSummary", "summarize_mutations", "MUTATING_METHODS"]

#: Method names treated as in-place mutation of their receiver.  Includes
#: the numpy in-place verbs (``fill``, ``sort``, ``put``, ``partial_sort``
#: is not a thing — ``partition`` is) alongside the builtin container API.
MUTATING_METHODS = frozenset(
    {
        "append",
        "add",
        "extend",
        "insert",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "remove",
        "discard",
        "clear",
        "fill",
        "sort",
        "partition",
        "put",
    }
)

#: Receiver names that are module aliases, not objects: ``np.append(a, x)``
#: is a pure function returning a new array, not an in-place mutation.
_MODULE_RECEIVERS = frozenset({"np", "numpy"})


@dataclass(frozen=True)
class AttributeWrite:
    """One attribute mutation: ``<root>.<attr>`` written at ``lineno``.

    ``kind`` is ``"assign"`` (``x.a = v`` / ``x.a[i] = v`` / augmented),
    ``"call"`` (``x.a.append(v)`` and friends), or ``"del"``.  For call
    writes ``via`` names the mutating method (``"append"``, ``"clear"``,
    …) so rules can treat emptying a structure differently from growing
    it.  ``root_is_local`` records whether ``root`` is bound inside the
    function — writes through local roots mutate state the function owns
    (or was explicitly handed), writes through free/global roots mutate
    shared state.
    """

    root: str
    attr: str
    lineno: int
    kind: str
    root_is_local: bool
    via: str = ""


@dataclass(frozen=True)
class MutationSummary:
    """What one function binds, writes and reads-as-guard."""

    function: FunctionInfo = field(compare=False, repr=False)
    local_names: frozenset[str]
    writes: tuple[AttributeWrite, ...]
    #: Names written via a ``global`` declaration (``global x; x = ...``).
    global_writes: tuple[tuple[str, int], ...]
    #: ``self`` attrs read through ``.get(...)`` — the guarded-fill idiom.
    reads_get_of: frozenset[str]
    #: ``self`` attrs read inside an ``if``/ternary test — ditto.
    guard_read_attrs: frozenset[str]

    def self_writes(self) -> tuple[AttributeWrite, ...]:
        """Writes rooted at the method's ``self`` parameter."""
        if not self.function.params:
            return ()
        receiver = self.function.params[0]
        return tuple(w for w in self.writes if w.root == receiver)

    def shared_writes(self) -> tuple[AttributeWrite, ...]:
        """Writes through roots the function does not bind locally."""
        return tuple(w for w in self.writes if not w.root_is_local)


def _root_name(expr: ast.expr) -> ast.expr:
    """Peel attributes/subscripts down to the base expression."""
    while isinstance(expr, (ast.Attribute, ast.Subscript)):
        expr = expr.value
    return expr


def _attr_chain_base(expr: ast.expr) -> tuple[str, str] | None:
    """``(root, attr)`` for the outermost attribute in ``expr``.

    ``self._cache[key]`` → ``("self", "_cache")``; ``self.a.b`` →
    ``("self", "a")`` — the *first* attribute off the root is what the
    rules care about (it names the owning slot).
    """
    # Walk to the innermost Attribute whose value is a Name.
    node = expr
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        inner = node.value if isinstance(node, ast.Subscript) else node.value
        if isinstance(node, ast.Attribute) and isinstance(inner, ast.Name):
            return inner.id, node.attr
        node = inner
    return None


def _collect_local_names(fn: FunctionInfo) -> frozenset[str]:
    names: set[str] = set(fn.params)
    declared_nonlocal: set[str] = set()
    for node in ast.walk(fn.node):
        if isinstance(node, (ast.Global, ast.Nonlocal)):
            declared_nonlocal.update(node.names)
        elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            # Only *binding* positions count: ``x = v`` binds ``x``, but
            # ``shared[k] = v`` / ``obj.a = v`` mutate an existing object
            # without binding anything — walking into those targets would
            # misclassify writes through globals as local.
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                for element in _flatten_target(target):
                    if isinstance(element, ast.Name):
                        names.add(element.id)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            for sub in ast.walk(node.target):
                if isinstance(sub, ast.Name):
                    names.add(sub.id)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None:
                    for sub in ast.walk(item.optional_vars):
                        if isinstance(sub, ast.Name):
                            names.add(sub.id)
        elif isinstance(node, ast.comprehension):
            for sub in ast.walk(node.target):
                if isinstance(sub, ast.Name):
                    names.add(sub.id)
        elif isinstance(node, ast.ExceptHandler):
            if node.name:
                names.add(node.name)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                names.add((alias.asname or alias.name).split(".")[0])
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            if node is not fn.node:
                names.add(node.name)
        elif isinstance(node, ast.NamedExpr) and isinstance(node.target, ast.Name):
            names.add(node.target.id)
    return frozenset(names - declared_nonlocal)


def _write_targets(fn: FunctionInfo, locals_: frozenset[str]) -> tuple[
    list[AttributeWrite], list[tuple[str, int]]
]:
    writes: list[AttributeWrite] = []
    global_names: set[str] = set()
    global_writes: list[tuple[str, int]] = []
    for node in ast.walk(fn.node):
        if isinstance(node, ast.Global):
            global_names.update(node.names)

    def record(target: ast.expr, lineno: int, kind: str, via: str = "") -> None:
        if isinstance(target, ast.Name):
            if target.id in global_names:
                global_writes.append((target.id, lineno))
            return
        base = _attr_chain_base(target)
        if base is None:
            # A write through a subscript of a bare name (``shared[k] = v``)
            # still mutates whatever ``shared`` refers to.
            root = _root_name(target)
            if isinstance(root, ast.Name) and isinstance(target, ast.Subscript):
                writes.append(
                    AttributeWrite(
                        root=root.id,
                        attr="[]",
                        lineno=lineno,
                        kind=kind,
                        root_is_local=root.id in locals_ and root.id not in global_names,
                        via=via,
                    )
                )
            return
        root, attr = base
        writes.append(
            AttributeWrite(
                root=root,
                attr=attr,
                lineno=lineno,
                kind=kind,
                root_is_local=root in locals_ and root not in global_names,
                via=via,
            )
        )

    for node in ast.walk(fn.node):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                for element in _flatten_target(target):
                    record(element, node.lineno, "assign")
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            record(node.target, node.lineno, "assign")
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                record(target, node.lineno, "del")
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in MUTATING_METHODS:
                record_receiver = node.func.value
                if (
                    isinstance(record_receiver, ast.Name)
                    and record_receiver.id in _MODULE_RECEIVERS
                ):
                    continue
                if isinstance(record_receiver, ast.Name):
                    # ``x.append(v)`` — mutation of the bare name ``x``.
                    writes.append(
                        AttributeWrite(
                            root=record_receiver.id,
                            attr="",
                            lineno=node.lineno,
                            kind="call",
                            root_is_local=(
                                record_receiver.id in locals_
                                and record_receiver.id not in global_names
                            ),
                            via=node.func.attr,
                        )
                    )
                else:
                    record(record_receiver, node.lineno, "call", via=node.func.attr)
    return writes, global_writes


def _flatten_target(target: ast.expr) -> list[ast.expr]:
    if isinstance(target, (ast.Tuple, ast.List)):
        out: list[ast.expr] = []
        for elt in target.elts:
            out.extend(_flatten_target(elt))
        return out
    if isinstance(target, ast.Starred):
        return _flatten_target(target.value)
    return [target]


def _guard_signals(fn: FunctionInfo) -> tuple[frozenset[str], frozenset[str]]:
    """Attrs of the receiver read via ``.get(...)`` or inside if-tests."""
    if not fn.params:
        return frozenset(), frozenset()
    receiver = fn.params[0]
    gets: set[str] = set()
    guards: set[str] = set()

    def receiver_attrs(expr: ast.expr) -> set[str]:
        found: set[str] = set()
        for node in ast.walk(expr):
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == receiver
            ):
                found.add(node.attr)
        return found

    for node in ast.walk(fn.node):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "get"
        ):
            gets |= receiver_attrs(node.func.value)
        elif isinstance(node, (ast.If, ast.IfExp, ast.While)):
            guards |= receiver_attrs(node.test)
        elif isinstance(node, ast.Assert):
            guards |= receiver_attrs(node.test)
    return frozenset(gets), frozenset(guards)


def summarize_mutations(fn: FunctionInfo) -> MutationSummary:
    """Build the :class:`MutationSummary` for one function."""
    locals_ = _collect_local_names(fn)
    writes, global_writes = _write_targets(fn, locals_)
    gets, guards = _guard_signals(fn)
    return MutationSummary(
        function=fn,
        local_names=locals_,
        writes=tuple(writes),
        global_writes=tuple(global_writes),
        reads_get_of=gets,
        guard_read_attrs=guards,
    )
