"""``python -m repro.analysis`` — the one-command correctness gate.

Exit codes: 0 = gate passes, 1 = findings, 2 = usage error.

Examples
--------
Lint the library (errors fail, warnings reported)::

    python -m repro.analysis src/repro

The full strict gate (lint + runtime contracts + differential testing;
warnings fail too) — what CI runs::

    python -m repro.analysis --strict src/repro

Only the bitmask rule, as JSON::

    python -m repro.analysis --select RPR002 --format json src/repro

What a rule means and why it exists::

    python -m repro.analysis --explain RPR010

Findings already accepted in ``analysis-baseline.json`` (each with a
written reason) are suppressed automatically; regenerate the file
deliberately with ``--write-baseline`` (or ``make analyze-baseline``).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.baseline import Baseline, load_baseline, write_baseline
from repro.analysis.contracts import run_contract_checks
from repro.analysis.differential import differential_findings
from repro.analysis.lint import lint_paths
from repro.analysis.report import (
    Finding,
    Severity,
    gate_exit_code,
    render_json,
    render_text,
    summarize,
)
from repro.analysis.rules import ALL_RULES

#: Discovered in the working directory unless --baseline/--no-baseline says
#: otherwise, so `make lint` and CI pick the checked-in debt up implicitly.
DEFAULT_BASELINE = "analysis-baseline.json"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Invariant-aware static analysis + correctness gate "
        "for the subset-skyline reproduction.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="fail on warnings too, and run the runtime contract checks "
        "and the differential harness in addition to lint",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--contracts",
        action="store_true",
        help="also run the runtime contract checks (Lemma 5.1, Algorithm 1)",
    )
    parser.add_argument(
        "--differential",
        action="store_true",
        help="also cross-validate every registered algorithm against the "
        "brute-force oracle",
    )
    parser.add_argument(
        "--no-lint",
        action="store_true",
        help="skip the static lint layer (contracts/differential only)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "github"),
        default="text",
        help="output format: human text, a JSON array (always printed, "
        "even when empty), or GitHub ::error/::warning annotation lines",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--explain",
        metavar="CODE",
        help="print one rule's full description and exit",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        help="baseline file of accepted findings "
        f"(default: ./{DEFAULT_BASELINE} when it exists)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file; report every finding",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="regenerate the baseline from the current findings and exit; "
        "existing reasons are preserved by fingerprint, new entries get a "
        "FIXME placeholder that keeps failing the gate until justified",
    )
    return parser


def _list_rules() -> str:
    lines = []
    for rule in sorted(ALL_RULES, key=lambda r: r.code):
        lines.append(f"{rule.code} [{rule.severity}] {rule.name}")
        lines.append(f"    {rule.description}")
    return "\n".join(lines)


def _explain(code: str) -> str | None:
    wanted = code.strip().upper()
    for rule in ALL_RULES:
        if rule.code == wanted:
            lines = [
                f"{rule.code} — {rule.name} ({rule.severity})",
                "",
                rule.description,
            ]
            if rule.allowlist:
                lines += ["", "exempt modules: " + ", ".join(rule.allowlist)]
            if rule.engine_level:
                lines += [
                    "",
                    "implemented by the lint engine itself (runs after all "
                    "selected rules, over the suppression-usage map)",
                ]
            lines += [
                "",
                f"suppress one deliberate site with `# noqa: {rule.code} — reason`",
                "(the reason is mandatory: RPR011 audits every suppression)",
            ]
            return "\n".join(lines)
    return None


def render_github(findings: Iterable[Finding]) -> str:
    """GitHub workflow-command annotations, one line per finding."""
    ordered = sorted(findings, key=lambda f: (f.path, f.line, f.rule))
    lines = []
    for f in ordered:
        level = "error" if f.severity is Severity.ERROR else "warning"
        location = f"file={f.path}"
        if f.line:
            location += f",line={f.line}"
        # Workflow commands terminate the message at a newline; findings
        # are single-line already, but be safe.
        message = f"{f.rule} {f.message}".replace("\n", " ")
        lines.append(f"::{level} {location}::{message}")
    return "\n".join(lines)


def _resolve_baseline(args: argparse.Namespace) -> Baseline | None:
    if args.no_baseline:
        return None
    if args.baseline:
        path = Path(args.baseline)
        if not path.exists() and not args.write_baseline:
            raise FileNotFoundError(f"baseline file not found: {path}")
        return load_baseline(path) if path.exists() else None
    default = Path(DEFAULT_BASELINE)
    if default.exists():
        return load_baseline(default)
    return None


def main(argv: Sequence[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0
    if args.explain:
        text = _explain(args.explain)
        if text is None:
            parser.error(f"unknown rule code: {args.explain}")
        print(text)
        return 0
    if args.no_baseline and (args.baseline or args.write_baseline):
        parser.error("--no-baseline conflicts with --baseline/--write-baseline")

    select = args.select.split(",") if args.select else None
    findings: list[Finding] = []

    if not args.no_lint:
        try:
            findings += lint_paths(args.paths, select=select, root=Path.cwd())
        except (FileNotFoundError, ValueError) as exc:
            parser.error(str(exc))  # exits 2

    if args.contracts or args.strict:
        findings += run_contract_checks()
    if args.differential or args.strict:
        findings += differential_findings()

    if args.write_baseline:
        path = Path(args.baseline) if args.baseline else Path(DEFAULT_BASELINE)
        previous = load_baseline(path) if path.exists() else None
        written = write_baseline(path, findings, previous)
        unjustified = sum(
            1 for e in written.entries.values() if not e.justified
        )
        print(
            f"wrote {path}: {len(written.entries)} accepted finding(s), "
            f"{unjustified} still needing a reason",
            file=sys.stderr,
        )
        return 0

    try:
        baseline = _resolve_baseline(args)
    except (FileNotFoundError, ValueError) as exc:
        parser.error(str(exc))
    if baseline is not None:
        result = baseline.apply(findings)
        reported = result.reported
        suppressed_count = len(result.suppressed)
    else:
        reported = findings
        suppressed_count = 0

    if args.format == "json":
        print(render_json(reported))
    elif args.format == "github":
        output = render_github(reported)
        if output:
            print(output)
    elif reported:
        print(render_text(reported))
    if args.format != "json":
        tally = f"repro.analysis: {summarize(reported)}"
        if suppressed_count:
            tally += f" ({suppressed_count} baselined)"
        print(tally, file=sys.stderr)
    return gate_exit_code(reported, strict=args.strict)


if __name__ == "__main__":
    raise SystemExit(main())
