"""``python -m repro.analysis`` — the one-command correctness gate.

Exit codes: 0 = gate passes, 1 = findings, 2 = usage error.

Examples
--------
Lint the library (errors fail, warnings reported)::

    python -m repro.analysis src/repro

The full strict gate (lint + runtime contracts + differential testing;
warnings fail too) — what CI runs::

    python -m repro.analysis --strict src/repro

Only the bitmask rule, as JSON::

    python -m repro.analysis --select RPR002 --format json src/repro
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.analysis.contracts import run_contract_checks
from repro.analysis.differential import differential_findings
from repro.analysis.lint import lint_paths
from repro.analysis.report import (
    Finding,
    gate_exit_code,
    render_json,
    render_text,
    summarize,
)
from repro.analysis.rules import ALL_RULES


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Invariant-aware static analysis + correctness gate "
        "for the subset-skyline reproduction.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="fail on warnings too, and run the runtime contract checks "
        "and the differential harness in addition to lint",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--contracts",
        action="store_true",
        help="also run the runtime contract checks (Lemma 5.1, Algorithm 1)",
    )
    parser.add_argument(
        "--differential",
        action="store_true",
        help="also cross-validate every registered algorithm against the "
        "brute-force oracle",
    )
    parser.add_argument(
        "--no-lint",
        action="store_true",
        help="skip the static lint layer (contracts/differential only)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _list_rules() -> str:
    lines = []
    for rule in sorted(ALL_RULES, key=lambda r: r.code):
        lines.append(f"{rule.code} [{rule.severity}] {rule.name}")
        lines.append(f"    {rule.description}")
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0

    select = args.select.split(",") if args.select else None
    findings: list[Finding] = []

    if not args.no_lint:
        try:
            findings += lint_paths(args.paths, select=select, root=Path.cwd())
        except (FileNotFoundError, ValueError) as exc:
            parser.error(str(exc))  # exits 2

    if args.contracts or args.strict:
        findings += run_contract_checks()
    if args.differential or args.strict:
        findings += differential_findings()

    if findings:
        renderer = render_json if args.format == "json" else render_text
        print(renderer(findings))
    if args.format == "text":
        print(f"repro.analysis: {summarize(findings)}", file=sys.stderr)
    return gate_exit_code(findings, strict=args.strict)


if __name__ == "__main__":
    raise SystemExit(main())
