"""The AST lint engine: file discovery, parsing, rule dispatch, ``noqa``.

The engine parses each Python file once with :mod:`ast`, hands the module
to every selected per-module rule from :mod:`repro.analysis.rules`, runs
the project-level rules over the whole-program model (built lazily, only
when a :class:`~repro.analysis.rules.ProjectRule` is selected), and
filters the resulting findings through line-level ``# noqa: RPRxxx``
suppressions.  Suppressions must name the rule code (a bare ``# noqa``
is ignored: silent blanket suppression is exactly the kind of hole this
gate exists to close).

The engine also implements **RPR011** (noqa hygiene) itself, because only
the engine knows which suppressions were *used*: after the rule pass,
every ``# noqa: RPRxxx`` must carry a justification after the codes, and
a suppression whose rule ran but no longer fires on that line is stale.
Staleness is only judged against rules that actually ran in this
invocation (a ``--select RPR002`` run cannot call an RPR007 suppression
stale), and never against RPR011 itself.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.analysis.report import Finding, Severity

#: ``# noqa: RPR001`` or ``# noqa: RPR001, RPR002`` (case-insensitive tag).
_NOQA_RE = re.compile(r"#\s*noqa\s*:\s*(?P<codes>[A-Z]{3}\d{3}(?:\s*,\s*[A-Z]{3}\d{3})*)", re.IGNORECASE)

#: A *suppression comment* for the RPR011 audit: the comment itself starts
#: with the noqa tag (``# noqa: RPR007 — reason``).  The stricter anchor
#: keeps prose that merely mentions ``# noqa: ...`` — docstrings are
#: excluded by tokenization already, but comments talk about noqa too —
#: from being audited as if it were a live suppression.
_NOQA_COMMENT_RE = re.compile(
    r"\A#+\s*noqa\s*:\s*(?P<codes>[A-Z]{3}\d{3}(?:\s*,\s*[A-Z]{3}\d{3})*)",
    re.IGNORECASE,
)

_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache", "build", "dist"}


@dataclass(frozen=True)
class ModuleInfo:
    """One parsed source file, as seen by the rules."""

    path: Path
    display_path: str
    tree: ast.Module
    lines: tuple[str, ...]

    def line(self, lineno: int) -> str:
        """The 1-based source line, stripped ('' when out of range)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""


def iter_python_files(paths: Sequence[Path | str]) -> Iterator[Path]:
    """Yield every ``.py`` file under ``paths``, skipping cache dirs."""
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            if path.suffix == ".py":
                yield path
            continue
        if not path.is_dir():
            raise FileNotFoundError(f"no such file or directory: {path}")
        for candidate in sorted(path.rglob("*.py")):
            if not any(part in _SKIP_DIRS for part in candidate.parts):
                yield candidate


def parse_module(path: Path, root: Path | None = None) -> ModuleInfo | Finding:
    """Parse ``path`` into a :class:`ModuleInfo`, or an RPR000 finding.

    RPR000 (syntax error) is not suppressible: an unparseable file can hide
    any number of violations.
    """
    display = _display_path(path, root)
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return Finding(
            rule="RPR000",
            path=display,
            line=exc.lineno or 0,
            message=f"syntax error: {exc.msg}",
            severity=Severity.ERROR,
        )
    return ModuleInfo(
        path=path,
        display_path=display,
        tree=tree,
        lines=tuple(source.splitlines()),
    )


def suppressed_codes(line: str) -> frozenset[str]:
    """Rule codes suppressed by a ``# noqa: ...`` comment on ``line``."""
    match = _NOQA_RE.search(line)
    if match is None:
        return frozenset()
    return frozenset(code.strip().upper() for code in match.group("codes").split(","))


def noqa_justification(line: str) -> str | None:
    """The justification text after a ``# noqa: RPRxxx`` tag, or ``None``.

    ``None`` means the line has no coded noqa at all; ``""`` means it has
    one with no justification (an RPR011 violation when the audit runs).
    """
    match = _NOQA_RE.search(line)
    if match is None:
        return None
    return line[match.end() :].strip(" \t-—–:;,.()")


def lint_paths(
    paths: Sequence[Path | str],
    select: Iterable[str] | None = None,
    root: Path | None = None,
) -> list[Finding]:
    """Run the selected rules over every Python file under ``paths``.

    Per-module rules run file by file; if any project rule is selected the
    whole-program model is built once and handed to each of them.  The
    noqa audit (RPR011) runs last, over the suppression-usage map the rule
    pass produced.

    Parameters
    ----------
    paths:
        Files or directories to analyze.
    select:
        Rule codes to run (default: all registered rules).
    root:
        Base directory findings are reported relative to (default: cwd).
    """
    # Imported here so rules can import engine types without a cycle.
    from repro.analysis.rules import ProjectRule, active_rules

    rules = active_rules(select)
    module_rules = [
        r for r in rules if not isinstance(r, ProjectRule) and not r.engine_level
    ]
    project_rules = [r for r in rules if isinstance(r, ProjectRule)]
    audit_noqa = any(r.code == "RPR011" for r in rules)

    findings: list[Finding] = []
    modules: list[ModuleInfo] = []
    for path in iter_python_files(paths):
        parsed = parse_module(path, root)
        if isinstance(parsed, Finding):
            findings.append(parsed)
        else:
            modules.append(parsed)

    raw: list[Finding] = []
    for module in modules:
        for rule in module_rules:
            raw.extend(rule.check(module))
    if project_rules:
        from repro.analysis.project import build_project

        project = build_project(modules)
        for rule in project_rules:
            raw.extend(rule.check_project(project))

    by_display = {module.display_path: module for module in modules}
    used_suppressions: set[tuple[str, int, str]] = set()
    for finding in raw:
        module = by_display.get(finding.path)
        line = module.line(finding.line) if module is not None else ""
        if finding.rule in suppressed_codes(line):
            used_suppressions.add((finding.path, finding.line, finding.rule))
            continue
        findings.append(finding)

    if audit_noqa:
        ran_codes = frozenset(r.code for r in rules)
        findings.extend(_audit_noqa(modules, ran_codes, used_suppressions))
    return findings


def _suppression_comments(module: ModuleInfo) -> Iterator[tuple[int, str]]:
    """``(lineno, comment_text)`` for every noqa suppression comment.

    Tokenizes the source so noqa tags quoted inside strings and docstrings
    never count; only real ``# noqa: ...``-leading comments do.
    """
    source = "\n".join(module.lines) + "\n"
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            if _NOQA_COMMENT_RE.match(token.string):
                yield token.start[0], token.string
    except tokenize.TokenizeError:  # pragma: no cover - parse already passed
        return


def _audit_noqa(
    modules: Iterable[ModuleInfo],
    ran_codes: frozenset[str],
    used: set[tuple[str, int, str]],
) -> Iterator[Finding]:
    """RPR011: flag unjustified and stale ``# noqa`` suppressions."""
    for module in modules:
        for lineno, comment in _suppression_comments(module):
            codes = suppressed_codes(comment)
            if not codes:
                continue
            if "RPR011" in codes:
                # An explicit, coded opt-out of the audit for this line;
                # justification for it is checked like any other, below.
                codes = codes - {"RPR011"}
                audit_suppressed = True
            else:
                audit_suppressed = False
            justification = noqa_justification(comment) or ""
            if not justification and not audit_suppressed:
                yield Finding(
                    rule="RPR011",
                    path=module.display_path,
                    line=lineno,
                    message=(
                        f"suppression of {', '.join(sorted(codes))} carries no "
                        "justification — say why after the codes "
                        "(`# noqa: RPRxxx — reason`)"
                    ),
                    severity=Severity.ERROR,
                    snippet=module.line(lineno),
                )
            if audit_suppressed:
                continue
            for code in sorted(codes):
                if code not in ran_codes:
                    continue
                if (module.display_path, lineno, code) not in used:
                    yield Finding(
                        rule="RPR011",
                        path=module.display_path,
                        line=lineno,
                        message=(
                            f"stale suppression: {code} no longer fires on "
                            "this line — delete the noqa"
                        ),
                        severity=Severity.ERROR,
                        snippet=module.line(lineno),
                    )


def _display_path(path: Path, root: Path | None) -> str:
    base = root if root is not None else Path.cwd()
    try:
        return path.resolve().relative_to(base.resolve()).as_posix()
    except ValueError:
        return path.as_posix()
