"""The AST lint engine: file discovery, parsing, rule dispatch, ``noqa``.

The engine is deliberately tiny — it parses each Python file once with
:mod:`ast`, hands the module to every selected rule from
:mod:`repro.analysis.rules`, and filters the resulting findings through
line-level ``# noqa: RPRxxx`` suppressions.  Suppressions must name the
rule code (a bare ``# noqa`` is ignored: silent blanket suppression is
exactly the kind of hole this gate exists to close).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.analysis.report import Finding, Severity

#: ``# noqa: RPR001`` or ``# noqa: RPR001, RPR002`` (case-insensitive tag).
_NOQA_RE = re.compile(r"#\s*noqa\s*:\s*(?P<codes>[A-Z]{3}\d{3}(?:\s*,\s*[A-Z]{3}\d{3})*)", re.IGNORECASE)

_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache", "build", "dist"}


@dataclass(frozen=True)
class ModuleInfo:
    """One parsed source file, as seen by the rules."""

    path: Path
    display_path: str
    tree: ast.Module
    lines: tuple[str, ...]

    def line(self, lineno: int) -> str:
        """The 1-based source line, stripped ('' when out of range)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""


def iter_python_files(paths: Sequence[Path | str]) -> Iterator[Path]:
    """Yield every ``.py`` file under ``paths``, skipping cache dirs."""
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            if path.suffix == ".py":
                yield path
            continue
        if not path.is_dir():
            raise FileNotFoundError(f"no such file or directory: {path}")
        for candidate in sorted(path.rglob("*.py")):
            if not any(part in _SKIP_DIRS for part in candidate.parts):
                yield candidate


def parse_module(path: Path, root: Path | None = None) -> ModuleInfo | Finding:
    """Parse ``path`` into a :class:`ModuleInfo`, or an RPR000 finding.

    RPR000 (syntax error) is not suppressible: an unparseable file can hide
    any number of violations.
    """
    display = _display_path(path, root)
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return Finding(
            rule="RPR000",
            path=display,
            line=exc.lineno or 0,
            message=f"syntax error: {exc.msg}",
            severity=Severity.ERROR,
        )
    return ModuleInfo(
        path=path,
        display_path=display,
        tree=tree,
        lines=tuple(source.splitlines()),
    )


def suppressed_codes(line: str) -> frozenset[str]:
    """Rule codes suppressed by a ``# noqa: ...`` comment on ``line``."""
    match = _NOQA_RE.search(line)
    if match is None:
        return frozenset()
    return frozenset(code.strip().upper() for code in match.group("codes").split(","))


def lint_paths(
    paths: Sequence[Path | str],
    select: Iterable[str] | None = None,
    root: Path | None = None,
) -> list[Finding]:
    """Run the selected rules over every Python file under ``paths``.

    Parameters
    ----------
    paths:
        Files or directories to analyze.
    select:
        Rule codes to run (default: all registered rules).
    root:
        Base directory findings are reported relative to (default: cwd).
    """
    # Imported here so rules can import engine types without a cycle.
    from repro.analysis.rules import active_rules

    rules = active_rules(select)
    findings: list[Finding] = []
    for path in iter_python_files(paths):
        parsed = parse_module(path, root)
        if isinstance(parsed, Finding):
            findings.append(parsed)
            continue
        for rule in rules:
            for finding in rule.check(parsed):
                if rule.code in suppressed_codes(parsed.line(finding.line)):
                    continue
                findings.append(finding)
    return findings


def _display_path(path: Path, root: Path | None) -> str:
    base = root if root is not None else Path.cwd()
    try:
        return path.resolve().relative_to(base.resolve()).as_posix()
    except ValueError:
        return path.as_posix()
