"""Findings: the analyzer's output model and its renderers.

Every check in :mod:`repro.analysis` — static lint rules, runtime contract
checks and the differential harness — reports problems as
:class:`Finding` records so the CLI can render them uniformly
(``file:line: CODE message`` text, or JSON for tooling) and compute a
single exit code for the gate.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from enum import Enum
from typing import Iterable


class Severity(str, Enum):
    """How bad a finding is.

    ``ERROR`` findings always fail the gate; ``WARNING`` findings fail it
    only under ``--strict``.
    """

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class Finding:
    """One problem located in the repository.

    Attributes
    ----------
    rule:
        Rule code (``RPR001``...) or check name (``contract:lemma-5.1``).
    path:
        File the finding anchors to (repo-relative when possible).
    line:
        1-based line number; 0 when the finding is not line-addressable
        (e.g. a runtime contract violation).
    message:
        Human-readable description of the problem.
    severity:
        :class:`Severity` of the finding.
    snippet:
        The offending source line, stripped, when available.
    """

    rule: str
    path: str
    line: int
    message: str
    severity: Severity = Severity.ERROR
    snippet: str = field(default="", compare=False)

    def render(self) -> str:
        """``file:line: severity CODE message`` (line omitted when 0)."""
        location = f"{self.path}:{self.line}" if self.line else self.path
        text = f"{location}: {self.severity} {self.rule} {self.message}"
        if self.snippet:
            text += f"\n    {self.snippet}"
        return text


def render_text(findings: Iterable[Finding]) -> str:
    """Render findings as line-oriented text, sorted by location."""
    ordered = sorted(findings, key=lambda f: (f.path, f.line, f.rule))
    return "\n".join(finding.render() for finding in ordered)


def render_json(findings: Iterable[Finding]) -> str:
    """Render findings as a JSON array (stable key order)."""
    ordered = sorted(findings, key=lambda f: (f.path, f.line, f.rule))
    payload = []
    for finding in ordered:
        record = asdict(finding)
        record["severity"] = str(finding.severity)
        payload.append(record)
    return json.dumps(payload, indent=2, sort_keys=True)


def summarize(findings: Iterable[Finding]) -> str:
    """One-line tally: ``3 errors, 1 warning`` (or ``clean``)."""
    errors = warnings = 0
    for finding in findings:
        if finding.severity is Severity.ERROR:
            errors += 1
        else:
            warnings += 1
    if not errors and not warnings:
        return "clean"
    parts = []
    if errors:
        parts.append(f"{errors} error{'s' if errors != 1 else ''}")
    if warnings:
        parts.append(f"{warnings} warning{'s' if warnings != 1 else ''}")
    return ", ".join(parts)


def gate_exit_code(findings: Iterable[Finding], strict: bool = False) -> int:
    """0 when the gate passes, 1 when it fails.

    Non-strict mode fails on errors only; strict mode fails on anything.
    """
    worst_fails = False
    for finding in findings:
        if strict or finding.severity is Severity.ERROR:
            worst_fails = True
            break
    return 1 if worst_fails else 0
