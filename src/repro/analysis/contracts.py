"""Runtime contract checks for the paper's structural lemmas.

Static lint can prove a counter was *threaded*; it cannot prove the subset
index returns the right candidates.  This module re-verifies, at runtime
and against independent brute-force oracles, the invariants the subset
approach rests on:

- **Lemma 5.1** — for a testing point with maximum dominating subspace
  ``D_q``, :meth:`SkylineIndex.query` must return *exactly* the stored
  points whose subspace is a superset of ``D_q``; equivalently, the
  superset-filtered subset of what a :class:`ListContainer` would return
  on identical ``add`` traffic.
- **Algorithm 1** — Merge must assign every surviving point the true
  maximum dominating subspace ``D_{q<S} = ⋃ D_{q<p}`` over the selected
  pivots, the subspace must be non-empty, and no survivor may be weakly
  dominated by a pivot.
- **Engine equivalence** — a pinned plan executed by the engine must
  reproduce the direct registry call bit-for-bit on a cold run (skyline
  and charged dominance tests), and warm runs must serve boosted plans
  from the prepared caches without changing the skyline.

Checks are opt-in (they cost a brute-force pass per query) and report
problems as :class:`~repro.analysis.report.Finding` records so the CLI
gate can fail on them.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.report import Finding, Severity
from repro.core.container import ListContainer, SkylineContainer, SubsetContainer
from repro.core.merge import merge
from repro.core.subspace import maximum_dominating_subspace
from repro.data import generate
from repro.dataset import Dataset
from repro.errors import ReproError
from repro.stats.counters import DominanceCounter
from repro.structures import bitset


class ContractViolation(ReproError):
    """A runtime invariant of the subset approach does not hold."""


class CheckedSubsetContainer(SkylineContainer):
    """A :class:`SubsetContainer` that re-verifies Lemma 5.1 on every query.

    Maintains a shadow :class:`ListContainer` plus the stored masks; each
    ``candidates(mask)`` call brute-forces the expected superset filter
    over the shadow store and raises :class:`ContractViolation` the moment
    the subset index diverges — either by returning a point it must not
    (unsound pruning downstream is *masked*, wrong results are possible)
    or by omitting one (unsound: a true dominator is never tested).
    """

    def __init__(self, values: np.ndarray, d: int) -> None:
        self._subset = SubsetContainer(values, d)
        self._shadow = ListContainer(values)
        self._masks: dict[int, int] = {}
        self.queries_checked = 0

    def add(self, point_id: int, mask: int) -> None:
        self._subset.add(point_id, mask)
        self._shadow.add(point_id, mask)
        self._masks[point_id] = mask

    def candidates(self, mask: int) -> tuple[np.ndarray, np.ndarray]:
        ids, block = self._subset.candidates(mask)
        shadow_ids = set(self._shadow.ids())
        got = {int(i) for i in ids}
        expected = {
            pid
            for pid, stored_mask in self._masks.items()
            if bitset.is_superset(stored_mask, mask)
        }
        self.queries_checked += 1
        if got != expected:
            extra = sorted(got - expected)
            missing = sorted(expected - got)
            raise ContractViolation(
                "Lemma 5.1 violated by SkylineIndex.query: for subspace "
                f"{mask:#x} expected candidates {sorted(expected)}, got "
                f"{sorted(got)} (extra={extra}, missing={missing})"
            )
        if not got <= shadow_ids:
            raise ContractViolation(
                "subset container returned ids never added to the store: "
                f"{sorted(got - shadow_ids)}"
            )
        return ids, block

    def ids(self) -> list[int]:
        return self._subset.ids()

    def __len__(self) -> int:
        return len(self._subset)


def verify_index_superset_filter(dataset: Dataset, sigma: int | None = None) -> int:
    """End-to-end Lemma 5.1 check: boosted SFS scan with a checked container.

    Runs Merge, then the SFS scan phase with a
    :class:`CheckedSubsetContainer`, then cross-checks the final skyline
    against a brute-force oracle.  Returns the number of queries verified;
    raises :class:`ContractViolation` on any divergence.
    """
    from repro.algorithms.sfs import SFS
    from repro.core.stability import default_threshold

    d = dataset.dimensionality
    counter = DominanceCounter()  # noqa: RPR010 — verification-only scratch; contract DT is deliberately unreported
    sigma = sigma if sigma is not None else default_threshold(d)
    merged = merge(dataset, sigma, counter)
    container = CheckedSubsetContainer(dataset.values, d)
    skyline = list(merged.initial_skyline_ids)
    if merged.remaining_ids.size:
        masks = np.zeros(dataset.cardinality, dtype=np.int64)
        masks[merged.remaining_ids] = merged.masks
        skyline += SFS().run_phase(
            dataset, merged.remaining_ids, masks, container, counter
        )
    expected = _oracle_skyline(dataset.values)
    if sorted(skyline) != expected:
        raise ContractViolation(
            "checked boosted scan produced a wrong skyline: "
            f"got {sorted(skyline)}, expected {expected}"
        )
    return container.queries_checked


def verify_merge_masks(dataset: Dataset, sigma: int) -> None:
    """Algorithm 1 contract: masks are the true maximum dominating subspaces.

    Recomputes ``D_{q<S}`` for every surviving point by brute force over
    the selected pivots and compares with what Merge assigned; also checks
    that survivors carry non-empty subspaces and are not weakly dominated
    by any pivot (otherwise they would have been pruned).
    """
    merged = merge(dataset, sigma)
    values = dataset.values
    pivot_rows = [values[pid] for pid in merged.pivot_ids]
    scratch = DominanceCounter()  # noqa: RPR010 — verification-only scratch; contract DT is deliberately unreported
    for position, point_id in enumerate(merged.remaining_ids):
        point_id = int(point_id)
        expected = maximum_dominating_subspace(values[point_id], pivot_rows, scratch)
        assigned = int(merged.masks[position])
        if assigned != expected:
            raise ContractViolation(
                f"Merge assigned point {point_id} subspace {assigned:#x}; "
                f"brute-force union over {len(pivot_rows)} pivots gives "
                f"{expected:#x}"
            )
        if assigned == bitset.EMPTY:
            raise ContractViolation(
                f"surviving point {point_id} carries an empty subspace — it "
                "is weakly dominated by a pivot and should have been pruned"
            )
    for pid in merged.pivot_ids:
        others = np.delete(values, pid, axis=0)
        dominated = np.all(others <= values[pid], axis=1) & np.any(
            others < values[pid], axis=1
        )
        if bool(dominated.any()):
            raise ContractViolation(
                f"Merge selected pivot {pid} which is not a skyline point"
            )


def verify_engine_equivalence(
    dataset: Dataset,
    algorithms: tuple[str, ...] = ("sfs", "salsa", "sdi", "sfs-subset", "sdi-subset"),
    index_backends: tuple[str, ...] = ("map", "flat"),
) -> None:
    """Engine contract: planned execution ≡ direct algorithm calls.

    For each pinned algorithm, a cold :class:`~repro.engine.SkylineEngine`
    run must return bit-identical skyline indices *and* charge the
    identical dominance-test count as the direct registry call, and a
    second (warm) run on the same engine must return the identical skyline
    while recording prepared-cache hits for boosted plans.  Boosted
    algorithms are verified once per subset-index backend (the backend is
    inert for plain algorithms, which run once).
    """
    from repro.algorithms.registry import get_algorithm
    from repro.engine import SkylineEngine

    for name in algorithms:
        boosted = name.endswith("-subset")
        backends = index_backends if boosted else index_backends[:1]
        reference: tuple[str, np.ndarray, int] | None = None
        for backend in backends:
            label = f"{name}[{backend}]" if boosted else name
            direct_counter = DominanceCounter()
            if boosted:
                direct_algorithm = get_algorithm(name, index_backend=backend)
            else:
                direct_algorithm = get_algorithm(name)
            direct = direct_algorithm.compute(dataset, counter=direct_counter)
            engine = SkylineEngine()
            cold_counter = DominanceCounter()
            cold = engine.execute(
                dataset, name, counter=cold_counter, index_backend=backend
            )
            if not np.array_equal(direct.indices, cold.indices):
                raise ContractViolation(
                    f"engine({label}) returned a different skyline than the "
                    f"direct call: {cold.indices.tolist()} vs "
                    f"{direct.indices.tolist()}"
                )
            if cold_counter.tests != direct_counter.tests:
                raise ContractViolation(
                    f"engine({label}) charged {cold_counter.tests} dominance "
                    f"tests on a cold run; the direct call charged "
                    f"{direct_counter.tests}"
                )
            warm_counter = DominanceCounter()
            warm = engine.execute(
                dataset, name, counter=warm_counter, index_backend=backend
            )
            if not np.array_equal(direct.indices, warm.indices):
                raise ContractViolation(
                    f"engine({label}) warm run diverged from the direct skyline"
                )
            if boosted and warm_counter.prepared_cache_hits == 0:
                raise ContractViolation(
                    f"engine({label}) warm run recorded no prepared-cache "
                    "hits — the Merge result was recomputed instead of reused"
                )
            # The backends must also agree with EACH OTHER bit-for-bit:
            # a backend that is merely self-consistent (e.g. a superset
            # filter returning extra, non-dominating candidates) passes
            # the engine-vs-direct checks above but changes the charged
            # dominance tests relative to the reference backend.
            if reference is None:
                reference = (backend, direct.indices, direct_counter.tests)
            else:
                ref_backend, ref_indices, ref_tests = reference
                if not np.array_equal(direct.indices, ref_indices):
                    raise ContractViolation(
                        f"{name}: backend {backend!r} returned a different "
                        f"skyline than backend {ref_backend!r}"
                    )
                if direct_counter.tests != ref_tests:
                    raise ContractViolation(
                        f"{name}: backend {backend!r} charged "
                        f"{direct_counter.tests} dominance tests; backend "
                        f"{ref_backend!r} charged {ref_tests}"
                    )


def _oracle_skyline(values: np.ndarray) -> list[int]:
    """Independent O(N^2) skyline oracle (no library kernels involved)."""
    n = values.shape[0]
    result: list[int] = []
    for i in range(n):
        le = np.all(values <= values[i], axis=1)
        lt = np.any(values < values[i], axis=1)
        dominators = le & lt
        dominators[i] = False
        if not bool(dominators.any()):
            result.append(i)
    return result


def run_contract_checks(
    kinds: tuple[str, ...] = ("UI", "CO", "AC"),
    n: int = 160,
    d: int = 5,
    seeds: tuple[int, ...] = (7, 21),
) -> list[Finding]:
    """Run every contract check over a seeded workload matrix.

    Returns findings (empty = all contracts hold) rather than raising, so
    the CLI can render them alongside lint output.
    """
    findings: list[Finding] = []
    for kind in kinds:
        for seed in seeds:
            dataset = generate(kind, n=n, d=d, seed=seed)
            label = f"{kind}/n={n}/d={d}/seed={seed}"
            try:
                verify_index_superset_filter(dataset)
                verify_merge_masks(dataset, sigma=2)
                verify_engine_equivalence(dataset)
            except ContractViolation as exc:
                findings.append(
                    Finding(
                        rule="contract",
                        path=label,
                        line=0,
                        message=str(exc),
                        severity=Severity.ERROR,
                    )
                )
    return findings
