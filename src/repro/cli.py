"""Command-line interface: ``repro-skyline`` / ``python -m repro``.

Subcommands
-----------
- ``generate`` — write a synthetic AC/CO/UI (or HOUSE/NBA/WEATHER-like)
  dataset to CSV or NPY.
- ``run`` — compute a skyline over a file or a freshly generated workload
  and print the paper's metrics.
- ``algorithms`` — list registry names.
- ``tune`` — pick a stability threshold for a dataset via the sample-based
  cost model.

Benchmark experiments live under ``python -m repro.bench``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro import skyline
from repro.algorithms.registry import available_algorithms, get_algorithm
from repro.core.autotune import tune_sigma
from repro.data import generate, house, load_csv, load_npy, nba, save_csv, save_npy, weather
from repro.dataset import Dataset
from repro.errors import ReproError

_REAL = {"house": house, "nba": nba, "weather": weather}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-skyline",
        description="Subset approach to efficient skyline computation (EDBT 2023).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a dataset and write it to disk")
    gen.add_argument("kind", help="AC, CO, UI, house, nba, or weather")
    gen.add_argument("out", help="output path (.csv or .npy)")
    gen.add_argument("-n", type=int, default=10_000, help="cardinality")
    gen.add_argument("-d", type=int, default=8, help="dimensionality (synthetic kinds)")
    gen.add_argument("--seed", type=int, default=0)

    run = sub.add_parser("run", help="compute a skyline and print metrics")
    run.add_argument(
        "--algorithm",
        "-a",
        default="sdi-subset",
        help="registry name, or 'auto' to let the planner choose",
    )
    run.add_argument("--input", "-i", help="dataset file (.csv or .npy)")
    run.add_argument("--kind", default="UI", help="generator kind when no --input")
    run.add_argument("-n", type=int, default=10_000)
    run.add_argument("-d", type=int, default=8)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--sigma", type=int, default=None, help="stability threshold")
    run.add_argument("--ids", action="store_true", help="also print skyline row ids")
    run.add_argument(
        "--explain", action="store_true", help="print the executed plan"
    )
    run.add_argument(
        "--trace",
        metavar="FILE",
        help="write a Chrome trace-event JSON (chrome://tracing) of the run",
    )
    run.add_argument(
        "--metrics",
        metavar="FILE",
        help="write a flat JSON metrics dump (counters, caches, phases)",
    )
    run.add_argument(
        "--phase-table",
        action="store_true",
        help="print the per-phase wall-time / dominance-test breakdown",
    )
    run.add_argument(
        "--explain-analyze",
        action="store_true",
        help="print the executed plan with cost-model estimates vs actuals",
    )
    run.add_argument(
        "--events",
        metavar="FILE",
        help="write the structured event log (JSONL) of the run",
    )
    run.add_argument(
        "--slow-ms",
        type=float,
        default=100.0,
        help="slow-query threshold in ms for the event log (default 100)",
    )
    run.add_argument(
        "--prom",
        metavar="FILE",
        help="write Prometheus text-format metrics (counters + histograms)",
    )

    sub.add_parser("algorithms", help="list available algorithm names")

    band = sub.add_parser("skyband", help="compute the k-skyband")
    band.add_argument("-k", type=int, default=2, help="maximum dominator count + 1")
    band.add_argument("--input", "-i", help="dataset file (.csv or .npy)")
    band.add_argument("--kind", default="UI")
    band.add_argument("-n", type=int, default=10_000)
    band.add_argument("-d", type=int, default=8)
    band.add_argument("--seed", type=int, default=0)

    topk = sub.add_parser("topk", help="top-k dominating points")
    topk.add_argument("-k", type=int, default=5)
    topk.add_argument("--input", "-i", help="dataset file (.csv or .npy)")
    topk.add_argument("--kind", default="UI")
    topk.add_argument("-n", type=int, default=10_000)
    topk.add_argument("-d", type=int, default=8)
    topk.add_argument("--seed", type=int, default=0)

    tune = sub.add_parser("tune", help="autotune the stability threshold")
    tune.add_argument("--input", "-i", help="dataset file (.csv or .npy)")
    tune.add_argument("--kind", default="UI")
    tune.add_argument("-n", type=int, default=10_000)
    tune.add_argument("-d", type=int, default=8)
    tune.add_argument("--seed", type=int, default=0)
    tune.add_argument("--host", default="sdi", help="boostable host algorithm")
    tune.add_argument("--sample", type=int, default=2000)
    return parser


def _load_or_generate(args: argparse.Namespace) -> Dataset:
    if getattr(args, "input", None):
        path = Path(args.input)
        if path.suffix == ".npy":
            return load_npy(path)
        return load_csv(path)
    kind = args.kind.lower()
    if kind in _REAL:
        return _REAL[kind](args.n, seed=args.seed)
    return generate(args.kind, args.n, args.d, seed=args.seed)


def _cmd_generate(args: argparse.Namespace) -> int:
    kind = args.kind.lower()
    if kind in _REAL:
        dataset = _REAL[kind](args.n, seed=args.seed)
    else:
        dataset = generate(args.kind, args.n, args.d, seed=args.seed)
    path = Path(args.out)
    if path.suffix == ".npy":
        save_npy(dataset, path)
    else:
        save_csv(dataset, path)
    print(f"wrote {dataset.describe()} -> {path}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    dataset = _load_or_generate(args)
    algorithm = None if args.algorithm.lower() == "auto" else args.algorithm
    observing = bool(
        args.trace
        or args.metrics
        or args.phase_table
        or args.explain_analyze
        or args.events
        or args.prom
    )
    engine = None
    if observing:
        # Observability asked for: run through an engine whose context
        # carries a live tracer and event log (the Null defaults record
        # nothing).
        from repro.engine import SkylineEngine
        from repro.engine.context import ExecutionContext
        from repro.obs import EventLog, Tracer

        engine = SkylineEngine(
            ExecutionContext(
                tracer=Tracer(),
                event_log=EventLog(slow_query_s=args.slow_ms / 1000.0),
            )
        )
    result = skyline(dataset, algorithm=algorithm, sigma=args.sigma, engine=engine)
    print(f"dataset    : {dataset.describe()}")
    print(f"algorithm  : {result.algorithm}")
    print(f"skyline    : {result.size} points")
    print(f"mean DT    : {result.mean_dominance_tests:.4f}")
    print(f"elapsed    : {result.elapsed_seconds * 1000:.2f} ms")
    if args.explain and result.plan is not None:
        print(result.plan.explain())
    if args.ids:
        print("ids        :", " ".join(str(i) for i in result.indices))
    analysis = None
    if args.explain_analyze and result.plan is not None:
        analysis = result.plan.analyze(result)
        print(analysis.render())
    if observing and result.trace is not None:
        from repro.obs import (
            MetricsRegistry,
            phase_table,
            write_chrome_trace,
            write_metrics,
        )

        if args.phase_table:
            print(phase_table(result.trace))
        if args.trace:
            path = write_chrome_trace(result.trace, args.trace)
            print(f"trace      : wrote {path}")
        if args.metrics or args.prom:
            registry = MetricsRegistry()
            registry.record_counter(result.counter)
            registry.record_trace(result.trace)
            registry.record("run.elapsed_s", result.elapsed_seconds)
            registry.record("run.skyline_size", float(result.size))
            registry.record("run.cardinality", float(result.cardinality))
            registry.record("run.mean_dt", result.mean_dominance_tests)
            if analysis is not None:
                registry.record_analysis(analysis)
            if engine is not None:
                registry.record_pool(engine.context.pool_stats())
                for name, histogram in engine.context.histograms.items():
                    registry.record_histogram(name, histogram)
            if args.metrics:
                path = write_metrics(registry.as_dict(), args.metrics)
                print(f"metrics    : wrote {path}")
            if args.prom:
                from repro.obs import write_prometheus

                histograms = (
                    dict(engine.context.histograms) if engine is not None else {}
                )
                path = write_prometheus(
                    args.prom, registry.as_dict(), histograms
                )
                print(f"prometheus : wrote {path}")
    if args.events and engine is not None:
        path = engine.context.events.write_jsonl(args.events)
        print(f"events     : wrote {path}")
    return 0


def _cmd_algorithms(_: argparse.Namespace) -> int:
    for name in available_algorithms():
        print(name)
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    dataset = _load_or_generate(args)
    host = get_algorithm(args.host)
    choice = tune_sigma(dataset, host, sample_size=args.sample, seed=args.seed)
    print(f"dataset    : {dataset.describe()}")
    print(f"host       : {args.host}")
    print(f"best sigma : {choice.sigma}")
    for sigma, cost in choice.ranked():
        print(f"  sigma={sigma:2d}  modelled cost={cost:.1f}")
    return 0


def _cmd_skyband(args: argparse.Namespace) -> int:
    from repro.extensions import skyband

    dataset = _load_or_generate(args)
    band = skyband(dataset, k=args.k)
    by_count: dict[int, int] = {}
    for count in band.values():
        by_count[count] = by_count.get(count, 0) + 1
    print(f"dataset    : {dataset.describe()}")
    print(f"{args.k}-skyband : {len(band)} points")
    for count in sorted(by_count):
        print(f"  dominated by {count}: {by_count[count]} points")
    return 0


def _cmd_topk(args: argparse.Namespace) -> int:
    from repro.extensions import top_k_dominating

    dataset = _load_or_generate(args)
    print(f"dataset    : {dataset.describe()}")
    for point_id, score in top_k_dominating(dataset, k=args.k):
        print(f"  point {point_id}: dominates {score} points")
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "run": _cmd_run,
    "algorithms": _cmd_algorithms,
    "skyband": _cmd_skyband,
    "topk": _cmd_topk,
    "tune": _cmd_tune,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
